"""Golden regression: fixed-seed runs must replay committed trajectories.

The committed JSON files under ``tests/golden/`` pin the per-generation
best/mean fitness, environment step and inference MAC trajectories of
fixed-seed software-backend runs.  Every evaluation path — serial,
``workers=2`` pooled, ``vectorizer="numpy"`` batched, and pooled+batched
— must reproduce them *exactly*: the compiled inference engine and the
multiprocessing shards are bit-compatible rewrites of the scalar loop,
not approximations of it.

If an intentional algorithm change moves these trajectories, regenerate
the goldens (see each file's ``description``) in the same commit.
"""

import json
from pathlib import Path

import pytest

from repro.api import Experiment, ExperimentSpec

GOLDEN_DIR = Path(__file__).parent / "golden"

PATHS = {
    "serial": {},
    "vectorized": {"vectorizer": "numpy"},
    "workers2": {"workers": 2},
    "workers2_vectorized": {"workers": 2, "vectorizer": "numpy"},
}


def load_golden(name):
    data = json.loads((GOLDEN_DIR / name).read_text())
    return ExperimentSpec.from_dict(data["spec"]), data["trajectory"]


def run_trajectory(spec):
    result = Experiment(spec).run()
    return {
        "best_fitness": [m.best_fitness for m in result.metrics],
        "mean_fitness": [m.mean_fitness for m in result.metrics],
        "env_steps": [m.env_steps for m in result.metrics],
        "inference_macs": [m.inference_macs for m in result.metrics],
        "generations": result.generations,
        "converged": result.converged,
    }


def assert_matches(observed, golden, label):
    for key, expected in golden.items():
        assert observed[key] == expected, (
            f"{label}: {key} diverged from golden\n"
            f"  expected {expected}\n  observed {observed[key]}"
        )


GOLDEN_FILES = [
    "cartpole_software_seed0.json",
    "mountaincar_software_seed2.json",
    "acrobot_software_seed0.json",
]


@pytest.mark.parametrize("path_name", ["serial", "vectorized"])
@pytest.mark.parametrize("golden_file", GOLDEN_FILES)
def test_golden_trajectory(golden_file, path_name):
    spec, golden = load_golden(golden_file)
    observed = run_trajectory(spec.replace(**PATHS[path_name]))
    assert_matches(observed, golden, f"{golden_file}:{path_name}")


@pytest.mark.slow
@pytest.mark.parametrize("path_name", ["workers2", "workers2_vectorized"])
@pytest.mark.parametrize(
    "golden_file",
    ["cartpole_software_seed0.json", "acrobot_software_seed0.json"],
)
def test_golden_trajectory_pooled(golden_file, path_name):
    spec, golden = load_golden(golden_file)
    observed = run_trajectory(spec.replace(**PATHS[path_name]))
    assert_matches(observed, golden, f"{golden_file}:{path_name}")


def test_golden_files_are_well_formed():
    files = sorted(GOLDEN_DIR.glob("*.json"))
    assert files, "no golden files committed"
    for path in files:
        data = json.loads(path.read_text())
        assert "description" in data, f"{path.name} lacks a description"
    # the software-trajectory goldens this module replays have a fixed
    # shape (the platform-API goldens in test_platform_golden.py carry
    # their own)
    software = sorted(GOLDEN_DIR.glob("*_software_*.json"))
    assert software, "no software golden files committed"
    for path in software:
        data = json.loads(path.read_text())
        assert {"description", "spec", "trajectory"} <= set(data)
        spec = ExperimentSpec.from_dict(data["spec"])
        assert spec.backend == "software"
        lengths = {
            len(data["trajectory"][k])
            for k in ("best_fitness", "mean_fitness", "env_steps", "inference_macs")
        }
        assert len(lengths) == 1, f"{path.name}: ragged trajectory arrays"
