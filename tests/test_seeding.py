"""Unit tests for repro.envs.seeding."""

from repro.envs.seeding import derive_seed, make_rng


def test_make_rng_deterministic():
    assert make_rng(5).random() == make_rng(5).random()


def test_make_rng_distinct_seeds():
    assert make_rng(1).random() != make_rng(2).random()


def test_derive_seed_deterministic():
    assert derive_seed(100, 3) == derive_seed(100, 3)


def test_derive_seed_decorrelates_streams():
    seeds = {derive_seed(100, stream) for stream in range(1000)}
    assert len(seeds) == 1000


def test_derive_seed_differs_across_bases():
    assert derive_seed(1, 0) != derive_seed(2, 0)


def test_derive_seed_none_passthrough():
    assert derive_seed(None, 7) is None


def test_derive_seed_in_31_bit_range():
    for stream in range(100):
        seed = derive_seed(12345, stream)
        assert 0 <= seed < 2 ** 31
