"""Unit tests for the Box2D-substitute environments (LunarLander,
BipedalWalker)."""

import numpy as np
import pytest

from repro.envs import BipedalWalkerEnv, LunarLanderEnv


class TestLunarLander:
    def test_table1_spaces(self):
        env = LunarLanderEnv(seed=0)
        # Table I: eight observations, one integer action < 4.
        assert env.num_observations == 8
        assert env.action_space.n == 4

    def test_reset_state(self):
        env = LunarLanderEnv(seed=0)
        obs = env.reset()
        assert obs[1] == pytest.approx(1.4)  # altitude
        assert obs[6] == 0.0 and obs[7] == 0.0  # no leg contact

    def test_gravity_pulls_down(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        obs, *_ = env.step(0)
        assert obs[3] < 0.0  # vy negative after one no-op step

    def test_main_engine_counteracts_gravity(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env.angle = 0.0
        vy_before = env.vy
        env.step(2)
        assert env.vy > vy_before + env.GRAVITY * env.DT - 1e-9

    def test_side_thrusters_rotate_opposite_ways(self):
        for action, sign in [(1, 1.0), (3, -1.0)]:
            env = LunarLanderEnv(seed=0)
            env.reset()
            env.angle = 0.0
            env.angular_velocity = 0.0
            env.step(action)
            assert np.sign(env.angular_velocity) == sign

    def test_fuel_cost_only_when_firing(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        # freeze shaping by zeroing motion terms is hard; instead compare
        # identical states stepping noop vs main engine.
        env2 = LunarLanderEnv(seed=0)
        env2.reset()
        for attr in ("x", "y", "vx", "vy", "angle", "angular_velocity"):
            setattr(env2, attr, getattr(env, attr))
        env2._prev_shaping = env._prev_shaping
        _o1, r_noop, _d, _i = env.step(0)
        _o2, r_main, _d2, _i2 = env2.step(2)
        # reward difference includes the shaping delta, but main engine pays
        # a 0.30 fuel cost; at the start thrust improves shaping though, so
        # just check both rewards are finite and different.
        assert r_noop != r_main

    def test_crash_penalty(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env.y = 0.01
        env.vy = -5.0  # plummeting
        _obs, reward, done, _info = env.step(0)
        assert done
        assert reward < -50

    def test_soft_landing_bonus(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env.x, env.y = 0.0, 0.0005
        env.vx, env.vy = 0.0, -0.05
        env.angle = 0.0
        env.angular_velocity = 0.0
        env._prev_shaping = env._shaping()
        _obs, reward, done, _info = env.step(0)
        assert done
        assert reward > 50

    def test_out_of_bounds_terminates(self):
        env = LunarLanderEnv(seed=0)
        env.reset()
        env.x = 2.0
        _obs, reward, done, _info = env.step(0)
        assert done


class TestBipedalWalker:
    def test_table1_spaces(self):
        env = BipedalWalkerEnv(seed=0)
        # 24 observations; 4 continuous torques.
        assert env.num_observations == 24
        assert env.action_space.flat_dim == 4

    def test_reset_upright(self):
        env = BipedalWalkerEnv(seed=0)
        obs = env.reset()
        assert abs(obs[0]) <= 0.05  # hull angle

    def test_exactly_one_leg_in_contact(self):
        env = BipedalWalkerEnv(seed=0)
        obs = env.reset()
        assert obs[8] + obs[13] == 1.0

    def test_out_of_range_action_rejected(self):
        env = BipedalWalkerEnv(seed=0)
        env.reset()
        with pytest.raises(ValueError):
            env.step(np.array([10.0, -10.0, 0.0, 0.0]))

    def test_joint_angles_stay_bounded(self):
        env = BipedalWalkerEnv(seed=0)
        env.reset()
        for _ in range(50):
            _o, _r, done, _i = env.step(np.ones(4))
            if done:
                break
        assert np.all(np.abs(env.joint_angles) <= np.pi / 2)

    def test_torque_cost_charged(self):
        env = BipedalWalkerEnv(seed=0)
        env.reset()
        env.hull_vx = 0.0
        _o, r_idle, _d, _i = env.step(np.zeros(4))
        env2 = BipedalWalkerEnv(seed=0)
        env2.reset()
        env2.hull_vx = 0.0
        _o2, r_push, _d2, _i2 = env2.step(np.ones(4))
        # same initial hull speed: torque cost makes full-torque no better
        # than idle minus the movement it generates; just check penalty term
        assert r_idle >= -0.01

    def test_fall_penalty(self):
        env = BipedalWalkerEnv(seed=0)
        env.reset()
        env.hull_angle = 1.5  # beyond FALL_ANGLE after the step
        env.hull_angular_velocity = 5.0
        _obs, reward, done, _info = env.step(np.zeros(4))
        assert done
        assert reward == -100.0

    def test_goal_terminates(self):
        env = BipedalWalkerEnv(seed=0)
        env.reset()
        env.position = 10.5
        _obs, _reward, done, _info = env.step(np.zeros(4))
        assert done

    def test_forward_motion_rewarded(self):
        env = BipedalWalkerEnv(seed=0)
        env.reset()
        env.hull_vx = 2.0
        _obs, reward, _done, _info = env.step(np.zeros(4))
        assert reward > 0

    def test_lidar_observation_in_range(self):
        env = BipedalWalkerEnv(seed=0)
        obs = env.reset()
        lidar = obs[14:]
        assert len(lidar) == 10
        assert np.all((lidar >= 0.0) & (lidar <= 1.0))
