"""Unit tests for repro.neat.genes."""

import random

import pytest

from repro.neat.config import GenomeConfig
from repro.neat.genes import ConnectionGene, NodeGene, gene_sort_key, sorted_genes


@pytest.fixture
def config():
    return GenomeConfig(num_inputs=2, num_outputs=1)


@pytest.fixture
def rng():
    return random.Random(7)


class TestNodeGene:
    def test_defaults(self):
        node = NodeGene(3)
        assert node.key == 3
        assert node.response == 1.0
        assert node.activation == "tanh"

    def test_rejects_tuple_key(self):
        with pytest.raises(TypeError):
            NodeGene((1, 2))

    def test_random_init_respects_bounds(self, config, rng):
        config.bias_init_stdev = 100.0
        for _ in range(50):
            node = NodeGene.random_init(5, config, rng)
            assert config.bias_min_value <= node.bias <= config.bias_max_value

    def test_copy_is_independent(self):
        node = NodeGene(1, bias=0.5)
        clone = node.copy()
        clone.bias = 9.9
        assert node.bias == 0.5

    def test_mutate_clamps(self, config, rng):
        config.bias_mutate_rate = 1.0
        config.bias_mutate_power = 100.0
        node = NodeGene(1)
        for _ in range(20):
            node.mutate(config, rng)
            assert config.bias_min_value <= node.bias <= config.bias_max_value

    def test_mutate_returns_count(self, config, rng):
        config.bias_mutate_rate = 1.0
        config.response_mutate_rate = 1.0
        node = NodeGene(1)
        assert node.mutate(config, rng) >= 2

    def test_mutate_zero_rates_changes_nothing(self, config, rng):
        for attr in ("bias", "response"):
            setattr(config, f"{attr}_mutate_rate", 0.0)
            setattr(config, f"{attr}_replace_rate", 0.0)
        config.activation_mutate_rate = 0.0
        config.aggregation_mutate_rate = 0.0
        node = NodeGene(1, bias=0.25, response=1.5)
        assert node.mutate(config, rng) == 0
        assert node.bias == 0.25 and node.response == 1.5

    def test_crossover_picks_from_parents(self, config, rng):
        a = NodeGene(1, bias=1.0, response=2.0)
        b = NodeGene(1, bias=-1.0, response=-2.0)
        child = a.crossover(b, rng)
        assert child.bias in (1.0, -1.0)
        assert child.response in (2.0, -2.0)

    def test_crossover_bias_one_keeps_parent_a(self, config, rng):
        a = NodeGene(1, bias=1.0, response=2.0)
        b = NodeGene(1, bias=-1.0, response=-2.0)
        child = a.crossover(b, rng, bias=1.0)
        assert child.bias == 1.0 and child.response == 2.0

    def test_crossover_key_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            NodeGene(1).crossover(NodeGene(2), rng)

    def test_distance_zero_for_identical(self, config):
        a = NodeGene(1, bias=0.3)
        assert a.distance(a.copy(), config) == 0.0

    def test_distance_counts_categorical(self, config):
        a = NodeGene(1, activation="tanh")
        b = NodeGene(1, activation="relu")
        assert a.distance(b, config) == pytest.approx(
            config.compatibility_weight_coefficient
        )

    def test_equality(self):
        assert NodeGene(1, bias=0.5) == NodeGene(1, bias=0.5)
        assert NodeGene(1, bias=0.5) != NodeGene(1, bias=0.6)


class TestConnectionGene:
    def test_key_properties(self):
        conn = ConnectionGene((-1, 0), weight=0.5)
        assert conn.source == -1
        assert conn.dest == 0

    def test_rejects_int_key(self):
        with pytest.raises(TypeError):
            ConnectionGene(5)

    def test_mutate_weight_clamps(self, config, rng):
        config.weight_mutate_rate = 1.0
        config.weight_mutate_power = 100.0
        conn = ConnectionGene((-1, 0))
        for _ in range(20):
            conn.mutate(config, rng)
            assert config.weight_min_value <= conn.weight <= config.weight_max_value

    def test_enabled_toggle(self, config, rng):
        config.weight_mutate_rate = 0.0
        config.weight_replace_rate = 0.0
        config.enabled_mutate_rate = 1.0
        conn = ConnectionGene((-1, 0), enabled=True)
        conn.mutate(config, rng)
        assert conn.enabled is False

    def test_crossover(self, rng):
        a = ConnectionGene((-1, 0), weight=1.0, enabled=True)
        b = ConnectionGene((-1, 0), weight=-1.0, enabled=False)
        child = a.crossover(b, rng)
        assert child.weight in (1.0, -1.0)
        assert child.key == (-1, 0)

    def test_distance(self, config):
        a = ConnectionGene((-1, 0), weight=1.0, enabled=True)
        b = ConnectionGene((-1, 0), weight=0.0, enabled=False)
        expected = (1.0 + 1.0) * config.compatibility_weight_coefficient
        assert a.distance(b, config) == pytest.approx(expected)


class TestOrdering:
    def test_hw_order_nodes_before_connections(self):
        genes = [
            ConnectionGene((-1, 0)),
            NodeGene(5),
            NodeGene(0),
            ConnectionGene((-2, 5)),
        ]
        ordered = sorted_genes(genes)
        assert [type(g).__name__ for g in ordered] == [
            "NodeGene",
            "NodeGene",
            "ConnectionGene",
            "ConnectionGene",
        ]
        assert ordered[0].key == 0 and ordered[1].key == 5

    def test_sort_key_ascending_ids(self):
        assert gene_sort_key(NodeGene(1)) < gene_sort_key(NodeGene(2))
        assert gene_sort_key(ConnectionGene((-1, 0))) < gene_sort_key(
            ConnectionGene((0, 1))
        )
