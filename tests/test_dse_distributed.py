"""Fault-injection and protocol tests for the distributed sweep executor.

The claim protocol's whole job is surviving ungraceful death, so the
tests here injure it on purpose: a worker SIGKILLed mid-point, claim
files corrupted or truncated on disk, two workers racing for the same
point.  After every injury the sweep must still complete with each point
evaluated exactly once (per the event ledger) and outputs byte-identical
to a single-process run — extending the hard-kill contract
``tests/test_runs_locking.py`` pins for single runs to whole sweeps.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import ExperimentSpec
from repro.dse import (
    DistributedSweepError,
    DistributedSweepRunner,
    SweepRunner,
    SweepSpec,
    SweepWorkQueue,
    default_work_dir,
    read_events,
    sweep_key,
)
from repro.runs import ClaimFile

BASE = ExperimentSpec("CartPole-v0", max_generations=1, pop_size=8, max_steps=20)


def stub_evaluator(log=None):
    """Cheap, deterministic, pure-function-of-the-point metrics."""

    def evaluate(point):
        if log is not None:
            log.append(dict(point.axes))
        seed = point.axes.get("seed", point.spec.seed)
        return {
            "fitness": float(seed * 2),
            "energy_j": float(point.spec.pop_size),
            "runtime_s": 1.0 + seed,
        }

    return evaluate


def make_sweep(n=4):
    return SweepSpec(base=BASE, axes={"seed": list(range(n))})


def make_runner(sweep, tmp_path, log=None, **kwargs):
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("work_dir", tmp_path / "work")
    kwargs.setdefault("poll_interval", 0.02)
    return DistributedSweepRunner(
        sweep,
        evaluate=stub_evaluator(log),
        evaluator_version="stub-v1",
        **kwargs,
    )


def serial_reference(sweep, cache_dir):
    return SweepRunner(
        sweep,
        cache_dir=cache_dir,
        evaluate=stub_evaluator(),
        evaluator_version="stub-v1",
    ).run()


def tree_bytes(root):
    """{relative path: bytes} for every file under ``root``."""
    root = Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


# -- ClaimFile: the generic protocol ----------------------------------------


class TestClaimFile:
    def test_single_winner(self, tmp_path):
        path = tmp_path / "point.claim"
        first, second = ClaimFile(path), ClaimFile(path)
        assert first.try_acquire()
        assert not second.try_acquire()
        first.release()
        assert not path.exists()
        assert second.try_acquire()
        second.release()

    def test_extra_payload_is_recorded(self, tmp_path):
        claim = ClaimFile(tmp_path / "p.claim", extra={"key": "abc123"})
        with claim:
            payload = claim.read()
            assert payload["key"] == "abc123"
            assert payload["pid"] == os.getpid()

    def test_concurrent_race_has_exactly_one_winner(self, tmp_path):
        """Satellite: two workers racing for the same point."""
        path = tmp_path / "contested.claim"
        barrier = threading.Barrier(2)
        outcomes = []

        def contender():
            claim = ClaimFile(path)
            barrier.wait()
            outcomes.append(claim.try_acquire())

        threads = [threading.Thread(target=contender) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(outcomes) == [False, True]

    def test_stale_heartbeat_is_reclaimed(self, tmp_path):
        path = tmp_path / "p.claim"
        path.write_text(json.dumps({
            "pid": 999999999, "host": "elsewhere",
            "acquired_at": time.time() - 3600,
            "heartbeat_at": time.time() - 3600,
        }))
        claim = ClaimFile(path, stale_after=5.0)
        assert claim.try_acquire()
        assert claim.reclaimed == 1
        claim.release()

    def test_dead_same_host_pid_is_reclaimed_despite_fresh_heartbeat(
        self, tmp_path
    ):
        path = tmp_path / "p.claim"
        path.write_text(json.dumps({
            "pid": 999999999, "host": socket.gethostname(),
            "acquired_at": time.time(), "heartbeat_at": time.time(),
        }))
        claim = ClaimFile(path, stale_after=3600.0)
        assert claim.try_acquire()
        assert claim.reclaimed == 1
        claim.release()

    def test_live_foreign_claim_is_respected(self, tmp_path):
        path = tmp_path / "p.claim"
        path.write_text(json.dumps({
            "pid": 1, "host": "elsewhere",
            "acquired_at": time.time(), "heartbeat_at": time.time(),
        }))
        claim = ClaimFile(path, stale_after=3600.0)
        assert not claim.try_acquire()
        assert claim.reclaimed == 0


# -- the work queue's event ledger ------------------------------------------


class TestEventLedger:
    def test_events_append_and_read_in_order(self, tmp_path):
        queue = SweepWorkQueue(tmp_path / "work")
        queue.log("claimed", "k1", "w1")
        queue.log("evaluated", "k1", "w1")
        queue.log("released", "k1", "w1")
        assert [e["event"] for e in queue.events()] == [
            "claimed", "evaluated", "released",
        ]
        assert all(e["pid"] == os.getpid() for e in queue.events())

    def test_torn_tail_is_skipped(self, tmp_path):
        queue = SweepWorkQueue(tmp_path / "work")
        queue.log("evaluated", "k1", "w1")
        with open(queue.events_path, "a") as handle:
            handle.write('{"event": "evalu')  # writer died mid-append
        assert queue.evaluated_keys() == {"k1": 1}

    def test_evaluated_keys_counts_duplicates(self, tmp_path):
        queue = SweepWorkQueue(tmp_path / "work")
        queue.log("evaluated", "k1", "w1")
        queue.log("evaluated", "k1", "w2")
        queue.log("evaluated", "k2", "w1")
        assert queue.evaluated_keys() == {"k1": 2, "k2": 1}

    def test_read_events_missing_file(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == []


# -- drain / collect ---------------------------------------------------------


class TestDrainAndCollect:
    def test_single_worker_matches_serial_run(self, tmp_path):
        sweep = make_sweep()
        runner = make_runner(sweep, tmp_path)
        tally = runner.drain()
        assert tally == {
            "points": 4, "evaluated": 4, "cache_hits": 0,
            "claims": 4, "reclaims": 0,
        }
        serial = serial_reference(sweep, tmp_path / "serial-cache")
        assert runner.collect().rows == serial.rows

    def test_cache_trees_are_byte_identical_to_serial(self, tmp_path):
        sweep = make_sweep()
        make_runner(sweep, tmp_path).drain()
        serial_reference(sweep, tmp_path / "serial-cache")
        assert tree_bytes(tmp_path / "cache") == \
            tree_bytes(tmp_path / "serial-cache")

    def test_exports_byte_identical_to_serial(self, tmp_path, monkeypatch):
        """CSV *and* JSON, with the same relative cache path on both
        sides so the summary's cache_dir string matches too."""
        sweep = make_sweep()
        serial_cwd = tmp_path / "serial"
        dist_cwd = tmp_path / "dist"
        serial_cwd.mkdir()
        dist_cwd.mkdir()
        monkeypatch.chdir(serial_cwd)
        serial = SweepRunner(
            sweep, cache_dir="cache",
            evaluate=stub_evaluator(), evaluator_version="stub-v1",
        ).run()
        serial.to_csv("out.csv")
        serial.to_json("out.json")
        monkeypatch.chdir(dist_cwd)
        runner = DistributedSweepRunner(
            sweep, cache_dir="cache", work_dir="work",
            evaluate=stub_evaluator(), evaluator_version="stub-v1",
        )
        runner.drain()
        collected = runner.collect()
        collected.to_csv("out.csv")
        collected.to_json("out.json")
        for name in ("out.csv", "out.json"):
            assert (dist_cwd / name).read_bytes() == \
                (serial_cwd / name).read_bytes(), f"{name} diverged"

    def test_two_workers_split_the_sweep_exactly_once(self, tmp_path):
        sweep = make_sweep(6)
        log = []
        first = make_runner(sweep, tmp_path, log=log, worker_id="w1")
        t1 = first.drain(max_points=2)
        second = make_runner(sweep, tmp_path, log=log, worker_id="w2")
        t2 = second.drain()
        assert t1["evaluated"] == 2 and t2["evaluated"] == 4
        assert len(log) == 6  # nothing ran twice
        counts = second.queue.evaluated_keys()
        assert set(counts.values()) == {1}
        assert second.collect().rows == \
            serial_reference(sweep, tmp_path / "serial-cache").rows

    def test_concurrent_workers_never_duplicate_work(self, tmp_path):
        sweep = make_sweep(8)
        log = []
        runners = [
            make_runner(sweep, tmp_path, log=log, worker_id=f"w{i}")
            for i in range(3)
        ]
        threads = [
            threading.Thread(target=runner.drain) for runner in runners
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 8
        assert set(runners[0].queue.evaluated_keys().values()) == {1}
        assert runners[0].collect().rows == \
            serial_reference(sweep, tmp_path / "serial-cache").rows

    def test_prewarmed_cache_reads_all_cached_like_serial(self, tmp_path):
        sweep = make_sweep()
        serial_reference(sweep, tmp_path / "cache")  # warm it
        runner = make_runner(sweep, tmp_path)
        tally = runner.drain()
        assert tally["evaluated"] == 0 and tally["claims"] == 0
        collected = runner.collect()
        assert all(row["cached"] for row in collected.rows)
        rerun = serial_reference(sweep, tmp_path / "cache")
        assert collected.rows == rerun.rows

    def test_collect_before_finish_refuses(self, tmp_path):
        sweep = make_sweep()
        runner = make_runner(sweep, tmp_path)
        runner.drain(max_points=1)
        with pytest.raises(DistributedSweepError, match="not finished"):
            runner.collect()

    def test_status_and_frontier_track_progress(self, tmp_path):
        sweep = make_sweep()
        runner = make_runner(sweep, tmp_path)
        assert runner.status()["done"] == 0
        # nothing finished: an empty frontier, not an ObjectiveError
        assert runner.frontier({"fitness": "max"}) == []
        runner.drain(max_points=2)
        status = runner.status()
        assert status["done"] == 2 and not status["complete"]
        assert status["duplicate_evaluations"] == 0
        front = runner.frontier({"fitness": "max"})
        assert len(front) == 1
        runner.drain()
        assert runner.status()["complete"]

    def test_custom_evaluator_requires_version(self, tmp_path):
        with pytest.raises(DistributedSweepError, match="evaluator_version"):
            DistributedSweepRunner(
                make_sweep(), cache_dir=tmp_path / "cache",
                evaluate=stub_evaluator(),
            )

    def test_failed_evaluation_releases_claim_and_logs(self, tmp_path):
        sweep = make_sweep(1)

        def broken(point):
            raise RuntimeError("evaluator exploded")

        runner = DistributedSweepRunner(
            sweep, cache_dir=tmp_path / "cache",
            work_dir=tmp_path / "work",
            evaluate=broken, evaluator_version="broken-v1",
        )
        with pytest.raises(RuntimeError, match="exploded"):
            runner.drain()
        events = [e["event"] for e in runner.queue.events()]
        assert events == ["claimed", "failed"]
        assert not list((tmp_path / "work" / "claims").glob("*.claim"))
        # a healthy worker can take the point over immediately
        healthy = make_runner(
            sweep, tmp_path, cache_dir=tmp_path / "cache2"
        )
        assert healthy.drain()["evaluated"] == 1

    def test_metrics_registry_counts_the_drain(self, tmp_path):
        from repro import obs

        registry = obs.MetricsRegistry()
        sweep = make_sweep(3)
        runner = make_runner(sweep, tmp_path, metrics=registry)
        runner.drain()
        text = registry.render()
        assert "repro_dse_points_evaluated_total 3" in text
        assert "repro_dse_claims_total 3" in text
        assert "repro_dse_points_total 3" in text
        assert "repro_dse_points_done 3" in text

    def test_default_work_dir_is_outside_the_cache(self, tmp_path):
        sweep = make_sweep()
        work = default_work_dir(tmp_path / "cache", sweep, "stub-v1")
        assert not str(work).startswith(str(tmp_path / "cache") + os.sep)
        assert sweep_key(sweep, "stub-v1")[:16] == work.name
        # different sweeps never share claim state
        other = make_sweep(7)
        assert default_work_dir(tmp_path / "cache", other, "stub-v1") != work


# -- claim-file corruption ---------------------------------------------------


class TestClaimCorruption:
    def _claim_path(self, runner, index=0):
        leaders = runner._leaders()
        key = list(leaders)[index]
        return runner.queue.claims_dir / f"{key}.claim"

    def test_corrupt_claim_is_reclaimed(self, tmp_path):
        sweep = make_sweep()
        runner = make_runner(sweep, tmp_path)
        path = self._claim_path(runner)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"pid": 12')  # torn JSON: writer died mid-claim
        tally = runner.drain()
        assert tally["reclaims"] == 1
        assert tally["evaluated"] == 4
        assert runner.collect().rows == \
            serial_reference(sweep, tmp_path / "serial-cache").rows

    def test_truncated_claim_is_reclaimed(self, tmp_path):
        sweep = make_sweep()
        runner = make_runner(sweep, tmp_path)
        path = self._claim_path(runner, index=1)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("")  # zero-byte claim
        tally = runner.drain()
        assert tally["reclaims"] == 1
        events = [e["event"] for e in runner.queue.events()]
        assert events.count("reclaimed") == 1


# -- hard-kill fault injection ----------------------------------------------

_VICTIM = """
import sys, time
sys.path.insert(0, {src!r})
from repro.dse import DistributedSweepRunner, SweepSpec

sweep = SweepSpec.from_json({sweep_json!r})

def glacial(point):
    time.sleep(120.0)  # the parent SIGKILLs long before this returns
    return {{"fitness": -1.0}}

DistributedSweepRunner(
    sweep, cache_dir={cache!r}, work_dir={work!r},
    evaluate=glacial, evaluator_version="stub-v1",
    heartbeat_interval=0.1, worker_id="victim",
).drain()
"""


@pytest.mark.slow
def test_sigkill_mid_point_is_reclaimed_and_byte_identical(tmp_path):
    """SIGKILL a worker mid-evaluation: its claim is left behind with a
    dead pid, a surviving worker reclaims it, the sweep completes with
    every point evaluated exactly once, and the collected result is
    byte-identical to a serial run."""
    src = str(Path(__file__).resolve().parents[1] / "src")
    sweep = make_sweep()
    cache = tmp_path / "cache"
    work = tmp_path / "work"
    script = _VICTIM.format(
        src=src, sweep_json=sweep.to_json(),
        cache=str(cache), work=str(work),
    )
    proc = subprocess.Popen([sys.executable, "-c", script])
    events_path = work / "events.jsonl"
    try:
        deadline = time.time() + 60.0
        while time.time() < deadline:
            claimed = [
                e for e in read_events(events_path)
                if e["event"] == "claimed" and e["pid"] == proc.pid
            ]
            if claimed:
                break
            time.sleep(0.02)
        else:
            pytest.fail("victim never claimed a point")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait()
    assert proc.returncode == -signal.SIGKILL

    # The victim's claim is still on disk, owned by a dead pid ...
    stale = list((work / "claims").glob("*.claim"))
    assert len(stale) == 1

    # ... and a surviving worker reclaims it and finishes the sweep.
    survivor = DistributedSweepRunner(
        sweep, cache_dir=cache, work_dir=work,
        evaluate=stub_evaluator(), evaluator_version="stub-v1",
        poll_interval=0.02, worker_id="survivor",
    )
    tally = survivor.drain()
    assert tally["reclaims"] == 1
    assert tally["evaluated"] == 4  # the victim published nothing

    counts = survivor.queue.evaluated_keys()
    assert set(counts.values()) == {1}, "a point was evaluated twice"

    serial = serial_reference(sweep, tmp_path / "serial-cache")
    assert survivor.collect().rows == serial.rows
    assert tree_bytes(cache) == tree_bytes(tmp_path / "serial-cache")
