"""ServeClient unit tests: request shaping and every error path.

``tests/test_serve_http.py`` exercises the client against a live server;
here ``urlopen`` is monkeypatched so the HTTPError / URLError branches —
unreachable in a healthy integration test — are pinned too.
"""

import io
import json
from urllib.error import HTTPError, URLError

import pytest

from repro.serve import ServeClient
from repro.serve.client import ServeClientError


class FakeResponse(io.BytesIO):
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def capture(monkeypatch, response_body=b"{}"):
    """Route urlopen into a log; returns the log of (request, timeout)."""
    calls = []

    def fake_urlopen(request, timeout=None):
        calls.append((request, timeout))
        return FakeResponse(response_body)

    monkeypatch.setattr("repro.serve.client.urlopen", fake_urlopen)
    return calls


def raising(monkeypatch, exc):
    def fake_urlopen(request, timeout=None):
        raise exc

    monkeypatch.setattr("repro.serve.client.urlopen", fake_urlopen)


def http_error(code, body):
    return HTTPError(
        "http://x/jobs", code, "boom", hdrs=None, fp=io.BytesIO(body)
    )


class TestRequestShaping:
    def test_base_url_trailing_slash_is_stripped(self, monkeypatch):
        calls = capture(monkeypatch)
        ServeClient("http://127.0.0.1:1234/").healthz()
        request, timeout = calls[0]
        assert request.full_url == "http://127.0.0.1:1234/healthz"
        assert request.get_method() == "GET"
        assert timeout == ServeClient("http://x").timeout

    def test_submit_posts_json_payload(self, monkeypatch):
        calls = capture(monkeypatch, b'{"id": "job-000001"}')
        out = ServeClient("http://x").submit(
            {"env_id": "CartPole-v0"}, priority=3, checkpoint_every=2
        )
        assert out == {"id": "job-000001"}
        request, _ = calls[0]
        assert request.get_method() == "POST"
        assert request.get_header("Content-type") == "application/json"
        payload = json.loads(request.data.decode())
        assert payload["spec"] == {"env_id": "CartPole-v0"}
        assert payload["priority"] == 3
        assert payload["checkpoint_every"] == 2

    def test_job_id_is_url_quoted(self, monkeypatch):
        calls = capture(monkeypatch)
        ServeClient("http://x").job("job 0001?x")
        request, _ = calls[0]
        assert request.full_url == "http://x/jobs/job%200001%3Fx"

    def test_metrics_parses_jsonl_and_since(self, monkeypatch):
        calls = capture(
            monkeypatch, b'{"generation": 0}\n\n{"generation": 1}\n'
        )
        rows = ServeClient("http://x").metrics("job-000001", since=5)
        assert rows == [{"generation": 0}, {"generation": 1}]
        request, _ = calls[0]
        assert request.full_url.endswith("/metrics?since=5")

    def test_events_parses_jsonl(self, monkeypatch):
        capture(monkeypatch, b'{"event": "queued"}\n')
        events = ServeClient("http://x").events("job-000001")
        assert events == [{"event": "queued"}]

    def test_jobs_unwraps_the_envelope(self, monkeypatch):
        capture(monkeypatch, b'{"jobs": [{"id": "job-000001"}]}')
        assert ServeClient("http://x").jobs() == [{"id": "job-000001"}]


class TestErrorPaths:
    def test_http_error_with_json_detail(self, monkeypatch):
        raising(
            monkeypatch, http_error(404, b'{"error": "no such job"}')
        )
        client = ServeClient("http://x")
        with pytest.raises(ServeClientError, match=r"404.*no such job"):
            client.job("job-999999")
        try:
            client.job("job-999999")
        except ServeClientError as exc:
            assert exc.status == 404

    def test_http_error_with_non_json_detail(self, monkeypatch):
        raising(monkeypatch, http_error(500, b"<html>stack trace</html>"))
        with pytest.raises(ServeClientError, match=r"500.*stack trace"):
            ServeClient("http://x").healthz()

    def test_http_error_with_json_non_object_detail(self, monkeypatch):
        # valid JSON without an "error" key path (.get raises AttributeError)
        raising(monkeypatch, http_error(400, b'["not", "an", "object"]'))
        with pytest.raises(ServeClientError, match="400"):
            ServeClient("http://x").healthz()

    def test_url_error_names_the_endpoint(self, monkeypatch):
        raising(monkeypatch, URLError("connection refused"))
        with pytest.raises(
            ServeClientError, match=r"cannot reach http://x"
        ) as excinfo:
            ServeClient("http://x").jobs()
        assert excinfo.value.status is None

    def test_cancel_propagates_conflict(self, monkeypatch):
        raising(
            monkeypatch, http_error(409, b'{"error": "job already done"}')
        )
        with pytest.raises(ServeClientError, match="already done"):
            ServeClient("http://x").cancel("job-000001")
