"""Failure-injection and edge-case tests across the stack."""

import random

import pytest

from repro.core import GeneSysConfig, GeneSysSoC, config_for_env
from repro.hw import (
    EvEConfig,
    EvolutionEngine,
    GenomeBuffer,
    SRAMConfig,
    encode_genome,
)
from repro.hw.adam import ADAM, build_inference_plan
from repro.neat import Genome, GenomeConfig, InnovationTracker, NEATConfig, Population
from repro.neat.reproduction import ReproductionEvent


@pytest.fixture
def genome_config():
    return GenomeConfig(num_inputs=2, num_outputs=1)


def make_genome(config, seed=0):
    rng = random.Random(seed)
    g = Genome(0)
    g.configure_new(config, rng)
    return g


class TestEvEFailureModes:
    def test_missing_parent_raises(self, genome_config):
        buffer = GenomeBuffer()
        buffer.write_genome(0, encode_genome(make_genome(genome_config), genome_config))
        buffer.set_fitness(0, 1.0)
        eve = EvolutionEngine(EvEConfig(num_pes=2))
        with pytest.raises(KeyError):
            eve.reproduce_generation(
                buffer, [ReproductionEvent(5, 0, 99, 1)]
            )

    def test_missing_fitness_raises(self, genome_config):
        buffer = GenomeBuffer()
        buffer.write_genome(0, encode_genome(make_genome(genome_config), genome_config))
        eve = EvolutionEngine(EvEConfig(num_pes=2))
        with pytest.raises(KeyError):
            eve.reproduce_generation(buffer, [ReproductionEvent(5, 0, 0, 1)])

    def test_empty_event_list(self, genome_config):
        buffer = GenomeBuffer()
        eve = EvolutionEngine(EvEConfig(num_pes=2))
        result = eve.reproduce_generation(buffer, [])
        assert result.children == {}
        assert result.cycles == 0

    def test_empty_genome_parent(self, genome_config):
        """A parent with zero connections (all deleted) still reproduces."""
        parent = make_genome(genome_config)
        parent.connections.clear()
        buffer = GenomeBuffer()
        buffer.write_genome(0, encode_genome(parent, genome_config))
        buffer.set_fitness(0, 1.0)
        eve = EvolutionEngine(EvEConfig(num_pes=1))
        result = eve.reproduce_generation(buffer, [ReproductionEvent(5, 0, 0, 1)])
        from repro.hw import decode_genome

        child = decode_genome(result.children[5], 5, genome_config)
        child.validate(genome_config)


class TestSoCEdgeCases:
    def test_dram_spill_accounted(self):
        """A generation larger than the SRAM spills to DRAM and the
        energy ledger charges it."""
        neat = config_for_env("CartPole-v0", pop_size=12)
        config = GeneSysConfig(
            neat=neat,
            eve=EvEConfig(num_pes=4),
            sram=SRAMConfig(num_banks=2, bank_depth=16),  # 32 words total
            seed=0,
        )
        soc = GeneSysSoC(config, "CartPole-v0", max_steps=30)
        report = soc.run_generation()
        assert soc.buffer.overflowing
        assert report.energy.dram_accesses > 0
        assert report.energy.dram_energy_j > 0

    def test_fitness_function_exception_propagates(self):
        config = NEATConfig.for_env(2, 1, pop_size=5)
        population = Population(config, seed=0)

        def broken(genomes, cfg):
            raise RuntimeError("sensor failure")

        with pytest.raises(RuntimeError, match="sensor failure"):
            population.run_generation(broken)

    def test_soc_survives_flat_fitness(self):
        """All-equal fitness (no gradient signal) must not crash selection."""
        neat = config_for_env("MountainCar-v0", pop_size=10)
        config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=4), seed=0)
        soc = GeneSysSoC(config, "MountainCar-v0", max_steps=20)
        for _ in range(3):
            report = soc.run_generation()
        # MountainCar under a tiny cap gives every genome -20: flat.
        assert report.mean_fitness == report.best_fitness


class TestADAMEdgeCases:
    def test_no_connection_genome(self, genome_config):
        genome = make_genome(genome_config)
        for conn in genome.connections.values():
            conn.enabled = False
        plan = build_inference_plan(genome, genome_config)
        adam = ADAM()
        out = adam.run(plan, [1.0, 1.0])
        assert len(out) == 1

    def test_zero_inputs_everywhere(self, genome_config):
        genome = make_genome(genome_config)
        plan = build_inference_plan(genome, genome_config)
        out = ADAM().run(plan, [0.0, 0.0])
        assert len(out) == 1


class TestPopulationEdgeCases:
    def test_minimum_population(self):
        config = NEATConfig.for_env(1, 1, pop_size=2)
        population = Population(config, seed=0)

        def fitness(genomes, cfg):
            for g in genomes:
                g.fitness = 1.0

        population.run(fitness, max_generations=3, fitness_threshold=1e9)
        assert len(population.population) == 2

    def test_negative_fitness_environment(self):
        """Acrobot-style always-negative rewards must reproduce sanely."""
        config = NEATConfig.for_env(2, 1, pop_size=10)
        population = Population(config, seed=0)
        rng = random.Random(3)

        def fitness(genomes, cfg):
            for g in genomes:
                g.fitness = -rng.uniform(50, 500)

        for _ in range(4):
            population.run_generation(fitness)
        assert len(population.population) == 10

    def test_huge_fitness_values(self):
        config = NEATConfig.for_env(2, 1, pop_size=8)
        population = Population(config, seed=0)

        def fitness(genomes, cfg):
            for g in genomes:
                g.fitness = 1e15 + g.key

        population.run_generation(fitness)
        assert len(population.population) == 8


class TestGenomeBufferEdgeCases:
    def test_delete_missing_is_noop(self):
        buffer = GenomeBuffer()
        buffer.delete_genome(42)  # silently ignored

    def test_empty_genome_stream(self):
        buffer = GenomeBuffer()
        buffer.write_genome(1, [])
        assert buffer.read_genome(1) == []
        assert buffer.genome_length(1) == 0

    def test_single_bank_config(self, genome_config):
        buffer = GenomeBuffer(SRAMConfig(num_banks=1, bank_depth=1024))
        stream = encode_genome(make_genome(genome_config), genome_config)
        buffer.write_genome(0, stream)
        buffer.read_genome(0)
        assert list(buffer.stats.reads_per_bank) == [0]
