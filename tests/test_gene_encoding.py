"""Unit tests for the 64-bit hardware gene encoding (Fig. 6)."""

import random

import pytest

from repro.hw.gene_encoding import (
    FIXED_MAX_VALUE,
    FIXED_MIN_VALUE,
    GENE_WORD_BITS,
    GeneEncodingError,
    NODE_TYPE_HIDDEN,
    NODE_TYPE_OUTPUT,
    PackedGene,
    decode_genome,
    dequantize,
    encode_genome,
    genome_stream_bytes,
    pack_connection,
    pack_node,
    quantize,
    quantize_genome,
)
from repro.neat import Genome, GenomeConfig, InnovationTracker


@pytest.fixture
def config():
    return GenomeConfig(num_inputs=3, num_outputs=2)


class TestQuantization:
    def test_q44_step(self):
        assert dequantize(quantize(0.0625)) == pytest.approx(0.0625)  # 1/16

    def test_clamps_to_range(self):
        assert dequantize(quantize(100.0)) == FIXED_MAX_VALUE
        assert dequantize(quantize(-100.0)) == FIXED_MIN_VALUE

    def test_rounding(self):
        # 0.03 rounds to 0.0625*round(0.48)=0
        assert dequantize(quantize(0.03)) == pytest.approx(0.0625 * round(0.03 * 16))

    def test_idempotent(self):
        for value in (-8.0, -1.3, 0.0, 0.5, 3.99, 7.9375):
            once = dequantize(quantize(value))
            assert dequantize(quantize(once)) == once


class TestNodePacking:
    def test_round_trip(self):
        gene = pack_node(42, NODE_TYPE_HIDDEN, 1.25, -0.5, "relu", "sum")
        assert gene.is_node and not gene.is_connection
        assert gene.node_id == 42
        assert gene.node_type == NODE_TYPE_HIDDEN
        assert gene.bias == 1.25
        assert gene.response == -0.5
        assert gene.activation == "relu"
        assert gene.aggregation == "sum"

    def test_word_fits_64_bits(self):
        gene = pack_node(30000, NODE_TYPE_OUTPUT, 7.9375, -8.0, "tanh", "max")
        assert 0 <= gene.word < (1 << GENE_WORD_BITS)

    def test_unknown_activation_raises(self):
        with pytest.raises(GeneEncodingError):
            pack_node(1, NODE_TYPE_HIDDEN, 0.0, 1.0, "mystery", "sum")

    def test_invalid_node_type_raises(self):
        with pytest.raises(GeneEncodingError):
            pack_node(1, 3, 0.0, 1.0, "tanh", "sum")

    def test_id_out_of_field_raises(self):
        with pytest.raises(GeneEncodingError):
            pack_node(40000, NODE_TYPE_HIDDEN, 0.0, 1.0, "tanh", "sum")


class TestConnectionPacking:
    def test_round_trip(self):
        gene = pack_connection(-3, 17, 2.5, True)
        assert gene.is_connection
        assert gene.source == -3
        assert gene.dest == 17
        assert gene.weight == 2.5
        assert gene.enabled

    def test_negative_ids_round_trip(self):
        gene = pack_connection(-128, -1, -1.0, False)
        assert gene.source == -128
        assert gene.dest == -1
        assert not gene.enabled

    def test_weight_quantised(self):
        gene = pack_connection(-1, 0, 0.51, True)
        assert gene.weight == pytest.approx(0.5)

    def test_key(self):
        assert pack_connection(-1, 0, 1.0, True).key == ("conn", -1, 0)
        assert pack_node(4, NODE_TYPE_HIDDEN, 0, 1, "tanh", "sum").key == ("node", 4)


class TestGenomeStream:
    def make_genome(self, config, mutations=30, seed=1):
        rng = random.Random(seed)
        innovations = InnovationTracker(next_node_id=config.num_outputs)
        genome = Genome(0)
        genome.configure_new(config, rng)
        for _ in range(mutations):
            genome.mutate(config, rng, innovations)
        return genome

    def test_stream_order_nodes_then_connections(self, config):
        genome = self.make_genome(config)
        stream = encode_genome(genome, config)
        node_part = [g for g in stream if g.is_node]
        conn_part = stream[len(node_part):]
        assert all(g.is_connection for g in conn_part)
        node_ids = [g.node_id for g in node_part]
        assert node_ids == sorted(node_ids)
        conn_keys = [(g.source, g.dest) for g in conn_part]
        assert conn_keys == sorted(conn_keys)

    def test_stream_length(self, config):
        genome = self.make_genome(config)
        stream = encode_genome(genome, config)
        assert len(stream) == genome.num_genes
        assert genome_stream_bytes(genome) == 8 * genome.num_genes

    def test_decode_recovers_structure(self, config):
        genome = self.make_genome(config)
        decoded = decode_genome(encode_genome(genome, config), 0, config)
        assert set(decoded.nodes) == set(genome.nodes)
        assert set(decoded.connections) == set(genome.connections)
        for key, conn in genome.connections.items():
            assert decoded.connections[key].enabled == conn.enabled

    def test_decode_quantises_attributes(self, config):
        genome = self.make_genome(config)
        decoded = decode_genome(encode_genome(genome, config), 0, config)
        for key, conn in genome.connections.items():
            assert abs(decoded.connections[key].weight - conn.weight) <= 1 / 32 + 1e-9

    def test_output_nodes_marked(self, config):
        genome = self.make_genome(config, mutations=0)
        stream = encode_genome(genome, config)
        for gene in stream:
            if gene.is_node and gene.node_id in config.output_keys:
                assert gene.node_type == NODE_TYPE_OUTPUT

    def test_quantize_genome_valid(self, config):
        genome = self.make_genome(config)
        quantized = quantize_genome(genome, config)
        quantized.validate(config)

    def test_quantize_genome_idempotent(self, config):
        genome = self.make_genome(config)
        q1 = quantize_genome(genome, config)
        q2 = quantize_genome(q1, config)
        for key in q1.connections:
            assert q1.connections[key].weight == q2.connections[key].weight


class TestPackedGeneValidation:
    def test_word_range_checked(self):
        with pytest.raises(GeneEncodingError):
            PackedGene(1 << 64)
        with pytest.raises(GeneEncodingError):
            PackedGene(-1)
