"""Unit tests for the DQN baseline (Table II)."""

import numpy as np
import pytest

from repro.baselines.dqn import (
    DQNAgent,
    DQNConfig,
    QNetwork,
    ea_accounting,
    paper_dqn_accounting,
)
from repro.envs import CartPoleEnv


class TestQNetwork:
    def test_output_shape(self):
        net = QNetwork([4, 8, 2], seed=0)
        q = net.predict(np.zeros(4))
        assert q.shape == (1, 2)

    def test_batch_forward(self):
        net = QNetwork([4, 8, 2], seed=0)
        q = net.predict(np.zeros((5, 4)))
        assert q.shape == (5, 2)

    def test_parameter_count(self):
        net = QNetwork([4, 8, 2], seed=0)
        assert net.num_parameters == 4 * 8 + 8 + 8 * 2 + 2

    def test_macs_per_forward(self):
        net = QNetwork([4, 8, 2], seed=0)
        assert net.macs_per_forward == 4 * 8 + 8 * 2

    def test_forward_counter(self):
        net = QNetwork([4, 8, 2], seed=0)
        net.predict(np.zeros((3, 4)))
        assert net.counters.forward_macs == 3 * net.macs_per_forward
        assert net.counters.forward_passes == 3

    def test_gradient_counter_is_param_count(self):
        net = QNetwork([4, 8, 2], seed=0)
        x = np.random.default_rng(0).normal(size=(4, 4))
        net.train_step(x, np.zeros(4), np.zeros(4, dtype=int))
        assert net.counters.gradient_calcs == net.num_parameters
        assert net.counters.updates == 1

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        net = QNetwork([3, 16, 2], seed=0, learning_rate=0.05)
        x = rng.normal(size=(32, 3))
        target = x[:, 0] * 2.0
        actions = np.zeros(32, dtype=int)
        losses = [net.train_step(x, target, actions) for _ in range(200)]
        assert losses[-1] < 0.1 * losses[0]

    def test_copy_weights(self):
        a = QNetwork([2, 4, 2], seed=0)
        b = QNetwork([2, 4, 2], seed=1)
        b.copy_weights_from(a)
        x = np.ones((1, 2))
        assert np.allclose(a.predict(x), b.predict(x))

    def test_too_few_layers_raises(self):
        with pytest.raises(ValueError):
            QNetwork([4])

    def test_activation_bytes(self):
        net = QNetwork([4, 8, 2], seed=0)
        assert net.activation_bytes(batch_size=2) == 2 * (4 + 8 + 2) * 4


class TestDQNAgent:
    def make_agent(self, **overrides):
        config = DQNConfig(
            hidden_sizes=(16,),
            replay_capacity=500,
            batch_size=8,
            warmup_transitions=16,
            epsilon_decay_steps=100,
            **overrides,
        )
        env = CartPoleEnv(seed=0)
        return DQNAgent(env, config, seed=0)

    def test_epsilon_decays(self):
        agent = self.make_agent()
        start = agent.epsilon
        agent.steps = 100
        assert agent.epsilon < start
        assert agent.epsilon == pytest.approx(agent.config.epsilon_end)

    def test_train_episode_runs(self):
        agent = self.make_agent()
        reward = agent.train_episode(max_steps=50)
        assert reward >= 1.0
        assert len(agent.memory) >= 1

    def test_learning_happens_after_warmup(self):
        agent = self.make_agent()
        for _ in range(5):
            agent.train_episode(max_steps=30)
        assert agent.online.counters.updates > 0

    def test_evaluate_episode(self):
        agent = self.make_agent()
        agent.train_episode(max_steps=20)
        reward = agent.evaluate_episode(max_steps=20)
        assert reward >= 1.0

    def test_select_action_valid(self):
        agent = self.make_agent()
        state = agent.env.reset()
        for _ in range(20):
            assert agent.select_action(state) in (0, 1)


class TestTable2Accounting:
    def test_forward_macs_about_3m(self):
        # Table II: "3M MAC ops in forward pass".
        acc = paper_dqn_accounting()
        assert 2.5e6 <= acc["forward_macs"] <= 3.5e6

    def test_gradient_calcs_about_680k(self):
        # Table II: "680K gradient calculations in BP".
        acc = paper_dqn_accounting()
        assert 6.0e5 <= acc["gradient_calcs"] <= 7.5e5

    def test_replay_tens_of_mb(self):
        # Table II: "50 MB for replay memory of 100 entries" — our float32
        # accounting gives the same order of magnitude.
        acc = paper_dqn_accounting(replay_entries=100)
        assert 10e6 <= acc["replay_bytes"] <= 60e6

    def test_params_activations_about_4mb(self):
        # Table II: "4 MB for parameters and activation given mini-batch 32".
        acc = paper_dqn_accounting(batch_size=32)
        assert 2e6 <= acc["param_activation_bytes"] <= 8e6

    def test_ea_column(self):
        # Table II right column: 115K MACs, 135K ops, <1MB.
        acc = ea_accounting(115_000, 135_000, 920_000)
        assert acc["inference_macs"] < paper_dqn_accounting()["forward_macs"]
        assert acc["generation_bytes"] < 1 << 20
        assert "GLP" in acc["parallelism"]
