"""Unit tests for the GeneSys SoC walkthrough loop."""

import pytest

from repro.core.config import GeneSysConfig
from repro.core.runner import config_for_env
from repro.core.soc import GeneSysSoC
from repro.hw.eve import EvEConfig


@pytest.fixture
def soc():
    neat = config_for_env("CartPole-v0", pop_size=16)
    config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=8), seed=0)
    return GeneSysSoC(config, "CartPole-v0", episodes=1, max_steps=60)


def test_initialise_population_loads_buffer(soc):
    soc.initialise_population()
    assert len(soc.population) == 16
    assert soc.buffer.resident_genomes() == sorted(soc.population)


def test_evaluate_population_sets_fitness(soc):
    soc.initialise_population()
    steps = soc.evaluate_population()
    assert steps > 0
    for key, genome in soc.population.items():
        assert genome.fitness is not None
        assert soc.buffer.get_fitness(key) == genome.fitness


def test_run_generation_report_fields(soc):
    report = soc.run_generation()
    assert report.generation == 0
    assert report.best_fitness >= report.mean_fitness >= 1.0
    assert report.num_genes > 0
    assert report.env_steps > 0
    assert report.inference_cycles > 0
    assert report.evolution_cycles > 0
    assert report.energy.total_energy_j > 0
    assert report.inference.passes > 0
    assert report.footprint_bytes == soc.buffer.bytes_used


def test_generation_replaces_population(soc):
    soc.run_generation()
    first_gen_keys = set(soc.population)
    soc.run_generation()
    assert set(soc.population).isdisjoint(first_gen_keys)
    assert len(soc.population) == 16
    # buffer holds exactly the new generation
    assert soc.buffer.resident_genomes() == sorted(soc.population)


def test_population_size_conserved_across_generations(soc):
    for _ in range(4):
        soc.run_generation()
        assert len(soc.population) == 16


def test_children_decode_valid(soc):
    soc.run_generation()
    for genome in soc.population.values():
        genome.validate(soc.config.neat.genome)


def test_run_until_threshold(soc):
    best = soc.run(max_generations=8, fitness_threshold=30.0)
    assert best.fitness is not None
    assert soc.reports
    assert soc.generation <= 8


def test_reports_accumulate(soc):
    soc.run(max_generations=3, fitness_threshold=1e9)
    assert len(soc.reports) == 3
    assert [r.generation for r in soc.reports] == [0, 1, 2]


def test_seconds_properties(soc):
    report = soc.run_generation()
    assert report.inference_seconds == pytest.approx(report.inference_cycles / 200e6)
    assert report.evolution_seconds == pytest.approx(report.evolution_cycles / 200e6)


def test_deterministic_given_seed():
    results = []
    for _ in range(2):
        neat = config_for_env("CartPole-v0", pop_size=12)
        config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=4), seed=5)
        soc = GeneSysSoC(config, "CartPole-v0", episodes=1, max_steps=40)
        soc.run(max_generations=3, fitness_threshold=1e9)
        results.append([r.best_fitness for r in soc.reports])
    assert results[0] == results[1]


class TestVectorizedEvaluation:
    """The population-batched evaluation path must be indistinguishable
    from the serial per-genome walk — fitnesses, env steps, every ADAM
    counter, and the whole energy ledger."""

    @staticmethod
    def _reports(env_id, vectorize, episodes=1, generations=3):
        from dataclasses import astuple

        neat = config_for_env(env_id, pop_size=14)
        config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=8), seed=9)
        soc = GeneSysSoC(
            config, env_id, episodes=episodes, max_steps=40,
            vectorize=vectorize,
        )
        out = []
        for _ in range(generations):
            r = soc.run_generation()
            out.append((
                r.best_fitness, r.mean_fitness, r.env_steps,
                astuple(r.inference), r.inference_cycles,
                r.energy.total_energy_j, r.footprint_bytes, r.num_genes,
            ))
        return out

    @pytest.mark.parametrize("env_id", ["CartPole-v0", "MountainCar-v0"])
    def test_bit_identical_to_serial(self, env_id):
        assert self._reports(env_id, True) == self._reports(env_id, False)

    def test_bit_identical_multi_episode(self):
        assert self._reports("CartPole-v0", True, episodes=3) == \
            self._reports("CartPole-v0", False, episodes=3)

    def test_env_steps_cover_every_episode(self):
        """Regression: the serial path used to count only the last
        episode's steps per genome when episodes > 1."""
        neat = config_for_env("CartPole-v0", pop_size=8)
        config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=8), seed=1)
        soc = GeneSysSoC(config, "CartPole-v0", episodes=3, max_steps=25,
                         vectorize=False)
        soc.initialise_population()
        steps = soc.evaluate_population()
        # every episode runs at least one step, so 8 genomes x 3 episodes
        assert steps >= 24
        assert steps == soc.adam.stats.passes

    def test_vectorize_default_on(self, soc):
        assert soc.vectorize is True
