"""Unit tests for repro.neat.species (speciation + fitness sharing)."""

import random

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.species import SpeciesSet


@pytest.fixture
def config():
    return NEATConfig.for_env(2, 1, pop_size=10)


@pytest.fixture
def rng():
    return random.Random(5)


def make_population(config, rng, n=10, mutations=0):
    innovations = InnovationTracker(next_node_id=config.genome.num_outputs)
    population = {}
    for key in range(n):
        g = Genome(key)
        g.configure_new(config.genome, rng)
        for _ in range(mutations):
            g.mutate(config.genome, rng, innovations)
        g.fitness = float(key)
        population[key] = g
    return population


def test_identical_population_single_species(config, rng):
    population = make_population(config, rng)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    assert len(species_set) == 1
    assert set(species_set.genome_to_species) == set(population)


def test_every_genome_assigned(config, rng):
    population = make_population(config, rng, mutations=20)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    assert set(species_set.genome_to_species) == set(population)
    total_members = sum(len(s) for s in species_set.species.values())
    assert total_members == len(population)


def test_distinct_topologies_split_species(config, rng):
    config.species.compatibility_threshold = 0.5
    population = make_population(config, rng, n=6, mutations=40)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    assert len(species_set) >= 2


def test_species_persist_across_generations(config, rng):
    population = make_population(config, rng)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    keys_before = set(species_set.species)
    species_set.speciate(population, 1)
    assert keys_before == set(species_set.species)


def test_empty_species_removed(config, rng):
    config.species.compatibility_threshold = 0.5
    population = make_population(config, rng, n=6, mutations=40)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    # Re-speciate with a single clone population: most species die.
    single = {0: population[0]}
    species_set.speciate(single, 1)
    total_members = sum(len(s) for s in species_set.species.values())
    assert total_members == 1


def test_adjusted_fitness_sharing_divides_by_size(config, rng):
    population = make_population(config, rng, n=4)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    # age the species past the young threshold so no bonus applies
    species = next(iter(species_set.species.values()))
    species.created = -100
    species_set.adjust_fitnesses(0)
    mean_fitness = (0 + 1 + 2 + 3) / 4
    assert species.adjusted_fitness == pytest.approx(mean_fitness / 4)
    assert species.fitness == 3.0


def test_young_species_bonus(config, rng):
    population = make_population(config, rng, n=4)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    species = next(iter(species_set.species.values()))
    species_set.adjust_fitnesses(0)  # age 0 < young_age_threshold
    mean_fitness = 1.5
    expected = config.species.young_fitness_bonus * mean_fitness / 4
    assert species.adjusted_fitness == pytest.approx(expected)


def test_fitness_history_appended(config, rng):
    population = make_population(config, rng)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    species_set.adjust_fitnesses(0)
    species = next(iter(species_set.species.values()))
    assert species.fitness_history == [9.0]


def test_species_of(config, rng):
    population = make_population(config, rng)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    key = next(iter(population))
    assert species_set.species_of(key) in species_set.species
    assert species_set.species_of(9999) is None
