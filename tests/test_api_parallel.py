"""Serial-vs-parallel fitness evaluation determinism.

The acceptance bar for the parallel path: ``workers=N`` must reproduce
``workers=1`` bit-for-bit, because episode seeds are derived per genome
in the parent with the same formula the serial evaluator uses.
"""

import pytest

from repro.api import (
    Experiment,
    ExperimentSpec,
    ParallelFitnessEvaluator,
    build_evaluator,
)
from repro.core.runner import config_for_env
from repro.envs.evaluate import FitnessEvaluator
from repro.neat.population import Population


def _fitness_map(evaluator, seed=3, pop_size=12):
    config = config_for_env("CartPole-v0", pop_size=pop_size)
    population = Population(config, seed=seed)
    genomes = list(population.population.values())
    evaluator(genomes, config)
    return {g.key: g.fitness for g in genomes}, evaluator.totals


class TestBuildEvaluator:
    def test_serial_for_one_worker(self):
        assert isinstance(build_evaluator("CartPole-v0", workers=1),
                          FitnessEvaluator)

    def test_parallel_for_many_workers(self):
        evaluator = build_evaluator("CartPole-v0", workers=2)
        assert isinstance(evaluator, ParallelFitnessEvaluator)
        evaluator.close()

    def test_parallel_rejects_single_worker(self):
        with pytest.raises(ValueError):
            ParallelFitnessEvaluator("CartPole-v0", workers=1)

    def test_batched_for_numpy_vectorizer(self):
        from repro.neat.compiled import BatchedEvaluator

        assert isinstance(
            build_evaluator("CartPole-v0", workers=1, vectorizer="numpy"),
            BatchedEvaluator,
        )

    def test_parallel_carries_vectorizer(self):
        evaluator = build_evaluator(
            "CartPole-v0", workers=2, vectorizer="numpy"
        )
        assert isinstance(evaluator, ParallelFitnessEvaluator)
        assert evaluator.vectorizer == "numpy"
        evaluator.close()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_unknown_vectorizer_rejected(self, workers):
        with pytest.raises(ValueError, match="vectorizer"):
            build_evaluator("CartPole-v0", workers=workers, vectorizer="cuda")


class TestDeterminism:
    def test_parallel_matches_serial_fitness_map(self):
        serial_fits, serial_totals = _fitness_map(
            FitnessEvaluator("CartPole-v0", episodes=2, max_steps=60, seed=11)
        )
        with ParallelFitnessEvaluator(
            "CartPole-v0", episodes=2, max_steps=60, seed=11, workers=2
        ) as parallel:
            parallel_fits, parallel_totals = _fitness_map(parallel)
        assert parallel_fits == serial_fits
        assert parallel_totals.episodes == serial_totals.episodes
        assert parallel_totals.steps == serial_totals.steps
        assert parallel_totals.macs == serial_totals.macs

    def test_parallel_matches_serial_across_generations(self):
        """Whole-run parity on CartPole: per-generation best/mean series
        and the champion are identical for workers=1 and workers=2."""
        spec = ExperimentSpec(
            "CartPole-v0", max_generations=4, pop_size=16, max_steps=50,
            seed=5, fitness_threshold=1e9,
        )
        serial = Experiment(spec).run()
        parallel = Experiment(spec.replace(workers=2)).run()
        assert [m.best_fitness for m in serial.metrics] == \
            [m.best_fitness for m in parallel.metrics]
        assert [m.mean_fitness for m in serial.metrics] == \
            [m.mean_fitness for m in parallel.metrics]
        assert [m.env_steps for m in serial.metrics] == \
            [m.env_steps for m in parallel.metrics]
        assert serial.champion.fitness == parallel.champion.fitness
        assert serial.generations == parallel.generations

    def test_pooled_vectorized_matches_serial_fitness_map(self):
        """workers=2 + numpy: each worker batch-evaluates its slice;
        fitnesses and totals must still be bit-identical to serial."""
        serial_fits, serial_totals = _fitness_map(
            FitnessEvaluator("CartPole-v0", episodes=2, max_steps=60, seed=11)
        )
        with ParallelFitnessEvaluator(
            "CartPole-v0", episodes=2, max_steps=60, seed=11, workers=2,
            vectorizer="numpy",
        ) as pooled:
            pooled_fits, pooled_totals = _fitness_map(pooled)
        assert pooled_fits == serial_fits
        assert pooled_totals.episodes == serial_totals.episodes
        assert pooled_totals.steps == serial_totals.steps
        assert pooled_totals.macs == serial_totals.macs

    def test_fitness_transform_applies_in_parent(self):
        with ParallelFitnessEvaluator(
            "CartPole-v0", max_steps=30, seed=0, workers=2,
            fitness_transform=lambda f: -f,
        ) as evaluator:
            fits, _ = _fitness_map(evaluator)
        assert all(f <= 0 for f in fits.values())


class TestLifecycle:
    def test_close_is_idempotent(self):
        evaluator = ParallelFitnessEvaluator("CartPole-v0", workers=2)
        _fitness_map(evaluator)
        evaluator.close()
        evaluator.close()

    def test_pool_reused_across_generations(self):
        with ParallelFitnessEvaluator(
            "CartPole-v0", max_steps=30, seed=0, workers=2
        ) as evaluator:
            _fitness_map(evaluator)
            pool = evaluator._pool
            _fitness_map(evaluator)
            assert evaluator._pool is pool

    def test_del_then_close_is_clean(self):
        """__del__ must reap workers (terminate + join), and close() must
        stay a safe no-op afterwards — no zombies, no double-release."""
        evaluator = ParallelFitnessEvaluator("CartPole-v0", workers=2)
        _fitness_map(evaluator)
        pool = evaluator._pool
        assert pool is not None
        evaluator.__del__()
        assert evaluator._pool is None
        # every worker is reaped, not left as a zombie
        for proc in pool._pool:
            assert proc.exitcode is not None
        evaluator.close()
        evaluator.close()

    def test_close_then_del_is_clean(self):
        evaluator = ParallelFitnessEvaluator("CartPole-v0", workers=2)
        _fitness_map(evaluator)
        evaluator.close()
        evaluator.__del__()  # nothing left to tear down


class TestSharedMemoryTransport:
    @pytest.mark.parametrize("vectorizer", ["scalar", "numpy"])
    def test_shm_matches_serial_fitness_map(self, vectorizer):
        serial_fits, serial_totals = _fitness_map(
            FitnessEvaluator("CartPole-v0", episodes=2, max_steps=60, seed=11)
        )
        with ParallelFitnessEvaluator(
            "CartPole-v0", episodes=2, max_steps=60, seed=11, workers=2,
            vectorizer=vectorizer, task_transport="shm",
        ) as shm:
            shm_fits, shm_totals = _fitness_map(shm)
        assert shm_fits == serial_fits
        assert shm_totals.steps == serial_totals.steps
        assert shm_totals.macs == serial_totals.macs

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="task transport"):
            ParallelFitnessEvaluator(
                "CartPole-v0", workers=2, task_transport="carrier-pigeon"
            )

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TRANSPORT", "shm")
        evaluator = build_evaluator("CartPole-v0", workers=2)
        assert evaluator.task_transport == "shm"
        evaluator.close()
        monkeypatch.delenv("REPRO_TASK_TRANSPORT")
        evaluator = build_evaluator("CartPole-v0", workers=2)
        assert evaluator.task_transport == "pickle"
        evaluator.close()

    def test_segment_unlinked_after_map(self, monkeypatch):
        """The per-generation segment must not outlive the map call."""
        from multiprocessing import shared_memory

        created = []
        original = shared_memory.SharedMemory

        class Tracking(original):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(self.name)

        monkeypatch.setattr(shared_memory, "SharedMemory", Tracking)
        with ParallelFitnessEvaluator(
            "CartPole-v0", max_steps=30, seed=0, workers=2,
            task_transport="shm",
        ) as evaluator:
            _fitness_map(evaluator)
        assert created, "shm transport never created a segment"
        for name in created:
            with pytest.raises(FileNotFoundError):
                original(name=name)
