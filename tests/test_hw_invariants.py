"""Cross-cutting hardware invariants.

The NoC and the allocator are *accounting* mechanisms: they must never
change what the PEs compute, only how many SRAM reads/cycles it costs.
These tests pin that separation down, plus PE/PRNG stream independence.
"""

import random

import pytest

from repro.hw import (
    EvEConfig,
    EvolutionEngine,
    GenomeBuffer,
    decode_genome,
    encode_genome,
)
from repro.neat import Genome, GenomeConfig, InnovationTracker
from repro.neat.reproduction import ReproductionEvent


@pytest.fixture
def config():
    return GenomeConfig(num_inputs=3, num_outputs=2)


def make_population(config, n=6, seed=0):
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=config.num_outputs)
    population = {}
    for key in range(n):
        g = Genome(key)
        g.configure_new(config, rng)
        for _ in range(10):
            g.mutate(config, rng, innovations)
        g.fitness = float(key)
        population[key] = g
    return population


def load(config, population):
    buffer = GenomeBuffer()
    for key, genome in population.items():
        buffer.write_genome(key, encode_genome(genome, config))
        buffer.set_fitness(key, genome.fitness)
    return buffer


def events(n=8):
    return [ReproductionEvent(100 + i, i % 3, (i + 1) % 3, 1) for i in range(n)]


def run_eve(config, population, **kwargs):
    buffer = load(config, population)
    eve = EvolutionEngine(EvEConfig(seed=5, **kwargs))
    return eve.reproduce_generation(buffer, events())


class TestNoCIsPureAccounting:
    def test_children_identical_across_noc(self, config):
        population = make_population(config)
        p2p = run_eve(config, population, num_pes=4, noc="p2p")
        tree = run_eve(config, population, num_pes=4, noc="multicast")
        assert {k: [g.word for g in v] for k, v in p2p.children.items()} == {
            k: [g.word for g in v] for k, v in tree.children.items()
        }

    def test_only_reads_differ(self, config):
        population = make_population(config)
        p2p = run_eve(config, population, num_pes=4, noc="p2p")
        tree = run_eve(config, population, num_pes=4, noc="multicast")
        assert p2p.cycles == tree.cycles
        assert p2p.sram_writes == tree.sram_writes
        assert tree.sram_reads <= p2p.sram_reads


class TestSchedulerAffectsOnlyPlacement:
    def test_same_children_set(self, config):
        """Different schedulers place children on different PEs (different
        PRNG streams -> different child *contents*), but the same child
        keys must all be produced and all be valid."""
        population = make_population(config)
        greedy = run_eve(config, population, num_pes=4, scheduler="greedy")
        rr = run_eve(config, population, num_pes=4, scheduler="round-robin")
        assert set(greedy.children) == set(rr.children)
        for result in (greedy, rr):
            for key, stream in result.children.items():
                decode_genome(stream, key, config).validate(config)


class TestPEStreamIndependence:
    def test_different_pes_different_streams(self):
        from repro.hw.pe import ProcessingElement

        a = ProcessingElement(pe_index=0, seed=7)
        b = ProcessingElement(pe_index=1, seed=7)
        assert a.prng.bytes(32) != b.prng.bytes(32)

    def test_same_pe_same_stream(self):
        from repro.hw.pe import ProcessingElement

        a = ProcessingElement(pe_index=3, seed=7)
        b = ProcessingElement(pe_index=3, seed=7)
        assert a.prng.bytes(32) == b.prng.bytes(32)


class TestConservation:
    def test_population_count_conserved(self, config):
        population = make_population(config)
        result = run_eve(config, population, num_pes=4)
        assert len(result.children) == len(events())

    def test_gene_counts_plausible(self, config):
        """Children are bounded by the fitter parent's stream plus the
        small number of structural additions."""
        population = make_population(config)
        result = run_eve(config, population, num_pes=4)
        max_parent_genes = max(g.num_genes for g in population.values())
        for stream in result.children.values():
            additions = result.pe_stats.node_additions * 3 + result.pe_stats.conn_additions
            assert len(stream) <= max_parent_genes + additions

    def test_sram_writes_cover_children(self, config):
        population = make_population(config)
        result = run_eve(config, population, num_pes=4)
        total_child_genes = sum(len(s) for s in result.children.values())
        assert result.sram_writes == total_child_genes
