"""Unit tests for repro.neat.aggregations."""

import pytest

from repro.neat.aggregations import (
    AGGREGATION_CODES,
    AGGREGATION_NAMES,
    AggregationFunctionSet,
    InvalidAggregationError,
    max_aggregation,
    maxabs_aggregation,
    mean_aggregation,
    median_aggregation,
    min_aggregation,
    product_aggregation,
    sum_aggregation,
)


@pytest.fixture
def functions():
    return AggregationFunctionSet()


def test_sum():
    assert sum_aggregation([1.0, 2.0, 3.0]) == 6.0
    assert sum_aggregation([]) == 0.0


def test_product():
    assert product_aggregation([2.0, 3.0, 4.0]) == 24.0
    assert product_aggregation([]) == 1.0


def test_max_min():
    values = [3.0, -5.0, 2.0]
    assert max_aggregation(values) == 3.0
    assert min_aggregation(values) == -5.0
    assert max_aggregation([]) == 0.0
    assert min_aggregation([]) == 0.0


def test_maxabs():
    assert maxabs_aggregation([3.0, -5.0, 2.0]) == -5.0
    assert maxabs_aggregation([]) == 0.0


def test_mean():
    assert mean_aggregation([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    assert mean_aggregation([]) == 0.0


def test_median_odd_even():
    assert median_aggregation([5.0, 1.0, 3.0]) == 3.0
    assert median_aggregation([4.0, 1.0, 3.0, 2.0]) == pytest.approx(2.5)
    assert median_aggregation([]) == 0.0


def test_aggregations_accept_generators(functions):
    for name in functions.names():
        fn = functions.get(name)
        assert fn(x for x in [1.0, 2.0]) is not None


def test_registry_unknown_raises(functions):
    with pytest.raises(InvalidAggregationError):
        functions.get("nope")


def test_registry_add_custom(functions):
    functions.add("first", lambda vs: next(iter(vs), 0.0))
    assert functions.get("first")([9.0, 1.0]) == 9.0


def test_codes_fit_hardware_field():
    assert len(AGGREGATION_CODES) == len(AGGREGATION_NAMES)
    assert max(AGGREGATION_CODES.values()) < 16
    for name, code in AGGREGATION_CODES.items():
        assert AGGREGATION_NAMES[code] == name
