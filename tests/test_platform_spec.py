"""Unit tests for the unified platform API: PlatformSpec + registry."""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    Experiment,
    ExperimentSpec,
    SpecError,
    UnknownBackendError,
    available_backends,
    make_backend,
)
from repro.hw.noc import canonical_noc_kind
from repro.platforms import (
    PLATFORM_KINDS,
    GenesysPlatform,
    PlatformSpec,
    PlatformSpecError,
    SoCPlatform,
    UnknownPlatformError,
    make_platform,
    platform_names,
    platform_spec,
    register_platform,
    registered_platforms,
    table3,
    unregister_platform,
)

SMALL = dict(max_generations=2, pop_size=10, max_steps=30, seed=0)


# ---------------------------------------------------------------------------
# spec validation


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(PlatformSpecError, match="unknown platform kind"):
            PlatformSpec("fpga")

    def test_unknown_param(self):
        with pytest.raises(PlatformSpecError, match="unknown soc platform params"):
            PlatformSpec("soc", params={"warp": 9})

    def test_kinds_cover_both_fidelities(self):
        assert set(PLATFORM_KINDS) == {"cpu", "gpu", "genesys", "soc"}

    @pytest.mark.parametrize("params", [
        {"eve_pes": 0},
        {"eve_pes": "many"},
        {"noc": "torus"},
        {"scheduler": "lifo"},
        {"adam_shape": "32"},
        {"adam_shape": "0x8"},
        {"frequency_hz": -1.0},
    ])
    def test_invalid_soc_params(self, params):
        with pytest.raises((PlatformSpecError, ValueError)):
            PlatformSpec("soc", params=params)

    def test_noc_spelling_canonicalised(self):
        spec = PlatformSpec("soc", params={"noc": "Point-To-Point"})
        assert spec.params.noc == "p2p"
        assert spec.params.noc == canonical_noc_kind("bus")

    def test_adam_shape_normalised(self):
        spec = PlatformSpec("soc", params={"adam_shape": "16X8"})
        assert spec.params.adam_shape == "16x8"
        assert (spec.params.adam_rows, spec.params.adam_cols) == (16, 8)

    def test_genesys_requires_positive_ints(self):
        with pytest.raises(PlatformSpecError):
            PlatformSpec("genesys", params={"num_eve_pes": -4})

    def test_name_defaults_to_kind(self):
        assert PlatformSpec("soc").name == "soc"
        assert PlatformSpec("genesys", "G2").name == "G2"

    def test_replace_params_validates(self):
        spec = PlatformSpec("soc")
        assert spec.replace_params(eve_pes=8).params.eve_pes == 8
        with pytest.raises(PlatformSpecError, match="unknown soc"):
            spec.replace_params(num_eve_pes=8)


# ---------------------------------------------------------------------------
# round-trip + canonical hash


class TestRoundTrip:
    def test_json_round_trip_every_builtin(self):
        for name, spec in registered_platforms().items():
            assert spec is not None
            clone = PlatformSpec.from_json(spec.to_json())
            assert clone == spec
            assert clone.content_key() == spec.content_key()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(PlatformSpecError, match="unknown platform spec"):
            PlatformSpec.from_dict({"kind": "soc", "turbo": True})

    def test_from_dict_requires_kind(self):
        with pytest.raises(PlatformSpecError, match="kind"):
            PlatformSpec.from_dict({"name": "x"})

    def test_invalid_json(self):
        with pytest.raises(PlatformSpecError, match="invalid platform spec"):
            PlatformSpec.from_json("{nope")

    def test_save_load(self, tmp_path):
        path = tmp_path / "platform.json"
        spec = PlatformSpec("genesys", "G64", {"num_eve_pes": 64})
        spec.save(path)
        assert PlatformSpec.load(path) == spec

    def test_content_key_is_field_order_invariant(self):
        a = PlatformSpec("soc", params={"eve_pes": 8, "noc": "p2p"})
        b = PlatformSpec("soc", params={"noc": "p2p", "eve_pes": 8})
        assert a.content_key() == b.content_key()
        # canonical JSON has sorted keys + fixed separators
        payload = json.loads(a.canonical_json())
        assert list(payload) == sorted(payload)

    def test_content_key_differs_on_any_param(self):
        a = PlatformSpec("soc", params={"eve_pes": 8})
        b = PlatformSpec("soc", params={"eve_pes": 16})
        assert a.content_key() != b.content_key()

    @settings(max_examples=25, deadline=None)
    @given(
        eve_pes=st.integers(min_value=1, max_value=4096),
        noc=st.sampled_from(["p2p", "P2P", "multicast", "multicast-tree",
                             "point to point", "bus", "tree"]),
        scheduler=st.sampled_from(["greedy", "round-robin"]),
        rows=st.integers(min_value=1, max_value=128),
        cols=st.integers(min_value=1, max_value=128),
    )
    def test_property_soc_round_trip_and_hash(self, eve_pes, noc, scheduler,
                                              rows, cols):
        spec = PlatformSpec("soc", params={
            "eve_pes": eve_pes, "noc": noc, "scheduler": scheduler,
            "adam_shape": f"{rows}x{cols}",
        })
        clone = PlatformSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.content_key() == spec.content_key()
        # canonicalisation: every accepted spelling hashes like its kind
        canonical = spec.replace_params(noc=canonical_noc_kind(noc))
        assert canonical.content_key() == spec.content_key()

    @settings(max_examples=25, deadline=None)
    @given(num=st.integers(min_value=1, max_value=2048))
    def test_property_genesys_dict_round_trip(self, num):
        spec = PlatformSpec("genesys", params={"num_eve_pes": num})
        assert PlatformSpec.from_dict(spec.to_dict()) == spec


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_nine_table3_names_resolve(self):
        for name in ("CPU_a", "CPU_b", "CPU_c", "CPU_d",
                     "GPU_a", "GPU_b", "GPU_c", "GPU_d", "GENESYS"):
            assert make_platform(name).name == name

    def test_soc_is_first_class(self):
        platform = make_platform("soc")
        assert isinstance(platform, SoCPlatform)
        config = platform.genesys_config(seed=3)
        assert config.eve.num_pes == 256
        assert config.seed == 3

    def test_make_platform_accepts_spec_and_dict(self):
        from_spec = make_platform(PlatformSpec("genesys", "G",
                                               {"num_eve_pes": 64}))
        from_dict = make_platform({"kind": "genesys", "name": "G",
                                   "params": {"num_eve_pes": 64}})
        assert isinstance(from_spec, GenesysPlatform)
        assert from_spec.num_eve_pes == from_dict.num_eve_pes == 64

    def test_soc_kind_spec_resolves(self):
        platform = make_platform({"kind": "soc", "params": {"eve_pes": 8}})
        assert isinstance(platform, SoCPlatform)
        assert platform.genesys_config().eve.num_pes == 8

    def test_unknown_name_error_lists_registered(self):
        with pytest.raises(UnknownPlatformError, match="CPU_a"):
            make_platform("TPU")
        # back-compat: pre-registry callers caught KeyError
        with pytest.raises(KeyError):
            make_platform("TPU")

    def test_unregister_unknown_raises(self):
        with pytest.raises(UnknownPlatformError):
            unregister_platform("never-registered")

    def test_registration_override_and_views(self):
        spec = PlatformSpec("genesys", params={"num_eve_pes": 64})
        register_platform("GENESYS_64", spec)
        try:
            assert "GENESYS_64" in platform_names()
            assert make_platform("GENESYS_64").num_eve_pes == 64
            assert platform_spec("GENESYS_64").params.num_eve_pes == 64
            # override: latest wins
            register_platform(
                "GENESYS_64",
                PlatformSpec("genesys", params={"num_eve_pes": 128}),
            )
            assert make_platform("GENESYS_64").num_eve_pes == 128
            # custom registrations never leak into the paper's Table III
            assert len(table3()) == 9
        finally:
            unregister_platform("GENESYS_64")
        assert "GENESYS_64" not in platform_names()

    def test_factory_registration(self):
        sentinel = GenesysPlatform(num_eve_pes=2)
        register_platform("tiny", lambda: sentinel)
        try:
            assert make_platform("tiny") is sentinel
            assert registered_platforms()["tiny"] is None
            with pytest.raises(PlatformSpecError, match="factory-backed"):
                platform_spec("tiny")
        finally:
            unregister_platform("tiny")

    def test_registered_name_becomes_analytical_backend(self):
        register_platform(
            "GENESYS_quarter",
            PlatformSpec("genesys", params={"num_eve_pes": 64}),
        )
        try:
            assert "analytical:GENESYS_quarter" in available_backends()
            result = Experiment(ExperimentSpec(
                "CartPole-v0", backend="analytical:GENESYS_quarter", **SMALL
            )).run()
            assert result.backend == "analytical:GENESYS_quarter"
            assert result.total_energy_j > 0
        finally:
            unregister_platform("GENESYS_quarter")
        with pytest.raises(UnknownBackendError):
            make_backend("analytical:GENESYS_quarter")


# ---------------------------------------------------------------------------
# embedded platform on the experiment spec


class TestEmbeddedPlatform:
    def test_to_dict_omits_unset_platform(self):
        spec = ExperimentSpec("CartPole-v0", **SMALL)
        assert "platform" not in spec.to_dict()
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec and clone.platform is None

    def test_embedded_platform_round_trips(self):
        spec = ExperimentSpec(
            "CartPole-v0", backend="analytical",
            platform={"kind": "genesys", "name": "GENESYS"}, **SMALL,
        )
        assert isinstance(spec.platform, PlatformSpec)
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.to_dict()["platform"]["kind"] == "genesys"

    def test_software_backend_rejects_platform(self):
        with pytest.raises(SpecError, match="software backend takes no"):
            ExperimentSpec("CartPole-v0", platform={"kind": "genesys"},
                           **SMALL)

    def test_analytical_suffix_conflicts_with_platform(self):
        with pytest.raises(SpecError, match="already names a platform"):
            ExperimentSpec("CartPole-v0", backend="analytical:GENESYS",
                           platform={"kind": "genesys"}, **SMALL)

    def test_soc_backend_needs_soc_kind(self):
        with pytest.raises(SpecError, match="'soc'-kind"):
            ExperimentSpec("CartPole-v0", backend="soc",
                           platform={"kind": "genesys"}, **SMALL)

    def test_embedded_matches_named_analytical(self):
        named = Experiment(ExperimentSpec(
            "CartPole-v0", backend="analytical:GENESYS", **SMALL
        )).run()
        embedded = Experiment(ExperimentSpec(
            "CartPole-v0", backend="analytical",
            platform={"kind": "genesys", "name": "GENESYS"}, **SMALL,
        )).run()
        assert embedded.backend == named.backend == "analytical:GENESYS"
        assert embedded.total_energy_j == named.total_energy_j
        assert embedded.best_fitness == named.best_fitness

    def test_soc_platform_spec_matches_knob_options(self):
        knobs = Experiment(ExperimentSpec(
            "CartPole-v0", backend="soc",
            backend_options={"eve_pes": 8, "noc": "p2p"}, **SMALL,
        )).run()
        declarative = Experiment(ExperimentSpec(
            "CartPole-v0", backend="soc",
            platform={"kind": "soc", "params": {"eve_pes": 8, "noc": "p2p"}},
            **SMALL,
        )).run()
        assert declarative.total_energy_j == knobs.total_energy_j
        assert declarative.total_cycles == knobs.total_cycles
        assert declarative.best_fitness == knobs.best_fitness

    def test_backend_options_override_platform_spec(self):
        backend = make_backend(
            "soc",
            platform={"kind": "soc", "params": {"eve_pes": 64}},
            eve_pes=4,
        )
        spec = ExperimentSpec("CartPole-v0", backend="soc", **SMALL)
        assert backend._resolve_config(spec).eve.num_pes == 4

    def test_soc_backend_platform_by_name(self):
        backend = make_backend("soc", platform="soc")
        spec = ExperimentSpec("CartPole-v0", backend="soc", **SMALL)
        assert backend._resolve_config(spec).eve.num_pes == 256

    def test_soc_backend_rejects_analytical_platform(self):
        with pytest.raises(SpecError, match="'soc'-kind"):
            make_backend("soc", platform={"kind": "cpu", "params": {
                "evolution_op_time_s": 1e-6, "mac_time_s": 1e-9,
                "step_overhead_s": 1e-6, "power_w": 10.0,
            }})

    def test_analytical_soc_projection(self):
        """'analytical:soc' is the SoC's workload-aggregate projection."""
        result = Experiment(ExperimentSpec(
            "CartPole-v0", backend="analytical:soc", **SMALL
        )).run()
        assert result.backend == "analytical:soc"
        assert result.total_energy_j > 0


class TestRunsIntegration:
    def test_spec_json_carries_platform_and_resume_validates(self, tmp_path):
        from repro.runs import RunDir, run_in_dir

        spec = ExperimentSpec(
            "CartPole-v0", backend="analytical",
            platform={"kind": "genesys", "name": "GENESYS"},
            max_generations=2, pop_size=10, max_steps=30, seed=0,
        )
        run_dir = tmp_path / "run"
        run_in_dir(spec, run_dir)
        stored = json.loads((run_dir / "spec.json").read_text())
        assert stored["platform"]["kind"] == "genesys"
        reloaded = RunDir(run_dir).load_spec()
        assert reloaded.platform == spec.platform
        # a different platform block must be rejected on resume
        from repro.runs import RunError

        other = spec.replace(
            platform=spec.platform.replace_params(num_eve_pes=8),
            max_generations=4,
        )
        with pytest.raises(RunError, match="platform"):
            run_in_dir(other, run_dir, resume=True)
        # while a pure budget extension resumes fine
        extended = run_in_dir(
            spec.replace(max_generations=3), run_dir, resume=True
        )
        assert extended.generations == 3


def test_dataclass_param_fields_are_sweepable():
    """Every param field surfaces as a platform.* DSE axis."""
    from repro.dse import PLATFORM_AXES

    for params_cls in PLATFORM_KINDS.values():
        for field in dataclasses.fields(params_cls):
            assert f"platform.{field.name}" in PLATFORM_AXES
