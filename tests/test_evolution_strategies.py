"""Unit tests for the OpenAI-ES baseline."""

import numpy as np
import pytest

from repro.baselines.evolution_strategies import (
    ESConfig,
    ESPolicy,
    EvolutionStrategies,
    centered_ranks,
)
from repro.envs import CartPoleEnv, make


class TestCenteredRanks:
    def test_range(self):
        ranks = centered_ranks(np.array([5.0, 1.0, 3.0, 9.0]))
        assert ranks.min() == -0.5
        assert ranks.max() == 0.5

    def test_order_preserved(self):
        returns = np.array([5.0, 1.0, 3.0])
        ranks = centered_ranks(returns)
        assert ranks[np.argmax(returns)] == ranks.max()
        assert ranks[np.argmin(returns)] == ranks.min()

    def test_scale_invariant(self):
        a = centered_ranks(np.array([1.0, 2.0, 3.0]))
        b = centered_ranks(np.array([10.0, 2000.0, 3e6]))
        assert np.allclose(a, b)

    def test_single_element(self):
        assert centered_ranks(np.array([7.0]))[0] == 0.0


class TestESPolicy:
    def test_parameter_count(self):
        policy = ESPolicy(4, 2, hidden_sizes=(8,))
        assert policy.num_parameters == 4 * 8 + 8 + 8 * 2 + 2

    def test_macs(self):
        policy = ESPolicy(4, 2, hidden_sizes=(8,))
        assert policy.macs_per_forward == 4 * 8 + 8 * 2

    def test_forward_shape(self):
        policy = ESPolicy(4, 3, hidden_sizes=(8, 8))
        theta = np.zeros(policy.num_parameters)
        out = policy.forward(theta, np.ones(4))
        assert out.shape == (3,)
        assert np.allclose(out, 0.0)  # zero params -> zero output

    def test_unflatten_round_trip(self):
        policy = ESPolicy(3, 2, hidden_sizes=(4,))
        rng = np.random.default_rng(0)
        theta = rng.normal(size=policy.num_parameters)
        layers = policy.unflatten(theta)
        flat = np.concatenate([np.concatenate([w.ravel(), b]) for w, b in layers])
        assert np.allclose(flat, theta)


class TestEvolutionStrategies:
    def test_stats_accounting(self):
        env = make("CartPole-v0", seed=0)
        es = EvolutionStrategies(env, ESConfig(population=4, max_steps=30), seed=0)
        es.run_generation()
        # 2*population perturbed rollouts + 1 evaluation rollout
        assert es.stats.episodes == 2 * 4 + 1
        assert es.stats.env_steps > 0
        assert es.stats.inference_macs == es.stats.env_steps * es.policy.macs_per_forward
        assert es.stats.parameter_updates == es.policy.num_parameters

    def test_deterministic_given_seed(self):
        scores = []
        for _ in range(2):
            env = make("CartPole-v0", seed=0)
            es = EvolutionStrategies(env, ESConfig(population=4, max_steps=30), seed=3)
            scores.append(es.run(generations=2))
        assert scores[0] == scores[1]

    def test_learns_cartpole(self):
        env = make("CartPole-v0", seed=0)
        es = EvolutionStrategies(
            env,
            ESConfig(population=12, sigma=0.2, learning_rate=0.15,
                     hidden_sizes=(8,), max_steps=120),
            seed=1,
        )
        first = es.run_generation(0)
        best = es.run(generations=10)
        assert best >= first  # monotone best over the run

    def test_target_stops_early(self):
        env = make("CartPole-v0", seed=0)
        es = EvolutionStrategies(env, ESConfig(population=4, max_steps=20), seed=0)
        es.run(generations=10, target=1.0)  # any rollout scores >= 1
        assert es.stats.generations < 10

    def test_box_action_space(self):
        env = make("BipedalWalker-v2", seed=0)
        es = EvolutionStrategies(env, ESConfig(population=2, max_steps=10), seed=0)
        score = es.run_generation()
        assert np.isfinite(score)

    def test_fixed_topology_vs_neat(self):
        """The architectural contrast the paper draws: ES has zero
        structural ops — all parameters, fixed MACs per pass."""
        env = make("CartPole-v0", seed=0)
        es = EvolutionStrategies(env, ESConfig(population=2, max_steps=10), seed=0)
        macs_before = es.policy.macs_per_forward
        es.run(generations=2)
        assert es.policy.macs_per_forward == macs_before
