"""The documentation layer: existence, link integrity, freshness.

Docs rot in three ways — pages vanish, links dangle, generated
references drift from the code.  Each gets a gate here; the CI docs job
runs this file plus ``python -m repro.docsgen --check``.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
DOCS = REPO / "docs"

REQUIRED_PAGES = [
    "index.md", "architecture.md", "paper-map.md", "platforms.md",
    "runs.md", "scenarios.md",
    "dse-distributed.md", "serve.md", "observability.md", "cli.md",
]

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    return [REPO / "README.md", REPO / "PAPERS.md"] + sorted(
        DOCS.glob("*.md")
    )


class TestPagesExist:
    @pytest.mark.parametrize("page", REQUIRED_PAGES)
    def test_required_page(self, page):
        path = DOCS / page
        assert path.exists(), f"docs/{page} is missing"
        assert path.read_text().strip(), f"docs/{page} is empty"

    def test_readme_links_the_docs(self):
        readme = (REPO / "README.md").read_text()
        for page in ("architecture.md", "paper-map.md", "runs.md", "cli.md"):
            assert f"docs/{page}" in readme, (
                f"README does not link docs/{page}"
            )


class TestLinksResolve:
    @pytest.mark.parametrize(
        "md_file", markdown_files(), ids=lambda p: p.name
    )
    def test_relative_links(self, md_file):
        text = md_file.read_text()
        broken = []
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{md_file.name}: broken links {broken}"

    def test_anchor_links_into_papers(self):
        """docs cite PAPERS.md entries via explicit anchors."""
        papers = (REPO / "PAPERS.md").read_text()
        anchors = set(re.findall(r'<a id="([^"]+)"></a>', papers))
        for md_file in markdown_files():
            for target in _LINK_RE.findall(md_file.read_text()):
                if "PAPERS.md#" in target:
                    anchor = target.rsplit("#", 1)[1]
                    assert anchor in anchors, (
                        f"{md_file.name} cites PAPERS.md#{anchor}, "
                        f"which does not exist"
                    )


class TestPaperMap:
    def test_every_named_bench_exists(self):
        text = (DOCS / "paper-map.md").read_text()
        benches = set(re.findall(r"benchmarks/(bench_\w+\.py)", text))
        assert benches, "paper-map.md names no benchmarks"
        missing = [b for b in benches if not (REPO / "benchmarks" / b).exists()]
        assert not missing, f"paper-map.md names missing benches: {missing}"

    def test_every_bench_is_mapped(self):
        """New benchmarks must be added to the paper map."""
        text = (DOCS / "paper-map.md").read_text()
        unmapped = [
            bench.name
            for bench in (REPO / "benchmarks").glob("bench_*.py")
            if bench.name not in text
        ]
        assert not unmapped, (
            f"benches missing from docs/paper-map.md: {unmapped}"
        )


class TestPapersEntries:
    def test_vetted_related_work_present(self):
        papers = (REPO / "PAPERS.md").read_text()
        assert "Stanley" in papers and "Miikkulainen" in papers
        assert "Evolving Neural Networks through" in papers
        assert "Such" in papers and "1712.06567" in papers

    def test_docs_cite_the_vetted_entries(self):
        cited = "".join(p.read_text() for p in DOCS.glob("*.md"))
        assert "PAPERS.md#stanley2002neat" in cited
        assert "PAPERS.md#such2017deepneuro" in cited


class TestCliReferenceFresh:
    def test_generated_page_matches_parser(self):
        from repro.docsgen import cli_reference_markdown

        committed = (DOCS / "cli.md").read_text()
        assert committed == cli_reference_markdown(), (
            "docs/cli.md is stale — regenerate with "
            "'PYTHONPATH=src python -m repro.docsgen'"
        )

    def test_check_mode(self, capsys):
        from repro.docsgen import main

        assert main(["--check", str(DOCS / "cli.md")]) == 0

    def test_check_mode_detects_stale(self, tmp_path):
        from repro.docsgen import main

        stale = tmp_path / "cli.md"
        stale.write_text("# stale\n")
        assert main(["--check", str(stale)]) == 1

    def test_generator_writes_requested_path(self, tmp_path):
        from repro.docsgen import cli_reference_markdown, main

        out = tmp_path / "cli.md"
        assert main([str(out)]) == 0
        assert out.read_text() == cli_reference_markdown()

    def test_reference_covers_every_subcommand(self):
        from repro.cli import build_parser

        text = (DOCS / "cli.md").read_text()
        parser = build_parser()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                for name in action.choices:
                    assert f"## `repro {name}`" in text, (
                        f"docs/cli.md lacks a section for 'repro {name}'"
                    )
