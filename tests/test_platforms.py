"""Unit tests for the platform models (Table III, Figs. 9-10)."""

import pytest

from repro.core.trace import GenerationWorkload
from repro.neat.genome import MutationCounts
from repro.platforms import (
    all_platforms,
    cpu_a,
    cpu_b,
    cpu_c,
    cpu_d,
    footprint_comparison,
    footprint_ratios,
    genesys,
    gpu_a,
    gpu_b,
    gpu_c,
    gpu_d,
    make_platform,
    table3,
)


@pytest.fixture
def atari_workload():
    """An Atari-class generation (paper's heavy class: ~10^5 genes/ops)."""
    return GenerationWorkload(
        generation=10,
        population=150,
        total_nodes=22_000,
        total_connections=93_000,
        ops=MutationCounts(crossovers=90_000, perturbations=40_000,
                           node_additions=2_000, conn_additions=3_000),
        env_steps=15_000,
        inference_macs=12_000_000,
        mean_network_depth=1.2,
        fittest_parent_reuse=20,
    )


@pytest.fixture
def classic_workload():
    """A classic-control generation (~10^3 ops class)."""
    return GenerationWorkload(
        generation=10,
        population=150,
        total_nodes=400,
        total_connections=1_800,
        ops=MutationCounts(crossovers=1_500, perturbations=800),
        env_steps=10_000,
        inference_macs=150_000,
        mean_network_depth=1.2,
        fittest_parent_reuse=40,
    )


class TestRegistry:
    def test_table3_has_nine_rows(self):
        rows = table3()
        assert len(rows) == 9
        assert {r["Legend"] for r in rows} == {
            "CPU_a", "CPU_b", "CPU_c", "CPU_d",
            "GPU_a", "GPU_b", "GPU_c", "GPU_d", "GENESYS",
        }

    def test_table3_strategies_match_paper(self):
        rows = {r["Legend"]: r for r in table3()}
        assert rows["CPU_a"]["Inference"] == "Serial"
        assert rows["CPU_b"]["Inference"] == "PLP"
        assert rows["GPU_a"]["Inference"] == "BSP"
        assert rows["GPU_b"]["Inference"] == "BSP + PLP"
        assert rows["GENESYS"]["Evolution"] == "PLP + GLP"

    def test_make_platform(self):
        assert make_platform("GENESYS").name == "GENESYS"
        with pytest.raises(KeyError):
            make_platform("TPU")


class TestCPUModels:
    def test_plp_speedup_is_3_5x(self, atari_workload):
        # Paper: "Parallel inference on CPU is 3.5 times faster".
        serial = cpu_a().inference_cost(atari_workload).runtime_s
        parallel = cpu_b().inference_cost(atari_workload).runtime_s
        assert serial / parallel == pytest.approx(3.5)

    def test_evolution_identical_for_a_and_b(self, atari_workload):
        assert (
            cpu_a().evolution_cost(atari_workload).runtime_s
            == cpu_b().evolution_cost(atari_workload).runtime_s
        )

    def test_embedded_slower_but_lower_power(self, atari_workload):
        desktop = cpu_a().inference_cost(atari_workload)
        embedded = cpu_c().inference_cost(atari_workload)
        assert embedded.runtime_s > desktop.runtime_s
        assert embedded.energy_j < desktop.energy_j  # 5 W vs 45 W

    def test_no_transfer_time(self, atari_workload):
        assert cpu_a().inference_cost(atari_workload).transfer_fraction == 0.0


class TestGPUModels:
    def test_gpu_a_transfer_dominated(self, atari_workload):
        # Fig. 10(a): ~70% of GPU_a inference time is memory transfer.
        frac = gpu_a().inference_cost(atari_workload).transfer_fraction
        assert 0.55 <= frac <= 0.85

    def test_gpu_b_transfer_share_below_gpu_a(self, atari_workload):
        # Fig. 10(a/b): batching the population drops the transfer share
        # from ~70% (GPU_a) to ~20% (GPU_b); scale-dependent, so assert the
        # ordering and a loose band.
        frac_a = gpu_a().inference_cost(atari_workload).transfer_fraction
        frac_b = gpu_b().inference_cost(atari_workload).transfer_fraction
        assert frac_b < 0.5 * frac_a

    def test_gpu_b_faster_than_gpu_a(self, atari_workload):
        assert (
            gpu_b().inference_cost(atari_workload).runtime_s
            < gpu_a().inference_cost(atari_workload).runtime_s
        )

    def test_gpu_b_footprint_much_larger_than_gpu_a(self, atari_workload):
        # Fig. 10(d): sparse uncompacted tensors vs one genome's matrices.
        a = gpu_a().memory_footprint_bytes(atari_workload)
        b = gpu_b().memory_footprint_bytes(atari_workload)
        assert b > 100 * a

    def test_embedded_gpu_slower(self, atari_workload):
        assert (
            gpu_c().inference_cost(atari_workload).runtime_s
            > gpu_a().inference_cost(atari_workload).runtime_s
        )

    def test_evolution_transfer_cost_positive(self, atari_workload):
        cost = gpu_a().evolution_cost(atari_workload)
        assert cost.transfer_s > 0
        assert cost.compute_s > 0


class TestGenesysModel:
    def test_inference_100x_faster_than_best_gpu(self, atari_workload):
        # Paper: "Genesys outperforms the best GPU implementation by 100x
        # in inference" — accept one order either side.
        gpu_best = min(
            p.inference_cost(atari_workload).runtime_s
            for p in (gpu_a(), gpu_b(), gpu_c(), gpu_d())
        )
        ours = genesys().inference_cost(atari_workload).runtime_s
        assert 10 <= gpu_best / ours <= 10_000

    def test_evolution_4_to_5_orders_vs_gpu_c(self, atari_workload):
        # Paper: "EVE turns out to be 4 to 5 orders of magnitude more
        # [energy] efficient than GPU_c".
        import math

        ratio = (
            gpu_c().evolution_cost(atari_workload).energy_j
            / genesys().evolution_cost(atari_workload).energy_j
        )
        assert 3.5 <= math.log10(ratio) <= 6.0

    def test_onchip_transfer_fraction_15pct(self, atari_workload):
        # Fig. 10(c): GENESYS spends ~15% of time on on-chip staging.
        frac = genesys().inference_cost(atari_workload).transfer_fraction
        assert frac == pytest.approx(0.15, abs=0.02)

    def test_footprint_between_gpu_a_and_gpu_b(self, atari_workload):
        # Fig. 10(d): GPU_a << GENESYS << GPU_b.
        foot = footprint_comparison(
            atari_workload, [gpu_a(), gpu_b(), genesys()]
        )
        assert foot["GPU_a"] < foot["GENESYS"] < foot["GPU_b"]
        ratios = footprint_ratios(foot, "GENESYS")
        assert ratios["GPU_a"] < 0.1
        assert ratios["GPU_b"] > 10

    def test_footprint_under_1mb(self, atari_workload):
        # Section III-D1: <1 MB per generation for all paper workloads.
        assert genesys().memory_footprint_bytes(atari_workload) < 1 << 20

    def test_more_pes_faster_evolution(self, atari_workload):
        from repro.platforms import GenesysPlatform

        slow = GenesysPlatform(num_eve_pes=2).evolution_cost(atari_workload)
        fast = GenesysPlatform(num_eve_pes=256).evolution_cost(atari_workload)
        assert fast.runtime_s < slow.runtime_s


class TestHeadlineClaim:
    def test_2_to_5_orders_energy_efficiency(self, atari_workload, classic_workload):
        """Abstract: '2-5 orders of magnitude higher energy-efficiency over
        state-of-the-art embedded and desktop CPU and GPU systems.'"""
        import math

        g = genesys()
        for workload in (atari_workload, classic_workload):
            g_total = (
                g.inference_cost(workload).energy_j
                + g.evolution_cost(workload).energy_j
            )
            all_orders = []
            for platform in (cpu_a(), cpu_b(), cpu_c(), cpu_d(),
                             gpu_a(), gpu_b(), gpu_c(), gpu_d()):
                p_total = (
                    platform.inference_cost(workload).energy_j
                    + platform.evolution_cost(workload).energy_j
                )
                all_orders.append(math.log10(p_total / g_total))
            # even the most efficient conventional platform is >= 2 orders
            # behind; the least efficient stays within ~7 (log-scale span
            # of the paper's Fig. 9 energy axes)
            assert min(all_orders) >= 2.0
            assert max(all_orders) <= 7.0


def test_footprint_ratios_zero_reference_raises(atari_workload):
    foot = {"A": 0, "B": 10}
    with pytest.raises(ValueError):
        footprint_ratios(foot, "A")
