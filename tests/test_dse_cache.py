"""Cache-key stability and the on-disk sweep cache.

The DSE cache's whole value rests on its keys being *content* hashes:
invariant to spec field ordering, stable across process restarts (no
``PYTHONHASHSEED`` sensitivity, no pickling) and sensitive to every
field that changes what a point computes.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExperimentSpec
from repro.dse import (
    SweepCache,
    SweepSpec,
    default_cache_dir,
    point_key,
    spec_key,
)

BASE = ExperimentSpec("CartPole-v0", max_generations=2, pop_size=10, max_steps=30)

SRC = Path(__file__).resolve().parents[1] / "src"


@st.composite
def spec_dicts(draw):
    """Valid ExperimentSpec payloads with hypothesis-chosen fields."""
    return {
        "env_id": draw(st.sampled_from(["CartPole-v0", "MountainCar-v0"])),
        "backend": draw(st.sampled_from(["software", "soc"])),
        "max_generations": draw(st.integers(1, 50)),
        "pop_size": draw(st.integers(2, 200)),
        "episodes": draw(st.integers(1, 4)),
        "seed": draw(st.integers(0, 10_000)),
        "workers": draw(st.integers(1, 8)),
    }


class TestKeyStability:
    @settings(max_examples=50, deadline=None)
    @given(data=spec_dicts(), order_seed=st.randoms(use_true_random=False))
    def test_key_invariant_to_field_ordering(self, data, order_seed):
        """The content hash must not depend on dict insertion order."""
        spec = ExperimentSpec.from_dict(data)
        items = list(spec.to_dict().items())
        order_seed.shuffle(items)
        assert spec_key(dict(items)) == spec_key(spec)

    @settings(max_examples=25, deadline=None)
    @given(data=spec_dicts())
    def test_key_matches_spec_object_and_round_trip(self, data):
        spec = ExperimentSpec.from_dict(data)
        clone = ExperimentSpec.from_json(spec.to_json())
        assert spec_key(spec) == spec_key(clone) == spec_key(spec.to_dict())

    def test_key_stable_across_process_restarts(self):
        """Re-deriving the key in fresh interpreters gives the same hash
        (sha256 of canonical JSON — nothing hash-seed dependent)."""
        spec = BASE.replace(seed=3)
        program = (
            "from repro.api import ExperimentSpec\n"
            "from repro.dse import spec_key\n"
            f"spec = ExperimentSpec.from_json({spec.to_json()!r})\n"
            "print(spec_key(spec))\n"
        )

        def rederive():
            return subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": str(SRC), "PYTHONHASHSEED": "random"},
            ).stdout.strip()

        first, second = rederive(), rederive()
        assert first == second == spec_key(spec)

    def test_key_sensitive_to_spec_fields(self):
        assert spec_key(BASE) != spec_key(BASE.replace(seed=1))
        assert spec_key(BASE) != spec_key(BASE.replace(pop_size=11))

    def test_key_sensitive_to_evaluator(self):
        assert spec_key(BASE) != spec_key(BASE, evaluator="other-v1")

    def test_point_key_with_axes_distinguishes_collapsed_points(self):
        """Custom evaluators see the raw axes, so their keys must too —
        even when the effective spec is identical (hardware axis on a
        non-soc backend)."""
        points = SweepSpec(
            base=BASE, axes={"hw.eve_pes": [16, 64]}
        ).expand()
        assert points[0].spec == points[1].spec
        assert point_key(points[0]) == point_key(points[1])
        assert point_key(points[0], include_axes=True) != \
            point_key(points[1], include_axes=True)


class TestAxisMutation:
    def axes(self):
        return {
            "backend": ["software", "soc"],
            "seed": [0, 1, 2],
        }

    def keys(self, axes):
        return {
            tuple(sorted(p.axes.items())): point_key(p)
            for p in SweepSpec(base=BASE, axes=axes).expand()
        }

    def test_mutated_axis_invalidates_only_affected_points(self):
        before = self.keys(self.axes())
        mutated = self.axes()
        mutated["seed"] = [0, 1, 7]  # 2 -> 7
        after = self.keys(mutated)
        shared = set(before) & set(after)
        assert len(shared) == 4  # 2 backends x seeds {0, 1}
        for ident in shared:
            assert before[ident] == after[ident]
        for ident in set(after) - shared:
            assert after[ident] not in before.values()

    def test_added_axis_value_preserves_existing_keys(self):
        before = self.keys(self.axes())
        grown = self.axes()
        grown["seed"] = [0, 1, 2, 3]
        after = self.keys(grown)
        assert set(before) < set(after)
        for ident, key in before.items():
            assert after[ident] == key


class TestSweepCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = spec_key(BASE)
        point = SweepSpec(base=BASE, axes={"seed": [0]}).expand()[0]
        cache.put(key, {"fitness": 10.0, "converged": False}, point)
        record = cache.get(key)
        assert record["metrics"] == {"fitness": 10.0, "converged": False}
        assert record["spec"] == point.spec.to_dict()
        assert len(cache) == 1

    def test_miss_returns_none(self, tmp_path):
        assert SweepCache(tmp_path).get("0" * 64) is None

    def test_corrupt_record_counts_as_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = spec_key(BASE)
        cache.put(key, {"fitness": 1.0})
        cache.path_for(key).write_text("{torn")
        assert cache.get(key) is None

    def test_foreign_format_counts_as_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = spec_key(BASE)
        cache.path_for(key).parent.mkdir(parents=True)
        cache.path_for(key).write_text(json.dumps({"format": 999}))
        assert cache.get(key) is None

    def test_records_are_fanned_out_and_atomic(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = spec_key(BASE)
        cache.put(key, {"fitness": 2.0})
        path = cache.path_for(key)
        assert path.parent.name == key[:2]
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_DSE_CACHE", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
        monkeypatch.delenv("REPRO_DSE_CACHE")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-dse"
