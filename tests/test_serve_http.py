"""HTTP API tests: routes, error codes, and the client round trip."""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import ExperimentSpec
from repro.serve import (
    JobApiServer,
    JobStore,
    Scheduler,
    ServeClient,
    ServeClientError,
)


@pytest.fixture
def served(tmp_path):
    store = JobStore(tmp_path / "root")
    with JobApiServer(store, port=0) as server:  # port 0: pick a free one
        yield store, ServeClient(server.url)


def spec_dict(**overrides):
    defaults = dict(
        env_id="CartPole-v0", max_generations=4, pop_size=12, seed=3,
        max_steps=40,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults).to_dict()


def test_healthz_counts_jobs_by_state(served):
    store, client = served
    health = client.healthz()
    assert health["ok"] is True
    assert all(count == 0 for count in health["jobs"].values())
    store.submit(spec_dict())
    assert client.healthz()["jobs"]["queued"] == 1


def test_healthz_tolerates_unknown_job_state(served):
    # A job.json written by a newer version may carry a state this
    # server has never heard of; /healthz must bucket it, not 500.
    store, client = served
    record = store.submit(spec_dict())
    path = store.job_dir(record.id) / "job.json"
    payload = json.loads(path.read_text())
    payload["state"] = "hibernating"
    path.write_text(json.dumps(payload))
    health = client.healthz()
    assert health["ok"] is True
    assert health["jobs"]["other"] == 1
    assert health["jobs"]["queued"] == 0


def test_malformed_since_is_a_400_json_error(served):
    store, client = served
    job = client.submit(spec_dict())
    with pytest.raises(ServeClientError) as excinfo:
        client._request("GET", f"/jobs/{job['id']}/metrics?since=abc")
    assert excinfo.value.status == 400
    assert "since" in str(excinfo.value)
    # raw request: the body is the structured error shape, not a traceback
    url = f"{client.base_url}/jobs/{job['id']}/metrics?since=abc"
    try:
        urllib.request.urlopen(url)
    except urllib.error.HTTPError as error:
        assert error.code == 400
        body = json.loads(error.read())
        assert set(body) == {"error"}
    else:  # pragma: no cover - the request must fail
        raise AssertionError("expected a 400")
    # a well-formed since still filters
    assert client.metrics(job["id"], since=0) == []


def test_malformed_body_ints_are_400(served):
    _store, client = served
    for field in ("priority", "max_retries"):
        with pytest.raises(ServeClientError) as excinfo:
            client._request(
                "POST", "/jobs", {"spec": spec_dict(), field: "lots"}
            )
        assert excinfo.value.status == 400
        assert field in str(excinfo.value)


def test_wrong_method_is_a_405_json_error(served):
    _store, client = served
    for method in ("PUT", "DELETE", "PATCH"):
        request = urllib.request.Request(
            f"{client.base_url}/jobs", method=method
        )
        try:
            urllib.request.urlopen(request)
        except urllib.error.HTTPError as error:
            assert error.code == 405
            body = json.loads(error.read())
            assert set(body) == {"error"}
            assert method in body["error"]
        else:  # pragma: no cover - the request must fail
            raise AssertionError(f"expected a 405 for {method}")


def test_submit_and_list_round_trip(served):
    _store, client = served
    job = client.submit(spec_dict(), priority=5, checkpoint_every=2)
    assert job["id"] == "job-000001"
    assert job["state"] == "queued"
    assert job["priority"] == 5
    listed = client.jobs()
    assert [j["id"] for j in listed] == ["job-000001"]
    assert client.job("job-000001")["spec"]["env_id"] == "CartPole-v0"


def test_submit_rejects_bad_bodies(served):
    _store, client = served
    with pytest.raises(ServeClientError) as excinfo:
        client.submit({"env_id": ""})
    assert excinfo.value.status == 400
    with pytest.raises(ServeClientError) as excinfo:
        client._request("POST", "/jobs", {"no_spec": True})
    assert excinfo.value.status == 400


def test_unknown_job_and_route_are_404(served):
    _store, client = served
    for call in (
        lambda: client.job("job-000042"),
        lambda: client.metrics("job-000042"),
        lambda: client.champion("job-000042"),
        lambda: client.cancel("job-000042"),
        lambda: client._request("GET", "/nonsense"),
        lambda: client._request("GET", "/jobs/x/y/z"),
    ):
        with pytest.raises(ServeClientError) as excinfo:
            call()
        assert excinfo.value.status == 404


def test_cancel_queued_job_over_http(served):
    _store, client = served
    job = client.submit(spec_dict())
    cancelled = client.cancel(job["id"])
    assert cancelled["state"] == "cancelled"


def test_metrics_events_champion_after_run(served):
    store, client = served
    job = client.submit(spec_dict(), checkpoint_every=2)
    Scheduler(store, workers=1, poll_interval=0.05).run_until_idle(
        timeout=300
    )
    status = client.job(job["id"])
    assert status["state"] == "done"
    assert status["complete"] is True
    rows = client.metrics(job["id"])
    assert [row["generation"] for row in rows] == [0, 1, 2, 3]
    assert client.metrics(job["id"], since=2)[0]["generation"] == 2
    events = [row["event"] for row in client.events(job["id"])]
    assert events[0] == "submitted"
    assert events[-1] == "done"
    champion = client.champion(job["id"])
    assert "genome" in champion
    # no champion yet for a queued job -> 404
    fresh = client.submit(spec_dict(seed=8))
    with pytest.raises(ServeClientError) as excinfo:
        client.champion(fresh["id"])
    assert excinfo.value.status == 404


def test_raw_http_content_types(served):
    store, client = served
    job = client.submit(spec_dict())
    base = client.base_url
    with urllib.request.urlopen(f"{base}/jobs") as response:
        assert response.headers["Content-Type"] == "application/json"
        json.loads(response.read())
    with urllib.request.urlopen(f"{base}/jobs/{job['id']}/metrics") as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"


def test_client_connection_error_is_friendly(tmp_path):
    client = ServeClient("http://127.0.0.1:9", timeout=0.5)
    with pytest.raises(ServeClientError, match="cannot reach"):
        client.healthz()
