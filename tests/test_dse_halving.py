"""Successive-halving scheduler: properties, goldens, the budget bound.

Three layers of guarantee:

* **Hypothesis properties** — rung budgets are monotone and end at the
  sweep's full budget; every input point lands in exactly one terminal
  state; no point on a rung's Pareto frontier is ever pruned; the whole
  schedule is deterministic.
* **Golden** — survivors of a halving-pruned sweep report metrics
  byte-identical to the same points in the unpruned
  ``tests/golden/hw_sweep_soc_4point.json`` sweep (the final rung runs
  at the full budget through the same cache keys).
* **The acceptance bound** — on a 64-point sweep, halving schedules
  <= 50% of the full run's generation budget while preserving the full
  sweep's Pareto frontier.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExperimentSpec
from repro.dse import (
    HalvingError,
    ObjectiveError,
    SuccessiveHalvingScheduler,
    SweepRunner,
    SweepSpec,
    halving_budgets,
    pareto_front,
    run_halving,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def budgeted_evaluator(fitness, energy):
    """Deterministic metrics: rank-stable across budgets (fitness grows
    with the generation budget without reordering points)."""

    def evaluate(point):
        seed = point.spec.seed
        return {
            "fitness": fitness[seed] * point.spec.max_generations,
            "energy_j": energy[seed],
        }

    return evaluate


def make_sweep(n, max_generations=8):
    base = ExperimentSpec(
        "CartPole-v0", max_generations=max_generations, pop_size=8,
        max_steps=20,
    )
    return SweepSpec(base=base, axes={"seed": list(range(n))})


def make_scheduler(sweep, fitness, energy, **kwargs):
    kwargs.setdefault("objectives", {"fitness": "max", "energy_j": "min"})
    objectives = kwargs.pop("objectives")
    return SuccessiveHalvingScheduler(
        sweep,
        objectives,
        evaluate=budgeted_evaluator(fitness, energy),
        evaluator_version="halving-stub-v1",
        **kwargs,
    )


# -- rung budget math --------------------------------------------------------


class TestBudgets:
    def test_geometric_descent(self):
        assert halving_budgets(8, reduction=2) == [1, 2, 4, 8]
        assert halving_budgets(9, reduction=3) == [1, 3, 9]
        assert halving_budgets(100, reduction=3) == [1, 3, 11, 33, 100]

    def test_single_generation_is_one_rung(self):
        assert halving_budgets(1) == [1]

    def test_min_generations_floors_the_first_rung(self):
        assert halving_budgets(16, reduction=2, min_generations=4) == \
            [4, 8, 16]

    def test_rejects_bad_parameters(self):
        with pytest.raises(HalvingError):
            halving_budgets(0)
        with pytest.raises(HalvingError):
            halving_budgets(8, reduction=1)
        with pytest.raises(HalvingError):
            halving_budgets(8, min_generations=0)

    @given(
        final=st.integers(min_value=1, max_value=10_000),
        reduction=st.integers(min_value=2, max_value=10),
        min_generations=st.integers(min_value=1, max_value=64),
    )
    def test_property_monotone_and_anchored(
        self, final, reduction, min_generations
    ):
        budgets = halving_budgets(final, reduction, min_generations)
        assert budgets[-1] == final
        assert all(b2 > b1 for b1, b2 in zip(budgets, budgets[1:]))
        assert all(
            b >= min(min_generations, final) for b in budgets
        )


# -- scheduler validation ----------------------------------------------------


class TestValidation:
    def test_rejects_max_generations_axis(self):
        base = ExperimentSpec("CartPole-v0", max_generations=4, pop_size=8)
        sweep = SweepSpec(base=base, axes={"max_generations": [2, 4]})
        with pytest.raises(HalvingError, match="max_generations"):
            SuccessiveHalvingScheduler(sweep, {"fitness": "max"})

    def test_rejects_empty_objectives(self):
        with pytest.raises(HalvingError, match="objective"):
            SuccessiveHalvingScheduler(make_sweep(4), {})

    def test_rejects_bad_direction(self):
        with pytest.raises(ObjectiveError, match="direction"):
            SuccessiveHalvingScheduler(make_sweep(4), {"fitness": "up"})

    def test_rejects_custom_budgets_not_ending_at_full(self):
        with pytest.raises(HalvingError, match="last rung"):
            SuccessiveHalvingScheduler(
                make_sweep(4, max_generations=8), {"fitness": "max"},
                budgets=[1, 2, 4],
            )

    def test_rejects_non_increasing_budgets(self):
        with pytest.raises(HalvingError, match="increasing"):
            SuccessiveHalvingScheduler(
                make_sweep(4, max_generations=8), {"fitness": "max"},
                budgets=[2, 2, 8],
            )


# -- hypothesis properties over whole runs ----------------------------------


metric_lists = st.integers(min_value=2, max_value=12).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.floats(
                min_value=-100, max_value=100,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=n, max_size=n,
        ),
        st.lists(
            st.floats(
                min_value=0, max_value=100,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=n, max_size=n,
        ),
    )
)


class TestRunProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=metric_lists, reduction=st.integers(2, 4))
    def test_every_point_has_exactly_one_terminal_state(
        self, data, reduction
    ):
        n, fitness, energy = data
        result = make_scheduler(
            make_sweep(n), fitness, energy, reduction=reduction
        ).run()
        assert set(result.states) == set(range(n))
        for state in result.states.values():
            assert state == "survivor" or state.startswith("pruned:rung")
        survivors = {i for i, s in result.states.items() if s == "survivor"}
        assert survivors == {row["point"] for row in result.rows}
        assert survivors, "halving must keep at least one point"

    @settings(max_examples=25, deadline=None)
    @given(data=metric_lists, reduction=st.integers(2, 4))
    def test_no_rung_frontier_point_is_ever_pruned(self, data, reduction):
        n, fitness, energy = data
        result = make_scheduler(
            make_sweep(n), fitness, energy, reduction=reduction
        ).run()
        objectives = result.objectives
        for rung, rows in enumerate(result.rung_rows):
            frontier = {
                row["point"] for row in pareto_front(rows, objectives)
            }
            pruned_here = {
                index
                for index, state in result.states.items()
                if state == f"pruned:rung{rung}"
            }
            assert not frontier & pruned_here, (
                f"rung {rung} pruned frontier points "
                f"{sorted(frontier & pruned_here)}"
            )

    @settings(max_examples=10, deadline=None)
    @given(data=metric_lists)
    def test_schedule_is_deterministic(self, data):
        n, fitness, energy = data
        first = make_scheduler(make_sweep(n), fitness, energy).run()
        second = make_scheduler(make_sweep(n), fitness, energy).run()
        assert first.states == second.states
        assert first.rows == second.rows
        assert first.scheduled_generations == second.scheduled_generations

    @settings(max_examples=25, deadline=None)
    @given(data=metric_lists, reduction=st.integers(2, 4))
    def test_scheduled_budget_never_exceeds_full(self, data, reduction):
        """Worst case (everything promoted by ties) the rung ladder costs
        sum(budgets) * n; with the geometric default that stays within
        ~2x of full, and the accounting must match the rung tables."""
        n, fitness, energy = data
        result = make_scheduler(
            make_sweep(n), fitness, energy, reduction=reduction
        ).run()
        accounted = sum(
            r["budget"] * r["points"] for r in result.rungs
        )
        assert result.scheduled_generations == accounted
        assert result.full_generations == 8 * n


# -- pruning behaviour on controlled metrics --------------------------------


class TestPruning:
    def test_dominated_points_stop_at_the_first_rung(self, tmp_path):
        n = 8
        fitness = [float(i) for i in range(n)]  # point 7 strictly best
        energy = [1.0] * n  # no trade-off: single-point frontier
        result = make_scheduler(
            make_sweep(n), fitness, energy, reduction=2,
            objectives={"fitness": "max"},
        ).run()
        # ceil(8/2)=4 promoted from rung 0, so 4 stop at rung 0
        assert sum(
            1 for s in result.states.values() if s == "pruned:rung0"
        ) == 4
        assert result.states[n - 1] == "survivor"

    def test_frontier_point_with_poor_primary_survives(self):
        """Pareto-aware promotion: the lowest-fitness point is kept when
        it anchors the energy frontier."""
        n = 9
        # Point 0: worst fitness but uniquely cheapest -> non-dominated.
        # A fitness-only top-1/3 cut would drop it at the first rung.
        fitness = [0.0, 5.0, 4.0, 3.0, 2.0, 1.0, 8.0, 7.0, 6.0]
        energy = [0.5] + [10.0] * (n - 1)
        result = make_scheduler(
            make_sweep(n), fitness, energy, reduction=3,
        ).run()
        assert result.states[0] == "survivor", (
            "the energy-frontier anchor was pruned despite being "
            "non-dominated"
        )

    def test_rung_results_are_cached_and_reusable(self, tmp_path):
        n = 6
        fitness = [float(i) for i in range(n)]
        energy = [1.0] * n
        first = make_scheduler(
            make_sweep(n), fitness, energy, cache_dir=tmp_path,
        ).run()
        calls = []

        def counting(point):
            calls.append(point.index)
            return budgeted_evaluator(fitness, energy)(point)

        second = SuccessiveHalvingScheduler(
            make_sweep(n), {"fitness": "max", "energy_j": "min"},
            cache_dir=tmp_path, evaluate=counting,
            evaluator_version="halving-stub-v1",
        ).run()
        assert calls == []  # every rung served from cache
        assert second.states == first.states
        assert all(row["cached"] for row in second.rows)
        for fresh, replay in zip(first.rows, second.rows):
            assert replay["point"] == fresh["point"]
            assert replay["key"] == fresh["key"]
            assert replay["fitness"] == fresh["fitness"]
            assert replay["energy_j"] == fresh["energy_j"]


# -- golden: survivors match the unpruned sweep byte-for-byte ---------------


_METRIC_KEYS = ("fitness", "generations", "converged", "runtime_s",
                "energy_j", "env_steps", "inference_macs")


class TestGoldenSurvivors:
    @pytest.fixture(scope="class")
    def hw_sweep_golden(self):
        return json.loads(
            (GOLDEN_DIR / "hw_sweep_soc_4point.json").read_text()
        )

    def test_survivor_metrics_match_unpruned_golden(self, hw_sweep_golden):
        """The final rung runs at the sweep's full budget, so surviving
        points must reproduce the unpruned golden rows exactly — same
        metrics, same cache keys."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sweep = SweepSpec.from_dict(hw_sweep_golden["sweep"])
        result = run_halving(
            sweep, {"fitness": "max", "energy_j": "min"}, reduction=2,
        )
        golden_by_point = {
            index: (row, key)
            for index, (row, key) in enumerate(
                zip(hw_sweep_golden["rows"], hw_sweep_golden["spec_keys"])
            )
        }
        assert result.rows, "halving left no survivors"
        for row in result.rows:
            golden_row, golden_key = golden_by_point[row["point"]]
            assert row["key"] == golden_key, (
                f"survivor {row['point']} cache key diverged from the "
                "unpruned sweep"
            )
            for key in _METRIC_KEYS:
                assert row[key] == golden_row[key], (
                    f"survivor {row['point']} {key} diverged from the "
                    f"unpruned golden"
                )


# -- the acceptance bound ----------------------------------------------------


class TestBudgetBound:
    def test_64_points_within_half_budget_preserving_frontier(self):
        """The ISSUE acceptance criterion: <= 50% of the full generation
        budget on a 64-point sweep, full-sweep Pareto frontier intact."""
        n = 64
        fitness = [float((i * 37) % n) for i in range(n)]  # shuffled ranks
        energy = [float((i * 11) % n + 1) for i in range(n)]
        sweep = make_sweep(n, max_generations=16)
        objectives = {"fitness": "max", "energy_j": "min"}
        result = make_scheduler(
            sweep, fitness, energy, reduction=4, objectives=objectives,
        ).run()

        assert result.full_generations == 16 * n
        assert result.budget_fraction <= 0.5, (
            f"halving scheduled {result.budget_fraction:.0%} of the "
            "full budget"
        )

        full = SweepRunner(
            sweep,
            evaluate=budgeted_evaluator(fitness, energy),
            evaluator_version="halving-stub-v1",
        ).run()
        full_front = {
            row["point"] for row in full.pareto_front(objectives)
        }
        halving_front = {
            row["point"] for row in result.pareto_front()
        }
        assert full_front == halving_front, (
            "halving lost (or invented) Pareto-frontier points: "
            f"full {sorted(full_front)} vs halved {sorted(halving_front)}"
        )
        # and the frontier survivors carry full-budget metrics
        full_rows = {row["point"]: row for row in full.rows}
        for row in result.rows:
            assert row["fitness"] == full_rows[row["point"]]["fitness"]
