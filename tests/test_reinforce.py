"""Unit tests for the REINFORCE policy-gradient baseline."""

import numpy as np
import pytest

from repro.baselines.reinforce import PolicyNetwork, ReinforceAgent, ReinforceConfig
from repro.envs import BipedalWalkerEnv, CartPoleEnv, make


class TestPolicyNetwork:
    def test_softmax_outputs(self):
        net = PolicyNetwork([4, 8, 3], seed=0)
        probs, _ = net.forward(np.zeros(4))
        assert probs.shape == (1, 3)
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs > 0)

    def test_op_accounting(self):
        net = PolicyNetwork([4, 8, 2], seed=0)
        net.forward(np.zeros((5, 4)))
        assert net.counters.forward_macs == 5 * net.macs_per_forward
        states = np.zeros((5, 4))
        net.policy_gradient_step(states, np.zeros(5, dtype=int), np.ones(5), 0.01)
        assert net.counters.gradient_calcs == net.num_parameters
        assert net.counters.backward_macs > 0

    def test_gradient_step_moves_policy_towards_advantaged_action(self):
        net = PolicyNetwork([2, 2], seed=0)
        state = np.array([[1.0, 0.5]])
        before, _ = net.forward(state)
        # action 0 with positive advantage -> its probability should rise
        for _ in range(50):
            net.policy_gradient_step(state, np.array([0]), np.array([1.0]), 0.1)
        after, _ = net.forward(state)
        assert after[0, 0] > before[0, 0]

    def test_negative_advantage_pushes_away(self):
        net = PolicyNetwork([2, 2], seed=0)
        state = np.array([[1.0, 0.5]])
        before, _ = net.forward(state)
        for _ in range(50):
            net.policy_gradient_step(state, np.array([0]), np.array([-1.0]), 0.1)
        after, _ = net.forward(state)
        assert after[0, 0] < before[0, 0]


class TestReinforceAgent:
    def test_rejects_box_actions(self):
        with pytest.raises(TypeError):
            ReinforceAgent(BipedalWalkerEnv(seed=0))

    def test_returns_discounting(self):
        agent = ReinforceAgent(CartPoleEnv(seed=0), ReinforceConfig(gamma=0.5))
        returns = agent._returns([1.0, 1.0, 1.0])
        assert returns[2] == pytest.approx(1.0)
        assert returns[1] == pytest.approx(1.5)
        assert returns[0] == pytest.approx(1.75)

    def test_train_episode_runs_and_updates(self):
        agent = ReinforceAgent(CartPoleEnv(seed=0),
                               ReinforceConfig(max_steps=40), seed=0)
        total = agent.train_episode(episode_seed=0)
        assert total >= 1.0
        assert agent.policy.counters.updates == 1
        assert agent.env_steps >= 1

    def test_backprop_every_episode(self):
        """The paper's point: RL pays a gradient computation per reward
        batch — every episode triggers a full backward pass."""
        agent = ReinforceAgent(CartPoleEnv(seed=0),
                               ReinforceConfig(max_steps=20), seed=0)
        for episode in range(5):
            agent.train_episode(episode_seed=episode)
        assert agent.policy.counters.updates == 5
        assert agent.policy.counters.gradient_calcs == 5 * agent.policy.num_parameters

    def test_learns_cartpole_modestly(self):
        agent = ReinforceAgent(
            CartPoleEnv(seed=0),
            ReinforceConfig(hidden_sizes=(16,), learning_rate=0.02,
                            max_steps=200),
            seed=1,
        )
        first_five = [agent.train_episode(episode_seed=e) for e in range(5)]
        agent.train(episodes=60)
        last = [agent.greedy_episode(episode_seed=1000 + e) for e in range(5)]
        assert np.mean(last) >= np.mean(first_five) * 0.8  # no collapse
        assert np.mean(last) > 9.0  # visibly better than random flailing

    def test_target_stop(self):
        agent = ReinforceAgent(CartPoleEnv(seed=0),
                               ReinforceConfig(max_steps=30), seed=0)
        agent.train(episodes=50, target=1.0)
        assert len(agent.history) < 50
