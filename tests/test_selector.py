"""Unit tests for the Gene Selector (CPU selection thread)."""

import random

import pytest

from repro.hw.gene_encoding import encode_genome
from repro.hw.selector import GeneSelector
from repro.hw.sram import GenomeBuffer
from repro.neat import NEATConfig


@pytest.fixture
def setup():
    config = NEATConfig.for_env(2, 1, pop_size=12)
    selector = GeneSelector(config, seed=0)
    rng = random.Random(0)
    population = selector.reproduction.create_initial_population(rng)
    buffer = GenomeBuffer()
    for key, genome in population.items():
        buffer.write_genome(key, encode_genome(genome, config.genome))
        buffer.set_fitness(key, float(key))
    return config, selector, population, buffer


def test_select_produces_full_plan(setup):
    config, selector, population, buffer = setup
    outcome = selector.select(population, buffer, generation=0)
    assert outcome.plan is not None
    total = len(outcome.plan.events) + len(outcome.plan.elite_keys)
    assert total == config.pop_size


def test_fitness_read_from_buffer(setup):
    config, selector, population, buffer = setup
    selector.select(population, buffer, generation=0)
    for key, genome in population.items():
        assert genome.fitness == float(key)


def test_parents_above_threshold(setup):
    """Step 7: only individuals above the fitness threshold reproduce."""
    config, selector, population, buffer = setup
    outcome = selector.select(population, buffer, generation=0)
    parent_keys = set()
    for event in outcome.plan.events:
        parent_keys.add(event.parent1_key)
        parent_keys.add(event.parent2_key)
    worst = sorted(population)[: len(population) // 2]
    # the bottom genomes (lowest fitness = lowest keys here) never breed
    cutoff = int(round(len(population) * config.reproduction.survival_threshold))
    allowed = set(sorted(population, key=lambda k: -buffer.get_fitness(k))[: max(2, cutoff)])
    assert parent_keys <= allowed


def test_cpu_cycles_scale_with_population(setup):
    config, selector, population, buffer = setup
    outcome = selector.select(population, buffer, generation=0)
    assert outcome.cpu_cycles == len(population) * GeneSelector.CYCLES_PER_GENOME


def test_species_counted(setup):
    config, selector, population, buffer = setup
    outcome = selector.select(population, buffer, generation=0)
    assert outcome.num_species >= 1


def test_deterministic(setup):
    config, selector, population, buffer = setup
    plans = []
    for _ in range(2):
        selector2 = GeneSelector(config, seed=9)
        outcome = selector2.select(dict(population), buffer, generation=0)
        plans.append(
            [(e.child_key, e.parent1_key, e.parent2_key) for e in outcome.plan.events]
        )
    assert plans[0] == plans[1]
