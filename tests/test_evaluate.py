"""Unit tests for repro.envs.evaluate."""

import numpy as np
import pytest

from repro.envs import (
    CartPoleEnv,
    FitnessEvaluator,
    LunarLanderEnv,
    action_from_outputs,
    make,
    run_episode,
)
from repro.envs.bipedal import BipedalWalkerEnv
from repro.neat import NEATConfig, Population
from repro.neat.network import FeedForwardNetwork


class TestActionTranslation:
    def test_discrete_argmax(self):
        env = LunarLanderEnv(seed=0)
        assert action_from_outputs([0.1, 0.9, 0.3, 0.2], env) == 1

    def test_binary_single_output(self):
        env = CartPoleEnv(seed=0)
        assert action_from_outputs([0.9], env) == 1
        assert action_from_outputs([0.1], env) == 0

    def test_binary_single_output_signed(self):
        env = CartPoleEnv(seed=0)
        assert action_from_outputs([-0.5], env) == 0
        assert action_from_outputs([1.5], env) == 1

    def test_box_clipped(self):
        env = BipedalWalkerEnv(seed=0)
        action = action_from_outputs([5.0, -5.0, 0.5, 0.0], env)
        assert np.all(action <= 1.0) and np.all(action >= -1.0)
        assert action[2] == 0.5

    def test_box_short_outputs_padded_to_full_dimension(self):
        """Regression: a network with fewer outputs than the Box action
        dimension used to yield a silently short action array."""
        env = BipedalWalkerEnv(seed=0)
        flat_dim = env.action_space.flat_dim
        action = action_from_outputs([5.0, -5.0], env)
        assert action.shape == (flat_dim,)
        # Missing dimensions are zero-filled, then clipped into bounds.
        assert action[0] == 1.0 and action[1] == -1.0
        assert np.all(action[2:] == 0.0)
        assert env.action_space.contains(action)

    def test_box_extra_outputs_truncated(self):
        env = BipedalWalkerEnv(seed=0)
        flat_dim = env.action_space.flat_dim
        action = action_from_outputs([0.1] * (flat_dim + 3), env)
        assert action.shape == (flat_dim,)

    def test_discrete_two_output_argmax(self):
        env = CartPoleEnv(seed=0)
        assert action_from_outputs([0.2, 0.8], env) == 1


class TestRunEpisode:
    def make_network(self, env_id="CartPole-v0"):
        env = make(env_id, seed=0)
        config = NEATConfig.for_env(env.num_observations, 2, pop_size=5)
        pop = Population(config, seed=0)
        genome = next(iter(pop.population.values()))
        return FeedForwardNetwork.create(genome, config.genome), env

    def test_episode_runs_and_counts(self):
        network, env = self.make_network()
        env.seed(3)
        result = run_episode(network, env)
        assert result.steps >= 1
        assert result.total_reward == result.steps  # CartPole: +1/step
        assert result.inference_macs == network.num_macs * result.steps

    def test_max_steps_cap(self):
        network, env = self.make_network()
        env.seed(3)
        result = run_episode(network, env, max_steps=3)
        assert result.steps <= 3


class TestFitnessEvaluator:
    def test_assigns_all_fitnesses(self):
        config = NEATConfig.for_env(4, 2, pop_size=8)
        pop = Population(config, seed=0)
        evaluator = FitnessEvaluator("CartPole-v0", episodes=1, seed=0)
        genomes = list(pop.population.values())
        evaluator(genomes, config)
        assert all(g.fitness is not None for g in genomes)

    def test_totals_accumulate(self):
        config = NEATConfig.for_env(4, 2, pop_size=4)
        pop = Population(config, seed=0)
        evaluator = FitnessEvaluator("CartPole-v0", episodes=2, seed=0)
        evaluator(list(pop.population.values()), config)
        assert evaluator.totals.episodes == 8
        assert evaluator.totals.steps >= 8

    def test_deterministic_for_seed(self):
        fits = []
        for _ in range(2):
            config = NEATConfig.for_env(4, 2, pop_size=6)
            pop = Population(config, seed=1)
            evaluator = FitnessEvaluator("CartPole-v0", episodes=1, seed=9)
            genomes = list(pop.population.values())
            evaluator(genomes, config)
            fits.append([g.fitness for g in genomes])
        assert fits[0] == fits[1]

    def test_fitness_transform(self):
        config = NEATConfig.for_env(4, 2, pop_size=4)
        pop = Population(config, seed=0)
        evaluator = FitnessEvaluator(
            "CartPole-v0", episodes=1, seed=0, fitness_transform=lambda f: -f
        )
        genomes = list(pop.population.values())
        evaluator(genomes, config)
        assert all(g.fitness <= 0 for g in genomes)
