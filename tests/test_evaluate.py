"""Unit tests for repro.envs.evaluate."""

import numpy as np
import pytest

from repro.envs import (
    CartPoleEnv,
    FitnessEvaluator,
    LunarLanderEnv,
    action_from_outputs,
    actions_from_outputs_batch,
    make,
    run_episode,
)
from repro.envs.bipedal import BipedalWalkerEnv
from repro.neat import NEATConfig, Population
from repro.neat.network import FeedForwardNetwork


class TestActionTranslation:
    def test_discrete_argmax(self):
        env = LunarLanderEnv(seed=0)
        assert action_from_outputs([0.1, 0.9, 0.3, 0.2], env) == 1

    def test_binary_single_output(self):
        env = CartPoleEnv(seed=0)
        assert action_from_outputs([0.9], env) == 1
        assert action_from_outputs([0.1], env) == 0

    def test_binary_single_output_signed(self):
        env = CartPoleEnv(seed=0)
        assert action_from_outputs([-0.5], env) == 0
        assert action_from_outputs([1.5], env) == 1

    def test_box_clipped(self):
        env = BipedalWalkerEnv(seed=0)
        action = action_from_outputs([5.0, -5.0, 0.5, 0.0], env)
        assert np.all(action <= 1.0) and np.all(action >= -1.0)
        assert action[2] == 0.5

    def test_box_short_outputs_padded_to_full_dimension(self):
        """Regression: a network with fewer outputs than the Box action
        dimension used to yield a silently short action array."""
        env = BipedalWalkerEnv(seed=0)
        flat_dim = env.action_space.flat_dim
        action = action_from_outputs([5.0, -5.0], env)
        assert action.shape == (flat_dim,)
        # Missing dimensions are zero-filled, then clipped into bounds.
        assert action[0] == 1.0 and action[1] == -1.0
        assert np.all(action[2:] == 0.0)
        assert env.action_space.contains(action)

    def test_box_extra_outputs_truncated(self):
        env = BipedalWalkerEnv(seed=0)
        flat_dim = env.action_space.flat_dim
        action = action_from_outputs([0.1] * (flat_dim + 3), env)
        assert action.shape == (flat_dim,)

    def test_discrete_two_output_argmax(self):
        env = CartPoleEnv(seed=0)
        assert action_from_outputs([0.2, 0.8], env) == 1

    def test_discrete_argmax_tie_breaks_to_lowest_index(self):
        """Tied maxima must select the lowest-index unit — an explicit
        contract, not an accident of whichever argmax a backend uses."""
        lunar = LunarLanderEnv(seed=0)
        assert action_from_outputs([0.7, 0.7, 0.3, 0.1], lunar) == 0
        assert action_from_outputs([0.1, 0.7, 0.7, 0.7], lunar) == 1
        assert action_from_outputs([0.5, 0.5, 0.5, 0.5], lunar) == 0
        cart = CartPoleEnv(seed=0)
        assert action_from_outputs([0.4, 0.4], cart) == 0


class TestBatchActionTranslation:
    """actions_from_outputs_batch must agree row-for-row with the scalar
    translator on every supported space."""

    def rows(self, n_rows, n_cols, seed=0):
        rng = np.random.default_rng(seed)
        return rng.uniform(-2.0, 2.0, size=(n_rows, n_cols))

    def test_discrete_multi_output(self):
        env = LunarLanderEnv(seed=0)
        outputs = self.rows(50, 4)
        batch = actions_from_outputs_batch(outputs, env.action_space)
        for i, row in enumerate(outputs):
            assert int(batch[i]) == action_from_outputs(list(row), env)

    def test_discrete_multi_output_ties(self):
        env = LunarLanderEnv(seed=0)
        outputs = np.array([[0.7, 0.7, 0.1, 0.7], [0.2, 0.9, 0.9, 0.1]])
        batch = actions_from_outputs_batch(outputs, env.action_space)
        assert list(batch) == [0, 1]

    def test_discrete_single_output_binary(self):
        env = CartPoleEnv(seed=0)
        outputs = self.rows(50, 1)
        batch = actions_from_outputs_batch(outputs, env.action_space)
        for i, row in enumerate(outputs):
            assert int(batch[i]) == action_from_outputs(list(row), env)

    def test_discrete_single_output_scaled(self):
        env = make("MountainCar-v0")  # Discrete(3)
        outputs = self.rows(50, 1, seed=3)
        batch = actions_from_outputs_batch(outputs, env.action_space)
        for i, row in enumerate(outputs):
            assert int(batch[i]) == action_from_outputs(list(row), env)

    def test_discrete_single_output_scaled_huge_activations(self):
        """Regression: a clamped-exp-sized output (~1e26) must not take
        the int64-cast-overflow path and diverge from the scalar rule."""
        env = make("MountainCar-v0")  # Discrete(3)
        outputs = np.array([[1.142e26], [-3.7e18], [8.0e15], [2.5]])
        batch = actions_from_outputs_batch(outputs, env.action_space)
        for i, row in enumerate(outputs):
            assert int(batch[i]) == action_from_outputs(list(row), env)

    def test_box(self):
        env = BipedalWalkerEnv(seed=0)
        outputs = self.rows(20, env.action_space.flat_dim, seed=1)
        batch = actions_from_outputs_batch(outputs, env.action_space)
        for i, row in enumerate(outputs):
            assert (batch[i] == action_from_outputs(list(row), env)).all()

    def test_box_short_rows_padded(self):
        env = BipedalWalkerEnv(seed=0)
        outputs = self.rows(20, 2, seed=2)
        batch = actions_from_outputs_batch(outputs, env.action_space)
        for i, row in enumerate(outputs):
            assert (batch[i] == action_from_outputs(list(row), env)).all()

    def test_multibinary(self):
        from types import SimpleNamespace

        from repro.envs.spaces import MultiBinary

        space = MultiBinary(3)
        fake_env = SimpleNamespace(action_space=space)
        outputs = self.rows(20, 3, seed=4)
        batch = actions_from_outputs_batch(outputs, space)
        for i, row in enumerate(outputs):
            assert list(batch[i]) == action_from_outputs(list(row), fake_env)

    def test_unsupported_space_rejected(self):
        with pytest.raises(TypeError):
            actions_from_outputs_batch(np.zeros((2, 2)), object())


class TestRunEpisode:
    def make_network(self, env_id="CartPole-v0"):
        env = make(env_id, seed=0)
        config = NEATConfig.for_env(env.num_observations, 2, pop_size=5)
        pop = Population(config, seed=0)
        genome = next(iter(pop.population.values()))
        return FeedForwardNetwork.create(genome, config.genome), env

    def test_episode_runs_and_counts(self):
        network, env = self.make_network()
        env.seed(3)
        result = run_episode(network, env)
        assert result.steps >= 1
        assert result.total_reward == result.steps  # CartPole: +1/step
        assert result.inference_macs == network.num_macs * result.steps

    def test_max_steps_cap(self):
        network, env = self.make_network()
        env.seed(3)
        result = run_episode(network, env, max_steps=3)
        assert result.steps <= 3


class TestFitnessEvaluator:
    def test_assigns_all_fitnesses(self):
        config = NEATConfig.for_env(4, 2, pop_size=8)
        pop = Population(config, seed=0)
        evaluator = FitnessEvaluator("CartPole-v0", episodes=1, seed=0)
        genomes = list(pop.population.values())
        evaluator(genomes, config)
        assert all(g.fitness is not None for g in genomes)

    def test_totals_accumulate(self):
        config = NEATConfig.for_env(4, 2, pop_size=4)
        pop = Population(config, seed=0)
        evaluator = FitnessEvaluator("CartPole-v0", episodes=2, seed=0)
        evaluator(list(pop.population.values()), config)
        assert evaluator.totals.episodes == 8
        assert evaluator.totals.steps >= 8

    def test_deterministic_for_seed(self):
        fits = []
        for _ in range(2):
            config = NEATConfig.for_env(4, 2, pop_size=6)
            pop = Population(config, seed=1)
            evaluator = FitnessEvaluator("CartPole-v0", episodes=1, seed=9)
            genomes = list(pop.population.values())
            evaluator(genomes, config)
            fits.append([g.fitness for g in genomes])
        assert fits[0] == fits[1]

    def test_fitness_transform(self):
        config = NEATConfig.for_env(4, 2, pop_size=4)
        pop = Population(config, seed=0)
        evaluator = FitnessEvaluator(
            "CartPole-v0", episodes=1, seed=0, fitness_transform=lambda f: -f
        )
        genomes = list(pop.population.values())
        evaluator(genomes, config)
        assert all(g.fitness <= 0 for g in genomes)
