"""Unit tests for repro.envs.registry."""

import pytest

from repro.envs import (
    ATARI_SUITE,
    CANONICAL_IDS,
    CLASSIC_SUITE,
    EVALUATION_SUITE,
    Environment,
    UnknownEnvironmentError,
    available,
    make,
    register,
    unregister,
)


def test_all_canonical_ids_instantiable():
    for env_id in CANONICAL_IDS:
        env = make(env_id, seed=0)
        assert isinstance(env, Environment)
        obs = env.reset()
        assert obs.shape[0] == env.num_observations


def test_fuzzy_lookup_matches_paper_spellings():
    # The paper's figure labels use several spellings of the same env.
    for spelling in ("CartPole_v0", "cartpole-v0", "CartPole-v0", "Cartpole v0"):
        assert type(make(spelling)).__name__ == "CartPoleEnv"
    for spelling in ("Alien-ram-v0", "Alien RAM v0", "alien_ram_v0"):
        assert type(make(spelling)).__name__ == "AlienRamEnv"


def test_unknown_env_raises():
    with pytest.raises(UnknownEnvironmentError):
        make("Pong-v0")


def test_available_lists_canonical():
    # Canonical spellings lead the listing, in sorted order; any custom
    # registrations (none here) would follow them.
    assert available()[: len(CANONICAL_IDS)] == sorted(CANONICAL_IDS)


def test_evaluation_suite_is_the_paper_six():
    # The six workloads of Fig. 9/10.
    assert len(EVALUATION_SUITE) == 6
    assert set(EVALUATION_SUITE) <= set(CANONICAL_IDS)


def test_suites_partition_sensibly():
    assert set(CLASSIC_SUITE).isdisjoint(ATARI_SUITE)
    assert len(ATARI_SUITE) == 4


def test_seed_passthrough():
    env1 = make("MountainCar-v0", seed=5)
    env2 = make("MountainCar-v0", seed=5)
    assert (env1.reset() == env2.reset()).all()


def test_register_custom_env():
    class TinyEnv(Environment):
        from repro.envs import Box, Discrete

        observation_space = Box(low=[0.0], high=[1.0])
        action_space = Discrete(2)

        def _reset(self):
            return [0.5]

        def _step(self, action):
            return [0.5], 1.0, True, {}

    register("Tiny-v0", TinyEnv)
    try:
        env = make("Tiny-v0")
        assert env.reset()[0] == 0.5
        # Custom registrations show up after the canonical suite, under
        # the spelling they were registered with.
        assert available() == sorted(CANONICAL_IDS) + ["Tiny-v0"]
        # ... and in the unknown-environment message.
        with pytest.raises(UnknownEnvironmentError, match="Tiny-v0"):
            make("Pong-v0")
    finally:
        unregister("Tiny-v0")
    assert "Tiny-v0" not in available()
    with pytest.raises(UnknownEnvironmentError):
        make("Tiny-v0")
    with pytest.raises(UnknownEnvironmentError):
        unregister("Tiny-v0")
