"""The compiled batch inference engine (:mod:`repro.neat.compiled`).

Covers the three equivalence contracts the ISSUE demands:

* compiled plans match the node-by-node :class:`FeedForwardNetwork`
  reference to 1e-9 on random genomes (hypothesis),
* both match the :mod:`repro.hw.adam` systolic model on the same genome,
* :class:`BatchedEvaluator` assigns fitnesses identical to the scalar
  :class:`FitnessEvaluator` for vectorized and lockstep-fallback
  environments, falling back per-genome when compilation fails.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs.evaluate import FitnessEvaluator
from repro.hw.adam import ADAM, build_inference_plan
from repro.neat import Genome, GenomeConfig, InnovationTracker
from repro.neat.activations import ActivationFunctionSet
from repro.neat.compiled import (
    BatchedEvaluator,
    CompileError,
    StackedPlans,
    compile_network,
    register_vectorized_activation,
    vectorized_activation_names,
)
from repro.neat.network import FeedForwardNetwork

VARIED_ACTIVATIONS = ["tanh", "sigmoid", "relu", "clamped", "gauss", "abs", "sin"]


def evolved(seed, num_inputs=3, num_outputs=2, steps=25, activations=("tanh",)):
    config = GenomeConfig(
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        activation_options=list(activations),
        activation_mutate_rate=0.3 if len(activations) > 1 else 0.05,
    )
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=num_outputs)
    genome = Genome(0)
    genome.configure_new(config, rng)
    for _ in range(steps):
        genome.mutate(config, rng, innovations)
    return genome, config


# ---------------------------------------------------------------------------
# compilation basics


def test_compiled_matches_reference_simple():
    genome, config = evolved(1)
    plan = compile_network(genome, config)
    network = FeedForwardNetwork.create(genome, config)
    inputs = [0.3, -1.2, 0.8]
    assert plan.activate(inputs) == pytest.approx(network.activate(inputs), abs=1e-9)


def test_compiled_macs_match_reference():
    for seed in range(8):
        genome, config = evolved(seed, steps=30)
        plan = compile_network(genome, config)
        network = FeedForwardNetwork.create(genome, config)
        assert plan.num_macs == network.num_macs


def test_activate_batch_rejects_bad_shape():
    genome, config = evolved(2)
    plan = compile_network(genome, config)
    with pytest.raises(ValueError, match="expected"):
        plan.activate_batch(np.zeros((4, 7)))


def test_compile_rejects_non_sum_aggregation():
    genome, config = evolved(3)
    next(iter(genome.nodes.values())).aggregation = "max"
    with pytest.raises(CompileError, match="aggregation"):
        compile_network(genome, config)


def test_compile_rejects_unknown_activation():
    genome, config = evolved(4)
    next(iter(genome.nodes.values())).activation = "weird"
    with pytest.raises(CompileError, match="vectorized twin"):
        compile_network(genome, config)


def test_register_vectorized_activation():
    register_vectorized_activation("doubled", lambda z: 2.0 * z)
    assert "doubled" in vectorized_activation_names()
    with pytest.raises(TypeError):
        register_vectorized_activation("bad", None)


# ---------------------------------------------------------------------------
# vectorized activations mirror the scalar registry


@settings(max_examples=40, deadline=None)
@given(z=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
def test_vectorized_activations_match_scalar(z):
    scalar_set = ActivationFunctionSet()
    from repro.neat.compiled import _VECTORIZED

    for name, fn in _VECTORIZED.items():
        if not scalar_set.is_valid(name):
            continue  # test-registered extras
        expected = scalar_set.get(name)(z)
        observed = float(fn(np.array([z]))[0])
        # abs for the bounded activations, rel for unbounded ones (exp,
        # square, cube grow past where a 1e-9 absolute window is one ulp)
        assert observed == pytest.approx(expected, rel=1e-12, abs=1e-9), name


# ---------------------------------------------------------------------------
# property: compiled == reference == ADAM systolic model


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=1, max_value=5),
    num_outputs=st.integers(min_value=1, max_value=3),
    steps=st.integers(min_value=0, max_value=40),
    data=st.data(),
)
def test_compiled_matches_network_and_adam(seed, num_inputs, num_outputs, steps, data):
    genome, config = evolved(
        seed, num_inputs, num_outputs, steps, activations=VARIED_ACTIVATIONS
    )
    inputs = data.draw(
        st.lists(
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
            min_size=num_inputs,
            max_size=num_inputs,
        )
    )
    network = FeedForwardNetwork.create(genome, config)
    reference = network.activate(inputs)

    plan = compile_network(genome, config)
    compiled = plan.activate(inputs)
    assert compiled == pytest.approx(reference, abs=1e-9)

    adam = ADAM()
    systolic = adam.run(build_inference_plan(genome, config), inputs)
    assert systolic == pytest.approx(reference, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    batch=st.integers(min_value=1, max_value=6),
)
def test_batch_rows_match_row_at_a_time(seed, batch):
    genome, config = evolved(seed, steps=30, activations=VARIED_ACTIVATIONS)
    plan = compile_network(genome, config)
    network = FeedForwardNetwork.create(genome, config)
    rng = np.random.default_rng(seed)
    observations = rng.uniform(-5.0, 5.0, size=(batch, plan.num_inputs))
    packed = plan.activate_batch(observations)
    for row, obs in enumerate(observations):
        assert list(packed[row]) == pytest.approx(
            network.activate(obs.tolist()), abs=1e-9
        )


# ---------------------------------------------------------------------------
# population stacking


def test_stacked_plans_match_individual_plans():
    plans = []
    config = None
    genomes = []
    for seed in range(10):
        genome, config = evolved(seed, steps=20)
        genome.key = seed
        genomes.append(genome)
        plans.append(compile_network(genome, config))
    stacked = StackedPlans(plans)
    runner = stacked.lane_runner(list(range(len(plans))))
    rng = np.random.default_rng(0)
    observations = rng.uniform(-2.0, 2.0, size=(len(plans), plans[0].num_inputs))
    packed = runner.step(observations)
    for i, plan in enumerate(plans):
        expected = plan.activate_batch(observations[i : i + 1])[0]
        assert list(packed[i]) == pytest.approx(list(expected), abs=1e-9)


def test_stacked_plans_empty_rejected():
    with pytest.raises(ValueError):
        StackedPlans([])


def test_lane_runner_prune_keeps_alignment():
    plans = []
    for seed in range(6):
        genome, config = evolved(seed, steps=15)
        plans.append(compile_network(genome, config))
    stacked = StackedPlans(plans)
    runner = stacked.lane_runner(list(range(6)))
    rng = np.random.default_rng(1)
    observations = rng.uniform(-1.0, 1.0, size=(6, plans[0].num_inputs))
    keep = np.array([True, False, True, True, False, True])
    expected = runner.step(observations)[keep]
    runner.prune(keep)
    assert np.allclose(runner.step(observations[keep]), expected, atol=1e-12)


# ---------------------------------------------------------------------------
# the batched evaluator vs the scalar evaluator


def population_genomes(env_id, pop_size, seed=0, generations=2):
    from repro.core.runner import config_for_env
    from repro.neat.population import Population

    config = config_for_env(env_id, pop_size, None)
    population = Population(config, seed=seed)
    evaluator = FitnessEvaluator(env_id, episodes=1, seed=seed, max_steps=40)
    for _ in range(generations):
        population.run_generation(evaluator)
    return config, list(population.population.values())


@pytest.mark.parametrize(
    "env_id", ["CartPole-v0", "MountainCar-v0", "Acrobot-v1"]
)
def test_batched_evaluator_matches_scalar(env_id):
    """Vectorized physics (CartPole/MountainCar) and the lockstep
    fallback (Acrobot) must all reproduce scalar fitnesses exactly."""
    config, genomes = population_genomes(env_id, pop_size=12)
    scalar = FitnessEvaluator(env_id, episodes=2, seed=5, max_steps=50)
    scalar(genomes, config)
    expected = [g.fitness for g in genomes]
    expected_totals = (scalar.totals.episodes, scalar.totals.steps, scalar.totals.macs)

    batched = BatchedEvaluator(env_id, episodes=2, seed=5, max_steps=50)
    batched(genomes, config)
    observed = [g.fitness for g in genomes]
    observed_totals = (
        batched.totals.episodes, batched.totals.steps, batched.totals.macs,
    )
    assert observed == expected
    assert observed_totals == expected_totals


def test_batched_evaluator_generation_counter_advances_seeds():
    """The internal generation counter must advance identically to the
    scalar evaluator's, or second-generation episode seeds diverge."""
    config, genomes = population_genomes("CartPole-v0", pop_size=8)
    scalar = FitnessEvaluator("CartPole-v0", episodes=1, seed=0, max_steps=40)
    scalar(genomes, config)
    scalar(genomes, config)
    expected_gen2 = [g.fitness for g in genomes]
    batched = BatchedEvaluator("CartPole-v0", episodes=1, seed=0, max_steps=40)
    batched(genomes, config)
    batched(genomes, config)
    assert [g.fitness for g in genomes] == expected_gen2


def test_batched_evaluator_falls_back_for_uncompilable_genomes():
    config, genomes = population_genomes("CartPole-v0", pop_size=10)
    # poison two genomes with an aggregation dense plans cannot pack
    for genome in genomes[3:5]:
        next(iter(genome.nodes.values())).aggregation = "max"
        with pytest.raises(CompileError):
            compile_network(genome, config.genome)
    scalar = FitnessEvaluator("CartPole-v0", episodes=1, seed=9, max_steps=40)
    scalar(genomes, config)
    expected = [g.fitness for g in genomes]
    batched = BatchedEvaluator("CartPole-v0", episodes=1, seed=9, max_steps=40)
    batched(genomes, config)
    assert [g.fitness for g in genomes] == expected


def test_batched_evaluator_fitness_transform():
    config, genomes = population_genomes("CartPole-v0", pop_size=6)
    scalar = FitnessEvaluator(
        "CartPole-v0", episodes=1, seed=1, max_steps=30,
        fitness_transform=lambda f: -f,
    )
    scalar(genomes, config)
    expected = [g.fitness for g in genomes]
    batched = BatchedEvaluator(
        "CartPole-v0", episodes=1, seed=1, max_steps=30,
        fitness_transform=lambda f: -f,
    )
    batched(genomes, config)
    assert [g.fitness for g in genomes] == expected
