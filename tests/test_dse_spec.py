"""Unit tests for repro.dse.SweepSpec: axes, expansion, JSON round-trip."""

import warnings

import pytest

from repro.api import ExperimentSpec
from repro.dse import (
    HW_AXES,
    PLATFORM_AXES,
    SPEC_AXES,
    SweepSpec,
    SweepSpecError,
)

BASE = ExperimentSpec("CartPole-v0", max_generations=2, pop_size=10, max_steps=30)


def sweep(**overrides) -> SweepSpec:
    kwargs = {"base": BASE, "axes": {"seed": [0, 1]}}
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestValidation:
    def test_axis_catalogue_covers_spec_and_hardware(self):
        assert "pop_size" in SPEC_AXES
        assert "backend_options" not in SPEC_AXES
        assert "platform" not in SPEC_AXES
        assert "hw.eve_pes" in HW_AXES
        for axis in ("platform.eve_pes", "platform.noc",
                     "platform.scheduler", "platform.adam_shape",
                     "platform.num_eve_pes"):
            assert axis in PLATFORM_AXES

    def test_hw_axes_warn_deprecated(self):
        with pytest.warns(DeprecationWarning, match="platform.eve_pes"):
            sweep(axes={"hw.eve_pes": [8]})

    def test_platform_axes_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sweep(axes={"platform.eve_pes": [8]})

    def test_unknown_axis(self):
        with pytest.raises(SweepSpecError, match="unknown sweep axis"):
            sweep(axes={"warp_factor": [9]})

    def test_empty_axis_values(self):
        with pytest.raises(SweepSpecError, match="non-empty list"):
            sweep(axes={"seed": []})

    def test_duplicate_axis_values(self):
        with pytest.raises(SweepSpecError, match="duplicate"):
            sweep(axes={"seed": [1, 1]})

    def test_non_scalar_axis_value(self):
        with pytest.raises(SweepSpecError, match="JSON scalar"):
            sweep(axes={"seed": [[1, 2]]})

    def test_no_axes(self):
        with pytest.raises(SweepSpecError, match="at least one axis"):
            sweep(axes={})

    def test_bad_strategy(self):
        with pytest.raises(SweepSpecError, match="strategy"):
            sweep(strategy="exhaustive")

    def test_random_needs_samples(self):
        with pytest.raises(SweepSpecError, match="samples"):
            sweep(strategy="random")

    def test_samples_only_for_random(self):
        with pytest.raises(SweepSpecError, match="samples"):
            sweep(samples=4)

    def test_invalid_point_value_reports_point(self):
        bad = sweep(axes={"pop_size": [10, 1]})  # pop_size 1 is invalid
        with pytest.raises(SweepSpecError, match="pop_size"):
            bad.expand()


class TestExpansion:
    def test_grid_is_cartesian_product(self):
        s = sweep(axes={"seed": [0, 1, 2], "episodes": [1, 2]})
        points = s.expand()
        assert len(points) == 6 == s.grid_size()
        combos = {(p.axes["seed"], p.axes["episodes"]) for p in points}
        assert combos == {(s_, e) for s_ in (0, 1, 2) for e in (1, 2)}
        assert [p.index for p in points] == list(range(6))

    def test_spec_fields_applied(self):
        (point,) = sweep(axes={"pop_size": [24]}).expand()
        assert point.spec.pop_size == 24
        assert point.spec.env_id == BASE.env_id

    def test_hw_axes_fold_into_soc_backend_options(self):
        s = sweep(axes={
            "backend": ["soc", "software"],
            "hw.eve_pes": [32],
            "hw.noc": ["p2p"],
            "hw.scheduler": ["greedy"],
            "hw.adam_shape": ["16x16"],
        })
        by_backend = {p.spec.backend: p for p in s.expand()}
        soc = by_backend["soc"].spec
        assert soc.backend_options == {
            "eve_pes": 32, "noc": "p2p", "scheduler": "greedy",
            "adam_shape": "16x16",
        }
        # Hardware axes parameterise the SoC substrate only: on other
        # backends the effective spec is untouched (points collapse in
        # the cache instead of failing in the backend factory).
        assert by_backend["software"].spec.backend_options == {}
        assert by_backend["software"].axes["hw.eve_pes"] == 32

    def test_hw_axes_merge_with_existing_backend_options(self):
        base = BASE.replace(backend="soc", backend_options={"noc": "p2p"})
        (point,) = SweepSpec(
            base=base, axes={"hw.eve_pes": [8]}
        ).expand()
        assert point.spec.backend_options == {"noc": "p2p", "eve_pes": 8}

    def test_platform_axes_embed_soc_platform_spec(self):
        s = sweep(axes={
            "backend": ["soc", "software"],
            "platform.eve_pes": [32],
            "platform.noc": ["p2p"],
        })
        by_backend = {p.spec.backend: p for p in s.expand()}
        soc = by_backend["soc"].spec
        assert soc.platform is not None
        assert soc.platform.kind == "soc"
        assert soc.platform.params.eve_pes == 32
        assert soc.platform.params.noc == "p2p"
        assert soc.backend_options == {}  # declarative, not knob folding
        # platform axes parameterise hardware substrates only: the
        # software point's effective spec is untouched and collapses in
        # the cache.
        assert by_backend["software"].spec.platform is None
        assert by_backend["software"].axes["platform.eve_pes"] == 32

    def test_platform_axes_update_embedded_platform(self):
        base = BASE.replace(
            backend="soc",
            platform={"kind": "soc", "params": {"scheduler": "round-robin"}},
        )
        (point,) = SweepSpec(
            base=base, axes={"platform.eve_pes": [16]}
        ).expand()
        assert point.spec.platform.params.eve_pes == 16
        assert point.spec.platform.params.scheduler == "round-robin"

    def test_platform_axes_derive_analytical_variant(self):
        base = BASE.replace(backend="analytical:GENESYS")
        points = SweepSpec(
            base=base, axes={"platform.num_eve_pes": [64, 256]}
        ).expand()
        assert [p.spec.platform.params.num_eve_pes for p in points] == [64, 256]
        assert all(p.spec.backend == "analytical" for p in points)
        assert all(p.spec.platform.name == "GENESYS" for p in points)

    def test_platform_axes_filter_by_kind(self):
        # eve_pes is a soc param, not a genesys one: the analytical
        # point is untouched (and would collapse in the cache).
        base = BASE.replace(backend="analytical:GENESYS")
        (point,) = SweepSpec(
            base=base, axes={"platform.eve_pes": [64]}
        ).expand()
        assert point.spec == base

    def test_platform_axis_invalid_value_reports_point(self):
        base = BASE.replace(backend="soc")
        bad = SweepSpec(base=base, axes={"platform.noc": ["p2p", "torus"]})
        with pytest.raises(SweepSpecError, match="torus"):
            bad.expand()

    def test_unknown_platform_axis_field(self):
        with pytest.raises(SweepSpecError, match="unknown sweep axis"):
            sweep(axes={"platform.warp_factor": [9]})

    def test_random_sampling_is_seeded_and_within_grid(self):
        s = sweep(
            axes={"seed": [0, 1, 2, 3], "episodes": [1, 2]},
            strategy="random", samples=5, sample_seed=7,
        )
        first = [p.axes for p in s.expand()]
        second = [p.axes for p in s.expand()]
        assert first == second
        assert 1 <= len(first) <= 5
        for axes in first:
            assert axes["seed"] in (0, 1, 2, 3)
            assert axes["episodes"] in (1, 2)

    def test_random_sampling_collapses_duplicates(self):
        s = sweep(axes={"seed": [0]}, strategy="random", samples=10)
        assert len(s.expand()) == 1


class TestRoundTrip:
    def test_json_round_trip(self):
        s = sweep(axes={"seed": [0, 1], "hw.eve_pes": [16, 256]})
        clone = SweepSpec.from_json(s.to_json())
        assert clone == s

    def test_save_load(self, tmp_path):
        path = tmp_path / "sweep.json"
        s = sweep(strategy="random", samples=3, sample_seed=9)
        s.save(path)
        assert SweepSpec.load(path) == s

    def test_from_dict_requires_base(self):
        with pytest.raises(SweepSpecError, match="base"):
            SweepSpec.from_dict({"axes": {"seed": [0]}})

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SweepSpecError, match="unknown sweep fields"):
            SweepSpec.from_dict({
                "base": BASE.to_dict(), "axes": {"seed": [0]}, "turbo": True,
            })

    def test_from_json_rejects_non_object(self):
        with pytest.raises(SweepSpecError, match="object"):
            SweepSpec.from_json("[1, 2]")

    def test_invalid_json(self):
        with pytest.raises(SweepSpecError, match="invalid sweep JSON"):
            SweepSpec.from_json("{nope")
