"""Unit tests for the clock/power gating model (Section VI-D)."""

import pytest

from repro.hw.energy import (
    CLOCK_GATED_POWER_FRACTION,
    POWER_GATED_POWER_FRACTION,
    gated_power,
    roofline_power,
)


def test_always_computing_equals_roofline():
    est = gated_power(compute_seconds=1.0, interaction_seconds=0.0)
    assert est.duty_cycle == 1.0
    assert est.average_power_mw == pytest.approx(roofline_power(256).total_mw)


def test_mostly_idle_approaches_gated_floor():
    est = gated_power(compute_seconds=1e-6, interaction_seconds=1.0, mode="clock")
    floor = roofline_power(256).total_mw * CLOCK_GATED_POWER_FRACTION
    assert est.average_power_mw == pytest.approx(floor, rel=0.01)


def test_power_gating_beats_clock_gating():
    clock = gated_power(0.001, 0.099, mode="clock")
    power = gated_power(0.001, 0.099, mode="power")
    none = gated_power(0.001, 0.099, mode="none")
    assert power.average_power_mw < clock.average_power_mw < none.average_power_mw


def test_lower_compute_window_saves_energy_rate():
    """Section VI-D: 'The lower the compute window for GENESYS the more
    time is used to interact with the environment thus saving more
    energy' — average power falls as the compute window shrinks."""
    slow_compute = gated_power(0.010, 0.090)
    fast_compute = gated_power(0.001, 0.099)
    assert fast_compute.average_power_mw < slow_compute.average_power_mw


def test_energy_per_generation():
    est = gated_power(0.002, 0.098, mode="clock")
    expected = est.average_power_mw * 1e-3 * 0.1
    assert est.energy_per_generation_j == pytest.approx(expected)


def test_scales_with_pe_count():
    small = gated_power(0.001, 0.099, num_eve_pes=16)
    large = gated_power(0.001, 0.099, num_eve_pes=512)
    assert small.average_power_mw < large.average_power_mw


def test_unknown_mode_raises():
    with pytest.raises(ValueError):
        gated_power(1.0, 1.0, mode="quantum")


def test_none_mode_duty_independent():
    a = gated_power(0.5, 0.5, mode="none")
    b = gated_power(0.1, 0.9, mode="none")
    assert a.average_power_mw == pytest.approx(b.average_power_mw)
