"""Unit tests for the closed-loop runners."""

import pytest

from repro.core.runner import (
    config_for_env,
    evolve_on_hardware,
    evolve_software,
)


def test_config_for_env_uses_env_spaces():
    config = config_for_env("LunarLander-v2", pop_size=10)
    assert config.genome.num_inputs == 8
    assert config.genome.num_outputs == 4
    assert config.fitness_threshold == 200.0  # env solve threshold


def test_config_for_env_explicit_threshold():
    config = config_for_env("CartPole-v0", fitness_threshold=123.0)
    assert config.fitness_threshold == 123.0


def test_software_run_cartpole_converges():
    result = evolve_software(
        "CartPole-v0", max_generations=15, pop_size=40, episodes=1, seed=2
    )
    assert result.best_genome.fitness >= 100.0
    assert result.converged
    assert result.generations <= 15


def test_software_run_records_statistics():
    result = evolve_software(
        "MountainCar-v0", max_generations=3, pop_size=20, seed=0, max_steps=100
    )
    stats = result.population.statistics.generations
    assert len(stats) == result.generations


def test_hardware_run_cartpole_converges():
    """Closed-loop evolution through EvE/ADAM still learns (the headline
    functional claim: evolution entirely in hardware)."""
    result = evolve_on_hardware(
        "CartPole-v0", max_generations=15, pop_size=40, episodes=1, seed=2
    )
    assert result.best_genome.fitness >= 100.0
    assert result.converged


def test_hardware_run_accounting():
    result = evolve_on_hardware(
        "CartPole-v0", max_generations=3, pop_size=16, seed=0, max_steps=50,
        fitness_threshold=1e9,
    )
    assert result.generations == 3
    assert result.total_energy_j > 0
    assert result.total_cycles > 0
    assert len(result.reports) == 3


def test_hardware_run_energy_scales_with_generations():
    short = evolve_on_hardware(
        "CartPole-v0", max_generations=1, pop_size=16, seed=0, max_steps=50,
        fitness_threshold=1e9,
    )
    long = evolve_on_hardware(
        "CartPole-v0", max_generations=4, pop_size=16, seed=0, max_steps=50,
        fitness_threshold=1e9,
    )
    assert long.total_energy_j > short.total_energy_j
