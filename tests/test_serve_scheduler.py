"""Scheduler tests: preemption determinism, retries, cancel, reclaim.

The centrepiece is the golden test the subsystem is built around: a job
preempted at two different checkpoint boundaries and resumed each time
must leave a run directory *byte-identical* — every file, including
``metrics.jsonl``, ``champion.json``, ``result.json`` and all
checkpoints — to a single uninterrupted :func:`repro.runs.run_in_dir`
of the same spec, across the serial and pooled evaluation paths.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import ExperimentSpec
from repro.runs import run_in_dir
from repro.runs.locking import RunDirLock
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    PREEMPTED,
    QUEUED,
    RUNNING,
    JobStore,
    Scheduler,
)

pytestmark = pytest.mark.slow


def spec_for(**overrides):
    defaults = dict(
        env_id="CartPole-v0", max_generations=8, pop_size=16, seed=5,
        max_steps=60,
        # Keep the run from converging mid-test: preemption needs the
        # full generation budget to exercise both boundaries.
        fitness_threshold=1e9,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def run_slice(scheduler, store, job_id):
    """Dispatch one slice and reap its outcome (deterministically: the
    worker is joined before the reap, so there is no polling race)."""
    scheduler.step()
    proc = scheduler._procs[job_id]
    proc.join()
    scheduler._reap()
    return store.load(job_id)


def tree_bytes(root):
    root = Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


@pytest.mark.parametrize("workers", [1, 2], ids=["serial", "pool2"])
def test_preempted_job_is_byte_identical_to_uninterrupted_run(
    tmp_path, workers
):
    spec = spec_for(workers=workers)
    store = JobStore(tmp_path / "root")
    record = store.submit(spec, checkpoint_every=2)
    scheduler = Scheduler(store, workers=1, poll_interval=0.05)

    # Preempt at two successive checkpoint boundaries: the flag is set
    # before dispatch, so each slice yields at its first boundary.
    for expected_generation in (2, 4):
        store.request_preempt(record.id)
        state = run_slice(scheduler, store, record.id)
        assert state.state == PREEMPTED
        assert state.generations_done == expected_generation

    scheduler.run_until_idle(timeout=300)
    final = store.load(record.id)
    assert final.state == DONE
    assert final.generations_done == spec.max_generations

    reference = tmp_path / "reference"
    run_in_dir(spec, reference, checkpoint_every=2)
    assert tree_bytes(store.run_dir(record.id).path) == tree_bytes(reference)

    events = [row["event"] for row in store.read_events(record.id)]
    assert events == [
        "submitted",
        "started", "preempted",
        "resumed", "preempted",
        "resumed", "done",
    ]


def test_higher_priority_submission_preempts_running_job(tmp_path):
    """The end-to-end scheduling story: with one worker slot occupied by
    a low-priority job, a high-priority submission forces a preemption
    at the next checkpoint boundary, runs to completion first, and the
    victim then resumes and completes."""
    store = JobStore(tmp_path / "root")
    low = store.submit(spec_for(max_generations=6), checkpoint_every=2)
    scheduler = Scheduler(store, workers=1, poll_interval=0.02)
    scheduler.step()
    assert store.load(low.id).state == RUNNING

    high = store.submit(
        spec_for(max_generations=2, seed=9), priority=10, checkpoint_every=2
    )
    scheduler.run_until_idle(timeout=300)

    assert store.load(low.id).state == DONE
    assert store.load(high.id).state == DONE
    low_events = [row["event"] for row in store.read_events(low.id)]
    assert "preempt_requested" in low_events
    assert "preempted" in low_events
    assert "resumed" in low_events
    # The challenger finished while the victim was parked.
    preempted_at = min(
        row["ts"] for row in store.read_events(low.id)
        if row["event"] == "preempted"
    )
    high_done_at = max(
        row["ts"] for row in store.read_events(high.id)
        if row["event"] == "done"
    )
    low_done_at = max(
        row["ts"] for row in store.read_events(low.id)
        if row["event"] == "done"
    )
    assert preempted_at < high_done_at < low_done_at


def test_failed_job_retries_with_backoff_then_fails(tmp_path):
    store = JobStore(tmp_path / "root")
    # An unknown environment passes spec validation but dies at runtime.
    record = store.submit(
        {"env_id": "NoSuchEnv-v0", "max_generations": 2, "pop_size": 4},
        max_retries=1,
    )
    scheduler = Scheduler(
        store, workers=1, poll_interval=0.02, backoff_base=0.05
    )
    state = run_slice(scheduler, store, record.id)
    assert state.state == QUEUED  # first failure: requeued with backoff
    assert state.attempts == 1
    assert state.not_before > time.time() - 1.0
    assert "NoSuchEnv-v0" in state.error

    scheduler.run_until_idle(timeout=60)
    final = store.load(record.id)
    assert final.state == FAILED
    assert final.attempts == 2
    assert final.reclaims == 0  # crashes are retries, never reclaims
    events = [row["event"] for row in store.read_events(record.id)]
    assert "retry_scheduled" in events
    assert events[-1] == "failed"


def test_cancel_running_job_lands_at_checkpoint_boundary(tmp_path):
    store = JobStore(tmp_path / "root")
    record = store.submit(spec_for(), checkpoint_every=2)
    scheduler = Scheduler(store, workers=1, poll_interval=0.02)
    scheduler.step()
    store.request_cancel(record.id)
    scheduler.run_until_idle(timeout=300)
    final = store.load(record.id)
    assert final.state == CANCELLED
    # It stopped at a cadence boundary, not wherever the flag landed.
    assert final.generations_done % 2 == 0
    assert final.generations_done < spec_for().max_generations
    assert not store.cancel_requested(record.id)


def test_reclaim_requeues_job_with_stale_lock(tmp_path):
    store = JobStore(tmp_path / "root")
    record = store.submit(spec_for())
    # Simulate a scheduler that died mid-run: the record says running,
    # no worker exists here, and the run-dir lock heartbeat is ancient.
    store.transition(record.id, RUNNING, worker_pid=1)
    rd = store.run_dir(record.id)
    rd.create()
    (rd.path / "run.lock").write_text(json.dumps({
        "pid": 999999999,  # no such process
        "host": os.uname().nodename,
        "acquired_at": time.time() - 3600.0,
        "heartbeat_at": time.time() - 3600.0,
    }))

    scheduler = Scheduler(store, workers=1, poll_interval=0.02,
                          stale_after=5.0)
    scheduler._reclaim(store.list_jobs())
    state = store.load(record.id)
    assert state.state == QUEUED
    # Reclaims have their own ledger: the job lost its worker through no
    # fault of its own, so its retry budget is untouched.
    assert state.reclaims == 1
    assert state.attempts == 0
    events = [row["event"] for row in store.read_events(record.id)]
    assert "reclaimed" in events


def test_reclaim_leaves_live_lock_alone(tmp_path):
    store = JobStore(tmp_path / "root")
    record = store.submit(spec_for())
    store.transition(record.id, RUNNING, worker_pid=os.getpid())
    rd = store.run_dir(record.id)
    rd.create()
    with RunDirLock(rd.path):  # fresh heartbeat, live pid
        scheduler = Scheduler(store, workers=1, stale_after=60.0)
        scheduler._reclaim(store.list_jobs())
        assert store.load(record.id).state == RUNNING


def test_terminated_worker_after_preempt_is_reclaimed_not_retried(tmp_path):
    """The shutdown path: a worker that missed its checkpoint grace and
    was terminated exits nonzero *with the preempt flag set and no
    traceback* — that is the scheduler's doing, not a job fault, so it
    must requeue as a reclaim and never consume the retry budget."""
    store = JobStore(tmp_path / "root")
    record = store.submit(
        spec_for(max_generations=30), checkpoint_every=5, max_retries=0
    )
    scheduler = Scheduler(store, workers=1, poll_interval=0.02)
    scheduler.step()
    store.request_preempt(record.id)
    proc = scheduler._procs[record.id]
    proc.terminate()  # what shutdown(grace=...) does to stragglers
    proc.join()
    scheduler._reap()

    state = store.load(record.id)
    assert state.state == QUEUED  # not FAILED, despite max_retries=0
    assert state.reclaims == 1
    assert state.attempts == 0
    assert not store.preempt_requested(record.id)
    events = [row["event"] for row in store.read_events(record.id)]
    assert events[-1] == "reclaimed"
    assert scheduler._m_reclaims.value() == 1
    assert scheduler._m_retries.value() == 0

    # ...and the job still finishes on a later scheduler pass.
    scheduler.run_until_idle(timeout=300)
    final = store.load(record.id)
    assert final.state == DONE


def test_crash_with_preempt_flag_is_still_a_retry(tmp_path):
    """The inverse pin: a worker that *raised* (error.txt present) is a
    genuine failure even if a preempt flag happened to be set — the
    reclaim branch must not swallow real crashes."""
    store = JobStore(tmp_path / "root")
    record = store.submit(
        {"env_id": "NoSuchEnv-v0", "max_generations": 2, "pop_size": 4},
        max_retries=0,
    )
    scheduler = Scheduler(store, workers=1, poll_interval=0.02)
    scheduler.step()
    store.request_preempt(record.id)
    proc = scheduler._procs[record.id]
    proc.join()  # dies on its own: unknown environment
    scheduler._reap()
    final = store.load(record.id)
    assert final.state == FAILED
    assert final.attempts == 1
    assert final.reclaims == 0
    assert "NoSuchEnv-v0" in final.error


def test_soc_jobs_run_but_are_never_preemption_victims(tmp_path):
    store = JobStore(tmp_path / "root")
    soc = store.submit(
        ExperimentSpec("CartPole-v0", backend="soc", max_generations=2,
                       pop_size=10, seed=3, max_steps=40),
    )
    scheduler = Scheduler(store, workers=1, poll_interval=0.05)
    # A high-priority challenger appears while the soc job runs; the
    # scheduler must not flag the soc job (it cannot resume).
    scheduler.step()
    challenger = store.submit(spec_for(max_generations=2), priority=99)
    scheduler._maybe_preempt(store.list_jobs())
    assert not store.preempt_requested(soc.id)
    scheduler.run_until_idle(timeout=300)
    assert store.load(soc.id).state == DONE
    assert store.load(challenger.id).state == DONE
