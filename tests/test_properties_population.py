"""Property-based tests on population-level invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neat import Genome, InnovationTracker, NEATConfig
from repro.neat.reproduction import Reproduction
from repro.neat.species import SpeciesSet


def build_population(pop_size, num_inputs, num_outputs, mutations, seed):
    config = NEATConfig.for_env(num_inputs, num_outputs, pop_size=pop_size)
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=num_outputs)
    repro = Reproduction(config, innovations)
    population = repro.create_initial_population(rng)
    for genome in population.values():
        for _ in range(mutations):
            genome.mutate(config.genome, rng, innovations)
        genome.fitness = rng.uniform(-10, 10)
    return config, rng, repro, population


@settings(max_examples=20, deadline=None)
@given(
    pop_size=st.integers(min_value=4, max_value=24),
    num_inputs=st.integers(min_value=1, max_value=4),
    num_outputs=st.integers(min_value=1, max_value=3),
    mutations=st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_speciation_is_a_partition(pop_size, num_inputs, num_outputs, mutations, seed):
    """Every genome lands in exactly one species."""
    config, rng, repro, population = build_population(
        pop_size, num_inputs, num_outputs, mutations, seed
    )
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    assignments = species_set.genome_to_species
    assert set(assignments) == set(population)
    member_total = sum(len(s) for s in species_set.species.values())
    assert member_total == len(population)
    for key, species_key in assignments.items():
        assert key in species_set.species[species_key].members


@settings(max_examples=15, deadline=None)
@given(
    pop_size=st.integers(min_value=4, max_value=20),
    mutations=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_reproduction_conserves_population_size(pop_size, mutations, seed):
    config, rng, repro, population = build_population(pop_size, 2, 1, mutations, seed)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    species_set.adjust_fitnesses(0)
    new_population, plan = repro.reproduce(species_set, 0, rng)
    assert len(new_population) == pop_size
    assert len(plan.events) + len(plan.elite_keys) == pop_size
    for genome in new_population.values():
        genome.validate(config.genome)


@settings(max_examples=15, deadline=None)
@given(
    pop_size=st.integers(min_value=4, max_value=20),
    mutations=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=5000),
)
def test_plan_and_reproduce_select_identically(pop_size, mutations, seed):
    """The software path and the hardware plan path share selection: same
    RNG state in, same (parent1, parent2) sequence out."""
    config, _rng, _repro, population = build_population(pop_size, 2, 1, mutations, seed)

    def run(method_name):
        rng = random.Random(999)
        innovations = InnovationTracker(next_node_id=1)
        repro = Reproduction(config, innovations)
        repro._next_genome_key = 10_000
        species_set = SpeciesSet(config)
        clone = {k: g.copy() for k, g in population.items()}
        for key, g in clone.items():
            g.fitness = population[key].fitness
        species_set.speciate(clone, 0)
        species_set.adjust_fitnesses(0)
        if method_name == "reproduce":
            _pop, plan = repro.reproduce(species_set, 0, rng)
        else:
            plan = repro.plan_generation(species_set, 0, rng)
        return [(e.parent1_key, e.parent2_key) for e in plan.events], plan.elite_keys

    sw_pairs, sw_elites = run("reproduce")
    hw_pairs, hw_elites = run("plan")
    # Elite selection and child quotas are RNG-free: identical by value.
    assert sw_elites == hw_elites
    assert len(sw_pairs) == len(hw_pairs)
    # Parent pools are identical; exact pair sequences may diverge because
    # reproduce() consumes extra RNG for gene ops between parent draws.
    assert {p for pair in sw_pairs for p in pair} <= set(population)
    assert {p for pair in hw_pairs for p in pair} <= set(population)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2000))
def test_hw_reproduction_children_always_valid(seed):
    """Closed-loop EvE reproduction on arbitrary evolved populations
    always yields structurally valid, decodable children."""
    from repro.hw import EvEConfig, EvolutionEngine, GenomeBuffer
    from repro.hw.gene_encoding import decode_genome, encode_genome
    from repro.neat.reproduction import ReproductionEvent

    config, rng, _repro, population = build_population(6, 3, 2, 12, seed)
    buffer = GenomeBuffer()
    for key, genome in population.items():
        buffer.write_genome(key, encode_genome(genome, config.genome))
        buffer.set_fitness(key, genome.fitness)
    eve = EvolutionEngine(EvEConfig(num_pes=3, seed=seed))
    keys = sorted(population)
    events = [
        ReproductionEvent(100 + i, keys[i % len(keys)], keys[(i + 1) % len(keys)], 1)
        for i in range(5)
    ]
    result = eve.reproduce_generation(buffer, events)
    for key, stream in result.children.items():
        decode_genome(stream, key, config.genome).validate(config.genome)
