"""Unit tests for the topology visualisation helpers."""

import random

import pytest

from repro.analysis.netviz import connection_matrix, describe_genome, sparsity
from repro.neat import Genome, GenomeConfig, InnovationTracker


@pytest.fixture
def config():
    return GenomeConfig(num_inputs=2, num_outputs=1)


@pytest.fixture
def genome(config):
    rng = random.Random(0)
    innovations = InnovationTracker(next_node_id=1)
    g = Genome(3)
    g.configure_new(config, rng)
    g.fitness = 12.5
    for _ in range(3):
        g.mutate_add_node(config, rng, innovations)
    return g


def test_describe_contains_summary(genome, config):
    text = describe_genome(genome, config)
    assert "Genome 3" in text
    assert "fitness 12.500" in text
    assert "layer 1" in text
    assert "inputs: [-1, -2]" in text


def test_describe_marks_outputs_and_hidden(genome, config):
    text = describe_genome(genome, config)
    assert "out0(" in text
    assert "hid" in text


def test_describe_reports_fan_in(genome, config):
    text = describe_genome(genome, config)
    assert "fan_in=" in text


def test_describe_handles_unconnected(config):
    g = Genome(0)
    g.configure_new(
        GenomeConfig(num_inputs=2, num_outputs=1, initial_connection="none"),
        random.Random(0),
    )
    text = describe_genome(g, config)
    assert "layer 1" in text


def test_matrix_symbols(genome, config):
    next(iter(genome.connections.values())).enabled = False
    matrix = connection_matrix(genome, config)
    assert "#" in matrix  # enabled
    assert "o" in matrix  # disabled
    assert "." in matrix  # absent


def test_sparsity_bounds(genome, config):
    value = sparsity(genome, config)
    assert 0.0 < value <= 1.0


def test_sparsity_dense_initial(config):
    g = Genome(0)
    g.configure_new(config, random.Random(0))
    # initial: 2 inputs x 1 output fully connected; dense grid is 3x1
    assert sparsity(g, config) == pytest.approx(2 / 3)


def test_sparsity_empty():
    config = GenomeConfig(num_inputs=1, num_outputs=1, initial_connection="none")
    g = Genome(0)
    g.configure_new(config, random.Random(0))
    assert sparsity(g, config) == 0.0
