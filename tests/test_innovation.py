"""Unit tests for repro.neat.innovation."""

from repro.neat.innovation import InnovationTracker


def test_split_ids_deduplicated_within_generation():
    tracker = InnovationTracker(next_node_id=5)
    a = tracker.get_split_node_id(1, 2)
    b = tracker.get_split_node_id(1, 2)
    assert a == b == 5


def test_different_splits_get_different_ids():
    tracker = InnovationTracker(next_node_id=0)
    a = tracker.get_split_node_id(1, 2)
    b = tracker.get_split_node_id(2, 3)
    assert a != b


def test_new_generation_clears_cache_but_ids_monotonic():
    tracker = InnovationTracker(next_node_id=0)
    a = tracker.get_split_node_id(1, 2)
    tracker.new_generation()
    b = tracker.get_split_node_id(1, 2)
    assert b > a


def test_fresh_node_id_increments():
    tracker = InnovationTracker(next_node_id=3)
    assert tracker.fresh_node_id() == 3
    assert tracker.fresh_node_id() == 4


def test_reserve_through():
    tracker = InnovationTracker(next_node_id=0)
    tracker.reserve_through(10)
    assert tracker.fresh_node_id() == 11


def test_reserve_through_noop_when_lower():
    tracker = InnovationTracker(next_node_id=20)
    tracker.reserve_through(5)
    assert tracker.next_node_id == 20
