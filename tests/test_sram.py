"""Unit tests for the Genome Buffer SRAM model."""

import pytest

from repro.hw.gene_encoding import pack_connection
from repro.hw.sram import GenomeBuffer, SRAMConfig


def make_stream(n, base=0):
    return [pack_connection(-1, base + i, 1.0, True) for i in range(n)]


@pytest.fixture
def buffer():
    return GenomeBuffer()


class TestConfig:
    def test_paper_capacity(self):
        # Fig. 8a: 48 banks x 4096 x 64 bits = 1.5 MB.
        config = SRAMConfig()
        assert config.capacity_bytes == 48 * 4096 * 8
        assert config.capacity_bytes == int(1.5 * 1024 * 1024)


class TestReadWrite:
    def test_write_then_read(self, buffer):
        stream = make_stream(10)
        buffer.write_genome(1, stream)
        assert buffer.read_genome(1) == stream

    def test_write_counts_words(self, buffer):
        buffer.write_genome(1, make_stream(10))
        assert buffer.stats.writes == 10

    def test_read_counts_words(self, buffer):
        buffer.write_genome(1, make_stream(10))
        buffer.read_genome(1)
        assert buffer.stats.reads == 10

    def test_peek_does_not_count(self, buffer):
        buffer.write_genome(1, make_stream(10))
        buffer.peek_genome(1)
        assert buffer.stats.reads == 0

    def test_missing_genome_raises(self, buffer):
        with pytest.raises(KeyError):
            buffer.read_genome(99)

    def test_overwrite_replaces(self, buffer):
        buffer.write_genome(1, make_stream(10))
        buffer.write_genome(1, make_stream(4, base=50))
        assert buffer.genome_length(1) == 4
        assert buffer.words_used == 4

    def test_incremental_gene_write(self, buffer):
        stream = make_stream(3)
        for i, gene in enumerate(stream):
            buffer.write_gene(2, i, gene)
        assert buffer.read_genome(2) == stream

    def test_non_contiguous_write_raises(self, buffer):
        with pytest.raises(IndexError):
            buffer.write_gene(1, 5, make_stream(1)[0])

    def test_delete_frees_space(self, buffer):
        buffer.write_genome(1, make_stream(10))
        buffer.delete_genome(1)
        assert buffer.words_used == 0
        assert 1 not in buffer.resident_genomes()

    def test_clear(self, buffer):
        buffer.write_genome(1, make_stream(5))
        buffer.set_fitness(1, 3.0)
        buffer.clear()
        assert buffer.resident_genomes() == []
        assert buffer.words_used == 0


class TestBanking:
    def test_reads_spread_across_banks(self, buffer):
        buffer.write_genome(1, make_stream(96))
        buffer.read_genome(1)
        # 96 words over 48 banks word-interleaved: 2 reads per bank.
        assert len(buffer.stats.reads_per_bank) == 48
        assert all(v == 2 for v in buffer.stats.reads_per_bank.values())

    def test_genomes_start_at_different_banks(self, buffer):
        buffer.write_genome(1, make_stream(1))
        buffer.write_genome(2, make_stream(1))
        bank1 = next(iter(buffer.stats.writes_per_bank))
        buffer.read_genome(1)
        buffer.read_genome(2)
        assert len(buffer.stats.reads_per_bank) == 2


class TestFitness:
    def test_set_get(self, buffer):
        buffer.write_genome(1, make_stream(2))
        buffer.set_fitness(1, 7.5)
        assert buffer.get_fitness(1) == 7.5

    def test_set_counts_a_write(self, buffer):
        buffer.write_genome(1, make_stream(2))
        writes = buffer.stats.writes
        buffer.set_fitness(1, 1.0)
        assert buffer.stats.writes == writes + 1

    def test_set_on_missing_raises(self, buffer):
        with pytest.raises(KeyError):
            buffer.set_fitness(42, 1.0)

    def test_fitnesses_dict(self, buffer):
        buffer.write_genome(1, make_stream(1))
        buffer.write_genome(2, make_stream(1))
        buffer.set_fitness(1, 1.0)
        buffer.set_fitness(2, 2.0)
        assert buffer.fitnesses() == {1: 1.0, 2: 2.0}


class TestOverflow:
    def test_spill_to_dram_counted(self):
        config = SRAMConfig(num_banks=2, bank_depth=4)  # 8 words capacity
        buffer = GenomeBuffer(config)
        buffer.write_genome(1, make_stream(6))
        assert buffer.stats.dram_writes == 0
        buffer.write_genome(2, make_stream(6))
        assert buffer.overflowing
        assert buffer.stats.dram_writes == 4  # words 9-12

    def test_bytes_used(self, buffer):
        buffer.write_genome(1, make_stream(10))
        assert buffer.bytes_used == 80


class TestStatsWindow:
    def test_reset_stats(self, buffer):
        buffer.write_genome(1, make_stream(3))
        old = buffer.reset_stats()
        assert old.writes == 3
        assert buffer.stats.writes == 0

    def test_merge(self, buffer):
        buffer.write_genome(1, make_stream(3))
        a = buffer.reset_stats()
        buffer.read_genome(1)
        b = buffer.reset_stats()
        a.merge(b)
        assert a.writes == 3 and a.reads == 3
        assert a.total_accesses == 6
