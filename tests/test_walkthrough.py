"""Walkthrough fidelity: Section IV-B's ten steps, observably.

Each test pins one step of the paper's execution sequence to a concrete,
observable effect in the SoC model, so the simulated dataflow can be
audited against the paper text step by step.
"""

import pytest

from repro.core import GeneSysConfig, GeneSysSoC, config_for_env
from repro.hw import EvEConfig, decode_genome


@pytest.fixture
def soc():
    neat = config_for_env("CartPole-v0", pop_size=12)
    config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=4), seed=1)
    soc = GeneSysSoC(config, "CartPole-v0", episodes=1, max_steps=40)
    soc.initialise_population()
    return soc


def test_step1_genomes_read_from_buffer_for_mapping(soc):
    """Step 1: genomes are read from the genome buffer SRAM."""
    reads_before = soc.buffer.stats.reads
    soc.evaluate_population()
    # every genome's full stream was read at least once for ADAM mapping
    total_genes = sum(g.num_genes for g in soc.population.values())
    assert soc.buffer.stats.reads - reads_before >= total_genes


def test_steps2_to_5_env_interaction_until_completion(soc):
    """Steps 2-5: repeated state->inference->action until done."""
    steps = soc.evaluate_population()
    assert steps >= len(soc.population)  # every genome stepped at least once
    assert soc.adam.stats.passes == steps * soc.episodes


def test_step6_fitness_augmented_to_genome_in_sram(soc):
    """Step 6: reward -> fitness, written next to the genome."""
    soc.evaluate_population()
    for key in soc.population:
        assert soc.buffer.get_fitness(key) is not None


def test_step7_selector_only_serial_step_on_cpu(soc):
    """Step 7: parent selection runs as a CPU thread (cycle cost, no PE)."""
    soc.evaluate_population()
    outcome = soc.selector.select(soc.population, soc.buffer, 0)
    assert outcome.cpu_cycles > 0
    assert outcome.plan is not None
    # selection itself produced no PE work yet
    assert all(pe.stats.busy_cycles == 0 for pe in soc.eve.pes)


def test_steps8_9_parent_streams_through_pes(soc):
    """Steps 8-9: parent genes stream to PEs, child genes come back."""
    soc.evaluate_population()
    result = soc.evolve_population()
    assert result is not None
    assert result.pe_stats.genes_in > 0
    assert result.pe_stats.genes_out > 0
    assert result.noc_stats.genes_delivered > 0


def test_step10_children_written_back_overwriting_previous(soc):
    """Step 10: merged children land in the buffer; old generation gone."""
    soc.evaluate_population()
    old_keys = set(soc.population)
    soc.evolve_population()
    resident = set(soc.buffer.resident_genomes())
    assert resident == set(soc.population)
    assert resident.isdisjoint(old_keys)


def test_children_ordered_in_two_sorted_clusters(soc):
    """Genome organisation invariant (Section IV-C5) holds for every
    child EvE writes back."""
    soc.evaluate_population()
    result = soc.evolve_population()
    for key, stream in result.children.items():
        node_part = [g for g in stream if g.is_node]
        conn_part = stream[len(node_part):]
        assert all(g.is_connection for g in conn_part)
        node_ids = [g.node_id for g in node_part]
        assert node_ids == sorted(node_ids)
        conn_keys = [(g.source, g.dest) for g in conn_part]
        assert conn_keys == sorted(conn_keys)


def test_stop_criterion_target_fitness(soc):
    """'The system stops when the CPU detects that the target fitness ...
    has been achieved.'"""
    best = soc.run(max_generations=10, fitness_threshold=5.0)
    assert best.fitness >= 5.0
    assert soc.generation <= 10


def test_plp_and_glp_phases_accounted_separately(soc):
    """Steps 1-6 exploit PLP (inference), 8-10 exploit GLP (evolution);
    the report keeps their cycle accounting separate."""
    report = soc.run_generation()
    assert report.inference_cycles > 0
    assert report.evolution_cycles > 0
    assert report.inference_cycles != report.evolution_cycles
