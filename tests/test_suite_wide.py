"""Suite-wide smoke: every registered environment evolves end to end.

The paper's robustness claim (Section III-B): the same NEAT codebase runs
every workload, "changing only the fitness function".  One generation per
environment — software and hardware paths — must complete and assign
fitness everywhere, including the Box-action BipedalWalker.
"""

import pytest

from repro.core import evolve_on_hardware, evolve_software
from repro.envs import CANONICAL_IDS


@pytest.mark.parametrize("env_id", CANONICAL_IDS)
def test_software_generation_on_every_env(env_id):
    result = evolve_software(
        env_id, max_generations=1, pop_size=8, seed=0, max_steps=15,
        fitness_threshold=1e9,
    )
    stats = result.population.statistics.generations[-1]
    assert stats.population_size == 8
    assert stats.best_fitness >= stats.mean_fitness


@pytest.mark.parametrize(
    "env_id", ["CartPole-v0", "Acrobot-v1", "LunarLander-v2", "Alien-ram-v0"]
)
def test_hardware_generation_on_representative_envs(env_id):
    result = evolve_on_hardware(
        env_id, max_generations=1, pop_size=8, seed=0, max_steps=15,
        fitness_threshold=1e9,
    )
    report = result.reports[0]
    assert report.env_steps > 0
    assert report.inference.passes > 0
    assert report.energy.total_energy_j > 0


def test_bipedal_box_actions_software_only():
    """BipedalWalker's Box(4) action space works through the evaluator.

    (ADAM's plan covers it too, but the hardware path is exercised above
    on Discrete spaces; here we pin the continuous-action translation.)
    """
    result = evolve_software(
        "BipedalWalker-v2", max_generations=1, pop_size=6, seed=0,
        max_steps=20, fitness_threshold=1e9,
    )
    stats = result.population.statistics.generations[-1]
    assert stats.population_size == 6
