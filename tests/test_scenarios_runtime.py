"""Runtime tests for repro.scenarios: wrapper determinism, batched
fallback safety, evaluation-path parity, curriculum runs and the
checkpoint/resume byte-identity guarantee."""

import json

import numpy as np
import pytest

from repro.api import Experiment, ExperimentSpec
from repro.envs import make, make_batched, register, unregister
from repro.envs.batched import (
    BatchedTemplateError,
    LockstepEnvs,
    VectorizedCartPole,
)
from repro.envs.cartpole import CartPoleEnv
from repro.runs import RunDir, resume_run, run_in_dir
from repro.scenarios import (
    ScenarioSpec,
    build_batched_env,
    build_env,
    continual_report,
    export_continual_csv,
    get_scenario,
    switch_report,
)

SMALL = dict(max_generations=3, pop_size=16, max_steps=40, seed=1,
             fitness_threshold=100000.0)


def _rollout(env, seed, steps=25):
    """Deterministic alternating-action trajectory."""
    env.seed(seed)
    trace = [env.reset().copy()]
    for t in range(steps):
        obs, reward, done, _ = env.step(t % 2)
        trace.append(np.append(obs, reward))
        if done:
            break
    return trace


# ---------------------------------------------------------------------------
# env layer: tunable params


class TestTunableParams:
    def test_configure_changes_physics(self):
        short = make("CartPole-v0", seed=0)
        short.configure(length=0.25)
        plain = make("CartPole-v0", seed=0)
        a = _rollout(short, seed=7)
        b = _rollout(plain, seed=7)
        assert not all(np.array_equal(x, y) for x, y in zip(a, b))
        # derived constants follow the override
        assert short.POLE_MASS_LENGTH == pytest.approx(0.1 * 0.25)

    def test_defaults_unchanged(self):
        # A default-constructed env must trace exactly like one configured
        # with its declared defaults (byte-identity of the seed behaviour).
        plain = make("CartPole-v0")
        configured = make("CartPole-v0")
        configured.configure(**configured.tunable_params())
        assert _rollout(plain, 3)[-1].tolist() == \
            _rollout(configured, 3)[-1].tolist()

    def test_unknown_param_rejected(self):
        env = make("CartPole-v0")
        with pytest.raises(ValueError, match="no tunable parameter"):
            env.configure(warp=9)

    def test_constructor_params(self):
        env = CartPoleEnv(gravity=3.7)
        assert env.GRAVITY == 3.7
        assert env.params["gravity"] == 3.7


# ---------------------------------------------------------------------------
# wrappers: deterministic, decoupled streams


class TestWrappers:
    def test_observation_noise_deterministic_per_seed(self):
        scenario = ScenarioSpec(
            env_id="CartPole-v0",
            perturbations=[{"kind": "observation_noise",
                            "params": {"std": 0.1}}],
        )
        env = build_env(scenario)
        a = _rollout(env, seed=5)
        b = _rollout(env, seed=5)
        c = _rollout(env, seed=6)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        assert not np.array_equal(a[0], c[0])

    def test_noise_does_not_perturb_inner_stream(self):
        # The wrapper rng is derived with a salt; the raw seed goes
        # inward, so the base trajectory underneath is unchanged.
        noisy = build_env(ScenarioSpec(
            env_id="CartPole-v0",
            perturbations=[{"kind": "observation_noise",
                            "params": {"std": 0.0}}],
        ))
        plain = make("CartPole-v0")
        a = _rollout(noisy, seed=9)
        b = _rollout(plain, seed=9)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_action_dropout_zero_prob_is_identity(self):
        env = build_env(ScenarioSpec(
            env_id="CartPole-v0",
            perturbations=[{"kind": "action_dropout", "params": {"prob": 0.0}}],
        ))
        plain = make("CartPole-v0")
        assert all(
            np.array_equal(x, y)
            for x, y in zip(_rollout(env, 4), _rollout(plain, 4))
        )

    def test_parameter_jitter_redraws_each_reset(self):
        env = build_env(ScenarioSpec(
            env_id="CartPole-v0",
            perturbations=[{"kind": "parameter_jitter",
                            "params": {"scale": 0.2, "params": ["length"]}}],
        ))
        env.seed(3)
        env.reset()
        first = env.inner.params["length"]
        env.reset()
        second = env.inner.params["length"]
        assert first != second  # fresh draw per episode
        env.seed(3)
        env.reset()
        assert env.inner.params["length"] == first  # same stream replays

    def test_jitter_rejects_unknown_target(self):
        with pytest.raises(ValueError, match="no tunable parameter"):
            build_env(ScenarioSpec(
                env_id="CartPole-v0",
                perturbations=[{"kind": "parameter_jitter",
                                "params": {"params": ["warp"]}}],
            ))

    def test_stacked_same_kind_streams_differ(self):
        env = build_env(ScenarioSpec(
            env_id="CartPole-v0",
            perturbations=[
                {"kind": "observation_noise", "params": {"std": 0.1}},
                {"kind": "observation_noise", "params": {"std": 0.1}},
            ],
        ))
        env.seed(2)
        outer, inner = env, env.inner
        assert outer.rng.random() != inner.rng.random()


# ---------------------------------------------------------------------------
# batched: vectorized when safe, lockstep fallback otherwise


class TestBatchedFallback:
    def test_params_only_scenario_vectorizes(self):
        batched = build_batched_env(get_scenario("cartpole-short-pole"))
        assert isinstance(batched, VectorizedCartPole)
        assert batched._template.LENGTH == 0.25

    def test_perturbed_scenario_falls_back_to_lockstep(self):
        batched = build_batched_env(get_scenario("cartpole-windy"))
        assert isinstance(batched, LockstepEnvs)

    def test_wrapped_template_raises(self):
        windy = build_env(get_scenario("cartpole-windy"))
        with pytest.raises(BatchedTemplateError):
            VectorizedCartPole("CartPole-v0", template=windy)

    def test_subclassed_env_falls_back_not_fast_path(self):
        # Regression: a subclass overriding the physics must NOT silently
        # ride the unwrapped numpy port.
        class HalfGravityCartPole(CartPoleEnv):
            def _step(self, action):
                self.GRAVITY = 4.9
                return super()._step(action)

        register("HalfGravityCartPole-v0", HalfGravityCartPole)
        try:
            batched = make_batched(
                "CartPole-v0", factory=lambda: HalfGravityCartPole()
            )
            assert isinstance(batched, LockstepEnvs)
        finally:
            unregister("HalfGravityCartPole-v0")

    def test_lockstep_bit_identical_to_scalar_for_wrapped_env(self):
        scenario = get_scenario("cartpole-windy")
        batched = build_batched_env(scenario)
        seeds = [11, 12, 13]
        batch_obs = batched.start(seeds)
        scalar_obs = []
        scalars = [build_env(scenario) for _ in seeds]
        for env, seed in zip(scalars, seeds):
            env.seed(seed)
            scalar_obs.append(env.reset().ravel())
        assert np.array_equal(batch_obs, np.stack(scalar_obs))
        for t in range(20):
            actions = np.full(batched.num_lanes, t % 2)
            b_obs, b_rew, b_done = batched.step(actions)
            s = [env.step(t % 2) for env in scalars]
            assert np.array_equal(b_obs, np.stack([o.ravel() for o, *_ in s]))
            assert np.array_equal(b_rew, np.array([r for _, r, _, _ in s]))
            assert np.array_equal(
                b_done, np.array([d for _, _, d, _ in s], dtype=bool)
            )
            keep = ~b_done
            batched.prune(keep)
            scalars = [env for env, k in zip(scalars, keep) if k]
            if not scalars:
                break


# ---------------------------------------------------------------------------
# evaluation-path parity


class TestEvaluationParity:
    def _trajectory(self, spec):
        result = Experiment(spec).run()
        return [(m.best_fitness, m.mean_fitness) for m in result.metrics]

    @pytest.mark.parametrize("name", ["cartpole-short-pole", "cartpole-windy"])
    def test_serial_workers_numpy_identical(self, name):
        base = ExperimentSpec(
            "CartPole-v0", scenario=get_scenario(name), **SMALL
        )
        serial = self._trajectory(base)
        assert serial == self._trajectory(base.replace(workers=2))
        assert serial == self._trajectory(base.replace(vectorizer="numpy"))

    def test_scenario_changes_the_outcome(self):
        plain = ExperimentSpec("CartPole-v0", **SMALL)
        varied = plain.replace(scenario=get_scenario("cartpole-short-pole"))
        assert self._trajectory(plain) != self._trajectory(varied)


# ---------------------------------------------------------------------------
# curriculum runs: metrics, checkpoints, resume byte-identity


CURRICULUM = ScenarioSpec(
    env_id="CartPole-v0",
    curriculum={
        "mode": "adaptive",
        "advance_threshold": 9.0,
        "patience": 1,
        "stages": [
            {"params": {"length": 0.5}},
            {"params": {"length": 0.75}},
            {"params": {"length": 1.0}},
        ],
    },
)


def _read_rows(run_dir):
    path = RunDir(run_dir).metrics_path
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestCurriculumRuns:
    def _spec(self, **overrides):
        fields = dict(max_generations=8, pop_size=20, max_steps=40, seed=3,
                      scenario=CURRICULUM, fitness_threshold=100000.0)
        fields.update(overrides)
        return ExperimentSpec("CartPole-v0", **fields)

    def test_metrics_rows_carry_stage(self, tmp_path):
        run_in_dir(self._spec(), tmp_path / "run", checkpoint_every=2)
        rows = _read_rows(tmp_path / "run")
        stages = [row["scenario_stage"] for row in rows]
        assert stages[0] == 0
        assert stages == sorted(stages)  # never regresses
        assert stages[-1] >= 1  # provably advanced
        # forgetting appears once a switch has happened
        assert any("scenario_forgetting" in row for row in rows)

    def test_plain_runs_have_no_scenario_columns(self, tmp_path):
        run_in_dir(
            self._spec(scenario=None, max_generations=2),
            tmp_path / "plain",
        )
        for row in _read_rows(tmp_path / "plain"):
            assert "scenario_stage" not in row
            assert "scenario_forgetting" not in row

    def test_checkpoint_embeds_stage(self, tmp_path):
        run_in_dir(self._spec(), tmp_path / "run", checkpoint_every=2)
        rd = RunDir(tmp_path / "run")
        state = rd.load_checkpoint(rd.latest_checkpoint()[0])
        rows = _read_rows(tmp_path / "run")
        assert state["scenario_stage"] == rows[-1]["scenario_stage"]

    def test_interrupted_resume_is_byte_identical(self, tmp_path):
        spec = self._spec()
        a = tmp_path / "uninterrupted"
        run_in_dir(spec, a, checkpoint_every=2)

        b = tmp_path / "interrupted"
        seen = {"rows": 0}

        def observer(metrics):
            seen["rows"] += 1

        # stop mid-stage, off the checkpoint cadence
        interrupted = run_in_dir(
            spec, b, checkpoint_every=2,
            on_generation=observer,
            should_stop=lambda _gen: seen["rows"] >= 3,
        )
        assert interrupted.stopped_early
        resumed = resume_run(b)
        assert (a / "metrics.jsonl").read_bytes() == \
            (b / "metrics.jsonl").read_bytes()
        assert (a / "champion.json").read_bytes() == \
            (b / "champion.json").read_bytes()
        assert resumed.generations == 8
        # the stitched result covers the whole trajectory with stages
        assert [m.scenario_stage for m in resumed.metrics] == \
            [row["scenario_stage"] for row in _read_rows(a)]

    def test_scenario_table_and_report_export(self, tmp_path):
        from repro.runs import load_run, scenario_table
        from repro.runs.report import export_reports

        run_in_dir(self._spec(max_generations=4), tmp_path / "run")
        report = load_run(tmp_path / "run")
        headers, rows = scenario_table(report)
        assert headers[:2] == ["gen", "stage"]
        assert len(rows) == 4
        csv_path, _ = export_reports([report], tmp_path / "out")
        header = csv_path.read_text().splitlines()[0]
        assert "scenario_stage" in header

    def test_scenario_table_empty_without_scenario(self, tmp_path):
        from repro.runs import load_run, scenario_table

        run_in_dir(
            self._spec(scenario=None, max_generations=2), tmp_path / "plain"
        )
        assert scenario_table(load_run(tmp_path / "plain")) == ([], [])


# ---------------------------------------------------------------------------
# continual-learning report


class TestContinualReport:
    ROWS = [
        {"generation": 0, "best_fitness": 50.0, "scenario_stage": 0},
        {"generation": 1, "best_fitness": 60.0, "scenario_stage": 0},
        {"generation": 2, "best_fitness": 20.0, "scenario_stage": 1,
         "scenario_forgetting": 40.0},
        {"generation": 3, "best_fitness": 45.0, "scenario_stage": 1,
         "scenario_forgetting": 15.0},
        {"generation": 4, "best_fitness": 65.0, "scenario_stage": 1,
         "scenario_forgetting": 0.0, "scenario_recovery": 3},
    ]

    def test_switch_report(self):
        (switch,) = switch_report(self.ROWS)
        assert switch == {
            "generation": 2, "from_stage": 0, "to_stage": 1,
            "max_forgetting": 40.0, "recovery_generations": 3,
        }
        assert continual_report(self.ROWS) == [switch]

    def test_unrecovered_switch_reports_none(self):
        rows = self.ROWS[:4]
        (switch,) = switch_report(rows)
        assert switch["recovery_generations"] is None

    def test_export_csv(self, tmp_path):
        path = tmp_path / "continual.csv"
        report = export_continual_csv(self.ROWS, path)
        lines = path.read_text().splitlines()
        assert lines[0] == ("generation,from_stage,to_stage,"
                            "max_forgetting,recovery_generations")
        assert lines[1] == "2,0,1,40.0,3"
        assert report == switch_report(self.ROWS)


# ---------------------------------------------------------------------------
# dse: scenario axes evaluate and memoise


class TestDseScenarioSweep:
    def test_second_run_hits_cache_completely(self, tmp_path):
        from repro.dse import SweepRunner, SweepSpec

        sweep = SweepSpec(
            base=ExperimentSpec(
                "CartPole-v0", max_generations=2, pop_size=10,
                max_steps=30, fitness_threshold=100000.0,
            ),
            axes={"scenario.name": [None, "cartpole-short-pole"]},
        )
        first = SweepRunner(sweep, cache_dir=tmp_path / "cache").run()
        second = SweepRunner(sweep, cache_dir=tmp_path / "cache").run()
        assert first.cache_hits == 0
        assert second.cache_hits == second.points == 2
        fitness = {
            row["scenario.name"]: row["fitness"] for row in second.rows
        }
        assert set(fitness) == {None, "cartpole-short-pole"}
