"""Batched environments (:mod:`repro.envs.batched`).

The vectorized physics ports must replay the scalar environments
*bitwise* — same seeds, same trajectories, same rewards, same
termination steps — because the golden regression contract promises
identical fitness trajectories across evaluation strategies.
"""

import numpy as np
import pytest

from repro.envs.batched import (
    LockstepEnvs,
    VectorizedCartPole,
    VectorizedMountainCar,
    has_vectorized_env,
    make_batched,
    register_batched,
)
from repro.envs.registry import make


@pytest.mark.parametrize(
    "env_id, batched_cls",
    [("CartPole-v0", VectorizedCartPole), ("MountainCar-v0", VectorizedMountainCar)],
)
def test_vectorized_replays_scalar_bitwise(env_id, batched_cls):
    """Step scalar twin envs in parallel: every observation, reward and
    done flag must be bit-identical at every step, for every lane."""
    seeds = list(range(17))
    batch = batched_cls(env_id)
    obs = batch.start(seeds)

    twins = []
    for i, seed in enumerate(seeds):
        env = make(env_id)
        env.seed(seed)
        assert (env.reset() == obs[i]).all()
        twins.append(env)

    rng = np.random.default_rng(0)
    for step in range(60):
        if not twins:
            break
        actions = rng.integers(0, batch.action_space.n, size=len(twins))
        obs, rewards, dones = batch.step(actions)
        for i, env in enumerate(twins):
            o, r, done, _info = env.step(int(actions[i]))
            assert (o == obs[i]).all(), (env_id, step, i)
            assert r == rewards[i]
            assert done == bool(dones[i])
        keep = ~dones
        twins = [env for env, k in zip(twins, keep) if k]
        batch.prune(keep)
        obs = obs[keep]


def test_vectorized_time_limit_truncates():
    batch = VectorizedCartPole("CartPole-v0")
    batch.max_episode_steps = 5
    batch.start([0, 1])
    for _ in range(4):
        _obs, _r, dones = batch.step(np.zeros(2, dtype=int))
    # CartPole from these seeds survives longer than 5 steps under a
    # constant-0 policy only if physics allows; the limit must force done
    _obs, _r, dones = batch.step(np.zeros(2, dtype=int))
    assert dones.all()


def test_lockstep_envs_match_scalar():
    env_id = "Acrobot-v1"
    seeds = [3, 4, 5]
    batch = LockstepEnvs(env_id)
    obs = batch.start(seeds)
    twins = []
    for i, seed in enumerate(seeds):
        env = make(env_id)
        env.seed(seed)
        assert (env.reset().ravel() == obs[i]).all()
        twins.append(env)
    rng = np.random.default_rng(1)
    for _ in range(10):
        if not twins:
            break
        actions = rng.integers(0, batch.action_space.n, size=len(twins))
        obs, rewards, dones = batch.step(actions)
        for i, env in enumerate(twins):
            o, r, done, _info = env.step(int(actions[i]))
            assert (o.ravel() == obs[i]).all()
            assert r == rewards[i]
            assert done == bool(dones[i])
        keep = ~dones
        twins = [env for env, k in zip(twins, keep) if k]
        batch.prune(keep)
        obs = obs[keep]


def test_lockstep_envs_reuse_instances_across_starts():
    batch = LockstepEnvs("CartPole-v0")
    batch.start([0, 1, 2])
    first = list(batch._envs)
    batch.start([5, 6])
    assert batch._envs[:2] == first[:2]
    assert batch.num_lanes == 2


def test_registry_dispatch():
    assert has_vectorized_env("CartPole-v0")
    assert has_vectorized_env("MountainCar-v0")
    assert not has_vectorized_env("Acrobot-v1")
    assert isinstance(make_batched("CartPole-v0"), VectorizedCartPole)
    assert isinstance(make_batched("Acrobot-v1"), LockstepEnvs)


def test_register_batched_custom():
    register_batched("Acrobot-v1-test-alias", LockstepEnvs)
    assert has_vectorized_env("Acrobot-v1-test-alias")
