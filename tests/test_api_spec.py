"""Unit tests for repro.api.spec: the JSON-round-trippable experiment spec."""

import json

import pytest

from repro.api import ExperimentSpec, SpecError


class TestConstruction:
    def test_defaults(self):
        spec = ExperimentSpec("CartPole-v0")
        assert spec.backend == "software"
        assert spec.workers == 1
        assert spec.max_generations == 50
        assert spec.fitness_threshold is None

    def test_frozen(self):
        spec = ExperimentSpec("CartPole-v0")
        with pytest.raises(Exception):
            spec.env_id = "MountainCar-v0"

    def test_replace(self):
        spec = ExperimentSpec("CartPole-v0")
        derived = spec.replace(backend="soc", workers=4)
        assert derived.backend == "soc"
        assert derived.workers == 4
        assert spec.backend == "software"  # original untouched

    @pytest.mark.parametrize("kwargs", [
        {"env_id": ""},
        {"env_id": "CartPole-v0", "backend": ""},
        {"env_id": "CartPole-v0", "max_generations": 0},
        {"env_id": "CartPole-v0", "pop_size": 1},
        {"env_id": "CartPole-v0", "episodes": 0},
        {"env_id": "CartPole-v0", "max_steps": 0},
        {"env_id": "CartPole-v0", "workers": 0},
        {"env_id": "CartPole-v0", "vectorizer": "cuda"},
        {"env_id": "CartPole-v0", "vectorizer": ""},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(SpecError):
            ExperimentSpec(**kwargs)

    def test_vectorizer_default_scalar(self):
        assert ExperimentSpec("CartPole-v0").vectorizer == "scalar"
        assert ExperimentSpec("CartPole-v0", vectorizer="numpy").vectorizer == "numpy"


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = ExperimentSpec(
            "LunarLander-v2", backend="analytical:GENESYS",
            max_generations=7, pop_size=24, episodes=2, max_steps=123,
            seed=9, fitness_threshold=200.0, workers=3, vectorizer="numpy",
            backend_options={"platform": "GENESYS"},
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = ExperimentSpec("CartPole-v0", backend="soc", seed=42)
        text = spec.to_json()
        json.loads(text)  # valid JSON
        assert ExperimentSpec.from_json(text) == spec

    def test_file_round_trip(self, tmp_path):
        spec = ExperimentSpec("MountainCar-v0", workers=2, max_steps=50)
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ExperimentSpec.load(path) == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(SpecError, match="unknown spec fields"):
            ExperimentSpec.from_dict({"env_id": "CartPole-v0", "popsize": 3})

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="invalid spec JSON"):
            ExperimentSpec.from_json("{not json")

    def test_non_object_json_rejected(self):
        with pytest.raises(SpecError, match="must be an object"):
            ExperimentSpec.from_json("[1, 2]")

    def test_backend_options_copied(self):
        options = {"platform": "CPU_a"}
        spec = ExperimentSpec("CartPole-v0", backend_options=options)
        data = spec.to_dict()
        data["backend_options"]["platform"] = "GPU_a"
        assert spec.backend_options["platform"] == "CPU_a"
