"""Property-based tests (hypothesis) on core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs.seeding import derive_seed
from repro.hw.eve import align_parent_streams
from repro.hw.gene_encoding import (
    FIXED_MAX_VALUE,
    FIXED_MIN_VALUE,
    NODE_TYPE_HIDDEN,
    dequantize,
    encode_genome,
    decode_genome,
    pack_connection,
    pack_node,
    quantize,
)
from repro.hw.noc import MulticastTreeNoC, PointToPointNoC
from repro.hw.allocator import greedy_reuse_schedule, round_robin_schedule
from repro.hw.prng import XorWow
from repro.neat import Genome, GenomeConfig, InnovationTracker
from repro.neat.genome import creates_cycle
from repro.neat.reproduction import ReproductionEvent

# ---------------------------------------------------------------------------
# quantisation
# ---------------------------------------------------------------------------


@given(st.floats(min_value=-1000, max_value=1000, allow_nan=False))
def test_quantize_always_in_range(value):
    q = dequantize(quantize(value))
    assert FIXED_MIN_VALUE <= q <= FIXED_MAX_VALUE


@given(st.floats(min_value=-7.9, max_value=7.9, allow_nan=False))
def test_quantize_error_bounded_by_half_step(value):
    q = dequantize(quantize(value))
    assert abs(q - value) <= (1 / 16) / 2 + 1e-12


@given(st.floats(min_value=-1000, max_value=1000, allow_nan=False))
def test_quantize_idempotent(value):
    once = dequantize(quantize(value))
    assert dequantize(quantize(once)) == once


# ---------------------------------------------------------------------------
# gene word packing
# ---------------------------------------------------------------------------

node_ids = st.integers(min_value=-32768, max_value=32767)
attr_values = st.floats(min_value=-8.0, max_value=7.9375, allow_nan=False)


@given(
    node_id=st.integers(min_value=0, max_value=32767),
    bias=attr_values,
    response=attr_values,
)
def test_node_word_round_trip(node_id, bias, response):
    gene = pack_node(node_id, NODE_TYPE_HIDDEN, bias, response, "tanh", "sum")
    assert gene.node_id == node_id
    assert abs(gene.bias - bias) <= 1 / 32 + 1e-12
    assert abs(gene.response - response) <= 1 / 32 + 1e-12


@given(src=node_ids, dst=node_ids, weight=attr_values, enabled=st.booleans())
def test_connection_word_round_trip(src, dst, weight, enabled):
    gene = pack_connection(src, dst, weight, enabled)
    assert gene.source == src
    assert gene.dest == dst
    assert gene.enabled == enabled
    assert abs(gene.weight - weight) <= 1 / 32 + 1e-12


# ---------------------------------------------------------------------------
# genome invariants under random mutation sequences
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_inputs=st.integers(min_value=1, max_value=6),
    num_outputs=st.integers(min_value=1, max_value=4),
    steps=st.integers(min_value=0, max_value=40),
)
def test_genome_valid_after_any_mutation_sequence(seed, num_inputs, num_outputs, steps):
    config = GenomeConfig(num_inputs=num_inputs, num_outputs=num_outputs)
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=num_outputs)
    genome = Genome(0)
    genome.configure_new(config, rng)
    for _ in range(steps):
        genome.mutate(config, rng, innovations)
    genome.validate(config)  # raises on any structural violation


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    steps=st.integers(min_value=0, max_value=30),
)
def test_crossover_child_structure_subset_of_fitter_parent(seed, steps):
    config = GenomeConfig(num_inputs=3, num_outputs=2)
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=2)
    p1 = Genome(1)
    p1.configure_new(config, rng)
    for _ in range(steps):
        p1.mutate(config, rng, innovations)
    p2 = Genome(2)
    p2.configure_new(config, rng)
    for _ in range(steps // 2):
        p2.mutate(config, rng, innovations)
    p1.fitness, p2.fitness = 2.0, 1.0
    child = Genome.crossover(3, p1, p2, config, rng)
    assert set(child.nodes) == set(p1.nodes)
    assert set(child.connections) == set(p1.connections)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    steps=st.integers(min_value=0, max_value=40),
)
def test_encode_decode_structural_identity(seed, steps):
    config = GenomeConfig(num_inputs=3, num_outputs=2)
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=2)
    genome = Genome(0)
    genome.configure_new(config, rng)
    for _ in range(steps):
        genome.mutate(config, rng, innovations)
    decoded = decode_genome(encode_genome(genome, config), 0, config)
    assert set(decoded.nodes) == set(genome.nodes)
    assert set(decoded.connections) == set(genome.connections)
    decoded.validate(config)


# ---------------------------------------------------------------------------
# creates_cycle consistency
# ---------------------------------------------------------------------------

edges = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=0, max_size=15
)


@given(existing=edges, candidate=st.tuples(st.integers(0, 8), st.integers(0, 8)))
def test_creates_cycle_matches_definition(existing, candidate):
    """creates_cycle(E, c) is True iff dest reaches source through E."""
    src, dst = candidate
    adjacency = {}
    for a, b in existing:
        adjacency.setdefault(a, []).append(b)
    seen, frontier = {dst}, [dst]
    reachable = False
    while frontier:
        node = frontier.pop()
        if node == src:
            reachable = True
            break
        for nxt in adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    assert creates_cycle(existing, candidate) == (reachable or src == dst)


# ---------------------------------------------------------------------------
# PRNG
# ---------------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=2 ** 64 - 1))
def test_xorwow_reproducible_and_in_range(seed):
    a = XorWow(seed=seed)
    b = XorWow(seed=seed)
    for _ in range(16):
        va, vb = a.next_byte(), b.next_byte()
        assert va == vb
        assert 0 <= va <= 255


# ---------------------------------------------------------------------------
# NoC read accounting
# ---------------------------------------------------------------------------

demands = st.lists(
    st.tuples(st.integers(0, 31), st.integers(0, 5), st.integers(0, 20)),
    min_size=0,
    max_size=40,
)


@given(demands=demands)
def test_multicast_never_exceeds_p2p(demands):
    tree = MulticastTreeNoC()
    bus = PointToPointNoC()
    assert tree.distribute_cycle(demands) <= bus.distribute_cycle(demands)


@given(demands=demands)
def test_multicast_at_least_distinct_genomes(demands):
    tree = MulticastTreeNoC()
    reads = tree.distribute_cycle(demands)
    distinct_words = {(g, w) for _pe, g, w in demands}
    assert reads == len(distinct_words)


# ---------------------------------------------------------------------------
# scheduler properties
# ---------------------------------------------------------------------------

event_lists = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=0, max_size=30
)


@given(pairs=event_lists, num_pes=st.integers(min_value=1, max_value=8))
def test_schedules_are_complete_partitions(pairs, num_pes):
    events = [
        ReproductionEvent(100 + i, p1, p2, 1) for i, (p1, p2) in enumerate(pairs)
    ]
    for scheduler in (greedy_reuse_schedule, round_robin_schedule):
        waves = scheduler(events, num_pes)
        scheduled = [e.child_key for wave in waves for e in wave]
        assert sorted(scheduled) == sorted(e.child_key for e in events)
        assert all(1 <= len(wave) <= num_pes for wave in waves)


@given(pairs=event_lists, num_pes=st.integers(min_value=1, max_value=8))
def test_greedy_never_more_waves_than_round_robin(pairs, num_pes):
    events = [
        ReproductionEvent(100 + i, p1, p2, 1) for i, (p1, p2) in enumerate(pairs)
    ]
    greedy = greedy_reuse_schedule(events, num_pes)
    rr = round_robin_schedule(events, num_pes)
    assert len(greedy) == len(rr)  # same wave count, different packing


# ---------------------------------------------------------------------------
# gene split alignment
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_alignment_covers_fitter_parent_exactly(seed):
    config = GenomeConfig(num_inputs=2, num_outputs=2)
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=2)
    p1 = Genome(0)
    p1.configure_new(config, rng)
    p2 = Genome(1)
    p2.configure_new(config, rng)
    for _ in range(10):
        p1.mutate(config, rng, innovations)
        p2.mutate(config, rng, innovations)
    s1 = encode_genome(p1, config)
    s2 = encode_genome(p2, config)
    pairs = align_parent_streams(s1, s2)
    assert [g1.key for g1, _ in pairs] == [g.key for g in s1]
    keys2 = {g.key for g in s2}
    for g1, g2 in pairs:
        assert (g2 is not None) == (g1.key in keys2)


# ---------------------------------------------------------------------------
# seeding
# ---------------------------------------------------------------------------


@given(
    base=st.integers(min_value=0, max_value=2 ** 32),
    s1=st.integers(min_value=0, max_value=10_000),
    s2=st.integers(min_value=0, max_value=10_000),
)
def test_derived_seeds_unique_per_stream(base, s1, s2):
    if s1 != s2:
        assert derive_seed(base, s1) != derive_seed(base, s2)
