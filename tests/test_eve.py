"""Unit tests for the EvE evolution engine."""

import random

import pytest

from repro.hw.eve import EvEConfig, EvolutionEngine, GeneMerge, align_parent_streams
from repro.hw.gene_encoding import decode_genome, encode_genome, pack_connection, pack_node
from repro.hw.gene_encoding import NODE_TYPE_HIDDEN, NODE_TYPE_OUTPUT
from repro.hw.pe import PEConfig
from repro.hw.sram import GenomeBuffer
from repro.neat import Genome, GenomeConfig, InnovationTracker
from repro.neat.reproduction import ReproductionEvent


@pytest.fixture
def config():
    return GenomeConfig(num_inputs=3, num_outputs=2)


def make_parents(config, seed=0, mutations=20):
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=config.num_outputs)
    p1 = Genome(0)
    p1.configure_new(config, rng)
    for _ in range(mutations):
        p1.mutate(config, rng, innovations)
    p2 = p1.copy(1)
    for _ in range(mutations // 2):
        p2.mutate(config, rng, innovations)
    return p1, p2


def load_buffer(config, parents):
    buffer = GenomeBuffer()
    for i, genome in enumerate(parents):
        buffer.write_genome(i, encode_genome(genome, config))
        buffer.set_fitness(i, 10.0 - i)
    return buffer


class TestAlignment:
    def test_homologous_paired(self, config):
        p1, _ = make_parents(config)
        stream = encode_genome(p1, config)
        pairs = align_parent_streams(stream, stream)
        assert all(g2 is not None and g1.key == g2.key for g1, g2 in pairs)

    def test_disjoint_from_fitter_only(self, config):
        p1, p2 = make_parents(config)
        s1 = encode_genome(p1, config)
        s2 = encode_genome(p2, config)
        pairs = align_parent_streams(s1, s2)
        assert len(pairs) == len(s1)
        keys2 = {g.key for g in s2}
        for g1, g2 in pairs:
            if g1.key in keys2:
                assert g2 is not None
            else:
                assert g2 is None


class TestGeneMerge:
    def test_orders_nodes_then_connections(self):
        merge = GeneMerge()
        produced = [
            pack_connection(-1, 0, 1.0, True),
            pack_node(0, NODE_TYPE_OUTPUT, 0, 1, "tanh", "sum"),
            pack_node(5, NODE_TYPE_HIDDEN, 0, 1, "tanh", "sum"),
            pack_connection(-1, 5, 1.0, True),
        ]
        stream = merge.merge(produced, parent_conn_keys=set())
        assert [g.is_node for g in stream] == [True, True, False, False]
        assert stream[0].node_id == 0 and stream[1].node_id == 5

    def test_drops_dangling_connection(self):
        merge = GeneMerge()
        produced = [
            pack_node(0, NODE_TYPE_OUTPUT, 0, 1, "tanh", "sum"),
            pack_connection(-1, 99, 1.0, True),  # node 99 does not exist
        ]
        stream = merge.merge(produced, parent_conn_keys=set())
        assert all(g.is_node for g in stream)
        assert merge.dropped_invalid == 1

    def test_drops_cyclic_addition(self):
        merge = GeneMerge()
        inherited = {(5, 6)}
        produced = [
            pack_node(5, NODE_TYPE_HIDDEN, 0, 1, "tanh", "sum"),
            pack_node(6, NODE_TYPE_HIDDEN, 0, 1, "tanh", "sum"),
            pack_connection(5, 6, 1.0, True),
            pack_connection(6, 5, 1.0, True),  # new edge closing a cycle
        ]
        stream = merge.merge(produced, parent_conn_keys=inherited)
        conn_keys = {(g.source, g.dest) for g in stream if g.is_connection}
        assert (5, 6) in conn_keys
        assert (6, 5) not in conn_keys
        assert merge.dropped_invalid == 1

    def test_dedups_by_key(self):
        merge = GeneMerge()
        produced = [
            pack_node(0, NODE_TYPE_OUTPUT, 0, 1, "tanh", "sum"),
            pack_connection(-1, 0, 1.0, True),
            pack_connection(-1, 0, 2.0, True),
        ]
        stream = merge.merge(produced, parent_conn_keys={(-1, 0)})
        conns = [g for g in stream if g.is_connection]
        assert len(conns) == 1
        assert conns[0].weight == 1.0  # first occurrence wins


class TestEvolutionEngine:
    def test_children_produced_and_valid(self, config):
        p1, p2 = make_parents(config)
        buffer = load_buffer(config, [p1, p2])
        eve = EvolutionEngine(EvEConfig(num_pes=4))
        events = [
            ReproductionEvent(10 + i, 0, 1, 1) for i in range(6)
        ]
        result = eve.reproduce_generation(buffer, events)
        assert len(result.children) == 6
        for key, stream in result.children.items():
            child = decode_genome(stream, key, config)
            child.validate(config)

    def test_children_written_to_buffer(self, config):
        p1, p2 = make_parents(config)
        buffer = load_buffer(config, [p1, p2])
        eve = EvolutionEngine(EvEConfig(num_pes=2))
        events = [ReproductionEvent(10, 0, 1, 1)]
        result = eve.reproduce_generation(buffer, events)
        assert buffer.peek_genome(10) == result.children[10]

    def test_elite_copy_bypasses_pes(self, config):
        p1, p2 = make_parents(config)
        buffer = load_buffer(config, [p1, p2])
        eve = EvolutionEngine(EvEConfig(num_pes=2))
        result = eve.reproduce_generation(buffer, [], elite_pairs=[(0, 50)])
        assert result.children[50] == encode_genome(p1, config)
        assert result.pe_stats.genes_in == 0
        assert result.elite_copy_cycles == p1.num_genes

    def test_zero_probability_child_is_quantised_parent(self, config):
        """With all mutation probs 0 and crossover bias 1, the child is
        exactly the fitter parent's (quantised) genome."""
        p1, p2 = make_parents(config)
        buffer = load_buffer(config, [p1, p2])
        pe_cfg = PEConfig(
            crossover_bias=1.0, perturb_prob=0.0, node_delete_prob=0.0,
            conn_delete_prob=0.0, node_add_prob=0.0, conn_add_prob=0.0,
        )
        eve = EvolutionEngine(EvEConfig(num_pes=1, pe=pe_cfg))
        result = eve.reproduce_generation(buffer, [ReproductionEvent(10, 0, 1, 1)])
        assert result.children[10] == encode_genome(p1, config)

    def test_fitter_parent_drives_alignment(self, config):
        """Swapping parent order must not change the child structure when
        crossover is deterministic (bias towards the fitter parent)."""
        p1, p2 = make_parents(config)
        pe_cfg = PEConfig(crossover_bias=1.0, perturb_prob=0.0, node_delete_prob=0.0,
                          conn_delete_prob=0.0, node_add_prob=0.0, conn_add_prob=0.0)
        streams = []
        for parents in [(0, 1), (1, 0)]:
            buffer = load_buffer(config, [p1, p2])
            eve = EvolutionEngine(EvEConfig(num_pes=1, pe=pe_cfg))
            result = eve.reproduce_generation(
                buffer, [ReproductionEvent(10, parents[0], parents[1], 1)]
            )
            streams.append(result.children[10])
        assert streams[0] == streams[1]

    def test_multicast_saves_reads_vs_p2p(self, config):
        p1, p2 = make_parents(config)
        reads = {}
        for noc in ("p2p", "multicast"):
            buffer = load_buffer(config, [p1, p2])
            eve = EvolutionEngine(EvEConfig(num_pes=8, noc=noc))
            events = [ReproductionEvent(10 + i, 0, 1, 1) for i in range(8)]
            result = eve.reproduce_generation(buffer, events)
            reads[noc] = result.sram_reads
        assert reads["multicast"] < reads["p2p"]
        # 8 identical children over multicast need only ~1 stream's reads
        assert reads["p2p"] >= 6 * reads["multicast"]

    def test_more_pes_fewer_waves(self, config):
        p1, p2 = make_parents(config)
        events = [ReproductionEvent(10 + i, 0, 1, 1) for i in range(16)]
        waves = {}
        cycles = {}
        for n in (2, 16):
            buffer = load_buffer(config, [p1, p2])
            eve = EvolutionEngine(EvEConfig(num_pes=n))
            result = eve.reproduce_generation(buffer, list(events))
            waves[n] = result.waves
            cycles[n] = result.cycles
        assert waves[2] == 8 and waves[16] == 1
        assert cycles[16] < cycles[2]

    def test_ops_counted(self, config):
        p1, p2 = make_parents(config)
        buffer = load_buffer(config, [p1, p2])
        eve = EvolutionEngine(EvEConfig(num_pes=4))
        events = [ReproductionEvent(10 + i, 0, 1, 1) for i in range(4)]
        result = eve.reproduce_generation(buffer, events)
        assert result.pe_stats.crossovers > 0
        assert result.total_ops >= result.pe_stats.crossovers

    def test_deterministic_for_seed(self, config):
        p1, p2 = make_parents(config)
        outs = []
        for _ in range(2):
            buffer = load_buffer(config, [p1, p2])
            eve = EvolutionEngine(EvEConfig(num_pes=4, seed=77))
            events = [ReproductionEvent(10 + i, 0, 1, 1) for i in range(4)]
            result = eve.reproduce_generation(buffer, events)
            outs.append({k: tuple(g.word for g in v) for k, v in result.children.items()})
        assert outs[0] == outs[1]
