"""Unit tests for the run-artifact subsystem (repro.runs)."""

import json

import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.neat.serialize import DeserializationError
from repro.runs import (
    RunDir,
    RunError,
    export_reports,
    fitness_table,
    hardware_table,
    load_run,
    resume_run,
    run_in_dir,
    summary_table,
)


def small_spec(**overrides):
    base = dict(
        env_id="CartPole-v0", max_generations=5, pop_size=12,
        max_steps=30, seed=0, fitness_threshold=1e9,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class Interrupt(RuntimeError):
    """Stands in for a kill/power-cycle mid-run."""


def interrupt_at(generation):
    def observer(metrics):
        if metrics.generation == generation:
            raise Interrupt
    return observer


class TestArtifacts:
    def test_layout_written(self, tmp_path):
        run_dir = tmp_path / "run"
        result = run_in_dir(small_spec(), run_dir, checkpoint_every=2)
        rd = RunDir(run_dir)
        assert rd.has_artifacts() and rd.is_complete
        assert rd.load_spec() == small_spec()
        assert len(rd.read_metrics()) == result.generations == 5
        assert rd.load_meta()["checkpoint_every"] == 2
        # Cadence checkpoints at 2 and 4, plus the final state at 5.
        assert [gen for gen, _ in rd.checkpoints()] == [2, 4, 5]
        champion = rd.load_champion()
        assert champion.fitness == result.best_fitness
        summary = rd.load_result()
        assert summary["generations"] == 5
        assert summary["spec"] == small_spec().to_dict()

    def test_metrics_rows_match_result(self, tmp_path):
        result = run_in_dir(small_spec(), tmp_path / "run")
        rows = RunDir(tmp_path / "run").read_metrics()
        assert rows == [m.to_dict() for m in result.metrics]

    def test_champion_is_infer_compatible(self, tmp_path):
        from repro.neat.network import FeedForwardNetwork

        run_in_dir(small_spec(), tmp_path / "run")
        genome, config = RunDir(tmp_path / "run").load_champion_with_config()
        network = FeedForwardNetwork.create(genome, config.genome)
        assert network.activate([0.0, 0.0, 0.0, 0.0])

    def test_fresh_run_refuses_existing_dir(self, tmp_path):
        run_in_dir(small_spec(), tmp_path / "run")
        with pytest.raises(RunError, match="already holds a run"):
            run_in_dir(small_spec(), tmp_path / "run")

    def test_fresh_run_requires_spec(self, tmp_path):
        with pytest.raises(RunError, match="spec is required"):
            run_in_dir(None, tmp_path / "run")

    def test_torn_final_metrics_line_is_tolerated(self, tmp_path):
        rd = RunDir(tmp_path / "run")
        run_in_dir(small_spec(), rd)
        with open(rd.metrics_path, "a") as handle:
            handle.write('{"generation": 99, "best_f')  # torn append
        assert len(rd.read_metrics()) == 5

    def test_corrupt_middle_metrics_line_raises(self, tmp_path):
        rd = RunDir(tmp_path / "run")
        run_in_dir(small_spec(), rd)
        lines = rd.metrics_path.read_text().splitlines()
        lines[1] = "not json"
        rd.metrics_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RunError, match="corrupt metrics line 2"):
            rd.read_metrics()

    def test_not_a_run_dir(self, tmp_path):
        with pytest.raises(RunError, match="no spec.json"):
            load_run(tmp_path)


class TestResume:
    def test_interrupted_then_resumed_completes(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(Interrupt):
            run_in_dir(small_spec(), run_dir, checkpoint_every=2,
                       on_generation=interrupt_at(3))
        rd = RunDir(run_dir)
        assert not rd.is_complete
        result = resume_run(run_dir)
        assert rd.is_complete
        assert result.generations == 5
        assert [m.generation for m in result.metrics] == [0, 1, 2, 3, 4]

    def test_resume_truncates_past_checkpoint(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(Interrupt):
            # Killed at gen 3: metrics rows 0-3 on disk, checkpoint at 2.
            run_in_dir(small_spec(), run_dir, checkpoint_every=2,
                       on_generation=interrupt_at(3))
        assert len(RunDir(run_dir).read_metrics()) == 4
        replayed = []
        resume_run(run_dir, on_generation=lambda m: replayed.append(m.generation))
        # Generations 2-4 re-ran (rows 2-3 rewound, 4 was never reached).
        assert replayed == [2, 3, 4]

    def test_resume_complete_run_is_a_noop(self, tmp_path):
        run_dir = tmp_path / "run"
        first = run_in_dir(small_spec(), run_dir)
        replayed = []
        again = resume_run(run_dir, on_generation=replayed.append)
        assert replayed == []
        assert [m.to_dict() for m in again.metrics] == [
            m.to_dict() for m in first.metrics
        ]
        assert again.generations == first.generations

    def test_resume_extends_generation_budget(self, tmp_path):
        run_dir = tmp_path / "run"
        run_in_dir(small_spec(), run_dir)
        extended = resume_run(run_dir, max_generations=7)
        assert extended.generations == 7
        assert len(RunDir(run_dir).read_metrics()) == 7
        assert RunDir(run_dir).load_spec().max_generations == 7

    def test_resume_rejects_different_spec(self, tmp_path):
        run_dir = tmp_path / "run"
        run_in_dir(small_spec(), run_dir)
        with pytest.raises(RunError, match="differs from the one stored"):
            run_in_dir(small_spec(seed=9), run_dir, resume=True)

    def test_resume_rejects_foreign_config_checkpoint(self, tmp_path):
        """A checkpoint recorded under another env/config must not load."""
        source = tmp_path / "source"
        run_in_dir(small_spec(), source, checkpoint_every=2)
        target = tmp_path / "target"
        foreign = small_spec(env_id="MountainCar-v0")
        with pytest.raises(Interrupt):
            run_in_dir(foreign, target, checkpoint_every=2,
                       on_generation=interrupt_at(3))
        # Graft a CartPole checkpoint into the MountainCar run.
        ckpt = RunDir(source).checkpoints()[0][1]
        RunDir(target).checkpoint_path(2).write_text(ckpt.read_text())
        with pytest.raises(DeserializationError, match="different NEAT config"):
            resume_run(target)

    def test_resume_before_first_checkpoint_restarts(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(Interrupt):
            # checkpoint_every=10: killed before any checkpoint exists.
            run_in_dir(small_spec(), run_dir, checkpoint_every=10,
                       on_generation=interrupt_at(1))
        assert RunDir(run_dir).latest_checkpoint() is None
        replayed = []
        resume_run(run_dir, on_generation=lambda m: replayed.append(m.generation))
        assert replayed == [0, 1, 2, 3, 4]

    def test_resume_keeps_recorded_cadence(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(Interrupt):
            run_in_dir(small_spec(), run_dir, checkpoint_every=2,
                       on_generation=interrupt_at(3))
        resume_run(run_dir)  # no cadence passed: run.json supplies 2
        assert [g for g, _ in RunDir(run_dir).checkpoints()] == [2, 4, 5]

    def test_run_experiment_run_dir_round_trip(self, tmp_path):
        run_dir = tmp_path / "run"
        result = run_experiment(small_spec(), run_dir=run_dir)
        assert RunDir(run_dir).is_complete
        again = run_experiment(small_spec(), run_dir=run_dir, resume=True)
        assert again.best_fitness == result.best_fitness

    def test_run_experiment_resume_needs_run_dir(self):
        with pytest.raises(ValueError, match="resume requires run_dir"):
            run_experiment(small_spec(), resume=True)

    def test_soc_backend_rejects_resume(self, tmp_path):
        from repro.api import ResumeUnsupportedError

        run_dir = tmp_path / "run"
        spec = small_spec(backend="soc", max_generations=2)
        run_in_dir(spec, run_dir)  # records metrics, no checkpoints
        assert RunDir(run_dir).checkpoints() == []
        # Force a checkpointed resume attempt via a grafted state file.
        other = tmp_path / "sw"
        run_in_dir(small_spec(max_generations=2), other, checkpoint_every=1)
        ckpt = RunDir(other).checkpoints()[0][1]
        RunDir(run_dir).checkpoint_path(1).write_text(ckpt.read_text())
        with pytest.raises(ResumeUnsupportedError):
            resume_run(run_dir)


class TestReport:
    def make_report(self, tmp_path, **overrides):
        run_in_dir(small_spec(**overrides), tmp_path)
        return load_run(tmp_path)

    def test_fitness_table_covers_all_generations(self, tmp_path):
        report = self.make_report(tmp_path / "run")
        headers, rows = fitness_table(report)
        assert headers[0] == "gen"
        assert len(rows) == 5

    def test_hardware_table_totals_row(self, tmp_path):
        report = self.make_report(tmp_path / "run")
        headers, rows = hardware_table(report)
        assert rows[-1][0] == "total"
        total_steps = sum(m["env_steps"] for m in report.metrics)
        assert rows[-1][headers.index("env_steps")] == total_steps

    def test_analytical_run_reports_energy(self, tmp_path):
        report = self.make_report(
            tmp_path / "run", backend="analytical:GENESYS", max_generations=3
        )
        headers, _ = hardware_table(report)
        assert "energy_j" in headers and "runtime_s" in headers
        _, srows = summary_table([report])
        assert srows[0][-1] == "complete"

    def test_report_on_interrupted_run(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(Interrupt):
            run_in_dir(small_spec(), run_dir, checkpoint_every=2,
                       on_generation=interrupt_at(2))
        report = load_run(run_dir)
        assert not report.complete
        assert report.generations == 3  # rows 0-2 persisted
        _, rows = summary_table([report])
        assert rows[0][-1] == "in progress"

    def test_export_reports(self, tmp_path):
        report = self.make_report(tmp_path / "run")
        csv_path, json_path = export_reports(
            [report], tmp_path / "out"
        )
        lines = csv_path.read_text().splitlines()
        assert lines[0].startswith("run,generation,best_fitness")
        assert len(lines) == 1 + 5
        payload = json.loads(json_path.read_text())
        assert payload[0]["spec"] == report.spec.to_dict()
        assert len(payload[0]["metrics"]) == 5

    def test_export_nothing_raises(self, tmp_path):
        with pytest.raises(RunError, match="nothing to export"):
            export_reports([], tmp_path / "out")
