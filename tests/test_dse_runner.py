"""Integration tests for the sweep engine: memoisation, parallelism,
result shaping."""

import json

import pytest

from repro.api import ExperimentSpec
from repro.dse import SweepRunner, SweepSpec, run_sweep

BASE = ExperimentSpec("CartPole-v0", max_generations=1, pop_size=8, max_steps=20)


def counting_evaluator(log):
    """A cheap deterministic evaluator that records every invocation."""

    def evaluate(point):
        log.append(dict(point.axes))
        seed = point.axes.get("seed", point.spec.seed)
        return {"fitness": float(seed * 2), "runtime_s": 1.0 + seed}

    return evaluate


def stub_runner(sweep, log, **kwargs):
    kwargs.setdefault("evaluator_version", "stub-v1")
    return SweepRunner(sweep, evaluate=counting_evaluator(log), **kwargs)


class TestMemoisation:
    AXES = {"seed": [0, 1, 2]}

    def test_second_run_is_all_cache_hits(self, tmp_path):
        sweep = SweepSpec(base=BASE, axes=self.AXES)
        log = []
        first = stub_runner(sweep, log, cache_dir=tmp_path).run()
        assert first.evaluated == 3 and first.cache_hits == 0
        assert len(log) == 3
        second = stub_runner(sweep, log, cache_dir=tmp_path).run()
        assert second.evaluated == 0 and second.cache_hits == 3
        assert len(log) == 3  # nothing re-ran
        assert [r["fitness"] for r in second.rows] == \
            [r["fitness"] for r in first.rows]

    def test_edited_sweep_only_evaluates_new_points(self, tmp_path):
        log = []
        stub_runner(
            SweepSpec(base=BASE, axes=self.AXES), log, cache_dir=tmp_path
        ).run()
        edited = SweepSpec(base=BASE, axes={"seed": [0, 1, 2, 3, 4]})
        result = stub_runner(edited, log, cache_dir=tmp_path).run()
        assert result.points == 5
        assert result.cache_hits == 3
        assert result.evaluated == 2
        assert [entry["seed"] for entry in log] == [0, 1, 2, 3, 4]

    def test_evaluator_version_partitions_the_cache(self, tmp_path):
        sweep = SweepSpec(base=BASE, axes=self.AXES)
        log = []
        stub_runner(sweep, log, cache_dir=tmp_path).run()
        rerun = stub_runner(
            sweep, log, cache_dir=tmp_path, evaluator_version="stub-v2"
        ).run()
        assert rerun.evaluated == 3  # new identity, no stale hits

    def test_custom_evaluator_without_version_is_uncached(self, tmp_path):
        sweep = SweepSpec(base=BASE, axes=self.AXES)
        log = []
        runner = SweepRunner(
            sweep, cache_dir=tmp_path, evaluate=counting_evaluator(log)
        )
        assert runner.cache is None
        first = runner.run()
        assert first.cache_dir is None
        assert first.evaluated == 3

    def test_completed_points_persist_when_a_later_point_fails(self, tmp_path):
        """An interrupted sweep must keep its finished evaluations."""
        calls = []

        def flaky(point):
            calls.append(point.axes["seed"])
            if point.axes["seed"] == 2:
                raise RuntimeError("boom")
            return {"fitness": 1.0}

        sweep = SweepSpec(base=BASE, axes={"seed": [0, 1, 2]})
        with pytest.raises(RuntimeError):
            SweepRunner(
                sweep, cache_dir=tmp_path, evaluate=flaky,
                evaluator_version="flaky-v1",
            ).run()
        assert calls == [0, 1, 2]
        retry = SweepRunner(
            sweep, cache_dir=tmp_path,
            evaluate=lambda p: {"fitness": 1.0},
            evaluator_version="flaky-v1",
        ).run()
        assert retry.cache_hits == 2  # seeds 0 and 1 survived the crash
        assert retry.evaluated == 1

    def test_no_cache_dir_disables_persistence(self):
        sweep = SweepSpec(base=BASE, axes=self.AXES)
        log = []
        result = stub_runner(sweep, log).run()
        assert result.cache_dir is None
        assert result.evaluated == 3

    def test_duplicate_effective_specs_collapse_to_one_run(self, tmp_path):
        """A hardware axis on a non-soc backend leaves the effective spec
        unchanged — the default executor must evaluate it once."""
        sweep = SweepSpec(
            base=BASE, axes={"hw.eve_pes": [16, 64, 256]}
        )
        result = run_sweep(sweep, cache_dir=tmp_path)
        assert result.points == 3
        assert result.evaluated == 1
        assert result.cache_hits == 2
        fitnesses = {row["fitness"] for row in result.rows}
        assert len(fitnesses) == 1


class TestExecution:
    def test_default_executor_reports_metrics(self, tmp_path):
        result = run_sweep(
            SweepSpec(base=BASE, axes={"seed": [0, 1]}), cache_dir=tmp_path
        )
        for row in result.rows:
            assert isinstance(row["fitness"], float)
            assert row["generations"] == 1
            assert row["env_steps"] > 0
            assert row["key"]
        assert result.metric_names()[0] == "fitness"
        assert result.metric_names()[-1] == "cached"

    def test_jobs_pool_matches_serial(self, tmp_path):
        sweep = SweepSpec(base=BASE, axes={"seed": [0, 1]})
        serial = run_sweep(sweep)
        pooled = run_sweep(sweep, jobs=2, cache_dir=tmp_path / "pool")
        assert [r["fitness"] for r in pooled.rows] == \
            [r["fitness"] for r in serial.rows]
        assert [r["env_steps"] for r in pooled.rows] == \
            [r["env_steps"] for r in serial.rows]
        assert pooled.evaluated == 2

    def test_progress_observer_sees_every_point(self):
        log, seen = [], []
        sweep = SweepSpec(base=BASE, axes={"seed": [0, 1, 2]})
        stub_runner(sweep, log).run(
            progress=lambda done, total, row: seen.append((done, total))
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_run_sweep_accepts_a_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        SweepSpec(base=BASE, axes={"seed": [0]}).save(path)
        result = run_sweep(path)
        assert result.points == 1

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepRunner(SweepSpec(base=BASE, axes={"seed": [0]}), jobs=0)


class TestRunsDir:
    def test_every_evaluated_point_gets_a_run_dir(self, tmp_path):
        sweep = SweepSpec(base=BASE, axes={"seed": [0, 1]})
        result = run_sweep(
            sweep, cache_dir=tmp_path / "cache",
            runs_dir=tmp_path / "points",
        )
        for row in result.rows:
            assert row["run_dir"] == str(tmp_path / "points" / row["key"])
            metrics = (tmp_path / "points" / row["key"] / "metrics.jsonl")
            assert metrics.exists()

    def test_cached_rerun_keeps_run_dir_column(self, tmp_path):
        sweep = SweepSpec(base=BASE, axes={"seed": [0]})
        kwargs = dict(cache_dir=tmp_path / "cache",
                      runs_dir=tmp_path / "points")
        first = run_sweep(sweep, **kwargs)
        again = run_sweep(sweep, **kwargs)
        assert again.cache_hits == 1
        assert again.rows[0]["run_dir"] == first.rows[0]["run_dir"]

    def test_run_dir_excluded_from_metric_columns(self, tmp_path):
        sweep = SweepSpec(base=BASE, axes={"seed": [0]})
        result = run_sweep(sweep, runs_dir=tmp_path / "points")
        assert "run_dir" not in result.metric_names()
        headers, _ = result.table()
        assert "run_dir" not in headers

    def test_run_dir_in_csv_export(self, tmp_path):
        sweep = SweepSpec(base=BASE, axes={"seed": [0]})
        result = run_sweep(sweep, runs_dir=tmp_path / "points")
        result.to_csv(tmp_path / "out.csv")
        header = (tmp_path / "out.csv").read_text().splitlines()[0]
        assert header.endswith("run_dir")

    def test_point_run_dirs_are_resumable_records(self, tmp_path):
        from repro.runs import load_run

        sweep = SweepSpec(base=BASE, axes={"seed": [0]})
        result = run_sweep(sweep, runs_dir=tmp_path / "points")
        report = load_run(result.rows[0]["run_dir"])
        assert report.complete
        assert report.spec.seed == 0

    def test_pool_jobs_compose_with_runs_dir(self, tmp_path):
        sweep = SweepSpec(base=BASE, axes={"seed": [0, 1]})
        result = run_sweep(
            sweep, jobs=2, cache_dir=tmp_path / "cache",
            runs_dir=tmp_path / "points",
        )
        assert all(
            (tmp_path / "points" / row["key"] / "result.json").exists()
            for row in result.rows
        )

    def test_runs_dir_rejected_with_custom_evaluator(self, tmp_path):
        with pytest.raises(ValueError, match="default experiment executor"):
            stub_runner(
                SweepSpec(base=BASE, axes={"seed": [0]}), [],
                runs_dir=tmp_path / "points",
            )


class TestReplayEvaluator:
    def test_eve_replay_sweep_is_deterministic_and_ordered(self):
        """The Fig. 11 methodology through the sweep engine: replaying a
        recorded reproduction plan across hardware axes."""
        from repro.core.runner import config_for_env
        from repro.dse import eve_replay_evaluator
        from repro.envs.evaluate import FitnessEvaluator
        from repro.neat.population import Population

        config = config_for_env("CartPole-v0", pop_size=12)
        population = Population(config, seed=0)
        evaluator = FitnessEvaluator("CartPole-v0", max_steps=30, seed=0)
        population.run_generation(evaluator)
        genomes = list(population.population.values())
        evaluator(genomes, config)
        population.species_set.adjust_fitnesses(population.generation)
        plan = population.reproduction.plan_generation(
            population.species_set, population.generation, population.rng
        )

        sweep = SweepSpec(
            base=BASE,
            axes={"hw.eve_pes": [2, 8], "hw.noc": ["p2p", "multicast"]},
        )

        def run():
            return SweepRunner(
                sweep,
                evaluate=eve_replay_evaluator(
                    config, population.population, plan
                ),
            ).run()

        first, second = run(), run()
        assert [r["cycles"] for r in first.rows] == \
            [r["cycles"] for r in second.rows]
        by = {(r["hw.eve_pes"], r["hw.noc"]): r for r in first.rows}
        # More PEs never slow reproduction down; multicast never reads
        # more SRAM than the point-to-point bus.
        assert by[(8, "multicast")]["cycles"] <= by[(2, "multicast")]["cycles"]
        assert by[(8, "multicast")]["sram_reads"] <= by[(8, "p2p")]["sram_reads"]
        assert all(r["sram_energy_uj"] > 0 for r in first.rows)


class TestResultShaping:
    def result(self):
        log = []
        sweep = SweepSpec(
            base=BASE, axes={"backend": ["software"], "seed": [0, 1, 2]}
        )
        return stub_runner(sweep, log).run()

    def test_table_headers_and_rows(self):
        result = self.result()
        headers, rows = result.table()
        assert headers[:2] == ["backend", "seed"]
        assert "fitness" in headers
        assert len(rows) == 3

    def test_table_custom_columns(self):
        headers, rows = self.result().table(["seed", "fitness"])
        assert headers == ["seed", "fitness"]
        assert rows[1] == [1, "2"]

    def test_group_by(self):
        groups = self.result().group_by("backend", "fitness")
        assert groups == [{
            "backend": "software", "count": 3,
            "mean": 2.0, "min": 0.0, "max": 4.0,
        }]

    def test_group_by_rejects_unknown_axis_and_metric(self):
        from repro.dse import ObjectiveError

        result = self.result()
        with pytest.raises(ObjectiveError, match="unknown axis"):
            result.group_by("bakend", "fitness")
        with pytest.raises(ObjectiveError, match="not a numeric column"):
            result.group_by("backend", "fitnes")

    def test_pareto_rejects_metric_absent_from_every_row(self):
        from repro.dse import ObjectiveError

        with pytest.raises(ObjectiveError, match="not a numeric column"):
            self.result().pareto_front({"fitnes": "max"})

    def test_pareto_front(self):
        front = self.result().pareto_front(
            {"fitness": "max", "runtime_s": "min"}
        )
        # fitness and runtime both rise with seed: the extremes survive,
        # the middle point survives too (a trade-off, not dominated).
        assert len(front) == 3

    def test_csv_export(self, tmp_path):
        path = tmp_path / "out.csv"
        self.result().to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("backend,seed,fitness")
        assert len(lines) == 4

    def test_json_export_round_trips(self, tmp_path):
        path = tmp_path / "out.json"
        result = self.result()
        result.to_json(path)
        payload = json.loads(path.read_text())
        assert payload["points"] == 3
        assert payload["sweep"]["axes"]["seed"] == [0, 1, 2]
        assert len(payload["rows"]) == 3
