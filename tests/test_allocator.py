"""Unit tests for the PE allocation policies."""

import pytest

from repro.hw.allocator import (
    greedy_reuse_schedule,
    make_scheduler,
    round_robin_schedule,
)
from repro.neat.reproduction import ReproductionEvent


def events_with_parents(pairs):
    return [
        ReproductionEvent(child_key=100 + i, parent1_key=p1, parent2_key=p2,
                          species_key=1)
        for i, (p1, p2) in enumerate(pairs)
    ]


class TestGreedy:
    def test_wave_size_bounded(self):
        events = events_with_parents([(1, 2)] * 10)
        waves = greedy_reuse_schedule(events, num_pes=4)
        assert all(len(w) <= 4 for w in waves)
        assert sum(len(w) for w in waves) == 10

    def test_all_events_scheduled_once(self):
        events = events_with_parents([(1, 2), (3, 4), (1, 2), (5, 6)])
        waves = greedy_reuse_schedule(events, num_pes=2)
        scheduled = [e.child_key for w in waves for e in w]
        assert sorted(scheduled) == sorted(e.child_key for e in events)

    def test_shared_parents_co_scheduled(self):
        # 3 children of (1,2), 3 of (3,4), wave size 3:
        # greedy puts each family in its own wave.
        events = events_with_parents([(1, 2), (3, 4), (1, 2), (3, 4), (1, 2), (3, 4)])
        waves = greedy_reuse_schedule(events, num_pes=3)
        assert len(waves) == 2
        for wave in waves:
            pairs = {tuple(sorted((e.parent1_key, e.parent2_key))) for e in wave}
            assert len(pairs) == 1

    def test_largest_family_first(self):
        events = events_with_parents([(9, 9)] + [(1, 2)] * 5)
        waves = greedy_reuse_schedule(events, num_pes=4)
        first_wave_pairs = [
            tuple(sorted((e.parent1_key, e.parent2_key))) for e in waves[0]
        ]
        assert all(p == (1, 2) for p in first_wave_pairs)

    def test_symmetric_pair_grouping(self):
        events = events_with_parents([(1, 2), (2, 1)])
        waves = greedy_reuse_schedule(events, num_pes=2)
        assert len(waves) == 1

    def test_invalid_pe_count(self):
        with pytest.raises(ValueError):
            greedy_reuse_schedule([], 0)


class TestRoundRobin:
    def test_arrival_order_preserved(self):
        events = events_with_parents([(1, 2), (3, 4), (5, 6)])
        waves = round_robin_schedule(events, num_pes=2)
        assert [e.child_key for e in waves[0]] == [100, 101]
        assert [e.child_key for e in waves[1]] == [102]

    def test_empty(self):
        assert round_robin_schedule([], 4) == []


class TestFactory:
    def test_lookup(self):
        assert make_scheduler("greedy") is greedy_reuse_schedule
        assert make_scheduler("round-robin") is round_robin_schedule
        assert make_scheduler("round_robin") is round_robin_schedule

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_scheduler("random")
