"""Tests for trace persistence and additional physics/extinction edges."""

import numpy as np
import pytest

from repro.core import GeneSysConfig, GeneSysSoC, config_for_env
from repro.core.trace import TraceRecorder, WorkloadTrace
from repro.envs import AcrobotEnv
from repro.hw import EvEConfig


class TestTracePersistence:
    def test_save_load_round_trip(self, tmp_path):
        recorder = TraceRecorder("CartPole-v0", pop_size=12, seed=0, max_steps=40)
        trace = recorder.record(3)
        path = tmp_path / "cartpole.trace"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        assert loaded.env_id == "CartPole-v0"
        assert len(loaded.lines) == len(trace.lines)
        for a, b in zip(loaded.lines, trace.lines):
            assert (a.generation, a.genome_id, a.op, a.count) == (
                b.generation, b.genome_id, b.op, b.count,
            )

    def test_file_format_matches_paper_fields(self, tmp_path):
        recorder = TraceRecorder("CartPole-v0", pop_size=10, seed=0, max_steps=30)
        trace = recorder.record(2)
        path = tmp_path / "t.trace"
        trace.save(path)
        lines = path.read_text().splitlines()
        assert lines[0].startswith("# workload trace:")
        # generation, genome id, op type, parameters-changed count
        data = [l for l in lines if not l.startswith("#")]
        assert data
        assert all(len(l.split(",")) == 4 for l in data)


class TestAcrobotPhysics:
    def test_hanging_equilibrium(self):
        """At the exact hanging rest state with zero torque, the dynamics
        are at an equilibrium (the 'book' equations of Sutton 1996)."""
        env = AcrobotEnv(seed=0)
        env.reset()
        env.state = np.zeros(4)
        obs, _r, _d, _i = env.step(1)  # zero torque
        assert np.allclose(env.state, 0.0, atol=1e-12)

    def test_torque_breaks_equilibrium(self):
        env = AcrobotEnv(seed=0)
        env.reset()
        env.state = np.zeros(4)
        env.step(2)  # +1 torque
        assert not np.allclose(env.state, 0.0)


class TestSoCExtinctionRecovery:
    def test_reinitialises_after_total_stagnation(self):
        neat = config_for_env("MountainCar-v0", pop_size=8)
        neat.species.max_stagnation = 1
        neat.species.species_elitism = 0
        config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=4), seed=0)
        soc = GeneSysSoC(config, "MountainCar-v0", max_steps=15)
        # Tiny caps give every genome the identical -15 fitness: guaranteed
        # stagnation, then complete extinction, then CPU re-seed.
        for _ in range(5):
            soc.run_generation()
        assert len(soc.population) == 8
        assert soc.buffer.resident_genomes() == sorted(soc.population)
