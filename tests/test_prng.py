"""Unit tests for the XOR-WOW PRNG."""

import pytest

from repro.hw.prng import XorWow


def test_deterministic_for_seed():
    a = XorWow(seed=123)
    b = XorWow(seed=123)
    assert a.bytes(100) == b.bytes(100)


def test_different_seeds_diverge():
    assert XorWow(seed=1).bytes(20) != XorWow(seed=2).bytes(20)


def test_reseed_restores_stream():
    prng = XorWow(seed=5)
    first = prng.bytes(10)
    prng.seed(5)
    assert prng.bytes(10) == first


def test_u32_range():
    prng = XorWow(seed=0)
    for _ in range(1000):
        value = prng.next_u32()
        assert 0 <= value < 2 ** 32


def test_byte_port_range():
    prng = XorWow(seed=0)
    for _ in range(1000):
        assert 0 <= prng.next_byte() <= 255


def test_signed_byte_range():
    prng = XorWow(seed=0)
    values = [prng.next_signed_byte() for _ in range(1000)]
    assert all(-128 <= v <= 127 for v in values)
    assert any(v < 0 for v in values) and any(v > 0 for v in values)


def test_unit_range():
    prng = XorWow(seed=0)
    for _ in range(500):
        assert 0.0 <= prng.next_unit() < 1.0


def test_byte_distribution_roughly_uniform():
    """Chi-square-lite: all 256 byte values appear at plausible rates."""
    prng = XorWow(seed=42)
    counts = [0] * 256
    n = 256 * 200
    for _ in range(n):
        counts[prng.next_byte()] += 1
    expected = n / 256
    assert min(counts) > expected * 0.5
    assert max(counts) < expected * 1.5


def test_no_short_cycle():
    prng = XorWow(seed=7)
    seen_states = set()
    for _ in range(10_000):
        prng.next_u32()
        state = prng.state
        assert state not in seen_states
        seen_states.add(state)


def test_weyl_counter_advances():
    prng = XorWow(seed=0)
    d0 = prng.state[-1]
    prng.next_u32()
    assert prng.state[-1] == (d0 + 362437) % 2 ** 32


def test_stream_iterator():
    prng = XorWow(seed=3)
    stream = prng.stream()
    values = [next(stream) for _ in range(5)]
    assert all(0 <= v <= 255 for v in values)


def test_all_zero_state_avoided():
    # seeding must never produce the degenerate all-zero xorshift state
    for seed in range(50):
        prng = XorWow(seed=seed)
        assert any(prng.state[:5])
