"""Unit tests for repro.api backends, registry and the Experiment runner."""

import dataclasses

import pytest

from repro.api import (
    Experiment,
    ExperimentSpec,
    RunResult,
    UnknownBackendError,
    available_backends,
    make_backend,
    register_backend,
)
from repro.core.config import GeneSysConfig
from repro.core.runner import evolve_on_hardware, evolve_software

SMALL = dict(max_generations=3, pop_size=14, max_steps=40, seed=0)


def small_spec(**overrides) -> ExperimentSpec:
    return ExperimentSpec("CartPole-v0", **{**SMALL, **overrides})


class TestRegistry:
    def test_available_backends_lists_all_substrates(self):
        names = available_backends()
        assert "software" in names
        assert "soc" in names
        assert "analytical:GENESYS" in names
        assert "analytical:CPU_a" in names

    def test_unknown_backend(self):
        with pytest.raises(UnknownBackendError, match="unknown backend"):
            make_backend("fpga")

    def test_unknown_analytical_platform(self):
        with pytest.raises(UnknownBackendError, match="unknown analytical"):
            make_backend("analytical:TPU_z")

    def test_software_rejects_parameter(self):
        with pytest.raises(UnknownBackendError):
            make_backend("software:fast")

    def test_custom_backend_registration(self):
        class EchoBackend:
            name = "echo"

            def __init__(self, arg=None, **options):
                self.arg = arg

            def run(self, spec, on_generation=None, on_evaluation=None):
                return spec

        register_backend("echo", EchoBackend)
        try:
            backend = make_backend("echo:hi")
            assert backend.arg == "hi"
        finally:
            from repro.api import backends as backends_mod

            del backends_mod._REGISTRY["echo"]


class TestBackendsRun:
    def test_software_backend(self):
        result = Experiment(small_spec()).run()
        assert isinstance(result, RunResult)
        assert result.backend == "software"
        assert result.champion.fitness is not None
        assert len(result.metrics) == result.generations
        assert result.total_energy_j is None  # software measures no energy
        assert result.population is not None

    def test_soc_backend(self):
        result = Experiment(small_spec(backend="soc")).run()
        assert result.backend == "soc"
        assert result.total_energy_j > 0
        assert result.total_cycles > 0
        assert result.total_runtime_s > 0
        assert len(result.reports) == len(result.metrics)
        assert all(m.energy_j is not None for m in result.metrics)

    def test_analytical_backend(self):
        result = Experiment(small_spec(backend="analytical:GENESYS")).run()
        assert result.backend == "analytical:GENESYS"
        assert result.total_energy_j > 0
        assert result.total_runtime_s > 0
        assert all(m.runtime_s is not None for m in result.metrics)

    def test_analytical_matches_software_champion(self):
        """The analytical backend only *costs* the run — the evolution
        itself must be identical to the software path."""
        sw = Experiment(small_spec()).run()
        an = Experiment(small_spec(backend="analytical:CPU_a")).run()
        assert sw.best_fitness == an.best_fitness
        assert [m.best_fitness for m in sw.metrics] == \
            [m.best_fitness for m in an.metrics]

    def test_analytical_platforms_differ_in_cost_not_outcome(self):
        cpu = Experiment(small_spec(backend="analytical:CPU_a")).run()
        gen = Experiment(small_spec(backend="analytical:GENESYS")).run()
        assert cpu.best_fitness == gen.best_fitness
        assert cpu.total_energy_j != gen.total_energy_j

    def test_summary_is_json_friendly(self):
        import json

        result = Experiment(small_spec()).run()
        text = json.dumps(result.summary())
        assert "best_fitness" in text

    def test_fitness_threshold_stops_early(self):
        unlimited = small_spec(max_generations=6, fitness_threshold=1e9)
        result = Experiment(unlimited).run()
        assert result.generations == 6
        capped = small_spec(max_generations=6, fitness_threshold=5.0)
        result = Experiment(capped).run()
        assert result.generations < 6
        assert result.converged


class TestSoCHardwareOptions:
    """JSON-friendly hardware knobs on the soc backend (the DSE axes)."""

    def test_options_reshape_the_design_point(self):
        backend = make_backend(
            "soc", eve_pes=8, noc="p2p", scheduler="round-robin",
            adam_shape="16x8",
        )
        config = backend._resolve_config(small_spec(backend="soc"))
        assert config.eve.num_pes == 8
        assert config.eve.noc == "p2p"
        assert config.eve.scheduler == "round-robin"
        assert (config.adam.rows, config.adam.cols) == (16, 8)

    def test_options_override_a_caller_config_copy(self):
        soc_config = GeneSysConfig.paper_design_point()
        backend = make_backend("soc", soc_config=soc_config, eve_pes=4)
        config = backend._resolve_config(small_spec(backend="soc"))
        assert config.eve.num_pes == 4
        assert soc_config.eve.num_pes == 256  # caller's object untouched

    def test_run_through_backend_options(self):
        spec = small_spec(
            backend="soc", max_generations=1,
            backend_options={"eve_pes": 8, "noc": "p2p"},
        )
        result = Experiment(spec).run()
        assert result.total_energy_j > 0

    @pytest.mark.parametrize("options", [
        {"eve_pes": 0},
        {"eve_pes": "many"},
        {"noc": "torus"},
        {"scheduler": "lifo"},
        {"adam_shape": "32"},
        {"adam_shape": "0x8"},
    ])
    def test_invalid_options_raise_spec_errors(self, options):
        from repro.api import SpecError

        with pytest.raises(SpecError):
            make_backend("soc", **options)

    def test_bare_analytical_requires_platform(self):
        with pytest.raises(UnknownBackendError, match="needs a platform"):
            make_backend("analytical")


class TestObservers:
    def test_software_observers_fire(self):
        generations, evaluations = [], []
        spec = small_spec(fitness_threshold=1e9)
        Experiment(spec).run(
            on_generation=lambda m: generations.append(m.generation),
            on_evaluation=lambda gen, genomes: evaluations.append(
                (gen, len(genomes), all(g.fitness is not None for g in genomes))
            ),
        )
        assert generations == [0, 1, 2]
        assert [e[0] for e in evaluations] == [0, 1, 2]
        # every evaluation observer saw a fully-evaluated population
        assert all(ok for _gen, _n, ok in evaluations)

    def test_soc_observers_fire(self):
        generations, evaluations = [], []
        spec = small_spec(backend="soc", fitness_threshold=1e9)
        Experiment(spec).run(
            on_generation=lambda m: generations.append(m.generation),
            on_evaluation=lambda gen, genomes: evaluations.append(
                all(g.fitness is not None for g in genomes)
            ),
        )
        assert generations == [0, 1, 2]
        assert all(evaluations)


class TestLegacyShims:
    def test_evolve_software_warns_and_matches_experiment(self):
        with pytest.warns(DeprecationWarning):
            legacy = evolve_software(
                "CartPole-v0", max_generations=3, pop_size=14,
                max_steps=40, seed=0,
            )
        modern = Experiment(small_spec()).run()
        assert legacy.best_genome.fitness == modern.best_fitness
        assert legacy.generations == modern.generations
        assert legacy.converged == modern.converged
        legacy_series = [
            s.best_fitness for s in legacy.population.statistics.generations
        ]
        modern_series = [m.best_fitness for m in modern.metrics]
        assert legacy_series == modern_series

    def test_evolve_on_hardware_warns_and_matches_experiment(self):
        with pytest.warns(DeprecationWarning):
            legacy = evolve_on_hardware(
                "CartPole-v0", max_generations=3, pop_size=14,
                max_steps=40, seed=0,
            )
        modern = Experiment(small_spec(backend="soc")).run()
        assert legacy.best_genome.fitness == modern.best_fitness
        assert legacy.generations == modern.generations
        assert legacy.total_energy_j == modern.total_energy_j
        assert legacy.total_cycles == modern.total_cycles

    def test_soc_config_not_mutated(self):
        """Regression: evolve_on_hardware used to assign .neat/.seed on the
        caller's GeneSysConfig in place."""
        config = GeneSysConfig.paper_design_point()
        original_neat = config.neat
        original_eve = config.eve
        original_pe = config.eve.pe
        original_seed = config.seed
        with pytest.warns(DeprecationWarning):
            result = evolve_on_hardware(
                "CartPole-v0", max_generations=1, pop_size=10,
                max_steps=30, seed=7, soc_config=config,
            )
        assert config.neat is original_neat
        assert config.neat.genome.num_inputs == 2  # default, not CartPole's 4
        assert config.seed == original_seed
        assert config.eve is original_eve
        assert config.eve.pe is original_pe
        # ... while the run itself used the spec's sizing and seed.
        assert result.soc.config.neat.genome.num_inputs == 4
        assert result.soc.config.seed == 7

    def test_experiment_accepts_soc_config(self):
        config = GeneSysConfig.paper_design_point()
        result = Experiment(
            small_spec(backend="soc", max_generations=1), soc_config=config
        ).run()
        assert result.soc.config is not config
        assert result.best_fitness > 0

    def test_soc_runtime_respects_config_frequency(self):
        """runtime_s must follow the design point's clock, not the module
        default."""
        spec = small_spec(backend="soc", max_generations=1)
        base = GeneSysConfig.paper_design_point()
        fast = dataclasses.replace(
            GeneSysConfig.paper_design_point(),
            frequency_hz=base.frequency_hz * 2,
        )
        slow_run = Experiment(spec, soc_config=base).run()
        fast_run = Experiment(spec, soc_config=fast).run()
        assert slow_run.total_cycles == fast_run.total_cycles
        assert fast_run.total_runtime_s == pytest.approx(
            slow_run.total_runtime_s / 2
        )
        assert fast_run.metrics[0].runtime_s == pytest.approx(
            slow_run.metrics[0].runtime_s / 2
        )
