"""Unit tests for repro.neat.population."""

import pytest

from repro.neat import NEATConfig, Population


@pytest.fixture
def config():
    return NEATConfig.for_env(2, 1, pop_size=20)


def constant_fitness(value):
    def fitness_fn(genomes, config):
        for genome in genomes:
            genome.fitness = value

    return fitness_fn


def size_fitness(genomes, config):
    """Reward structural growth: deterministic, evolution-sensitive."""
    for genome in genomes:
        genome.fitness = float(genome.num_genes)


def test_initial_population_size(config):
    pop = Population(config, seed=0)
    assert len(pop.population) == 20
    assert pop.generation == 0


def test_run_generation_advances(config):
    pop = Population(config, seed=0)
    pop.run_generation(constant_fitness(1.0))
    assert pop.generation == 1
    assert len(pop.population) == 20


def test_unevaluated_genome_raises(config):
    pop = Population(config, seed=0)

    def partial(genomes, cfg):
        for genome in genomes[:-1]:
            genome.fitness = 1.0

    with pytest.raises(RuntimeError, match="unevaluated"):
        pop.run_generation(partial)


def test_best_genome_tracked(config):
    pop = Population(config, seed=0)
    pop.run_generation(size_fitness)
    assert pop.best_genome is not None
    assert pop.best_genome.fitness >= 1


def test_run_stops_at_threshold(config):
    pop = Population(config, seed=0)
    best = pop.run(constant_fitness(5.0), max_generations=50, fitness_threshold=4.0)
    assert pop.generation == 1  # converged immediately
    assert best.fitness == 5.0


def test_run_respects_generation_budget(config):
    pop = Population(config, seed=0)
    pop.run(constant_fitness(0.0), max_generations=3, fitness_threshold=100.0)
    assert pop.generation == 3


def test_statistics_recorded_per_generation(config):
    pop = Population(config, seed=0)
    pop.run(size_fitness, max_generations=4)
    stats = pop.statistics.generations
    assert len(stats) == 4
    assert all(s.population_size == 20 for s in stats)
    assert stats[0].ops.total == 0  # no reproduction before generation 0
    assert any(s.ops.total > 0 for s in stats[1:])


def test_gene_growth_under_size_pressure(config):
    config.genome.node_add_prob = 0.5
    config.genome.conn_add_prob = 0.5
    pop = Population(config, seed=1)
    pop.run(size_fitness, max_generations=8)
    series = pop.statistics.gene_count_series()
    assert series[-1] > series[0]


def test_fitness_criterion_mean(config):
    config.fitness_criterion = "mean"
    pop = Population(config, seed=0)
    pop.run(constant_fitness(2.0), max_generations=2, fitness_threshold=1.0)
    assert pop.generation == 1


def test_converged_property(config):
    config.fitness_threshold = 1.0
    pop = Population(config, seed=0)
    assert not pop.converged
    pop.run(constant_fitness(5.0), max_generations=2)
    assert pop.converged


def test_deterministic_given_seed(config):
    runs = []
    for _ in range(2):
        pop = Population(config, seed=42)
        pop.run(size_fitness, max_generations=3)
        runs.append(pop.statistics.gene_count_series())
    assert runs[0] == runs[1]


def test_different_seeds_differ(config):
    config.genome.node_add_prob = 0.3
    results = []
    for seed in (1, 2):
        pop = Population(config, seed=seed)
        pop.run(size_fitness, max_generations=5)
        results.append(tuple(pop.statistics.gene_count_series()))
    assert results[0] != results[1]
