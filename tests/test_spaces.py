"""Unit tests for repro.envs.spaces."""

import random

import numpy as np
import pytest

from repro.envs.spaces import Box, Discrete, MultiBinary


@pytest.fixture
def rng():
    return random.Random(3)


class TestDiscrete:
    def test_contains(self):
        space = Discrete(4)
        assert space.contains(0)
        assert space.contains(3)
        assert not space.contains(4)
        assert not space.contains(-1)
        assert not space.contains(1.5)
        assert not space.contains("a")

    def test_contains_numpy_int(self):
        assert Discrete(3).contains(np.int64(2))

    def test_sample_in_range(self, rng):
        space = Discrete(5)
        for _ in range(100):
            assert space.contains(space.sample(rng))

    def test_flat_dim(self):
        assert Discrete(7).flat_dim == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_equality(self):
        assert Discrete(3) == Discrete(3)
        assert Discrete(3) != Discrete(4)


class TestBox:
    def test_from_lists(self):
        space = Box(low=[-1.0, 0.0], high=[1.0, 2.0])
        assert space.shape == (2,)
        assert space.flat_dim == 2

    def test_from_scalar_and_shape(self):
        space = Box(low=-1.0, high=1.0, shape=(4,))
        assert space.shape == (4,)
        assert np.all(space.low == -1.0)

    def test_contains(self):
        space = Box(low=[-1.0, -1.0], high=[1.0, 1.0])
        assert space.contains([0.0, 0.5])
        assert not space.contains([0.0, 2.0])
        assert not space.contains([0.0])

    def test_sample_within_bounds(self, rng):
        space = Box(low=[-2.0, 0.0], high=[2.0, 1.0])
        for _ in range(50):
            assert space.contains(space.sample(rng))

    def test_sample_with_infinite_bounds(self, rng):
        space = Box(low=[-np.inf], high=[np.inf])
        sample = space.sample(rng)
        assert np.isfinite(sample).all()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Box(low=[0.0, 1.0], high=[1.0])

    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            Box(low=[1.0], high=[0.0])

    def test_equality(self):
        assert Box(low=[0.0], high=[1.0]) == Box(low=[0.0], high=[1.0])
        assert Box(low=[0.0], high=[1.0]) != Box(low=[0.0], high=[2.0])


class TestMultiBinary:
    def test_contains(self):
        space = MultiBinary(3)
        assert space.contains([0, 1, 0])
        assert not space.contains([0, 2, 0])
        assert not space.contains([0, 1])
        assert not space.contains(5)

    def test_sample(self, rng):
        space = MultiBinary(8)
        for _ in range(20):
            assert space.contains(space.sample(rng))

    def test_flat_dim(self):
        assert MultiBinary(16).flat_dim == 16

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            MultiBinary(0)
