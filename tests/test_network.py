"""Unit tests for repro.neat.network."""

import math
import random

import pytest

from repro.neat.config import GenomeConfig
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.network import (
    FeedForwardNetwork,
    feed_forward_layers,
    required_for_output,
)


@pytest.fixture
def config():
    return GenomeConfig(num_inputs=2, num_outputs=1)


def build_genome(config, connections, nodes=None):
    g = Genome(0)
    for key in config.output_keys:
        g.nodes[key] = NodeGene(key)
    for node in nodes or []:
        g.nodes[node.key] = node
    for key, weight in connections.items():
        g.connections[key] = ConnectionGene(key, weight=weight)
    return g


class TestRequiredForOutput:
    def test_direct(self):
        req = required_for_output([-1], [0], [(-1, 0)])
        assert req == {0}

    def test_chain(self):
        req = required_for_output([-1], [0], [(-1, 5), (5, 0)])
        assert req == {0, 5}

    def test_dead_branch_excluded(self):
        req = required_for_output([-1], [0], [(-1, 0), (-1, 9)])
        assert 9 not in req


class TestFeedForwardLayers:
    def test_single_layer(self):
        layers = feed_forward_layers([-1, -2], [0], [(-1, 0), (-2, 0)])
        assert layers == [[0]]

    def test_two_layers(self):
        layers = feed_forward_layers([-1], [0], [(-1, 5), (5, 0)])
        assert layers == [[5], [0]]

    def test_diamond(self):
        conns = [(-1, 1), (-1, 2), (1, 0), (2, 0)]
        layers = feed_forward_layers([-1], [0], conns)
        assert layers == [[1, 2], [0]]

    def test_cycle_raises(self):
        with pytest.raises(ValueError):
            feed_forward_layers([-1], [0], [(-1, 0), (0, 5), (5, 0)])

    def test_unconnected_output_still_layered(self):
        layers = feed_forward_layers([-1], [0], [])
        assert layers == [[0]]


class TestFeedForwardNetwork:
    def test_identity_passthrough(self, config):
        g = build_genome(config, {(-1, 0): 1.0, (-2, 0): 0.0})
        g.nodes[0].activation = "identity"
        net = FeedForwardNetwork.create(g, config)
        assert net.activate([0.7, 5.0])[0] == pytest.approx(0.7)

    def test_bias_and_response(self, config):
        g = build_genome(config, {(-1, 0): 2.0})
        g.nodes[0].activation = "identity"
        g.nodes[0].bias = 1.0
        g.nodes[0].response = 3.0
        net = FeedForwardNetwork.create(g, config)
        # 1.0 + 3.0 * (2.0 * 0.5) = 4.0
        assert net.activate([0.5, 0.0])[0] == pytest.approx(4.0)

    def test_tanh_activation_applied(self, config):
        g = build_genome(config, {(-1, 0): 1.0})
        net = FeedForwardNetwork.create(g, config)
        expected = math.tanh(2.5 * 1.0)
        assert net.activate([1.0, 0.0])[0] == pytest.approx(expected)

    def test_disabled_connection_ignored(self, config):
        g = build_genome(config, {(-1, 0): 5.0})
        g.connections[(-1, 0)].enabled = False
        g.nodes[0].activation = "identity"
        net = FeedForwardNetwork.create(g, config)
        assert net.activate([1.0, 1.0])[0] == pytest.approx(0.0)

    def test_hidden_layer_chain(self, config):
        hidden = NodeGene(5, activation="identity")
        g = build_genome(
            config, {(-1, 5): 2.0, (5, 0): 3.0}, nodes=[hidden]
        )
        g.nodes[0].activation = "identity"
        net = FeedForwardNetwork.create(g, config)
        assert net.activate([1.0, 0.0])[0] == pytest.approx(6.0)

    def test_wrong_input_count_raises(self, config):
        g = build_genome(config, {(-1, 0): 1.0})
        net = FeedForwardNetwork.create(g, config)
        with pytest.raises(ValueError):
            net.activate([1.0])

    def test_num_macs(self, config):
        g = build_genome(config, {(-1, 0): 1.0, (-2, 0): 1.0})
        net = FeedForwardNetwork.create(g, config)
        assert net.num_macs == 2

    def test_max_aggregation(self, config):
        g = build_genome(config, {(-1, 0): 1.0, (-2, 0): 1.0})
        g.nodes[0].activation = "identity"
        g.nodes[0].aggregation = "max"
        net = FeedForwardNetwork.create(g, config)
        assert net.activate([0.2, 0.9])[0] == pytest.approx(0.9)

    def test_reset_clears_values(self, config):
        g = build_genome(config, {(-1, 0): 1.0})
        net = FeedForwardNetwork.create(g, config)
        net.activate([1.0, 1.0])
        net.reset()
        assert all(v == 0.0 for v in net.values.values())

    def test_evolved_genome_runs(self, config):
        rng = random.Random(3)
        innovations = InnovationTracker(next_node_id=1)
        g = Genome(0)
        g.configure_new(config, rng)
        for _ in range(40):
            g.mutate(config, rng, innovations)
        net = FeedForwardNetwork.create(g, config)
        out = net.activate([0.5, -0.5])
        assert len(out) == 1
        assert math.isfinite(out[0])
