"""Tracer, incremental tail, and trace-export tests.

The centrepiece is the out-of-band golden: a traced run's artifacts —
``metrics.jsonl``, every checkpoint, ``champion.json``, ``result.json``
— are byte-identical to an untraced run of the same spec; telemetry
only ever *adds* ``telemetry.jsonl``.
"""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.api import ExperimentSpec
from repro.obs import (
    TELEMETRY_FILENAME,
    JsonlTail,
    Tracer,
    chrome_trace,
    env_trace_enabled,
    export_chrome_trace,
    phase_summary,
    read_telemetry,
)
from repro.runs import run_in_dir


@pytest.fixture(autouse=True)
def no_tracer_leak():
    """A test that installs a tracer must not leak it into the next."""
    yield
    obs.uninstall()


# -- the tracer itself ------------------------------------------------------


def test_disabled_span_is_a_shared_noop(tmp_path):
    assert obs.current() is None
    first = obs.span("evaluate", generation=1)
    second = obs.span("reproduce")
    assert first is second  # the singleton: no allocation per call site
    with first as sp:
        assert sp.set(genomes=5) is sp
    obs.incr("dse.cache_hit")  # silently dropped
    assert list(tmp_path.iterdir()) == []


def test_span_rows_carry_timing_pid_and_attrs(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    with obs.tracing(path):
        with obs.span("evaluate", generation=3) as sp:
            sp.set(genomes=150)
    (row,) = read_telemetry(path)
    assert row["type"] == "span"
    assert row["name"] == "evaluate"
    assert row["attrs"] == {"generation": 3, "genomes": 150}
    assert row["dur_s"] >= 0.0
    assert row["ts"] > 0.0
    assert isinstance(row["pid"], int)


def test_counter_totals_accumulate_per_process(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    with obs.tracing(path):
        obs.incr("dse.cache_hit")
        obs.incr("dse.cache_hit", 2)
        obs.incr("dse.cache_miss")
    rows = read_telemetry(path)
    hits = [r for r in rows if r["name"] == "dse.cache_hit"]
    assert [(r["value"], r["total"]) for r in hits] == [(1, 1), (2, 3)]
    (miss,) = [r for r in rows if r["name"] == "dse.cache_miss"]
    assert miss["total"] == 1


def test_span_records_error_but_never_swallows_it(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    with obs.tracing(path):
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("no")
    (row,) = read_telemetry(path)
    assert row["error"] == "ValueError"


def test_tracing_restores_the_previous_tracer(tmp_path):
    outer = obs.install(Tracer(tmp_path / "outer.jsonl"))
    with obs.tracing(tmp_path / "inner.jsonl") as inner:
        assert obs.current() is inner
    assert obs.current() is outer
    obs.uninstall()
    assert obs.current() is None


def test_env_trace_enabled_truth_table():
    assert not env_trace_enabled({})
    for falsy in ("", "0", "false", "No", "OFF"):
        assert not env_trace_enabled({"REPRO_TRACE": falsy})
    for truthy in ("1", "true", "yes", "on"):
        assert env_trace_enabled({"REPRO_TRACE": truthy})


def test_read_telemetry_tolerates_torn_and_junk_lines(tmp_path):
    path = tmp_path / "telemetry.jsonl"
    path.write_text(
        json.dumps({"type": "span", "name": "ok"}) + "\n"
        + "not json\n"
        + '{"type": "span", "na'  # torn tail: append caught mid-write
    )
    rows = read_telemetry(path)
    assert [r["name"] for r in rows] == ["ok"]
    assert read_telemetry(tmp_path / "absent.jsonl") == []


# -- JsonlTail: the incremental follower ------------------------------------


def append(path, *rows):
    with open(path, "a") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")


def test_tail_reads_only_new_rows_per_poll(tmp_path):
    path = tmp_path / "metrics.jsonl"
    tail = JsonlTail(path)
    assert tail.poll() == []  # missing file: no rows yet, no error
    append(path, {"generation": 0}, {"generation": 1})
    assert [r["generation"] for r in tail.poll()] == [0, 1]
    assert tail.poll() == []
    append(path, {"generation": 2})
    assert [r["generation"] for r in tail.poll()] == [2]
    assert tail.offset == path.stat().st_size


def test_tail_leaves_a_torn_tail_for_the_next_poll(tmp_path):
    path = tmp_path / "metrics.jsonl"
    append(path, {"generation": 0})
    with open(path, "a") as handle:
        handle.write('{"generation": 1')  # no newline: append in flight
    tail = JsonlTail(path)
    assert [r["generation"] for r in tail.poll()] == [0]
    with open(path, "a") as handle:
        handle.write(", \"fitness\": 2.0}\n")
    assert tail.poll() == [{"generation": 1, "fitness": 2.0}]


def test_tail_redelivers_after_truncation(tmp_path):
    # A resume rewinds metrics.jsonl to its checkpoint boundary; the
    # tail must notice the shrink and re-deliver from the top (callers
    # de-duplicate by generation).
    path = tmp_path / "metrics.jsonl"
    append(path, {"generation": 0}, {"generation": 1}, {"generation": 2})
    tail = JsonlTail(path)
    assert len(tail.poll()) == 3
    path.write_text(json.dumps({"generation": 0}) + "\n")
    assert [r["generation"] for r in tail.poll()] == [0]


def test_tail_skips_junk_and_non_dict_rows(tmp_path):
    path = tmp_path / "metrics.jsonl"
    path.write_text('{"generation": 0}\nnot json\n[1, 2]\n"str"\n')
    assert JsonlTail(path).poll() == [{"generation": 0}]


def test_tail_handles_file_vanishing_and_returning(tmp_path):
    path = tmp_path / "metrics.jsonl"
    append(path, {"generation": 0})
    tail = JsonlTail(path)
    tail.poll()
    path.unlink()
    assert tail.poll() == []
    append(path, {"generation": 0})  # fresh file: delivered from byte 0
    assert [r["generation"] for r in tail.poll()] == [0]


# -- Chrome trace export and phase summary ----------------------------------


SPAN_ROWS = [
    {"type": "span", "name": "evaluate", "ts": 100.0, "dur_s": 0.5,
     "pid": 11, "attrs": {"generation": 0}},
    {"type": "span", "name": "evaluate", "ts": 101.0, "dur_s": 1.5,
     "pid": 11},
    {"type": "span", "name": "reproduce", "ts": 102.0, "dur_s": 1.0,
     "pid": 11, "error": "ValueError"},
    {"type": "counter", "name": "hits", "ts": 103.0, "value": 1,
     "total": 7, "pid": 12},
    {"type": "mystery", "name": "future-row"},  # ignored, not fatal
]


def test_chrome_trace_event_shapes():
    trace = chrome_trace(SPAN_ROWS)
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert len(events) == 4  # the unknown row type is dropped
    first = events[0]
    assert first["ph"] == "X"
    assert first["ts"] == pytest.approx(100.0 * 1e6)  # microseconds
    assert first["dur"] == pytest.approx(0.5 * 1e6)
    assert first["pid"] == first["tid"] == 11
    assert first["args"] == {"generation": 0}
    assert "args" not in events[1]  # no attrs, no error -> no args
    assert events[2]["args"] == {"error": "ValueError"}
    counter = events[3]
    assert counter["ph"] == "C"
    assert counter["args"] == {"total": 7}


def test_export_chrome_trace_writes_valid_json(tmp_path):
    telemetry = tmp_path / "telemetry.jsonl"
    append(telemetry, *SPAN_ROWS)
    out = tmp_path / "trace.json"
    assert export_chrome_trace(telemetry, out) == 4
    trace = json.loads(out.read_text())
    assert {e["ph"] for e in trace["traceEvents"]} == {"X", "C"}


def test_phase_summary_aggregates_and_sorts():
    summary = phase_summary(SPAN_ROWS)
    assert [entry["phase"] for entry in summary] == ["evaluate", "reproduce"]
    evaluate = summary[0]
    assert evaluate["count"] == 2
    assert evaluate["total_s"] == pytest.approx(2.0)
    assert evaluate["mean_s"] == pytest.approx(1.0)
    assert evaluate["share"] == pytest.approx(2.0 / 3.0)
    assert phase_summary([]) == []


# -- the out-of-band golden -------------------------------------------------


def small_spec(**overrides):
    defaults = dict(
        env_id="CartPole-v0", max_generations=3, pop_size=10, seed=7,
        max_steps=40,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def tree_bytes(root):
    root = Path(root)
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def test_traced_run_is_byte_identical_except_telemetry(tmp_path):
    spec = small_spec()
    plain = tmp_path / "plain"
    traced = tmp_path / "traced"
    run_in_dir(spec, plain, checkpoint_every=2)
    run_in_dir(spec, traced, checkpoint_every=2, trace=True)

    plain_tree = tree_bytes(plain)
    traced_tree = tree_bytes(traced)
    assert TELEMETRY_FILENAME in traced_tree
    assert TELEMETRY_FILENAME not in plain_tree
    del traced_tree[TELEMETRY_FILENAME]
    assert traced_tree == plain_tree  # every shared artifact, byte for byte

    rows = read_telemetry(traced / TELEMETRY_FILENAME)
    names = {r["name"] for r in rows if r["type"] == "span"}
    assert {"run", "evaluate", "reproduce", "checkpoint"} <= names
    # One evaluate/reproduce span per generation, on one timeline.
    evaluates = [r for r in rows if r["name"] == "evaluate"]
    assert [r["attrs"]["generation"] for r in evaluates] == [0, 1, 2]


def test_env_var_turns_tracing_on_for_run_in_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    run_in_dir(small_spec(max_generations=2, pop_size=8), tmp_path / "run")
    assert (tmp_path / "run" / TELEMETRY_FILENAME).exists()
    # ...and the explicit argument overrides the environment.
    monkeypatch.setenv("REPRO_TRACE", "0")
    run_in_dir(
        small_spec(max_generations=2, pop_size=8, seed=9),
        tmp_path / "forced",
        trace=True,
    )
    assert (tmp_path / "forced" / TELEMETRY_FILENAME).exists()


def test_resumed_run_appends_to_the_same_telemetry(tmp_path):
    from repro.runs import resume_run

    spec = small_spec(max_generations=4)
    target = tmp_path / "run"
    run_in_dir(
        spec, target, checkpoint_every=2, trace=True,
        should_stop=lambda generation: generation >= 2,
    )
    first = len(read_telemetry(target / TELEMETRY_FILENAME))
    assert first > 0
    resume_run(target, trace=True)
    rows = read_telemetry(target / TELEMETRY_FILENAME)
    assert len(rows) > first  # appended, never rewound: it's a log
    assert sum(1 for r in rows if r["name"] == "run") == 2
