"""Unit tests for the EvE Processing Element (Fig. 7 pipeline)."""

import pytest

from repro.hw.gene_encoding import (
    NODE_TYPE_HIDDEN,
    NODE_TYPE_OUTPUT,
    pack_connection,
    pack_node,
)
from repro.hw.pe import (
    CONFIG_LOAD_CYCLES,
    PIPELINE_DEPTH,
    PEConfig,
    ProcessingElement,
)


def make_pe(seed=0, **config_kwargs):
    pe = ProcessingElement(pe_index=0, seed=seed)
    config = PEConfig(**config_kwargs)
    pe.begin_child(config, fitness1=2.0, fitness2=1.0)
    return pe


def node(node_id, bias=0.0, node_type=NODE_TYPE_HIDDEN):
    return pack_node(node_id, node_type, bias, 1.0, "tanh", "sum")


def conn(src, dst, weight=1.0, enabled=True):
    return pack_connection(src, dst, weight, enabled)


class TestConfigLoad:
    def test_two_cycle_config(self):
        pe = make_pe()
        assert pe.cycles == CONFIG_LOAD_CYCLES

    def test_drain_adds_pipeline_depth(self):
        pe = make_pe()
        total = pe.finish_child()
        assert total == CONFIG_LOAD_CYCLES + PIPELINE_DEPTH

    def test_one_gene_per_cycle(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        for i in range(5):
            pe.process_pair(node(i), None)
        assert pe.cycles == CONFIG_LOAD_CYCLES + 5

    def test_threshold_mapping(self):
        config = PEConfig()
        assert config.threshold(0.0) == 0
        assert config.threshold(1.0) == 256
        assert config.threshold(0.5) == 128


class TestCrossoverStage:
    def test_disjoint_gene_passes_through(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        gene = node(3, bias=1.5)
        out = pe.process_pair(gene, None)
        assert out == [gene]
        assert pe.stats.crossovers == 0

    def test_homologous_attributes_from_either_parent(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        g1 = node(3, bias=1.0)
        g2 = node(3, bias=-1.0)
        out = pe.process_pair(g1, g2)
        assert len(out) == 1
        assert out[0].bias in (1.0, -1.0)
        assert pe.stats.crossovers == 1

    def test_bias_one_always_parent1(self):
        pe = make_pe(crossover_bias=1.0, perturb_prob=0.0, node_delete_prob=0.0,
                     conn_delete_prob=0.0, node_add_prob=0.0, conn_add_prob=0.0)
        for i in range(10):
            out = pe.process_pair(conn(-1, i, weight=2.0), conn(-1, i, weight=-2.0))
            assert out[0].weight == 2.0

    def test_bias_zero_always_parent2(self):
        pe = make_pe(crossover_bias=0.0, perturb_prob=0.0, node_delete_prob=0.0,
                     conn_delete_prob=0.0, node_add_prob=0.0, conn_add_prob=0.0)
        for i in range(10):
            out = pe.process_pair(conn(-1, i, weight=2.0), conn(-1, i, weight=-2.0))
            assert out[0].weight == -2.0

    def test_misaligned_pair_raises(self):
        pe = make_pe()
        with pytest.raises(ValueError, match="misalignment"):
            pe.process_pair(node(1), node(2))

    def test_missing_gene1_raises(self):
        pe = make_pe()
        with pytest.raises(ValueError):
            pe.process_pair(None, node(1))


class TestPerturbationStage:
    def test_prob_one_perturbs(self):
        pe = make_pe(perturb_prob=1.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        changed = 0
        for i in range(50):
            out = pe.process_pair(conn(-1, i, weight=0.0), None)
            if out and out[0].weight != 0.0:
                changed += 1
        assert changed > 10
        assert pe.stats.perturbations > 0

    def test_prob_zero_never_perturbs(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        for i in range(50):
            out = pe.process_pair(conn(-1, i, weight=0.5), None)
            assert out[0].weight == 0.5
        assert pe.stats.perturbations == 0

    def test_values_stay_in_q44_range(self):
        pe = make_pe(perturb_prob=1.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        for i in range(100):
            out = pe.process_pair(conn(-1, i, weight=7.9), None)
            for g in out:
                assert -8.0 <= g.weight <= 7.9375


class TestDeleteStage:
    def test_node_delete_prunes_connections(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=1.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0, max_node_deletions=1)
        out_node = pe.process_pair(node(5), None)
        assert out_node == []  # deleted
        assert pe.stats.node_deletions == 1
        # connections touching node 5 must be pruned
        out_conn = pe.process_pair(conn(-1, 5), None)
        assert out_conn == []
        assert pe.stats.dangling_prunes == 1

    def test_deletion_threshold_keeps_genome_alive(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=1.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0, max_node_deletions=2)
        deleted = 0
        for i in range(10):
            if pe.process_pair(node(i), None) == []:
                deleted += 1
        assert deleted == 2  # stops at the threshold

    def test_output_nodes_never_deleted(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=1.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        out = pe.process_pair(node(0, node_type=NODE_TYPE_OUTPUT), None)
        assert len(out) == 1

    def test_connection_delete(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=0.0, conn_delete_prob=1.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        out = pe.process_pair(conn(-1, 0), None)
        assert out == []
        assert pe.stats.conn_deletions == 1


class TestAddStage:
    def test_node_addition_splits_connection(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=1.0, conn_add_prob=0.0)
        pe.process_pair(node(0, node_type=NODE_TYPE_OUTPUT), None)
        pe.process_pair(node(7), None)
        out = pe.process_pair(conn(-1, 0, weight=0.5), None)
        # node + upstream + downstream, original dropped
        assert len(out) == 3
        new_node = out[0]
        assert new_node.is_node
        assert new_node.node_id == 8  # max existing id + 1
        upstream, downstream = out[1], out[2]
        assert (upstream.source, upstream.dest) == (-1, 8)
        assert (downstream.source, downstream.dest) == (8, 0)
        assert downstream.weight == 0.5
        assert pe.stats.node_additions == 1

    def test_two_cycle_connection_addition(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=1.0)
        pe.process_pair(node(0, node_type=NODE_TYPE_OUTPUT), None)
        pe.process_pair(node(5), None)
        out1 = pe.process_pair(conn(-1, 5), None)
        assert len(out1) == 1  # source stored, nothing added yet
        out2 = pe.process_pair(conn(5, 0), None)
        # next connection pairs the stored source with its destination
        assert len(out2) == 2
        added = out2[1]
        assert (added.source, added.dest) == (-1, 0)
        assert pe.stats.conn_additions == 1

    def test_no_self_connection_added(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=1.0)
        pe.process_pair(node(0, node_type=NODE_TYPE_OUTPUT), None)
        pe.process_pair(conn(0, 0), None)  # degenerate incoming
        out = pe.process_pair(conn(-1, 0), None)
        for g in out[1:]:
            assert g.source != g.dest


class TestStats:
    def test_genes_in_out_counted(self):
        pe = make_pe(perturb_prob=0.0, node_delete_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        pe.process_pair(node(1), node(1))
        pe.process_pair(node(2), None)
        assert pe.stats.genes_in == 3
        assert pe.stats.genes_out == 2

    def test_begin_child_resets_state(self):
        pe = make_pe(node_delete_prob=1.0, perturb_prob=0.0, conn_delete_prob=0.0,
                     node_add_prob=0.0, conn_add_prob=0.0)
        pe.process_pair(node(5), None)  # deletes node 5
        pe.begin_child(PEConfig(node_delete_prob=0.0), 1.0, 1.0)
        out = pe.process_pair(conn(-1, 5), None)
        assert len(out) == 1  # deletion memory cleared

    def test_determinism_per_seed(self):
        results = []
        for _ in range(2):
            pe = make_pe(seed=9, perturb_prob=0.5)
            words = []
            for i in range(20):
                for g in pe.process_pair(conn(-1, i, weight=1.0), None):
                    words.append(g.word)
            results.append(words)
        assert results[0] == results[1]
