"""Run-directory locking and hard-kill durability tests.

Two layers are under test here:

* :class:`repro.runs.RunDirLock` — the exclusive on-disk claim: single
  winner, heartbeat refresh, stale-claim reclaim, torn-file tolerance.
* The hard-kill contract of the artifact layer (the satellite of the
  resume guarantee): a worker SIGKILLed mid-write leaves at worst a torn
  ``metrics.jsonl`` tail and a stale lock; a resume drops the torn tail,
  rewinds to the checkpoint boundary, reclaims the lock and completes
  **byte-identically** to a run that was never killed.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import ExperimentSpec
from repro.runs import (
    LOCK_FILENAME,
    RunDir,
    RunDirLock,
    RunLockedError,
    read_lock,
    resume_run,
    run_in_dir,
)


def test_lock_single_winner(tmp_path):
    first = RunDirLock(tmp_path)
    second = RunDirLock(tmp_path)
    with first:
        assert first.held
        with pytest.raises(RunLockedError, match="claimed by pid"):
            second.acquire()
    # released: the claim file is gone and the loser can now win
    assert not (tmp_path / LOCK_FILENAME).exists()
    with second:
        assert second.held


def test_lock_payload_and_read_lock(tmp_path):
    with RunDirLock(tmp_path):
        payload = read_lock(tmp_path)
        assert payload["pid"] == os.getpid()
        assert payload["heartbeat_at"] >= payload["acquired_at"] - 1e-6
    assert read_lock(tmp_path) is None


def test_lock_reentry_is_an_error(tmp_path):
    lock = RunDirLock(tmp_path)
    with lock:
        with pytest.raises(Exception, match="already held"):
            lock.acquire()


def test_heartbeat_refreshes_timestamp(tmp_path):
    lock = RunDirLock(tmp_path, heartbeat_interval=0.05)
    with lock:
        before = read_lock(tmp_path)["heartbeat_at"]
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if read_lock(tmp_path)["heartbeat_at"] > before:
                break
            time.sleep(0.02)
        assert read_lock(tmp_path)["heartbeat_at"] > before


def test_stale_lock_is_reclaimed(tmp_path):
    tmp_path.mkdir(exist_ok=True)
    (tmp_path / LOCK_FILENAME).write_text(json.dumps({
        "pid": 999999999,
        "host": "elsewhere",
        "acquired_at": time.time() - 3600.0,
        "heartbeat_at": time.time() - 3600.0,
    }))
    with RunDirLock(tmp_path, stale_after=5.0) as lock:
        assert lock.held
        assert read_lock(tmp_path)["pid"] == os.getpid()


def test_dead_pid_on_this_host_is_stale_despite_fresh_heartbeat(tmp_path):
    import socket

    (tmp_path / LOCK_FILENAME).write_text(json.dumps({
        "pid": 999999999,
        "host": socket.gethostname(),
        "acquired_at": time.time(),
        "heartbeat_at": time.time(),
    }))
    with RunDirLock(tmp_path, stale_after=3600.0) as lock:
        assert lock.held


def test_torn_lock_file_is_stale(tmp_path):
    (tmp_path / LOCK_FILENAME).write_text('{"pid": 12')  # torn mid-write
    assert read_lock(tmp_path) is None
    with RunDirLock(tmp_path) as lock:
        assert lock.held


def test_fresh_foreign_lock_is_not_stale(tmp_path):
    (tmp_path / LOCK_FILENAME).write_text(json.dumps({
        "pid": 1, "host": "elsewhere",
        "acquired_at": time.time(), "heartbeat_at": time.time(),
    }))
    lock = RunDirLock(tmp_path, stale_after=3600.0)
    assert not lock.is_stale()
    with pytest.raises(RunLockedError):
        lock.acquire()


def test_run_in_dir_refuses_a_claimed_directory(tmp_path):
    spec = ExperimentSpec("CartPole-v0", max_generations=2, pop_size=8,
                          seed=0, max_steps=30)
    with RunDirLock(tmp_path / "run"):
        with pytest.raises(RunLockedError):
            run_in_dir(spec, tmp_path / "run")


def test_run_in_dir_releases_lock_on_completion(tmp_path):
    spec = ExperimentSpec("CartPole-v0", max_generations=2, pop_size=8,
                          seed=0, max_steps=30)
    run_in_dir(spec, tmp_path / "run")
    assert read_lock(tmp_path / "run") is None
    assert not (tmp_path / "run" / LOCK_FILENAME).exists()


# -- hard-kill durability ---------------------------------------------------

_KILL_TARGET = """
import sys, time
sys.path.insert(0, {src!r})
from repro.runs import run_in_dir
from repro.api import ExperimentSpec

spec = ExperimentSpec.from_json({spec_json!r})
# Slow each generation down so the parent can observe progress and land
# its SIGKILL mid-run rather than after completion.
run_in_dir(spec, {run_dir!r}, checkpoint_every=2,
           on_generation=lambda m: time.sleep(0.1))
"""


@pytest.mark.slow
def test_sigkill_mid_run_then_resume_is_byte_identical(tmp_path):
    """Hard-kill a worker mid-write, append a torn metrics tail, resume:
    the artifacts must come out byte-identical to an uninterrupted run
    (torn-tail tolerance + checkpoint rewind + stale-lock reclaim)."""
    src = str(Path(__file__).resolve().parents[1] / "src")
    spec = ExperimentSpec("CartPole-v0", max_generations=8, pop_size=12,
                          seed=7, max_steps=40, fitness_threshold=1e9)
    victim_dir = tmp_path / "victim"
    script = _KILL_TARGET.format(
        src=src, spec_json=spec.to_json(), run_dir=str(victim_dir)
    )
    proc = subprocess.Popen([sys.executable, "-c", script])
    try:
        metrics = victim_dir / "metrics.jsonl"
        deadline = time.time() + 60.0
        while time.time() < deadline:
            if metrics.exists() and len(metrics.read_bytes().splitlines()) >= 3:
                break
            time.sleep(0.02)
        else:
            pytest.fail("worker never produced 3 metrics rows")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait()
    assert proc.returncode == -signal.SIGKILL

    # The kill leaves the claim behind: the lock must still be on disk
    # (held by a now-dead pid) and must not block the resume below.
    assert (victim_dir / LOCK_FILENAME).exists()

    # Simulate the worst case the appender allows: a row torn mid-write.
    with open(metrics, "a") as handle:
        handle.write('{"generation": 99, "best_fi')

    resumed = resume_run(victim_dir)
    assert resumed.generations == spec.max_generations

    reference_dir = tmp_path / "reference"
    run_in_dir(spec, reference_dir, checkpoint_every=2)

    victim_files = {
        p.relative_to(victim_dir)
        for p in victim_dir.rglob("*") if p.is_file()
    }
    reference_files = {
        p.relative_to(reference_dir)
        for p in reference_dir.rglob("*") if p.is_file()
    }
    assert victim_files == reference_files
    for rel in sorted(victim_files):
        assert (victim_dir / rel).read_bytes() == \
            (reference_dir / rel).read_bytes(), f"{rel} diverged"


def test_torn_metrics_tail_is_dropped_on_read(tmp_path):
    rd = RunDir(tmp_path / "run")
    rd.create()
    rd.append_metrics({"generation": 0, "best_fitness": 1.0})
    rd.append_metrics({"generation": 1, "best_fitness": 2.0})
    with open(rd.metrics_path, "a") as handle:
        handle.write('{"generation": 2, "best_f')
    rows = rd.read_metrics()
    assert [row["generation"] for row in rows] == [0, 1]
