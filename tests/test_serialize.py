"""Unit tests for genome/population serialization."""

import json
import random

import pytest

from repro.neat import Genome, GenomeConfig, InnovationTracker, NEATConfig
from repro.neat.network import FeedForwardNetwork
from repro.neat.serialize import (
    DeserializationError,
    genome_from_dict,
    genome_to_dict,
    load_genome,
    load_genome_with_config,
    load_population,
    save_genome,
    save_population,
)


@pytest.fixture
def config():
    return NEATConfig.for_env(3, 2, pop_size=5)


@pytest.fixture
def genome(config):
    rng = random.Random(0)
    innovations = InnovationTracker(next_node_id=2)
    g = Genome(7)
    g.configure_new(config.genome, rng)
    for _ in range(20):
        g.mutate(config.genome, rng, innovations)
    g.fitness = 42.5
    return g


class TestDictRoundTrip:
    def test_structure_preserved(self, genome):
        clone = genome_from_dict(genome_to_dict(genome))
        assert clone.key == genome.key
        assert clone.fitness == genome.fitness
        assert set(clone.nodes) == set(genome.nodes)
        assert set(clone.connections) == set(genome.connections)

    def test_attributes_exact(self, genome):
        clone = genome_from_dict(genome_to_dict(genome))
        for key, node in genome.nodes.items():
            assert clone.nodes[key].bias == node.bias
            assert clone.nodes[key].activation == node.activation
        for key, conn in genome.connections.items():
            assert clone.connections[key].weight == conn.weight
            assert clone.connections[key].enabled == conn.enabled

    def test_phenotype_identical(self, genome, config):
        clone = genome_from_dict(genome_to_dict(genome))
        a = FeedForwardNetwork.create(genome, config.genome)
        b = FeedForwardNetwork.create(clone, config.genome)
        x = [0.2, -0.7, 0.5]
        assert a.activate(x) == b.activate(x)

    def test_json_serialisable(self, genome):
        json.dumps(genome_to_dict(genome))


class TestFileRoundTrip:
    def test_save_load_genome(self, genome, tmp_path):
        path = tmp_path / "champion.json"
        save_genome(genome, path)
        loaded = load_genome(path)
        assert set(loaded.connections) == set(genome.connections)

    def test_save_with_config(self, genome, config, tmp_path):
        path = tmp_path / "champion.json"
        save_genome(genome, path, config=config)
        loaded, loaded_config = load_genome_with_config(path)
        assert loaded_config.genome.num_inputs == 3
        assert loaded.key == genome.key

    def test_population_checkpoint(self, config, tmp_path):
        rng = random.Random(1)
        genomes = []
        for i in range(5):
            g = Genome(i)
            g.configure_new(config.genome, rng)
            g.fitness = float(i)
            genomes.append(g)
        path = tmp_path / "gen12.json"
        save_population(genomes, path, generation=12, config=config)
        loaded, generation = load_population(path)
        assert generation == 12
        assert [g.key for g in loaded] == [0, 1, 2, 3, 4]
        assert loaded[3].fitness == 3.0


class TestFailureModes:
    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DeserializationError):
            load_genome(path)

    def test_missing_genome_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"something": 1}))
        with pytest.raises(DeserializationError):
            load_genome(path)

    def test_wrong_format_version(self, genome):
        data = genome_to_dict(genome)
        data["format"] = 99
        with pytest.raises(DeserializationError):
            genome_from_dict(data)

    def test_malformed_node(self, genome):
        data = genome_to_dict(genome)
        del data["nodes"][0]["bias"]
        with pytest.raises(DeserializationError):
            genome_from_dict(data)

    def test_population_file_without_genomes(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 1}))
        with pytest.raises(DeserializationError):
            load_population(path)

    def test_missing_config(self, genome, tmp_path):
        path = tmp_path / "nocfg.json"
        save_genome(genome, path)
        with pytest.raises(DeserializationError):
            load_genome_with_config(path)


class TestPopulationState:
    """The full evolution-state format behind checkpoint/resume."""

    def make_population(self, config, generations=2):
        from repro.envs.evaluate import FitnessEvaluator
        from repro.neat.population import Population

        population = Population(config, seed=0)
        evaluator = FitnessEvaluator("CartPole-v0", max_steps=20, seed=0)
        for _ in range(generations):
            population.run_generation(evaluator)
        return population

    @pytest.fixture
    def cartpole_config(self):
        return NEATConfig.for_env(4, 2, pop_size=10)

    def test_round_trip_preserves_everything(self, cartpole_config):
        from repro.neat.population import Population
        from repro.neat.serialize import population_to_state

        population = self.make_population(cartpole_config)
        state = json.loads(json.dumps(population_to_state(population)))
        restored = Population.from_state(state, cartpole_config)
        assert restored.generation == population.generation
        assert restored.rng.getstate() == population.rng.getstate()
        assert list(restored.population) == list(population.population)
        assert restored.innovations.next_node_id == population.innovations.next_node_id
        assert (restored.reproduction._next_genome_key
                == population.reproduction._next_genome_key)
        assert list(restored.species_set.species) == list(
            population.species_set.species
        )
        assert restored.best_genome.fitness == population.best_genome.fitness
        assert len(restored.last_plan.events) == len(population.last_plan.events)

    def test_representatives_are_member_objects(self, cartpole_config):
        from repro.neat.population import Population

        population = self.make_population(cartpole_config)
        restored = Population.from_state(
            population.to_state(), cartpole_config
        )
        for species in restored.species_set.species.values():
            assert species.representative is restored.population[
                species.representative.key
            ]

    def test_bad_state_format_version(self, cartpole_config):
        from repro.neat.population import Population

        state = self.make_population(cartpole_config).to_state()
        state["format"] = 99
        with pytest.raises(DeserializationError, match="format version"):
            Population.from_state(state, cartpole_config)

    def test_foreign_config_rejected(self, cartpole_config):
        from repro.neat.population import Population

        state = self.make_population(cartpole_config).to_state()
        foreign = NEATConfig.for_env(2, 3, pop_size=10)
        with pytest.raises(DeserializationError, match="different NEAT config"):
            Population.from_state(state, foreign)

    def test_truncated_state_file(self, cartpole_config, tmp_path):
        from repro.neat.serialize import (
            load_population_state,
            save_population_state,
        )

        population = self.make_population(cartpole_config)
        path = tmp_path / "ckpt.json"
        save_population_state(population, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate a torn write
        with pytest.raises(DeserializationError, match="not valid JSON"):
            load_population_state(path)

    def test_state_file_without_population(self, tmp_path):
        from repro.neat.serialize import load_population_state

        path = tmp_path / "notckpt.json"
        path.write_text(json.dumps({"format": 1, "generation": 3}))
        with pytest.raises(DeserializationError, match="population-state"):
            load_population_state(path)

    def test_malformed_state_payload(self, cartpole_config):
        from repro.neat.population import Population

        state = self.make_population(cartpole_config).to_state()
        del state["rng_state"]
        with pytest.raises(DeserializationError, match="malformed population state"):
            Population.from_state(state, cartpole_config)

    def test_non_dict_state(self, cartpole_config):
        from repro.neat.serialize import population_from_state

        with pytest.raises(DeserializationError, match="JSON object"):
            population_from_state(["not", "a", "dict"], cartpole_config)


class TestHardwareInterop:
    def test_loaded_genome_encodes(self, genome, config, tmp_path):
        from repro.hw import encode_genome

        path = tmp_path / "g.json"
        save_genome(genome, path)
        loaded = load_genome(path)
        assert encode_genome(loaded, config.genome) == encode_genome(
            genome, config.genome
        )
