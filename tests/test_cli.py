"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_envs_command(capsys):
    assert main(["envs"]) == 0
    out = capsys.readouterr().out
    assert "CartPole-v0" in out
    assert "Alien-ram-v0" in out


def test_run_software(capsys):
    code = main([
        "run", "CartPole-v0", "--generations", "2", "--population", "15",
        "--max-steps", "40",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[software] CartPole-v0" in out
    assert "best fitness" in out


def test_run_hardware(capsys):
    code = main([
        "run", "CartPole-v0", "--hardware", "--generations", "2",
        "--population", "12", "--max-steps", "40",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[hardware] CartPole-v0" in out
    assert "energy" in out


def test_characterise(capsys):
    code = main([
        "characterise", "MountainCar-v0", "--generations", "2",
        "--population", "10", "--max-steps", "30",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Workload characterisation" in out
    assert "fittest reuse" in out


def test_platforms(capsys):
    code = main([
        "platforms", "CartPole-v0", "--generations", "2",
        "--population", "10", "--max-steps", "30",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "GENESYS" in out
    assert "CPU_a" in out


def test_platforms_registry_listing(capsys):
    """With no environment, 'platforms' prints the registry."""
    assert main(["platforms"]) == 0
    out = capsys.readouterr().out
    assert "Platform registry" in out
    assert "GENESYS" in out and "soc" in out
    assert "register_platform" in out


def test_platforms_registry_listing_includes_custom(capsys):
    from repro.platforms import (
        PlatformSpec, register_platform, unregister_platform,
    )

    register_platform("MY_GPU", PlatformSpec(
        "genesys", params={"num_eve_pes": 8}))
    try:
        assert main(["platforms"]) == 0
        assert "MY_GPU" in capsys.readouterr().out
    finally:
        unregister_platform("MY_GPU")


def test_platforms_json_dump_validates(capsys):
    import json

    from repro.platforms import PlatformSpec, platform_names

    assert main(["platforms", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert sorted(payload) == platform_names()
    for name, spec_dict in payload.items():
        spec = PlatformSpec.from_dict(spec_dict)
        assert spec.name == name
        assert spec.to_dict() == spec_dict


def test_run_with_platform_flag(capsys):
    code = main([
        "run", "CartPole-v0", "--platform", "GENESYS",
        "--generations", "2", "--population", "10", "--max-steps", "30",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[analytical:GENESYS] CartPole-v0" in out


def test_run_with_soc_platform_flag(capsys):
    code = main([
        "run", "CartPole-v0", "--platform", "soc",
        "--generations", "2", "--population", "10", "--max-steps", "30",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[hardware] CartPole-v0" in out  # soc-kind picks the soc backend


def test_run_with_platform_spec_file(tmp_path, capsys):
    from repro.platforms import PlatformSpec

    path = tmp_path / "quarter.json"
    PlatformSpec("genesys", "QUARTER", {"num_eve_pes": 64}).save(path)
    code = main([
        "run", "CartPole-v0", "--platform", str(path),
        "--generations", "2", "--population", "10", "--max-steps", "30",
    ])
    assert code == 0
    assert "[analytical:QUARTER]" in capsys.readouterr().out


def test_platforms_json_rejects_env(capsys):
    with pytest.raises(SystemExit, match="--json"):
        main(["platforms", "CartPole-v0", "--json"])


def test_run_factory_platform_conflicting_backend_errors():
    from repro.platforms import (
        GenesysPlatform, register_platform, unregister_platform,
    )

    register_platform("FACTORY_ONLY", lambda: GenesysPlatform(num_eve_pes=2))
    try:
        with pytest.raises(SystemExit, match="conflicts with"):
            main([
                "run", "CartPole-v0", "--backend", "soc",
                "--platform", "FACTORY_ONLY", "--generations", "2",
            ])
    finally:
        unregister_platform("FACTORY_ONLY")


def test_run_unknown_platform_errors(capsys):
    code = main([
        "run", "CartPole-v0", "--platform", "TPU", "--generations", "2",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown" in err and "TPU" in err


def test_design_space(capsys):
    assert main(["design-space"]) == 0
    out = capsys.readouterr().out
    assert "256" in out
    assert "947" in out  # the paper's design point power


def test_backends_command(capsys):
    assert main(["backends"]) == 0
    out = capsys.readouterr().out
    assert "software" in out
    assert "soc" in out
    assert "analytical:GENESYS" in out


def test_run_backend_flag_soc(capsys):
    code = main([
        "run", "CartPole-v0", "--backend", "soc", "--generations", "2",
        "--population", "12", "--max-steps", "40",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[hardware] CartPole-v0" in out


def test_run_backend_analytical(capsys):
    code = main([
        "run", "CartPole-v0", "--backend", "analytical:GENESYS",
        "--generations", "2", "--population", "12", "--max-steps", "40",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[analytical:GENESYS] CartPole-v0" in out
    assert "energy" in out


def test_run_workers_flag(capsys):
    code = main([
        "run", "CartPole-v0", "--generations", "2", "--population", "12",
        "--max-steps", "40", "--workers", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 workers" in out


def test_run_fitness_threshold_flag(capsys):
    code = main([
        "run", "CartPole-v0", "--generations", "5", "--population", "15",
        "--max-steps", "40", "--fitness-threshold", "5",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "converged=True" in out


def test_run_spec_file(tmp_path, capsys):
    from repro.api import ExperimentSpec

    path = tmp_path / "spec.json"
    ExperimentSpec(
        "CartPole-v0", max_generations=2, pop_size=12, max_steps=40
    ).save(path)
    assert main(["run", "--spec", str(path)]) == 0
    out = capsys.readouterr().out
    assert "[software] CartPole-v0" in out


def test_run_spec_file_with_flag_override(tmp_path, capsys):
    from repro.api import ExperimentSpec

    path = tmp_path / "spec.json"
    ExperimentSpec(
        "CartPole-v0", max_generations=2, pop_size=12, max_steps=40
    ).save(path)
    assert main(["run", "--spec", str(path), "--backend", "soc"]) == 0
    out = capsys.readouterr().out
    assert "[hardware] CartPole-v0" in out


def test_run_save_spec_round_trips(tmp_path):
    from repro.api import ExperimentSpec

    path = tmp_path / "out.json"
    assert main([
        "run", "CartPole-v0", "--generations", "2", "--population", "12",
        "--max-steps", "40", "--save-spec", str(path),
    ]) == 0
    spec = ExperimentSpec.load(path)
    assert spec.env_id == "CartPole-v0"
    assert spec.max_generations == 2


def test_characterise_workers(capsys):
    code = main([
        "characterise", "CartPole-v0", "--generations", "2",
        "--population", "10", "--max-steps", "30", "--workers", "2",
    ])
    assert code == 0
    assert "Workload characterisation" in capsys.readouterr().out


def test_unknown_backend_clean_error(capsys):
    assert main(["run", "CartPole-v0", "--backend", "fpga"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: unknown backend")
    assert "software" in err


def test_invalid_spec_clean_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{broken")
    assert main(["run", "--spec", str(path)]) == 2
    assert "invalid spec JSON" in capsys.readouterr().err


def test_unknown_vectorizer_clean_error(capsys):
    code = main([
        "run", "CartPole-v0", "--vectorizer", "fpga", "--generations", "1",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: vectorizer must be 'scalar' or 'numpy'")
    assert "fpga" in err


def test_unknown_vectorizer_in_spec_file_clean_error(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text(
        '{"env_id": "CartPole-v0", "vectorizer": "cuda"}'
    )
    assert main(["run", "--spec", str(path)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: vectorizer must be")


def test_missing_spec_file_clean_error(tmp_path, capsys):
    assert main(["run", "--spec", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_spec_with_unknown_fields_clean_error(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text('{"env_id": "CartPole-v0", "warp_factor": 9}')
    assert main(["run", "--spec", str(path)]) == 2
    assert "unknown spec fields" in capsys.readouterr().err


def test_unknown_environment_clean_error(capsys):
    assert main(["run", "SpaceInvaders-3d-v9", "--generations", "1"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "SpaceInvaders-3d-v9" in err


def test_run_vectorizer_numpy(capsys):
    code = main([
        "run", "CartPole-v0", "--vectorizer", "numpy", "--generations", "2",
        "--population", "12", "--max-steps", "40",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[software] CartPole-v0" in out
    assert "inference vectorized" in out


def test_soc_backend_notes_ignored_vectorizer(capsys):
    code = main([
        "run", "CartPole-v0", "--backend", "soc", "--vectorizer", "numpy",
        "--generations", "1", "--population", "10", "--max-steps", "30",
    ])
    assert code == 0
    assert "ignored by the soc backend" in capsys.readouterr().out


def test_run_vectorizer_scalar_prints_no_note(capsys):
    code = main([
        "run", "CartPole-v0", "--vectorizer", "scalar", "--generations", "1",
        "--population", "10", "--max-steps", "30",
    ])
    assert code == 0
    assert "inference vectorized" not in capsys.readouterr().out


def test_vectorizer_matches_scalar_trajectory(capsys):
    """The CLI surface of the golden contract: same flags, same fitness."""
    args = ["run", "CartPole-v0", "--generations", "2", "--population", "12",
            "--max-steps", "40", "--seed", "3"]
    assert main(args) == 0
    scalar_out = capsys.readouterr().out
    assert main(args + ["--vectorizer", "numpy"]) == 0
    numpy_out = capsys.readouterr().out
    scalar_fitness = scalar_out.split("best fitness")[1].split("after")[0]
    numpy_fitness = numpy_out.split("best fitness")[1].split("after")[0]
    assert scalar_fitness == numpy_fitness


def test_characterise_rejects_non_software_backend():
    with pytest.raises(SystemExit, match="characterises the software path"):
        main([
            "characterise", "CartPole-v0", "--backend", "soc",
            "--generations", "1",
        ])


def test_platforms_rejects_non_software_backend():
    with pytest.raises(SystemExit, match="characterises the software path"):
        main([
            "platforms", "CartPole-v0", "--backend", "analytical:CPU_a",
            "--generations", "1",
        ])


def test_soc_run_does_not_claim_parallel_workers(capsys):
    code = main([
        "run", "CartPole-v0", "--backend", "soc", "--generations", "1",
        "--population", "10", "--max-steps", "30", "--workers", "4",
    ])
    assert code == 0
    assert "workers" not in capsys.readouterr().out


def test_hardware_conflicts_with_other_backend():
    with pytest.raises(SystemExit):
        main([
            "run", "CartPole-v0", "--hardware", "--backend", "software",
            "--generations", "1",
        ])


def test_bare_analytical_backend_clean_error(capsys):
    """'analytical' without ':<platform>' must name the platforms."""
    code = main([
        "run", "CartPole-v0", "--backend", "analytical", "--generations", "1",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: the analytical backend needs a platform")
    assert "analytical:<platform>" in err
    assert "GENESYS" in err and "CPU_a" in err


def _write_sweep(tmp_path, axes=None, **base_overrides):
    from repro.api import ExperimentSpec
    from repro.dse import SweepSpec

    base = ExperimentSpec(
        "CartPole-v0", max_generations=1, pop_size=8, max_steps=20,
        **base_overrides,
    )
    path = tmp_path / "sweep.json"
    SweepSpec(base=base, axes=axes or {"seed": [0, 1]}).save(path)
    return path


def test_dse_runs_and_caches(tmp_path, capsys):
    sweep = _write_sweep(tmp_path)
    cache = str(tmp_path / "cache")
    args = ["dse", "--sweep", str(sweep), "--cache-dir", cache, "--quiet"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "sweep: 2 points" in out
    assert "cache hits 0/2" in out
    # Second invocation: everything served from the cache.
    assert main(args) == 0
    assert "cache hits 2/2" in capsys.readouterr().out


def test_dse_export_and_pareto_and_group_by(tmp_path, capsys):
    sweep = _write_sweep(tmp_path)
    prefix = str(tmp_path / "result")
    assert main([
        "dse", "--sweep", str(sweep), "--no-cache", "--quiet",
        "--export", prefix,
        "--pareto", "fitness:max",
        "--group-by", "seed:fitness",
    ]) == 0
    out = capsys.readouterr().out
    assert "Pareto frontier" in out
    assert "fitness grouped by seed" in out
    assert (tmp_path / "result.csv").exists()
    assert (tmp_path / "result.json").exists()


def test_dse_progress_lines(tmp_path, capsys):
    sweep = _write_sweep(tmp_path)
    assert main(["dse", "--sweep", str(sweep), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "[1/2] run" in out
    assert "seed=0" in out


def test_dse_missing_sweep_file_clean_error(tmp_path, capsys):
    assert main(["dse", "--sweep", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_dse_invalid_sweep_json_clean_error(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text("{broken")
    assert main(["dse", "--sweep", str(path)]) == 2
    assert "invalid sweep JSON" in capsys.readouterr().err


def test_dse_unknown_axis_clean_error(tmp_path, capsys):
    path = tmp_path / "sweep.json"
    path.write_text(
        '{"base": {"env_id": "CartPole-v0"}, "axes": {"warp": [1]}}'
    )
    assert main(["dse", "--sweep", str(path)]) == 2
    assert "unknown sweep axis" in capsys.readouterr().err


def test_dse_bad_pareto_objective_clean_error(tmp_path, capsys):
    sweep = _write_sweep(tmp_path, axes={"seed": [0]})
    assert main([
        "dse", "--sweep", str(sweep), "--no-cache", "--quiet",
        "--pareto", "fitness:up",
    ]) == 2
    assert "direction must be" in capsys.readouterr().err


def test_dse_requires_sweep_flag():
    with pytest.raises(SystemExit):
        main(["dse"])


def test_dse_rejects_non_positive_jobs(tmp_path, capsys):
    sweep = _write_sweep(tmp_path, axes={"seed": [0]})
    with pytest.raises(SystemExit) as excinfo:
        main(["dse", "--sweep", str(sweep), "--jobs", "0"])
    assert excinfo.value.code == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_dse_typoed_pareto_metric_clean_error(tmp_path, capsys):
    sweep = _write_sweep(tmp_path, axes={"seed": [0]})
    assert main([
        "dse", "--sweep", str(sweep), "--no-cache", "--quiet",
        "--pareto", "fitnes:max",
    ]) == 2
    assert "not a numeric column" in capsys.readouterr().err


def test_dse_typoed_group_by_axis_clean_error(tmp_path, capsys):
    sweep = _write_sweep(tmp_path, axes={"seed": [0]})
    assert main([
        "dse", "--sweep", str(sweep), "--no-cache", "--quiet",
        "--group-by", "sede",
    ]) == 2
    assert "unknown axis" in capsys.readouterr().err


def test_run_with_run_dir_and_resume(tmp_path, capsys):
    run_dir = str(tmp_path / "run")
    assert main([
        "run", "CartPole-v0", "--generations", "3", "--population", "12",
        "--max-steps", "30", "--fitness-threshold", "1000",
        "--run-dir", run_dir, "--checkpoint-every", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert f"artifacts in {run_dir}" in out
    assert (tmp_path / "run" / "metrics.jsonl").exists()
    assert (tmp_path / "run" / "result.json").exists()

    # Extend via --resume --generations; spec comes from the directory.
    assert main(["run", "--resume", run_dir, "--generations", "4"]) == 0
    out = capsys.readouterr().out
    assert "resumed" in out and "checkpoint at generation 3" in out
    assert "after 4 generations" in out


def test_run_resume_rejects_spec_flags(tmp_path, capsys):
    run_dir = str(tmp_path / "run")
    assert main([
        "run", "CartPole-v0", "--generations", "2", "--population", "10",
        "--max-steps", "20", "--run-dir", run_dir,
    ]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--resume", run_dir, "--seed", "3"])
    assert "only --generations" in str(excinfo.value)
    # Zero-valued flags are overrides too (0 must not read as "unset").
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "--resume", run_dir, "--seed", "0"])
    assert "only --generations" in str(excinfo.value)


def test_run_resume_missing_dir_clean_error(tmp_path, capsys):
    assert main(["run", "--resume", str(tmp_path / "nope")]) == 2
    assert "no spec.json" in capsys.readouterr().err


def test_report_command(tmp_path, capsys):
    run_dir = str(tmp_path / "run")
    assert main([
        "run", "CartPole-v0", "--generations", "2", "--population", "10",
        "--max-steps", "20", "--fitness-threshold", "1000",
        "--run-dir", run_dir,
    ]) == 0
    capsys.readouterr()
    prefix = str(tmp_path / "out")
    assert main(["report", run_dir, "--export", prefix]) == 0
    out = capsys.readouterr().out
    assert "Run summary" in out
    assert "fitness curve" in out
    assert (tmp_path / "out.csv").exists()
    assert (tmp_path / "out.json").exists()


def test_report_not_a_run_dir_clean_error(tmp_path, capsys):
    assert main(["report", str(tmp_path)]) == 2
    assert "no spec.json" in capsys.readouterr().err


def test_dse_runs_dir(tmp_path, capsys):
    sweep = _write_sweep(tmp_path, axes={"seed": [0]})
    runs_dir = tmp_path / "points"
    assert main([
        "dse", "--sweep", str(sweep), "--no-cache", "--quiet",
        "--runs-dir", str(runs_dir),
    ]) == 0
    point_dirs = list(runs_dir.iterdir())
    assert len(point_dirs) == 1
    assert (point_dirs[0] / "metrics.jsonl").exists()
    capsys.readouterr()
    # The recorded point is inspectable with `repro report`.
    assert main(["report", str(point_dirs[0]), "--summary-only"]) == 0
    assert "CartPole-v0" in capsys.readouterr().out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["warp"])


def test_missing_env_argument_exits():
    with pytest.raises(SystemExit):
        main(["run"])


def test_parser_help_strings():
    parser = build_parser()
    assert parser.prog == "repro"


def test_run_resume_soc_backend_clean_error(tmp_path, capsys):
    """`repro run --resume` on a soc-backend run dir must be a one-line
    friendly error (exit 2), not a traceback or a silent restart."""
    run_dir = str(tmp_path / "socrun")
    assert main([
        "run", "CartPole-v0", "--backend", "soc", "--generations", "2",
        "--population", "10", "--max-steps", "30", "--run-dir", run_dir,
    ]) == 0
    capsys.readouterr()
    assert main(["run", "--resume", run_dir]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "soc backend" in err
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1


def test_submit_jobs_job_round_trip(tmp_path, capsys):
    root = str(tmp_path / "serve-root")
    assert main([
        "submit", "CartPole-v0", "--root", root, "--generations", "3",
        "--population", "10", "--max-steps", "30", "--seed", "2",
        "--checkpoint-every", "2", "--priority", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "job-000001 queued" in out
    assert "priority 4" in out

    assert main(["jobs", "--root", root]) == 0
    out = capsys.readouterr().out
    assert "job-000001" in out and "queued" in out

    assert main(["job", "job-000001", "--root", root]) == 0
    out = capsys.readouterr().out
    assert "job-000001: queued" in out
    assert "generations 0/3" in out

    assert main(["job", "job-000001", "--root", root, "--events"]) == 0
    assert "submitted" in capsys.readouterr().out


def test_serve_until_idle_runs_submitted_jobs(tmp_path, capsys):
    root = str(tmp_path / "serve-root")
    for seed in ("1", "2"):
        assert main([
            "submit", "CartPole-v0", "--root", root, "--generations", "2",
            "--population", "10", "--max-steps", "30", "--seed", seed,
        ]) == 0
    capsys.readouterr()
    assert main([
        "serve", root, "--workers", "2", "--until-idle", "--no-http",
        "--poll-interval", "0.1", "--timeout", "300",
    ]) == 0
    out = capsys.readouterr().out
    assert "scheduling jobs from" in out
    assert main(["jobs", "--root", root]) == 0
    listing = capsys.readouterr().out
    assert listing.count(" done ") >= 2 or listing.count("done") >= 2
    # --wait returns immediately on a terminal job
    assert main(["job", "job-000001", "--root", root, "--wait"]) == 0
    assert "job-000001: done" in capsys.readouterr().out


def test_job_cancel_via_cli(tmp_path, capsys):
    root = str(tmp_path / "serve-root")
    assert main([
        "submit", "CartPole-v0", "--root", root, "--generations", "2",
        "--population", "10", "--max-steps", "30",
    ]) == 0
    capsys.readouterr()
    assert main(["job", "job-000001", "--root", root, "--cancel"]) == 0
    assert "cancelled" in capsys.readouterr().out
    assert main(["job", "job-000001", "--root", root]) == 0
    assert "job-000001: cancelled" in capsys.readouterr().out


def test_serve_endpoint_flags_are_exclusive(tmp_path, capsys):
    with pytest.raises(SystemExit, match="exactly one of"):
        main(["jobs"])
    with pytest.raises(SystemExit, match="exactly one of"):
        main(["jobs", "--root", str(tmp_path), "--url", "http://x"])


def test_job_unknown_id_clean_error(tmp_path, capsys):
    root = str(tmp_path / "serve-root")
    assert main([
        "submit", "CartPole-v0", "--root", root, "--generations", "2",
        "--population", "10", "--max-steps", "30",
    ]) == 0
    capsys.readouterr()
    assert main(["job", "job-000099", "--root", root]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "job-000099" in err


def test_submit_url_unreachable_clean_error(capsys):
    assert main([
        "submit", "CartPole-v0", "--url", "http://127.0.0.1:9",
        "--generations", "2", "--population", "10",
    ]) == 2
    assert "cannot reach" in capsys.readouterr().err


def test_run_trace_requires_a_run_dir(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["run", "CartPole-v0", "--generations", "2", "--trace"])
    assert "--run-dir" in str(excinfo.value)


def test_run_trace_then_trace_command(tmp_path, capsys):
    run_dir = str(tmp_path / "run")
    assert main([
        "run", "CartPole-v0", "--generations", "2", "--population", "10",
        "--max-steps", "30", "--fitness-threshold", "1000",
        "--run-dir", run_dir, "--trace",
    ]) == 0
    out = capsys.readouterr().out
    assert "telemetry in" in out
    assert (tmp_path / "run" / "telemetry.jsonl").exists()

    assert main(["trace", run_dir]) == 0
    out = capsys.readouterr().out
    assert "Phase breakdown" in out
    assert "evaluate" in out and "reproduce" in out

    assert main(["trace", run_dir, "--export", "chrome"]) == 0
    out = capsys.readouterr().out
    assert "perfetto" in out
    trace_path = tmp_path / "run" / "trace.json"
    assert trace_path.exists()
    import json as _json
    trace = _json.loads(trace_path.read_text())
    assert trace["traceEvents"]


def test_trace_missing_telemetry_clean_error(tmp_path):
    (tmp_path / "run").mkdir()
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", str(tmp_path / "run")])
    assert "telemetry.jsonl" in str(excinfo.value)
    assert "--trace" in str(excinfo.value)


def test_top_once_renders_the_fleet(tmp_path, capsys):
    root = str(tmp_path / "serve-root")
    assert main([
        "submit", "CartPole-v0", "--root", root, "--generations", "2",
        "--population", "10", "--max-steps", "30",
    ]) == 0
    capsys.readouterr()
    assert main(["top", root, "--once"]) == 0
    out = capsys.readouterr().out
    assert "Fleet:" in out
    assert "job-000001" in out
    assert "queue_depth=1" in out


def test_job_follow_streams_metrics_from_the_tail(tmp_path, capsys):
    root = str(tmp_path / "serve-root")
    assert main([
        "submit", "CartPole-v0", "--root", root, "--generations", "3",
        "--population", "10", "--max-steps", "30", "--fitness-threshold",
        "1000",
    ]) == 0
    assert main([
        "serve", root, "--workers", "1", "--until-idle", "--no-http",
        "--poll-interval", "0.1", "--timeout", "300",
    ]) == 0
    capsys.readouterr()
    assert main([
        "job", "job-000001", "--root", root, "--follow",
        "--poll-interval", "0.05",
    ]) == 0
    out = capsys.readouterr().out
    # Every generation printed exactly once, even though the reader
    # polls repeatedly (byte-offset tail, not whole-file re-reads).
    for generation in (0, 1, 2):
        assert out.count(f"gen {generation}:") == 1
    assert "job-000001: done" in out
