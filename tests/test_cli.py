"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_envs_command(capsys):
    assert main(["envs"]) == 0
    out = capsys.readouterr().out
    assert "CartPole-v0" in out
    assert "Alien-ram-v0" in out


def test_run_software(capsys):
    code = main([
        "run", "CartPole-v0", "--generations", "2", "--population", "15",
        "--max-steps", "40",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[software] CartPole-v0" in out
    assert "best fitness" in out


def test_run_hardware(capsys):
    code = main([
        "run", "CartPole-v0", "--hardware", "--generations", "2",
        "--population", "12", "--max-steps", "40",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "[hardware] CartPole-v0" in out
    assert "energy" in out


def test_characterise(capsys):
    code = main([
        "characterise", "MountainCar-v0", "--generations", "2",
        "--population", "10", "--max-steps", "30",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Workload characterisation" in out
    assert "fittest reuse" in out


def test_platforms(capsys):
    code = main([
        "platforms", "CartPole-v0", "--generations", "2",
        "--population", "10", "--max-steps", "30",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "GENESYS" in out
    assert "CPU_a" in out


def test_design_space(capsys):
    assert main(["design-space"]) == 0
    out = capsys.readouterr().out
    assert "256" in out
    assert "947" in out  # the paper's design point power


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["warp"])


def test_missing_env_argument_exits():
    with pytest.raises(SystemExit):
        main(["run"])


def test_parser_help_strings():
    parser = build_parser()
    assert parser.prog == "repro"
