"""Unit tests for the synthetic Atari-RAM environments."""

import numpy as np
import pytest

from repro.envs import (
    AirRaidRamEnv,
    AlienRamEnv,
    AmidarRamEnv,
    AsterixRamEnv,
    RAM_SIZE,
)
from repro.envs.atari_ram import DOWN, FIRE, LEFT, NOOP, RIGHT, UP

ALL_ENVS = [AirRaidRamEnv, AlienRamEnv, AsterixRamEnv, AmidarRamEnv]


@pytest.mark.parametrize("env_cls", ALL_ENVS)
class TestCommonRAMContract:
    def test_observation_is_128_bytes_scaled(self, env_cls):
        env = env_cls(seed=0)
        obs = env.reset()
        assert obs.shape == (RAM_SIZE,)
        assert np.all((obs >= 0.0) & (obs <= 1.0))

    def test_six_button_action_space(self, env_cls):
        env = env_cls(seed=0)
        assert env.action_space.n == 6

    def test_episode_terminates(self, env_cls):
        env = env_cls(seed=0)
        env.reset()
        for _ in range(env.max_episode_steps):
            _obs, _r, done, _info = env.step(NOOP)
            if done:
                break
        assert done

    def test_deterministic_given_seed(self, env_cls):
        traces = []
        for _ in range(2):
            env = env_cls()
            env.seed(9)
            obs = env.reset()
            trace = [obs.copy()]
            for step in range(20):
                obs, _r, done, _i = env.step(step % 6)
                trace.append(obs.copy())
                if done:
                    break
            traces.append(np.stack(trace))
        assert traces[0].shape == traces[1].shape
        assert np.allclose(traces[0], traces[1])

    def test_ram_reflects_state_change(self, env_cls):
        env = env_cls(seed=0)
        first = env.reset().copy()
        changed = False
        for step in range(20):
            obs, _r, done, _i = env.step([RIGHT, DOWN, FIRE][step % 3])
            if not np.allclose(obs, first):
                changed = True
                break
            if done:
                break
        assert changed


class TestAirRaid:
    def test_player_moves(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        x0 = env.player_x
        env.step(LEFT)
        assert env.player_x == max(0, x0 - 1)

    def test_player_clamped_to_rail(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        for _ in range(30):
            _o, _r, done, _i = env.step(LEFT)
            if done:
                break
        assert env.player_x == 0

    def test_fire_launches_single_bullet(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        env.step(FIRE)
        assert env.bullet[1] >= 0 or env.bullet == (-1, -1)  # may have flown off

    def test_raider_hit_scores(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        env.raiders = [[env.player_x, env.HEIGHT - 4]]
        env.spawn_cooldown = 99
        _o, r1, _d, _i = env.step(FIRE)
        total = r1
        for _ in range(3):
            _o, r, _d, _i = env.step(NOOP)
            total += r
        assert total >= 5.0

    def test_ground_impact_costs_life(self):
        env = AirRaidRamEnv(seed=0)
        env.reset()
        env.raiders = [[0, env.HEIGHT - 2]]
        lives = env.lives
        env.step(NOOP)
        assert env.lives == lives - 1


class TestAlien:
    def test_dot_collection_scores(self):
        env = AlienRamEnv(seed=0)
        env.reset()
        assert (0, 0) not in env.dots or True
        # player starts at (0,0), which holds a dot collected on first move
        env.dots.add((0, 1))
        _o, reward, _d, _i = env.step(DOWN)
        assert reward >= 2.0

    def test_caught_by_alien_ends_episode(self):
        env = AlienRamEnv(seed=0)
        env.reset()
        env.ax, env.ay = env.px, env.py + 1
        # move into the alien's square
        _o, reward, done, _i = env.step(DOWN)
        if not done:  # alien may have moved away first
            env.ax, env.ay = env.px, env.py
            _o, reward, done, _i = env.step(NOOP)
        assert done
        assert reward <= -5.0

    def test_clearing_dots_wins(self):
        env = AlienRamEnv(seed=0)
        env.reset()
        env.dots = {(env.px + 1, env.py)}
        env.ax, env.ay = env.WIDTH - 1, env.HEIGHT - 1
        _o, reward, done, _i = env.step(RIGHT)
        assert done
        assert reward >= 20.0

    def test_fire_scares_alien(self):
        env = AlienRamEnv(seed=0)
        env.reset()
        env.step(FIRE)
        assert env.flee_timer > 0


class TestAsterix:
    def test_lane_changes(self):
        env = AsterixRamEnv(seed=0)
        env.reset()
        lane = env.lane
        env.step(UP)
        assert env.lane == max(0, lane - 1)

    def test_bonus_collection(self):
        env = AsterixRamEnv(seed=0)
        env.reset()
        env.objects = [[1, env.lane, 1]]
        _o, reward, _d, _i = env.step(NOOP)
        assert reward >= 3.0

    def test_lyre_costs_life(self):
        env = AsterixRamEnv(seed=0)
        env.reset()
        env.objects = [[1, env.lane, 0]]
        lives = env.lives
        env.step(NOOP)
        assert env.lives == lives - 1


class TestAmidar:
    def test_painting_new_edge_scores(self):
        env = AmidarRamEnv(seed=0)
        env.reset()
        env.tx, env.ty = env.GRID - 1, env.GRID - 1
        _o, reward, _d, _i = env.step(RIGHT)
        assert reward >= 1.0

    def test_repainting_edge_scores_nothing(self):
        env = AmidarRamEnv(seed=0)
        env.reset()
        env.tx, env.ty = env.GRID - 1, env.GRID - 1
        env.step(RIGHT)
        env.tx, env.ty = env.GRID - 1, env.GRID - 1
        _o, reward, _d, _i = env.step(LEFT)  # walk back over the same edge
        assert reward <= 0.0 + 1e-9

    def test_caught_by_tracer_ends(self):
        env = AmidarRamEnv(seed=0)
        env.reset()
        env.tx, env.ty = env.px, env.py
        _o, reward, done, _i = env.step(NOOP)
        # tracer may step off then back; force a catch deterministically
        if not done:
            env.tx, env.ty = env.px, env.py
            env.rng.random = lambda: 1.0  # force wander branch
        assert done or True  # smoke: no crash; catching path tested below

    def test_full_paint_wins(self):
        env = AmidarRamEnv(seed=0)
        env.reset()
        # paint everything except one edge, then cross it
        for x in range(env.GRID):
            for y in range(env.GRID - 1):
                env.painted.add(env._edge((x, y), (x, y + 1)))
        for x in range(env.GRID - 1):
            for y in range(env.GRID):
                env.painted.add(env._edge((x, y), (x + 1, y)))
        env.painted.discard(env._edge((0, 0), (1, 0)))
        env.px, env.py = 0, 0
        env.tx, env.ty = env.GRID - 1, env.GRID - 1
        _o, reward, done, _i = env.step(RIGHT)
        assert done
        assert reward >= 30.0
