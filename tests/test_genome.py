"""Unit tests for repro.neat.genome."""

import random

import pytest

from repro.neat.config import GenomeConfig
from repro.neat.genome import Genome, MutationCounts, creates_cycle
from repro.neat.innovation import InnovationTracker


@pytest.fixture
def config():
    return GenomeConfig(num_inputs=3, num_outputs=2)


@pytest.fixture
def rng():
    return random.Random(99)


@pytest.fixture
def innovations():
    return InnovationTracker(next_node_id=2)


@pytest.fixture
def genome(config, rng):
    g = Genome(0)
    g.configure_new(config, rng)
    return g


class TestCreatesCycle:
    def test_self_loop(self):
        assert creates_cycle([], (1, 1))

    def test_simple_cycle(self):
        assert creates_cycle([(1, 2), (2, 3)], (3, 1))

    def test_no_cycle(self):
        assert not creates_cycle([(1, 2), (2, 3)], (1, 3))

    def test_diamond_is_acyclic(self):
        edges = [(1, 2), (1, 3), (2, 4), (3, 4)]
        assert not creates_cycle(edges, (1, 4))

    def test_back_edge(self):
        assert creates_cycle([(1, 2), (2, 3), (3, 4)], (4, 2))


class TestInitialTopology:
    def test_matches_paper_minimal_topology(self, genome, config):
        # Section III-B: inputs fully connected to outputs, zero weights.
        assert set(genome.nodes) == {0, 1}
        assert len(genome.connections) == 3 * 2
        assert all(c.weight == 0.0 for c in genome.connections.values())
        assert all(c.enabled for c in genome.connections.values())

    def test_initial_none_connection(self, config, rng):
        config.initial_connection = "none"
        g = Genome(1)
        g.configure_new(config, rng)
        assert not g.connections
        assert len(g.nodes) == 2

    def test_initial_random_weights(self, config, rng):
        config.initial_weight = None
        g = Genome(1)
        g.configure_new(config, rng)
        assert any(c.weight != 0.0 for c in g.connections.values())

    def test_validate_passes(self, genome, config):
        genome.validate(config)


class TestStructuralMutations:
    def test_add_node_splits_connection(self, genome, config, rng, innovations):
        before_conns = len(genome.connections)
        new_id = genome.mutate_add_node(config, rng, innovations)
        assert new_id is not None
        assert new_id in genome.nodes
        # one disabled + two added
        assert len(genome.connections) == before_conns + 2
        disabled = [c for c in genome.connections.values() if not c.enabled]
        assert len(disabled) == 1
        src, dst = disabled[0].key
        assert (src, new_id) in genome.connections
        assert (new_id, dst) in genome.connections
        genome.validate(config)

    def test_add_node_weight_inheritance(self, genome, config, rng, innovations):
        # New upstream connection gets weight 1.0, downstream inherits.
        for conn in genome.connections.values():
            conn.weight = 0.75
        new_id = genome.mutate_add_node(config, rng, innovations)
        up = [c for k, c in genome.connections.items() if k[1] == new_id]
        down = [c for k, c in genome.connections.items() if k[0] == new_id]
        assert up[0].weight == 1.0
        assert down[0].weight == 0.75

    def test_add_node_counts(self, genome, config, rng, innovations):
        counts = MutationCounts()
        genome.mutate_add_node(config, rng, innovations, counts)
        assert counts.node_additions == 1

    def test_delete_node_prunes_danglers(self, genome, config, rng, innovations):
        new_id = genome.mutate_add_node(config, rng, innovations)
        # force delete of the hidden node specifically
        victim = None
        while victim != new_id:
            g = genome.copy()
            victim = g.mutate_delete_node(config, rng)
            if victim == new_id:
                assert all(new_id not in key for key in g.connections)
                g.validate(config)
                return
        pytest.fail("never deleted the hidden node")

    def test_delete_node_never_removes_outputs(self, genome, config, rng):
        # only outputs exist -> nothing deletable? outputs are protected but
        # hidden nodes don't exist yet, so candidates = empty.
        assert genome.mutate_delete_node(config, rng) is None
        assert set(genome.nodes) == {0, 1}

    def test_add_connection_is_acyclic(self, config, rng, innovations):
        g = Genome(0)
        g.configure_new(config, rng)
        for _ in range(30):
            g.mutate_add_node(config, rng, innovations)
            g.mutate_add_connection(config, rng)
            assert not g.has_cycle()

    def test_add_connection_no_input_dest(self, genome, config, rng):
        for _ in range(50):
            key = genome.mutate_add_connection(config, rng)
            if key is not None:
                assert key[1] >= 0

    def test_add_connection_reenables_disabled(self, genome, config, rng):
        conn = next(iter(genome.connections.values()))
        conn.enabled = False
        for _ in range(200):
            key = genome.mutate_add_connection(config, rng)
            if key == conn.key:
                assert genome.connections[key].enabled
                return
        pytest.fail("never re-enabled the disabled connection")

    def test_delete_connection(self, genome, config, rng):
        counts = MutationCounts()
        before = len(genome.connections)
        key = genome.mutate_delete_connection(rng, counts)
        assert key is not None
        assert len(genome.connections) == before - 1
        assert counts.conn_deletions == 1

    def test_delete_connection_empty(self, config, rng):
        g = Genome(0)
        config2 = GenomeConfig(num_inputs=1, num_outputs=1, initial_connection="none")
        g.configure_new(config2, rng)
        assert g.mutate_delete_connection(rng) is None


class TestMutate:
    def test_mutate_preserves_validity(self, genome, config, rng, innovations):
        for _ in range(100):
            genome.mutate(config, rng, innovations)
        genome.validate(config)

    def test_mutate_counts_accumulate(self, genome, config, rng, innovations):
        config.weight_mutate_rate = 1.0
        counts = genome.mutate(config, rng, innovations)
        assert counts.perturbations > 0
        assert counts.total == counts.crossovers + counts.mutations

    def test_single_structural_mode(self, genome, config, rng, innovations):
        config.single_structural_mutation = True
        counts = MutationCounts()
        for _ in range(20):
            genome.mutate(config, rng, innovations, counts)
        structural = (
            counts.node_additions
            + counts.node_deletions
            + counts.conn_additions
            + counts.conn_deletions
        )
        # at most one structural mutation per call (deletion cascades count
        # extra conn deletions, so compare against a generous bound)
        assert structural <= 20 + counts.node_deletions * len(genome.connections)


class TestCrossover:
    def test_fitter_parent_dominates_structure(self, config, rng, innovations):
        p1 = Genome(1)
        p1.configure_new(config, rng)
        for _ in range(10):
            p1.mutate_add_node(config, rng, innovations)
        p2 = Genome(2)
        p2.configure_new(config, rng)
        p1.fitness, p2.fitness = 10.0, 1.0
        child = Genome.crossover(3, p1, p2, config, rng)
        assert set(child.nodes) == set(p1.nodes)
        assert set(child.connections) == set(p1.connections)

    def test_parent_order_does_not_matter(self, config, rng, innovations):
        p1 = Genome(1)
        p1.configure_new(config, rng)
        for _ in range(5):
            p1.mutate_add_node(config, rng, innovations)
        p2 = Genome(2)
        p2.configure_new(config, rng)
        p1.fitness, p2.fitness = 10.0, 1.0
        child_a = Genome.crossover(3, p1, p2, config, rng)
        child_b = Genome.crossover(4, p2, p1, config, rng)
        assert set(child_a.nodes) == set(child_b.nodes)

    def test_crossover_counts_homologous_genes(self, config, rng):
        p1 = Genome(1)
        p1.configure_new(config, rng)
        p2 = Genome(2)
        p2.configure_new(config, rng)
        p1.fitness = p2.fitness = 1.0
        counts = MutationCounts()
        Genome.crossover(3, p1, p2, config, rng, counts)
        # 2 output nodes + 6 connections are homologous
        assert counts.crossovers == 8

    def test_child_is_valid(self, config, rng, innovations):
        p1 = Genome(1)
        p1.configure_new(config, rng)
        p2 = Genome(2)
        p2.configure_new(config, rng)
        for _ in range(20):
            p1.mutate(config, rng, innovations)
            p2.mutate(config, rng, innovations)
        p1.fitness, p2.fitness = 3.0, 2.0
        child = Genome.crossover(3, p1, p2, config, rng)
        child.validate(config)


class TestDistance:
    def test_zero_for_clones(self, genome, config):
        assert genome.distance(genome.copy(), config) == 0.0

    def test_symmetric(self, config, rng, innovations):
        p1 = Genome(1)
        p1.configure_new(config, rng)
        p2 = p1.copy(2)
        for _ in range(10):
            p2.mutate(config, rng, innovations)
        assert p1.distance(p2, config) == pytest.approx(p2.distance(p1, config))

    def test_grows_with_disjoint_genes(self, config, rng, innovations):
        p1 = Genome(1)
        p1.configure_new(config, rng)
        p2 = p1.copy(2)
        d0 = p1.distance(p2, config)
        for _ in range(5):
            p2.mutate_add_node(config, rng, innovations)
        assert p1.distance(p2, config) > d0


class TestIntrospection:
    def test_size(self, genome):
        enabled, nodes = genome.size()
        assert enabled == 6
        assert nodes == 2

    def test_num_genes(self, genome):
        assert genome.num_genes == 8

    def test_hw_order(self, genome, config, rng, innovations):
        for _ in range(10):
            genome.mutate(config, rng, innovations)
        stream = list(genome.iter_genes_hw_order())
        node_part = [g for g in stream if not hasattr(g, "weight")]
        conn_part = stream[len(node_part):]
        assert [g.key for g in node_part] == sorted(g.key for g in node_part)
        assert [g.key for g in conn_part] == sorted(g.key for g in conn_part)

    def test_validate_catches_dangling(self, genome, config):
        from repro.neat.genes import ConnectionGene

        genome.connections[(77, 0)] = ConnectionGene((77, 0))
        with pytest.raises(ValueError, match="dangling"):
            genome.validate(config)

    def test_validate_catches_missing_output(self, genome, config):
        del genome.nodes[0]
        with pytest.raises(ValueError, match="output"):
            genome.validate(config)

    def test_copy_with_new_key(self, genome):
        clone = genome.copy(42)
        assert clone.key == 42
        assert set(clone.connections) == set(genome.connections)
