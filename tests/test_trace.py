"""Unit tests for reproduction traces and workload records."""

import pytest

from repro.core.trace import GenerationWorkload, TraceRecorder
from repro.neat.genome import MutationCounts


@pytest.fixture(scope="module")
def trace():
    recorder = TraceRecorder("CartPole-v0", pop_size=20, seed=0, max_steps=60)
    return recorder.record(4)


def test_workloads_per_generation(trace):
    assert trace.generations == 4
    for workload in trace.workloads:
        assert workload.population == 20
        assert workload.total_genes > 0
        assert workload.env_steps > 0
        assert workload.inference_macs > 0
        assert workload.mean_network_depth >= 1.0


def test_first_generation_has_no_ops(trace):
    # generation 0 is the initial population: no reproduction happened yet
    assert trace.workloads[0].evolution_ops == 0
    assert any(w.evolution_ops > 0 for w in trace.workloads[1:])


def test_footprint_is_8_bytes_per_gene(trace):
    w = trace.workloads[0]
    assert w.footprint_bytes == w.total_genes * 8


def test_trace_lines_format(trace):
    assert trace.lines
    for line in list(trace.iter_lines())[:50]:
        generation, genome_id, op, count = line.split(",")
        assert op in {
            "crossover", "perturb", "add_node", "del_node", "add_conn", "del_conn",
        }
        assert int(count) > 0


def test_trace_lines_match_workload_ops(trace):
    # Sum of per-line counts equals the per-generation op totals.
    per_gen = {}
    for line in trace.lines:
        per_gen[line.generation] = per_gen.get(line.generation, 0) + line.count
    for w in trace.workloads[1:]:
        # workload generation g records ops that created generation g
        expected = w.ops.total
        assert per_gen.get(w.generation - 1, 0) == expected


def test_mean_workload(trace):
    mean = trace.mean_workload()
    assert mean.population == 20
    assert mean.total_genes > 0
    assert mean.env_steps > 0


def test_mean_workload_empty_raises():
    from repro.core.trace import WorkloadTrace

    with pytest.raises(ValueError):
        WorkloadTrace(env_id="x").mean_workload()


def test_workload_derived_properties():
    w = GenerationWorkload(
        generation=1,
        population=10,
        total_nodes=30,
        total_connections=70,
        ops=MutationCounts(crossovers=5, perturbations=5),
        env_steps=100,
        inference_macs=1000,
        mean_network_depth=2.0,
        fittest_parent_reuse=4,
    )
    assert w.total_genes == 100
    assert w.footprint_bytes == 800
    assert w.evolution_ops == 10
    assert w.mean_genome_genes == 10.0
