"""Unit tests for the footnote-2 genome-split dataflow model."""

import pytest

from repro.hw.pe import CONFIG_LOAD_CYCLES, PIPELINE_DEPTH
from repro.hw.split_dataflow import (
    child_latency,
    generation_estimate,
    sweep_pes_per_child,
)


class TestChildLatency:
    def test_single_pe_matches_baseline_pipeline(self):
        est = child_latency(100, pes_per_child=1)
        assert est.child_latency_cycles == CONFIG_LOAD_CYCLES + 100 + PIPELINE_DEPTH
        assert est.merge_overhead_cycles == 0

    def test_splitting_cuts_stream_time(self):
        one = child_latency(100, 1)
        four = child_latency(100, 4)
        assert four.child_latency_cycles < one.child_latency_cycles

    def test_splitting_adds_merge_overhead(self):
        assert child_latency(100, 2).merge_overhead_cycles > 0
        assert child_latency(100, 1).merge_overhead_cycles == 0

    def test_diminishing_returns(self):
        """Config+drain overheads dominate at high k: latency floors out."""
        latencies = [child_latency(64, k).child_latency_cycles for k in (1, 2, 4, 8, 64)]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[-1] == CONFIG_LOAD_CYCLES + 1 + PIPELINE_DEPTH

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            child_latency(10, 0)


class TestGenerationEstimate:
    def test_k1_waves(self):
        est = generation_estimate([50] * 8, num_pes=4, pes_per_child=1)
        assert est.waves == 2
        assert est.pe_slots_wasted == 0

    def test_splitting_multiplies_waves(self):
        base = generation_estimate([50] * 8, num_pes=4, pes_per_child=1)
        split = generation_estimate([50] * 8, num_pes=4, pes_per_child=4)
        assert split.waves == 8
        assert split.waves > base.waves

    def test_throughput_tradeoff(self):
        """The footnote's implied conclusion: at high PE counts, 1 PE per
        child maximises generation throughput; splitting only helps
        latency when PEs outnumber children."""
        lengths = [200] * 16
        one = generation_estimate(lengths, num_pes=16, pes_per_child=1)
        split = generation_estimate(lengths, num_pes=16, pes_per_child=4)
        assert one.generation_cycles <= split.generation_cycles
        # but with PEs to spare, splitting shortens the single-child tail
        spare = generation_estimate([200], num_pes=16, pes_per_child=8)
        assert spare.child_latency_cycles < one.child_latency_cycles

    def test_wasted_slots_counted(self):
        est = generation_estimate([50] * 3, num_pes=4, pes_per_child=1)
        assert est.pe_slots_wasted == 1

    def test_k_exceeding_pes_rejected(self):
        with pytest.raises(ValueError):
            generation_estimate([10], num_pes=2, pes_per_child=4)


class TestSweep:
    def test_rows_for_each_k(self):
        rows = sweep_pes_per_child([100] * 8, num_pes=8, k_values=(1, 2, 4, 8))
        assert [r.pes_per_child for r in rows] == [1, 2, 4, 8]

    def test_oversized_k_skipped(self):
        rows = sweep_pes_per_child([100] * 8, num_pes=4, k_values=(1, 2, 4, 8))
        assert [r.pes_per_child for r in rows] == [1, 2, 4]

    def test_merge_overhead_grows_with_k(self):
        rows = sweep_pes_per_child([100] * 8, num_pes=8, k_values=(1, 2, 4))
        merges = [r.merge_overhead_cycles for r in rows]
        assert merges[0] == 0
        assert merges[1] > 0
