"""Unit tests for gradient fine-tuning of evolved topologies."""

import math
import random

import pytest

from repro.neat import Genome, GenomeConfig, InnovationTracker
from repro.neat.backprop import (
    DifferentiableNetwork,
    UntrainableGenomeError,
    finetune_genome,
)
from repro.neat.network import FeedForwardNetwork


@pytest.fixture
def config():
    return GenomeConfig(num_inputs=2, num_outputs=1)


def make_genome(config, hidden=3, seed=0):
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=config.num_outputs)
    genome = Genome(0)
    genome.configure_new(config, rng)
    for _ in range(hidden):
        genome.mutate_add_node(config, rng, innovations)
    for conn in genome.connections.values():
        conn.weight = rng.uniform(-1, 1)
    return genome


class TestForwardConsistency:
    def test_matches_feedforward_network(self, config):
        genome = make_genome(config)
        trainable = DifferentiableNetwork(genome, config)
        reference = FeedForwardNetwork.create(genome, config)
        for x in ([0.0, 0.0], [1.0, -1.0], [0.3, 0.7]):
            assert trainable.activate(x)[0] == pytest.approx(
                reference.activate(x)[0], abs=1e-12
            )

    def test_wrong_input_count(self, config):
        trainable = DifferentiableNetwork(make_genome(config), config)
        with pytest.raises(ValueError):
            trainable.activate([1.0])

    def test_unsupported_aggregation_rejected(self, config):
        genome = make_genome(config)
        genome.nodes[0].aggregation = "max"
        with pytest.raises(UntrainableGenomeError):
            DifferentiableNetwork(genome, config)

    def test_unsupported_activation_rejected(self, config):
        genome = make_genome(config)
        genome.nodes[0].activation = "sin"
        with pytest.raises(UntrainableGenomeError):
            DifferentiableNetwork(genome, config)


class TestGradients:
    def test_numerical_gradient_check(self, config):
        """Analytic dL/dw matches central finite differences."""
        genome = make_genome(config, hidden=2, seed=3)
        network = DifferentiableNetwork(genome, config)
        x = [0.4, -0.6]
        target = 0.25

        def loss_with(key, value):
            old = network.weights[key]
            network.weights[key] = value
            out = network.activate(x)[0]
            network.weights[key] = old
            return 0.5 * (out - target) ** 2

        out = network.activate(x)[0]
        weight_grads, bias_grads = network.gradients(x, [out - target])
        eps = 1e-6
        for key, analytic in weight_grads.items():
            w = network.weights[key]
            numeric = (loss_with(key, w + eps) - loss_with(key, w - eps)) / (2 * eps)
            assert analytic == pytest.approx(numeric, abs=1e-5)

    def test_bias_gradient_check(self, config):
        genome = make_genome(config, hidden=1, seed=4)
        network = DifferentiableNetwork(genome, config)
        x = [0.2, 0.9]
        target = -0.1
        out = network.activate(x)[0]
        _wg, bias_grads = network.gradients(x, [out - target])
        eps = 1e-6
        for node_id, analytic in bias_grads.items():
            b = network.biases[node_id]
            network.biases[node_id] = b + eps
            hi = 0.5 * (network.activate(x)[0] - target) ** 2
            network.biases[node_id] = b - eps
            lo = 0.5 * (network.activate(x)[0] - target) ** 2
            network.biases[node_id] = b
            assert analytic == pytest.approx((hi - lo) / (2 * eps), abs=1e-5)


class TestTraining:
    def test_loss_decreases(self, config):
        genome = make_genome(config, hidden=3, seed=5)
        samples = [
            ([a, b], [math.tanh(0.8 * a - 0.4 * b)])
            for a in (-1.0, -0.5, 0.0, 0.5, 1.0)
            for b in (-1.0, 0.0, 1.0)
        ]
        result = finetune_genome(genome, config, samples, epochs=150,
                                 learning_rate=0.2)
        assert result.final_loss < 0.25 * result.initial_loss

    def test_write_back_updates_genome(self, config):
        genome = make_genome(config, hidden=1, seed=6)
        before = {k: c.weight for k, c in genome.connections.items()}
        samples = [([1.0, 1.0], [0.9])]
        finetune_genome(genome, config, samples, epochs=30, learning_rate=0.3)
        after = {k: c.weight for k, c in genome.connections.items()}
        assert any(abs(after[k] - before[k]) > 1e-6
                   for k in before if genome.connections[k].enabled)

    def test_trained_genome_still_hardware_encodable(self, config):
        """The hybrid loop: evolve -> SGD tune -> back to the hardware path."""
        from repro.hw import encode_genome, decode_genome

        genome = make_genome(config, hidden=2, seed=7)
        finetune_genome(genome, config, [([0.5, 0.5], [0.1])], epochs=20)
        genome.validate(config)
        decoded = decode_genome(encode_genome(genome, config), 0, config)
        decoded.validate(config)

    def test_weights_clipped(self, config):
        genome = make_genome(config, hidden=0, seed=8)
        network = DifferentiableNetwork(genome, config)
        network.train([([1.0, 1.0], [100.0])], epochs=500, learning_rate=5.0)
        assert all(abs(w) <= 8.0 for w in network.weights.values())

    def test_topology_unchanged_by_training(self, config):
        genome = make_genome(config, hidden=2, seed=9)
        keys_before = (set(genome.nodes), set(genome.connections))
        finetune_genome(genome, config, [([0.1, 0.2], [0.3])], epochs=10)
        assert (set(genome.nodes), set(genome.connections)) == keys_before
