"""Unit and property tests for repro.dse Pareto-frontier extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import ObjectiveError, dominates, pareto_front, parse_objectives


class TestDominates:
    def test_strictly_better(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_better_on_one_axis(self):
        assert dominates((1.0, 2.0), (2.0, 2.0))

    def test_equal_does_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_trade_off_does_not_dominate(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))


class TestParetoFront:
    ROWS = [
        {"name": "fast-hungry", "runtime_s": 1.0, "energy_j": 9.0},
        {"name": "slow-frugal", "runtime_s": 9.0, "energy_j": 1.0},
        {"name": "balanced", "runtime_s": 3.0, "energy_j": 3.0},
        {"name": "dominated", "runtime_s": 4.0, "energy_j": 4.0},
    ]

    def test_min_min_front(self):
        front = pareto_front(
            self.ROWS, {"runtime_s": "min", "energy_j": "min"}
        )
        assert [r["name"] for r in front] == [
            "fast-hungry", "slow-frugal", "balanced",
        ]

    def test_max_direction(self):
        rows = [
            {"fitness": 10.0, "energy_j": 5.0},
            {"fitness": 5.0, "energy_j": 1.0},
            {"fitness": 9.0, "energy_j": 6.0},  # dominated both ways
        ]
        front = pareto_front(rows, {"fitness": "max", "energy_j": "min"})
        assert front == rows[:2]

    def test_single_objective_is_argmin(self):
        front = pareto_front(self.ROWS, {"runtime_s": "min"})
        assert [r["name"] for r in front] == ["fast-hungry"]

    def test_rows_missing_objectives_are_excluded(self):
        rows = self.ROWS + [{"name": "unmeasured", "runtime_s": 0.1}]
        front = pareto_front(rows, {"runtime_s": "min", "energy_j": "min"})
        assert all(r["name"] != "unmeasured" for r in front)

    def test_ties_all_survive(self):
        rows = [{"x": 1.0, "tag": "a"}, {"x": 1.0, "tag": "b"}]
        assert len(pareto_front(rows, {"x": "min"})) == 2

    def test_bad_direction(self):
        with pytest.raises(ObjectiveError):
            pareto_front(self.ROWS, {"runtime_s": "down"})


_finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
_row_sets = st.lists(
    st.tuples(_finite, _finite), min_size=1, max_size=40
).map(
    lambda pairs: [
        {"idx": i, "a": a, "b": b} for i, (a, b) in enumerate(pairs)
    ]
)
_objective_sets = st.sampled_from([
    {"a": "min", "b": "min"},
    {"a": "max", "b": "min"},
    {"a": "min", "b": "max"},
    {"a": "max", "b": "max"},
    {"a": "min"},
    {"b": "max"},
])


class TestParetoProperties:
    """Frontier invariants over arbitrary finite point sets — the same
    invariants the successive-halving promotion rule leans on."""

    @settings(max_examples=100, deadline=None)
    @given(rows=_row_sets, objectives=_objective_sets)
    def test_front_is_an_ordered_subset(self, rows, objectives):
        front = pareto_front(rows, objectives)
        assert front, "a non-empty point set has a non-empty frontier"
        indexes = [row["idx"] for row in front]
        assert indexes == sorted(indexes)  # input order preserved
        assert all(row in rows for row in front)

    @settings(max_examples=100, deadline=None)
    @given(rows=_row_sets, objectives=_objective_sets)
    def test_front_members_are_mutually_non_dominating(
        self, rows, objectives
    ):
        front = pareto_front(rows, objectives)

        def signed(row):
            return tuple(
                -row[name] if direction == "max" else row[name]
                for name, direction in objectives.items()
            )

        for first in front:
            for second in front:
                assert not dominates(signed(first), signed(second))

    @settings(max_examples=100, deadline=None)
    @given(rows=_row_sets, objectives=_objective_sets)
    def test_every_excluded_row_is_dominated_by_a_front_row(
        self, rows, objectives
    ):
        front = pareto_front(rows, objectives)
        front_ids = {row["idx"] for row in front}

        def signed(row):
            return tuple(
                -row[name] if direction == "max" else row[name]
                for name, direction in objectives.items()
            )

        for row in rows:
            if row["idx"] in front_ids:
                continue
            assert any(
                dominates(signed(winner), signed(row)) for winner in front
            ), f"row {row['idx']} excluded without a dominator"

    @settings(max_examples=50, deadline=None)
    @given(rows=_row_sets, objectives=_objective_sets)
    def test_front_is_idempotent(self, rows, objectives):
        front = pareto_front(rows, objectives)
        assert pareto_front(front, objectives) == front


class TestParseObjectives:
    def test_parses_directions(self):
        assert parse_objectives("fitness:max, energy_j:min") == {
            "fitness": "max", "energy_j": "min",
        }

    def test_default_direction_is_min(self):
        assert parse_objectives("runtime_s") == {"runtime_s": "min"}

    def test_rejects_bad_direction(self):
        with pytest.raises(ObjectiveError, match="direction"):
            parse_objectives("fitness:up")

    def test_rejects_empty(self):
        with pytest.raises(ObjectiveError, match="no objectives"):
            parse_objectives(" , ")
