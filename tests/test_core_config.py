"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import GeneSysConfig
from repro.neat import NEATConfig


def test_paper_design_point():
    config = GeneSysConfig.paper_design_point()
    assert config.eve.num_pes == 256
    assert config.eve.noc == "multicast"
    assert config.adam.rows == 32 and config.adam.cols == 32
    assert config.sram.num_banks == 48
    assert config.sram.bank_depth == 4096
    assert config.frequency_hz == 200e6


def test_paper_design_point_with_neat():
    neat = NEATConfig.for_env(4, 2, pop_size=10)
    config = GeneSysConfig.paper_design_point(neat=neat)
    assert config.neat.genome.num_inputs == 4


def test_pe_config_probability_mapping():
    neat = NEATConfig.for_env(4, 2, pop_size=10)
    config = GeneSysConfig.paper_design_point(neat=neat)
    pe = config.pe_config_from_neat()
    assert pe.crossover_bias == neat.genome.crossover_bias
    assert 0.0 <= pe.node_add_prob <= 1.0
    assert 0.0 <= pe.conn_delete_prob <= 1.0
    assert pe.max_node_deletions == neat.genome.max_node_deletions_per_child


def test_per_gene_probabilities_shrink_with_genome_size():
    small = GeneSysConfig.paper_design_point(neat=NEATConfig.for_env(2, 2))
    large = GeneSysConfig.paper_design_point(neat=NEATConfig.for_env(128, 6))
    assert (
        large.pe_config_from_neat().node_add_prob
        < small.pe_config_from_neat().node_add_prob
    )
