"""Unit tests for repro.neat.config."""

import pytest

from repro.neat.config import (
    ConfigError,
    GenomeConfig,
    NEATConfig,
    ReproductionConfig,
    SpeciesConfig,
)


class TestGenomeConfig:
    def test_defaults_validate(self):
        GenomeConfig().validate()

    def test_input_output_keys(self):
        cfg = GenomeConfig(num_inputs=3, num_outputs=2)
        assert cfg.input_keys == [-1, -2, -3]
        assert cfg.output_keys == [0, 1]

    def test_rejects_zero_inputs(self):
        with pytest.raises(ConfigError):
            GenomeConfig(num_inputs=0).validate()

    def test_rejects_zero_outputs(self):
        with pytest.raises(ConfigError):
            GenomeConfig(num_outputs=0).validate()

    def test_rejects_bad_initial_connection(self):
        with pytest.raises(ConfigError):
            GenomeConfig(initial_connection="sparse").validate()

    def test_rejects_inverted_weight_bounds(self):
        with pytest.raises(ConfigError):
            GenomeConfig(weight_min_value=5.0, weight_max_value=-5.0).validate()

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ConfigError):
            GenomeConfig(node_add_prob=1.5).validate()
        with pytest.raises(ConfigError):
            GenomeConfig(conn_delete_prob=-0.1).validate()

    def test_rejects_unknown_activation(self):
        with pytest.raises(ConfigError):
            GenomeConfig(activation_default="warp").validate()

    def test_rejects_unknown_aggregation(self):
        with pytest.raises(ConfigError):
            GenomeConfig(aggregation_options=["sum", "blend"]).validate()


class TestSpeciesConfig:
    def test_defaults_validate(self):
        SpeciesConfig().validate()

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ConfigError):
            SpeciesConfig(compatibility_threshold=0.0).validate()

    def test_rejects_bonus_below_one(self):
        with pytest.raises(ConfigError):
            SpeciesConfig(young_fitness_bonus=0.9).validate()


class TestReproductionConfig:
    def test_defaults_validate(self):
        ReproductionConfig().validate()

    def test_rejects_zero_survival(self):
        with pytest.raises(ConfigError):
            ReproductionConfig(survival_threshold=0.0).validate()

    def test_rejects_negative_elitism(self):
        with pytest.raises(ConfigError):
            ReproductionConfig(elitism=-1).validate()


class TestNEATConfig:
    def test_paper_population_default(self):
        # The paper's population size is 150 (Section III-D3).
        assert NEATConfig().pop_size == 150

    def test_rejects_tiny_population(self):
        with pytest.raises(ConfigError):
            NEATConfig(pop_size=1)

    def test_rejects_bad_criterion(self):
        with pytest.raises(ConfigError):
            NEATConfig(fitness_criterion="best")

    def test_for_env_sizes_io(self):
        cfg = NEATConfig.for_env(8, 4, pop_size=30)
        assert cfg.genome.num_inputs == 8
        assert cfg.genome.num_outputs == 4
        assert cfg.pop_size == 30

    def test_for_env_genome_overrides(self):
        cfg = NEATConfig.for_env(2, 2, node_add_prob=0.5)
        assert cfg.genome.node_add_prob == 0.5

    def test_for_env_rejects_unknown_override(self):
        with pytest.raises(ConfigError):
            NEATConfig.for_env(2, 2, warp_speed=1)

    def test_round_trip_dict(self):
        cfg = NEATConfig.for_env(4, 3, pop_size=42)
        clone = NEATConfig.from_dict(cfg.to_dict())
        assert clone.pop_size == 42
        assert clone.genome.num_inputs == 4
        assert clone.genome.num_outputs == 3
        assert clone.species.compatibility_threshold == cfg.species.compatibility_threshold
