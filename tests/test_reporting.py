"""Unit tests for repro.analysis.reporting."""

import pytest

from repro.analysis.reporting import (
    fmt_bytes,
    fmt_joules,
    fmt_seconds,
    fmt_si,
    orders_of_magnitude,
    render_distribution_table,
    render_series,
    render_table,
    summarize_distribution,
)


class TestFormatting:
    def test_fmt_si_large(self):
        assert fmt_si(12_300) == "12.3k"
        assert fmt_si(2_500_000) == "2.5M"
        assert fmt_si(3.2e9) == "3.2G"

    def test_fmt_si_small(self):
        assert fmt_si(0.0012, "s") == "1.2ms"
        assert fmt_si(4.5e-6, "J") == "4.5uJ"
        assert fmt_si(7e-10) == "700p"

    def test_fmt_si_unit_range(self):
        assert fmt_si(5.5) == "5.5"
        assert fmt_si(0) == "0"

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.00 KiB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.00 MiB"

    def test_fmt_seconds_joules(self):
        assert fmt_seconds(0.5) == "500ms"
        assert fmt_joules(2.0) == "2J"


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_table_title(self):
        out = render_table(["x"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_render_series_downsamples(self):
        xs = list(range(100))
        out = render_series("S", xs, {"y": xs}, max_points=10)
        lines = out.splitlines()
        assert len(lines) < 20
        assert "99" in out  # last point always included

    def test_render_series_empty(self):
        assert "empty" in render_series("S", [], {"y": []})


class TestDistributions:
    def test_summary_quartiles(self):
        s = summarize_distribution(list(range(1, 101)))
        assert s["min"] == 1 and s["max"] == 100
        assert s["median"] == pytest.approx(50.5)
        assert s["p25"] == pytest.approx(25.75)
        assert s["mean"] == pytest.approx(50.5)

    def test_summary_single_value(self):
        s = summarize_distribution([7])
        assert s["min"] == s["max"] == s["median"] == 7

    def test_summary_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_distribution([])

    def test_distribution_table(self):
        out = render_distribution_table("D", {"env": [1, 2, 3]})
        assert "env" in out and "median" in out


class TestOrders:
    def test_orders_of_magnitude(self):
        assert orders_of_magnitude(1000, 1) == pytest.approx(3.0)
        assert orders_of_magnitude(1, 100) == pytest.approx(-2.0)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            orders_of_magnitude(0, 1)
