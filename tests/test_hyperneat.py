"""Unit tests for the HyperNEAT/CPPN indirect encoding."""

import random

import pytest

from repro.neat import Genome, InnovationTracker
from repro.neat.hyperneat import (
    HyperNEATDecoder,
    Substrate,
    cppn_config,
    evolve_hyperneat,
)
from repro.neat.network import FeedForwardNetwork


@pytest.fixture
def substrate():
    return Substrate.grid(4, 2, num_hidden=3)


@pytest.fixture
def cppn_setup():
    config = cppn_config(pop_size=10)
    rng = random.Random(0)
    innovations = InnovationTracker(next_node_id=1)
    genome = Genome(0)
    genome.configure_new(config.genome, rng)
    for _ in range(8):
        genome.mutate(config.genome, rng, innovations)
    return config, genome


class TestSubstrate:
    def test_grid_layout(self, substrate):
        assert len(substrate.inputs) == 4
        assert len(substrate.outputs) == 2
        assert len(substrate.hidden) == 3
        assert all(n.y == -1.0 for n in substrate.inputs)
        assert all(n.y == 1.0 for n in substrate.outputs)
        assert all(n.y == 0.0 for n in substrate.hidden)

    def test_node_ids_follow_convention(self, substrate):
        assert [n.node_id for n in substrate.inputs] == [-1, -2, -3, -4]
        assert [n.node_id for n in substrate.outputs] == [0, 1]
        assert all(n.node_id >= 2 for n in substrate.hidden)

    def test_single_node_centered(self):
        sub = Substrate.grid(1, 1)
        assert sub.inputs[0].x == 0.0
        assert sub.outputs[0].x == 0.0

    def test_queries_feed_forward_only(self, substrate):
        for src, dst in substrate.connection_queries():
            assert src.y < dst.y

    def test_query_count(self, substrate):
        # in->hid (4*3) + hid->out (3*2) + in->out (4*2)
        assert len(substrate.connection_queries()) == 12 + 6 + 8

    def test_no_hidden_direct_connections(self):
        sub = Substrate.grid(3, 2, num_hidden=0)
        assert len(sub.connection_queries()) == 6


class TestCPPNConfig:
    def test_io_shape(self):
        config = cppn_config()
        assert config.genome.num_inputs == 4
        assert config.genome.num_outputs == 1

    def test_mixed_activations(self):
        config = cppn_config()
        assert "sin" in config.genome.activation_options
        assert "gauss" in config.genome.activation_options


class TestDecoder:
    def test_phenotype_valid(self, substrate, cppn_setup):
        config, cppn = cppn_setup
        decoder = HyperNEATDecoder(substrate, config.genome)
        phenotype = decoder.decode(cppn)
        phenotype.validate(substrate.phenotype_config)

    def test_phenotype_runs_on_network(self, substrate, cppn_setup):
        config, cppn = cppn_setup
        decoder = HyperNEATDecoder(substrate, config.genome)
        phenotype = decoder.decode(cppn)
        net = FeedForwardNetwork.create(phenotype, substrate.phenotype_config)
        out = net.activate([0.1, 0.2, 0.3, 0.4])
        assert len(out) == 2

    def test_weights_bounded(self, substrate, cppn_setup):
        config, cppn = cppn_setup
        decoder = HyperNEATDecoder(substrate, config.genome, weight_range=4.0)
        phenotype = decoder.decode(cppn)
        for conn in phenotype.connections.values():
            assert abs(conn.weight) <= 4.0

    def test_threshold_prunes_connections(self, substrate, cppn_setup):
        config, cppn = cppn_setup
        loose = HyperNEATDecoder(substrate, config.genome, expression_threshold=0.0)
        tight = HyperNEATDecoder(substrate, config.genome, expression_threshold=0.9)
        assert len(tight.decode(cppn).connections) <= len(
            loose.decode(cppn).connections
        )

    def test_decode_deterministic(self, substrate, cppn_setup):
        config, cppn = cppn_setup
        decoder = HyperNEATDecoder(substrate, config.genome)
        a = decoder.decode(cppn)
        b = decoder.decode(cppn)
        assert {k: c.weight for k, c in a.connections.items()} == {
            k: c.weight for k, c in b.connections.items()
        }

    def test_rejects_wrong_cppn_shape(self, substrate):
        from repro.neat import GenomeConfig

        with pytest.raises(ValueError):
            HyperNEATDecoder(substrate, GenomeConfig(num_inputs=2, num_outputs=1))

    def test_compression_ratio_on_large_substrate(self, cppn_setup):
        """The encoding-efficiency claim: phenotype genes >> CPPN genes."""
        config, cppn = cppn_setup
        big = Substrate.grid(32, 8, num_hidden=16)
        decoder = HyperNEATDecoder(big, config.genome, expression_threshold=0.05)
        ratio = decoder.compression_ratio(cppn)
        phenotype = decoder.decode(cppn)
        if phenotype.num_genes > 100:
            assert ratio > 2.0


class TestEvolveHyperNEAT:
    def test_end_to_end_improves(self):
        substrate = Substrate.grid(2, 1, num_hidden=2)

        def fitness(phenotype, config):
            net = FeedForwardNetwork.create(phenotype, config)
            target = [0.6, -0.2]
            error = 0.0
            for i, x in enumerate([[1.0, 0.0], [0.0, 1.0]]):
                error += (net.activate(x)[0] - target[i]) ** 2
            return -error

        best, population, decoder = evolve_hyperneat(
            substrate, fitness, generations=5, pop_size=20, seed=1
        )
        series = population.statistics.best_fitness_series()
        assert best.fitness == max(series)
        assert series[-1] >= series[0]
