"""Unit tests for ADAM, the systolic inference engine."""

import random

import numpy as np
import pytest

from repro.hw.adam import (
    ADAM,
    ADAMConfig,
    UnsupportedGenomeError,
    build_inference_plan,
)
from repro.neat import Genome, GenomeConfig, InnovationTracker
from repro.neat.network import FeedForwardNetwork


@pytest.fixture
def config():
    return GenomeConfig(num_inputs=4, num_outputs=2)


def make_genome(config, seed=0, mutations=30):
    rng = random.Random(seed)
    innovations = InnovationTracker(next_node_id=config.num_outputs)
    genome = Genome(0)
    genome.configure_new(config, rng)
    for _ in range(mutations):
        genome.mutate(config, rng, innovations)
    # ensure nonzero weights so outputs are interesting
    for conn in genome.connections.values():
        if conn.weight == 0.0:
            conn.weight = rng.uniform(-1, 1)
    return genome


class TestInferencePlan:
    def test_wave_structure(self, config):
        genome = make_genome(config)
        plan = build_inference_plan(genome, config)
        assert plan.waves
        seen = set(config.input_keys)
        for wave in plan.waves:
            for src in wave.source_ids:
                assert src in seen
            seen.update(wave.node_ids)
        for out in config.output_keys:
            assert out in seen

    def test_macs_count_enabled_connections_only(self, config):
        genome = make_genome(config, mutations=0)
        for i, conn in enumerate(genome.connections.values()):
            conn.weight = 1.0
            if i == 0:
                conn.enabled = False
        plan = build_inference_plan(genome, config)
        assert plan.macs_per_pass == len(genome.connections) - 1

    def test_non_sum_aggregation_rejected(self, config):
        genome = make_genome(config, mutations=0)
        genome.nodes[0].aggregation = "max"
        with pytest.raises(UnsupportedGenomeError):
            build_inference_plan(genome, config)

    def test_weight_words(self, config):
        genome = make_genome(config, mutations=0)
        plan = build_inference_plan(genome, config)
        # single wave, 2 outputs x 4 inputs dense
        assert plan.weight_words == 8


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_software_network(self, config, seed):
        genome = make_genome(config, seed=seed)
        net = FeedForwardNetwork.create(genome, config)
        plan = build_inference_plan(genome, config)
        adam = ADAM()
        rng = random.Random(seed)
        for _ in range(5):
            x = [rng.uniform(-2, 2) for _ in range(4)]
            assert np.allclose(net.activate(x), adam.run(plan, x), atol=1e-9)

    def test_wrong_input_count_raises(self, config):
        genome = make_genome(config)
        plan = build_inference_plan(genome, config)
        with pytest.raises(ValueError):
            ADAM().run(plan, [1.0])


class TestSystolicCycles:
    def test_single_tile(self):
        adam = ADAM(ADAMConfig(rows=32, cols=32))
        # m=4, k=8 -> one tile: min(32,8)+32 = 40
        assert adam.systolic_cycles(4, 8) == 40

    def test_row_tiling(self):
        adam = ADAM(ADAMConfig(rows=32, cols=32))
        assert adam.systolic_cycles(64, 8) == 2 * 40

    def test_col_tiling(self):
        adam = ADAM(ADAMConfig(rows=32, cols=32))
        assert adam.systolic_cycles(4, 64) == 2 * (32 + 32)

    def test_bigger_array_fewer_cycles_on_large_work(self):
        small = ADAM(ADAMConfig(rows=8, cols=8))
        large = ADAM(ADAMConfig(rows=32, cols=32))
        assert large.systolic_cycles(256, 256) < small.systolic_cycles(256, 256)
        assert large.config.num_macs == 1024


class TestStats:
    def test_stats_accumulate(self, config):
        genome = make_genome(config)
        plan = build_inference_plan(genome, config)
        adam = ADAM()
        adam.run(plan, [0.0] * 4)
        adam.run(plan, [1.0] * 4)
        assert adam.stats.passes == 2
        assert adam.stats.macs == 2 * plan.macs_per_pass
        assert adam.stats.array_cycles > 0
        assert adam.stats.vectorize_cycles > 0

    def test_utilization_bounds(self, config):
        genome = make_genome(config)
        plan = build_inference_plan(genome, config)
        adam = ADAM()
        adam.run(plan, [0.5] * 4)
        assert 0.0 <= adam.stats.utilization <= 1.0

    def test_denser_genome_higher_utilization(self, config):
        """Fig. 11(a) discussion: more connection genes -> denser matrices
        -> higher ADAM utilisation."""
        sparse = make_genome(config, mutations=0)
        for i, conn in enumerate(sparse.connections.values()):
            conn.enabled = i % 4 == 0
        dense = make_genome(config, mutations=0)
        for conn in dense.connections.values():
            conn.enabled = True
        u = {}
        for name, genome in [("sparse", sparse), ("dense", dense)]:
            adam = ADAM()
            adam.run(build_inference_plan(genome, config), [1.0] * 4)
            u[name] = adam.stats.utilization
        assert u["dense"] > u["sparse"]

    def test_reset_stats(self, config):
        genome = make_genome(config)
        plan = build_inference_plan(genome, config)
        adam = ADAM()
        adam.run(plan, [0.0] * 4)
        old = adam.reset_stats()
        assert old.passes == 1
        assert adam.stats.passes == 0

    def test_stats_merge(self):
        from repro.hw.adam import InferenceStats

        a = InferenceStats(passes=1, macs=10, dense_macs=20, array_cycles=5,
                           vectorize_cycles=3, waves=2)
        b = InferenceStats(passes=2, macs=30, dense_macs=40, array_cycles=7,
                           vectorize_cycles=1, waves=4)
        a.merge(b)
        assert a.passes == 3 and a.macs == 40
        assert a.total_cycles == 16
        assert a.utilization == pytest.approx(40 / 60)


class TestStackedAdamEnvelope:
    """The vectorised cost envelope must equal serial ADAM accounting
    exactly — it is what lets a whole generation be costed with array
    ops instead of per-(genome, step, wave) Python loops."""

    def test_charge_matches_serial_run_exactly(self, config):
        from dataclasses import astuple

        from repro.hw.adam import StackedAdamEnvelope

        adam_config = ADAMConfig(rows=8, cols=8)
        genomes = [make_genome(config, seed=s, mutations=10 * s) for s in range(6)]
        plans = [build_inference_plan(g, config) for g in genomes]
        passes = [3, 0, 1, 7, 2, 5]

        serial = ADAM(adam_config)
        for plan, count in zip(plans, passes):
            for _ in range(count):
                serial.run(plan, [0.5, -1.0, 2.0, 0.0])

        envelope = StackedAdamEnvelope(plans, adam_config)
        batched = ADAM(adam_config)
        envelope.charge(batched.stats, passes)
        assert astuple(batched.stats) == astuple(serial.stats)

    def test_per_pass_costs_match_systolic_formula(self, config):
        from repro.hw.adam import StackedAdamEnvelope

        adam_config = ADAMConfig(rows=4, cols=4)
        adam = ADAM(adam_config)
        plan = build_inference_plan(make_genome(config), config)
        envelope = StackedAdamEnvelope([plan], adam_config)
        expected_array = sum(
            adam.systolic_cycles(len(w.node_ids), len(w.source_ids))
            for w in plan.waves
        )
        assert envelope.array_cycles_per_pass[0] == expected_array
        assert envelope.vectorize_cycles_per_pass[0] == sum(
            len(w.source_ids) for w in plan.waves
        )
        assert envelope.macs_per_pass[0] == plan.macs_per_pass
        assert envelope.waves_per_pass[0] == len(plan.waves)

    def test_empty_and_ragged_populations(self, config):
        from repro.hw.adam import InferenceStats, StackedAdamEnvelope

        empty = StackedAdamEnvelope([])
        stats = InferenceStats()
        empty.charge(stats, [])
        assert stats.passes == 0
        # ragged depths pad with zero-cost slots
        shallow = build_inference_plan(make_genome(config, mutations=0), config)
        deep = build_inference_plan(make_genome(config, seed=2), config)
        envelope = StackedAdamEnvelope([shallow, deep])
        assert len(envelope) == 2
        with pytest.raises(ValueError, match="pass counts"):
            envelope.charge(InferenceStats(), [1])
