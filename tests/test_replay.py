"""Unit tests for the DQN replay memory."""

import numpy as np
import pytest

from repro.baselines.replay import ReplayMemory, Transition


def push_n(memory, n, dim=4):
    for i in range(n):
        state = np.full(dim, i, dtype=np.float32)
        memory.push(state, i % 2, float(i), state + 1, i % 5 == 0)


def test_push_and_len():
    memory = ReplayMemory(capacity=10, seed=0)
    push_n(memory, 5)
    assert len(memory) == 5


def test_ring_buffer_eviction():
    memory = ReplayMemory(capacity=3, seed=0)
    push_n(memory, 5)
    assert len(memory) == 3
    states = {t.state[0] for t in memory._buffer}
    assert states == {2.0, 3.0, 4.0}


def test_sample_size():
    memory = ReplayMemory(capacity=10, seed=0)
    push_n(memory, 10)
    batch = memory.sample(4)
    assert len(batch) == 4
    assert all(isinstance(t, Transition) for t in batch)


def test_sample_too_many_raises():
    memory = ReplayMemory(capacity=10, seed=0)
    push_n(memory, 2)
    with pytest.raises(ValueError):
        memory.sample(5)


def test_capacity_validation():
    with pytest.raises(ValueError):
        ReplayMemory(capacity=0)


def test_nbytes_accounting():
    memory = ReplayMemory(capacity=10, seed=0)
    push_n(memory, 4, dim=8)
    # each transition: 2 x 8 float32 + 17 bytes of scalars
    assert memory.nbytes == 4 * (2 * 8 * 4 + 17)


def test_states_stored_as_float32():
    memory = ReplayMemory(capacity=2, seed=0)
    memory.push(np.zeros(3, dtype=np.float64), 0, 0.0, np.zeros(3), False)
    assert memory._buffer[0].state.dtype == np.float32
