"""Unit tests for the repro.serve job store."""

import json

import pytest

from repro.api import ExperimentSpec
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    PREEMPTED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobRecord,
    JobStore,
    JobStoreError,
    UnknownJobError,
)


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "root")


def small_spec(**overrides):
    defaults = dict(
        env_id="CartPole-v0", max_generations=4, pop_size=12, seed=1,
        max_steps=40,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def test_submit_assigns_sequential_ids(store):
    first = store.submit(small_spec())
    second = store.submit(small_spec(seed=2))
    assert first.id == "job-000001"
    assert second.id == "job-000002"
    assert store.job_ids() == ["job-000001", "job-000002"]


def test_submit_accepts_spec_dict_and_round_trips(store):
    spec = small_spec()
    record = store.submit(spec.to_dict(), priority=7, checkpoint_every=3)
    loaded = store.load(record.id)
    assert loaded.spec_obj == spec
    assert loaded.priority == 7
    assert loaded.checkpoint_every == 3
    assert loaded.state == QUEUED
    assert loaded.attempts == 0


def test_submit_rejects_invalid_spec(store):
    with pytest.raises(JobStoreError, match="invalid job spec"):
        store.submit({"env_id": ""})
    with pytest.raises(JobStoreError, match="invalid job spec"):
        store.submit({"env_id": "CartPole-v0", "no_such_field": 1})


def test_submit_rejects_bad_knobs(store):
    with pytest.raises(JobStoreError, match="checkpoint_every"):
        store.submit(small_spec(), checkpoint_every=0)
    with pytest.raises(JobStoreError, match="max_retries"):
        store.submit(small_spec(), max_retries=-1)


def test_load_unknown_job(store):
    with pytest.raises(UnknownJobError, match="job-000099"):
        store.load("job-000099")


def test_transition_happy_path_and_events(store):
    record = store.submit(small_spec())
    store.transition(record.id, RUNNING, worker_pid=123)
    store.transition(record.id, PREEMPTED, generations_done=2)
    store.transition(record.id, RUNNING, event="resumed")
    store.transition(record.id, DONE, generations_done=4, converged=True)
    final = store.load(record.id)
    assert final.state == DONE
    assert final.generations_done == 4
    assert final.converged is True
    events = [row["event"] for row in store.read_events(record.id)]
    assert events == ["submitted", "running", "preempted", "resumed", "done"]


def test_transition_rejects_illegal_moves(store):
    record = store.submit(small_spec())
    with pytest.raises(JobStoreError, match="cannot go"):
        store.transition(record.id, DONE)  # queued -> done skips running
    store.transition(record.id, RUNNING)
    store.transition(record.id, DONE)
    for state in (QUEUED, RUNNING, PREEMPTED, FAILED, CANCELLED):
        with pytest.raises(JobStoreError, match="cannot go"):
            store.transition(record.id, state)


def test_transition_rejects_unknown_state_and_field(store):
    record = store.submit(small_spec())
    with pytest.raises(JobStoreError, match="unknown job state"):
        store.transition(record.id, "paused")
    with pytest.raises(JobStoreError, match="unknown job record field"):
        store.transition(record.id, RUNNING, nonsense=1)


def test_preempt_and_cancel_flags(store):
    record = store.submit(small_spec())
    assert not store.preempt_requested(record.id)
    store.request_preempt(record.id)
    assert store.preempt_requested(record.id)
    store.clear_preempt(record.id)
    store.clear_preempt(record.id)  # idempotent
    assert not store.preempt_requested(record.id)
    with pytest.raises(UnknownJobError):
        store.request_preempt("job-000042")


def test_cancel_waiting_job_is_immediate(store):
    record = store.submit(small_spec())
    cancelled = store.request_cancel(record.id)
    assert cancelled.state == CANCELLED
    assert CANCELLED in TERMINAL_STATES
    # cancelling again is a no-op, not an error
    assert store.request_cancel(record.id).state == CANCELLED


def test_cancel_running_job_sets_flag(store):
    record = store.submit(small_spec())
    store.transition(record.id, RUNNING)
    after = store.request_cancel(record.id)
    assert after.state == RUNNING  # worker honours the flag later
    assert store.cancel_requested(record.id)
    events = [row["event"] for row in store.read_events(record.id)]
    assert "cancel_requested" in events


def test_record_round_trip_rejects_unknown_fields():
    with pytest.raises(JobStoreError, match="unknown job record fields"):
        JobRecord.from_dict({"id": "job-000001", "spec": {}, "bogus": 1})


def test_preemptible_excludes_soc_backend(store):
    soft = store.submit(small_spec())
    soc = store.submit(small_spec(backend="soc"))
    assert soft.preemptible
    assert not soc.preemptible


def test_describe_reports_progress(store):
    record = store.submit(small_spec())
    payload = store.describe(record.id)
    assert payload["id"] == record.id
    assert payload["state"] == QUEUED
    assert payload["metrics_rows"] == 0
    assert payload["checkpointed_generation"] is None
    assert payload["complete"] is False
    rd = store.run_dir(record.id)
    rd.create()
    rd.append_metrics({"generation": 0, "best_fitness": 12.5})
    payload = store.describe(record.id)
    assert payload["metrics_rows"] == 1
    assert payload["best_fitness"] == 12.5


def test_job_json_is_valid_json_on_disk(store):
    record = store.submit(small_spec())
    raw = json.loads(store.record_path(record.id).read_text())
    assert raw["state"] == QUEUED
    assert raw["format"] == 1
