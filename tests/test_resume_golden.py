"""Golden resume determinism: interrupted + resumed ≡ uninterrupted.

The checkpoint/resume contract (docs/runs.md): a CartPole run killed at
generation *k* and resumed via ``repro run --resume`` produces a
``metrics.jsonl``, a ``champion.json``, a checkpoint set and a fitness
trajectory **byte-identical** to the run that was never interrupted —
for the serial, ``workers=2`` pooled and ``vectorizer="numpy"``
vectorized evaluation paths.

These tests compare raw file bytes, not parsed values: any drift in
float formatting, row ordering or key sets is a contract break too.
"""

from pathlib import Path

import pytest

from repro.api import ExperimentSpec
from repro.runs import RunDir, resume_run, run_in_dir

PATHS = {
    "serial": {},
    "vectorized": {"vectorizer": "numpy"},
    "workers2": {"workers": 2},
}

#: Artifacts whose bytes must match between the two runs.
COMPARED_FILES = ("metrics.jsonl", "champion.json", "spec.json")


def cartpole_spec(**overrides):
    base = dict(
        env_id="CartPole-v0", max_generations=6, pop_size=14,
        max_steps=40, seed=3, episodes=2,
        # Unreachable threshold: both runs must go the full budget, so
        # the comparison covers every generation.
        fitness_threshold=1e9,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


class Interrupt(RuntimeError):
    pass


def kill_at(generation):
    def observer(metrics):
        if metrics.generation == generation:
            raise Interrupt
    return observer


def assert_dirs_identical(resumed: Path, reference: Path):
    for name in COMPARED_FILES:
        assert (resumed / name).read_bytes() == (reference / name).read_bytes(), (
            f"{name} diverged between resumed and uninterrupted runs"
        )
    resumed_ckpts = sorted(p.name for p in (resumed / "checkpoints").iterdir())
    reference_ckpts = sorted(
        p.name for p in (reference / "checkpoints").iterdir()
    )
    assert resumed_ckpts == reference_ckpts, "checkpoint sets diverged"
    for name in resumed_ckpts:
        assert (
            (resumed / "checkpoints" / name).read_bytes()
            == (reference / "checkpoints" / name).read_bytes()
        ), f"checkpoint {name} diverged"


def run_interrupted_and_reference(tmp_path, spec, kill_generation):
    reference = tmp_path / "reference"
    run_in_dir(spec, reference, checkpoint_every=2)
    resumed = tmp_path / "resumed"
    with pytest.raises(Interrupt):
        run_in_dir(spec, resumed, checkpoint_every=2,
                   on_generation=kill_at(kill_generation))
    result = resume_run(resumed)
    return resumed, reference, result


@pytest.mark.parametrize("path_name", ["serial", "vectorized"])
def test_resume_bit_identical(tmp_path, path_name):
    spec = cartpole_spec(**PATHS[path_name])
    resumed, reference, result = run_interrupted_and_reference(
        tmp_path, spec, kill_generation=3
    )
    assert_dirs_identical(resumed, reference)
    assert result.generations == spec.max_generations
    assert [m.generation for m in result.metrics] == list(
        range(spec.max_generations)
    )


@pytest.mark.slow
def test_resume_bit_identical_pooled(tmp_path):
    """workers=2: the pool is rebuilt on resume, seeds must not care."""
    spec = cartpole_spec(**PATHS["workers2"])
    resumed, reference, _ = run_interrupted_and_reference(
        tmp_path, spec, kill_generation=3
    )
    assert_dirs_identical(resumed, reference)


@pytest.mark.slow
def test_resume_bit_identical_pooled_vectorized(tmp_path):
    spec = cartpole_spec(workers=2, vectorizer="numpy")
    resumed, reference, _ = run_interrupted_and_reference(
        tmp_path, spec, kill_generation=2
    )
    assert_dirs_identical(resumed, reference)


@pytest.mark.parametrize("kill_generation", [1, 4])
def test_resume_bit_identical_any_kill_point(tmp_path, kill_generation):
    """Kill before the first checkpoint and between later ones; both
    resume paths (full restart vs checkpoint restore) must converge on
    the same bytes."""
    spec = cartpole_spec()
    resumed, reference, _ = run_interrupted_and_reference(
        tmp_path, spec, kill_generation=kill_generation
    )
    assert_dirs_identical(resumed, reference)


def test_double_interruption(tmp_path):
    """Two kills at different generations, two resumes — still identical."""
    spec = cartpole_spec()
    reference = tmp_path / "reference"
    run_in_dir(spec, reference, checkpoint_every=2)
    resumed = tmp_path / "resumed"
    with pytest.raises(Interrupt):
        run_in_dir(spec, resumed, checkpoint_every=2,
                   on_generation=kill_at(2))
    with pytest.raises(Interrupt):
        resume_run(resumed, on_generation=kill_at(4))
    resume_run(resumed)
    assert_dirs_identical(resumed, reference)


def test_analytical_resume_bit_identical(tmp_path):
    """The analytical backend's modelled energy/runtime metrics resume
    exactly too (they depend on the reproduction plan the checkpoint
    carries)."""
    spec = cartpole_spec(backend="analytical:GENESYS", max_generations=5)
    resumed, reference, result = run_interrupted_and_reference(
        tmp_path, spec, kill_generation=2
    )
    assert_dirs_identical(resumed, reference)
    reference_summary = RunDir(reference).load_result()
    assert result.total_energy_j == pytest.approx(
        reference_summary["total_energy_j"], abs=0, rel=0
    )


def test_analytical_resume_totals_cover_full_run(tmp_path):
    """A resumed analytical run must report *full-run* totals.

    ``AnalyticalBackend.run`` sums only the in-memory ``loop.metrics`` —
    after a resume those start at the checkpoint, so the runs layer
    splices the pre-interruption rows back in from ``metrics.jsonl`` and
    re-derives the totals.  Pin that contract: the resumed result (both
    the returned object and the persisted ``result.json``) totals every
    generation, equal to the uninterrupted run and to the metrics file
    sum, exactly.
    """
    spec = cartpole_spec(backend="analytical:GENESYS")
    resumed, reference, result = run_interrupted_and_reference(
        tmp_path, spec, kill_generation=3
    )
    rows = RunDir(resumed).read_metrics()
    assert [row["generation"] for row in rows] == list(
        range(spec.max_generations)
    )
    assert result.total_energy_j == sum(row["energy_j"] for row in rows)
    assert result.total_runtime_s == sum(row["runtime_s"] for row in rows)
    persisted = RunDir(resumed).load_result()
    reference_summary = RunDir(reference).load_result()
    assert persisted["total_energy_j"] == reference_summary["total_energy_j"]
    assert persisted["total_runtime_s"] == reference_summary["total_runtime_s"]
