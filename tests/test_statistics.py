"""Unit tests for repro.neat.statistics."""

import random

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome, MutationCounts
from repro.neat.reproduction import ReproductionEvent, ReproductionPlan
from repro.neat.statistics import GENE_BYTES, StatisticsReporter


@pytest.fixture
def population():
    config = NEATConfig.for_env(2, 1, pop_size=4)
    rng = random.Random(0)
    pop = {}
    for key in range(4):
        g = Genome(key)
        g.configure_new(config.genome, rng)
        g.fitness = float(key)
        pop[key] = g
    return pop


def make_plan():
    plan = ReproductionPlan(generation=0)
    event = ReproductionEvent(10, 3, 2, 1)
    event.counts = MutationCounts(crossovers=5, perturbations=3, node_additions=1)
    plan.events.append(event)
    return plan


def test_record_basic_fields(population):
    reporter = StatisticsReporter()
    stats = reporter.record(0, population, num_species=2, plan=make_plan())
    assert stats.best_fitness == 3.0
    assert stats.mean_fitness == pytest.approx(1.5)
    assert stats.num_species == 2
    assert stats.population_size == 4


def test_gene_and_footprint_accounting(population):
    reporter = StatisticsReporter()
    stats = reporter.record(0, population, 1, None)
    expected_genes = sum(g.num_genes for g in population.values())
    assert stats.num_genes == expected_genes
    assert stats.memory_footprint_bytes == expected_genes * GENE_BYTES


def test_ops_from_plan(population):
    reporter = StatisticsReporter()
    stats = reporter.record(0, population, 1, make_plan())
    assert stats.ops.crossovers == 5
    assert stats.ops.total == 9


def test_reuse_from_plan(population):
    reporter = StatisticsReporter()
    stats = reporter.record(0, population, 1, make_plan())
    # fittest parent among users is genome 3
    assert stats.fittest_parent_reuse == 1


def test_best_genome_tracked_across_generations(population):
    reporter = StatisticsReporter()
    reporter.record(0, population, 1, None)
    first_best = reporter.best_genome.fitness
    population[0].fitness = 100.0
    reporter.record(1, population, 1, None)
    assert reporter.best_genome.fitness == 100.0 > first_best


def test_series_accessors(population):
    reporter = StatisticsReporter()
    for gen in range(3):
        reporter.record(gen, population, 1, None)
    assert len(reporter.best_fitness_series()) == 3
    assert len(reporter.gene_count_series()) == 3
    assert len(reporter.footprint_series()) == 3
    assert len(reporter.ops_series()) == 3
    assert len(reporter.reuse_series()) == 3


def test_composition(population):
    reporter = StatisticsReporter()
    reporter.record(0, population, 1, None)
    comp = reporter.composition()
    assert comp["nodes"] == sum(len(g.nodes) for g in population.values())
    assert comp["connections"] == sum(
        len(g.connections) for g in population.values()
    )


def test_composition_empty():
    reporter = StatisticsReporter()
    assert reporter.composition() == {"nodes": 0, "connections": 0}


def test_mutation_counts_merge():
    a = MutationCounts(crossovers=1, perturbations=2)
    b = MutationCounts(crossovers=3, conn_additions=4)
    a.merge(b)
    assert a.crossovers == 4
    assert a.perturbations == 2
    assert a.conn_additions == 4
    assert a.total == 10
