"""Unit tests for repro.neat.reproduction."""

import random

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.reproduction import (
    CompleteExtinctionError,
    Reproduction,
    ReproductionEvent,
    ReproductionPlan,
)
from repro.neat.species import SpeciesSet


@pytest.fixture
def config():
    return NEATConfig.for_env(2, 1, pop_size=20)


@pytest.fixture
def setup(config):
    rng = random.Random(11)
    innovations = InnovationTracker(next_node_id=1)
    repro = Reproduction(config, innovations)
    population = repro.create_initial_population(rng)
    for i, genome in enumerate(population.values()):
        genome.fitness = float(i)
    species_set = SpeciesSet(config)
    species_set.speciate(population, 0)
    species_set.adjust_fitnesses(0)
    return rng, repro, population, species_set


class TestSpawnCounts:
    def test_total_matches_pop_size(self):
        counts = Reproduction.compute_spawn_counts([1.0, 2.0, 3.0], [5, 5, 5], 30, 2)
        assert sum(counts) == 30

    def test_fitter_species_get_more(self):
        counts = Reproduction.compute_spawn_counts([0.1, 5.0], [10, 10], 20, 2)
        assert counts[1] > counts[0]

    def test_min_size_respected(self):
        counts = Reproduction.compute_spawn_counts([0.0, 10.0], [10, 10], 20, 2)
        assert all(c >= 2 for c in counts)

    def test_single_species_gets_everything(self):
        assert Reproduction.compute_spawn_counts([3.0], [20], 20, 2) == [20]


class TestInitialPopulation:
    def test_size_and_keys(self, config):
        rng = random.Random(0)
        repro = Reproduction(config, InnovationTracker(1))
        population = repro.create_initial_population(rng)
        assert len(population) == config.pop_size
        assert all(k == g.key for k, g in population.items())

    def test_genomes_valid(self, config):
        rng = random.Random(0)
        repro = Reproduction(config, InnovationTracker(1))
        for genome in repro.create_initial_population(rng).values():
            genome.validate(config.genome)


class TestReproduce:
    def test_next_generation_size(self, setup, config):
        rng, repro, population, species_set = setup
        new_pop, plan = repro.reproduce(species_set, 0, rng)
        assert len(new_pop) == config.pop_size

    def test_new_keys_do_not_collide(self, setup):
        rng, repro, population, species_set = setup
        new_pop, _plan = repro.reproduce(species_set, 0, rng)
        assert not (set(new_pop) & set(population))

    def test_elites_preserved_exactly(self, setup, config):
        rng, repro, population, species_set = setup
        best = max(population.values(), key=lambda g: g.fitness)
        new_pop, plan = repro.reproduce(species_set, 0, rng)
        assert plan.elite_keys, "elitism should copy at least one genome"
        old_key, new_key = plan.elite_keys[0]
        assert old_key == best.key
        clone = new_pop[new_key]
        assert set(clone.connections) == set(best.connections)

    def test_children_are_valid(self, setup, config):
        rng, repro, population, species_set = setup
        new_pop, _plan = repro.reproduce(species_set, 0, rng)
        for genome in new_pop.values():
            genome.validate(config.genome)

    def test_plan_events_cover_non_elites(self, setup, config):
        rng, repro, population, species_set = setup
        new_pop, plan = repro.reproduce(species_set, 0, rng)
        assert len(plan.events) + len(plan.elite_keys) == len(new_pop)

    def test_parents_are_fit_members(self, setup, config):
        rng, repro, population, species_set = setup
        _new_pop, plan = repro.reproduce(species_set, 0, rng)
        fitnesses = {k: g.fitness for k, g in population.items()}
        cutoff_fitness = sorted(fitnesses.values())[int(len(fitnesses) * 0.4)]
        for event in plan.events:
            assert fitnesses[event.parent1_key] >= cutoff_fitness - 1e-9

    def test_ops_counted(self, setup):
        rng, repro, population, species_set = setup
        _new_pop, plan = repro.reproduce(species_set, 0, rng)
        total = plan.total_counts
        assert total.crossovers > 0
        assert total.total >= total.crossovers


class TestPlanGeneration:
    def test_plan_matches_reproduce_shape(self, setup, config):
        rng, repro, population, species_set = setup
        plan = repro.plan_generation(species_set, 0, rng)
        assert plan is not None
        assert len(plan.events) + len(plan.elite_keys) == config.pop_size

    def test_plan_events_have_no_ops(self, setup):
        rng, repro, population, species_set = setup
        plan = repro.plan_generation(species_set, 0, rng)
        assert plan.total_counts.total == 0

    def test_plan_parent_keys_resident(self, setup):
        rng, repro, population, species_set = setup
        plan = repro.plan_generation(species_set, 0, rng)
        for event in plan.events:
            assert event.parent1_key in population
            assert event.parent2_key in population


class TestReproductionPlanStats:
    def test_parent_usage(self):
        plan = ReproductionPlan(generation=0)
        plan.events = [
            ReproductionEvent(10, 1, 2, 1),
            ReproductionEvent(11, 1, 1, 1),
            ReproductionEvent(12, 1, 3, 1),
        ]
        usage = plan.parent_usage()
        assert usage[1] == 3
        assert usage[2] == 1
        assert usage[3] == 1

    def test_fittest_parent_reuse(self):
        plan = ReproductionPlan(generation=0)
        plan.events = [
            ReproductionEvent(10, 1, 2, 1),
            ReproductionEvent(11, 2, 2, 1),
        ]
        reuse = plan.fittest_parent_reuse({1: 5.0, 2: 9.0})
        assert reuse == 2

    def test_is_clone(self):
        assert ReproductionEvent(1, 2, 2, 1).is_clone
        assert not ReproductionEvent(1, 2, 3, 1).is_clone


class TestExtinction:
    def test_reset_on_extinction(self, config):
        config.species.max_stagnation = 1
        config.species.species_elitism = 0
        rng = random.Random(0)
        repro = Reproduction(config, InnovationTracker(1))
        population = repro.create_initial_population(rng)
        for g in population.values():
            g.fitness = 1.0  # flat fitness forever -> stagnation
        species_set = SpeciesSet(config)
        for gen in range(4):
            species_set.speciate(population, gen)
            species_set.adjust_fitnesses(gen)
            population, plan = repro.reproduce(species_set, gen, rng)
            for g in population.values():
                g.fitness = 1.0
        # population was reset at some point rather than dying
        assert len(population) == config.pop_size

    def test_extinction_raises_when_disabled(self, config):
        config.reset_on_extinction = False
        config.species.max_stagnation = 1
        config.species.species_elitism = 0
        rng = random.Random(0)
        repro = Reproduction(config, InnovationTracker(1))
        population = repro.create_initial_population(rng)
        for g in population.values():
            g.fitness = 1.0
        species_set = SpeciesSet(config)
        with pytest.raises(CompleteExtinctionError):
            for gen in range(6):
                species_set.speciate(population, gen)
                species_set.adjust_fitnesses(gen)
                population, _ = repro.reproduce(species_set, gen, rng)
                for g in population.values():
                    g.fitness = 1.0
