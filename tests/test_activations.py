"""Unit tests for repro.neat.activations."""

import math

import pytest

from repro.neat.activations import (
    ACTIVATION_CODES,
    ACTIVATION_NAMES,
    ActivationFunctionSet,
    InvalidActivationError,
    clamped_activation,
    gauss_activation,
    identity_activation,
    relu_activation,
    sigmoid_activation,
    tanh_activation,
)


@pytest.fixture
def functions():
    return ActivationFunctionSet()


def test_sigmoid_range(functions):
    for z in (-100.0, -1.0, 0.0, 1.0, 100.0):
        assert 0.0 <= sigmoid_activation(z) <= 1.0


def test_sigmoid_midpoint():
    assert sigmoid_activation(0.0) == pytest.approx(0.5)


def test_sigmoid_is_steepened():
    # NEAT's sigmoid uses slope 4.9-ish; at z=1 it should be near saturated.
    assert sigmoid_activation(1.0) > 0.99


def test_tanh_symmetry():
    assert tanh_activation(0.7) == pytest.approx(-tanh_activation(-0.7))


def test_relu():
    assert relu_activation(-3.0) == 0.0
    assert relu_activation(4.5) == 4.5


def test_clamped():
    assert clamped_activation(-9.0) == -1.0
    assert clamped_activation(0.25) == 0.25
    assert clamped_activation(9.0) == 1.0


def test_gauss_peak_at_zero():
    assert gauss_activation(0.0) == pytest.approx(1.0)
    assert gauss_activation(2.0) < gauss_activation(0.0)


def test_identity():
    assert identity_activation(3.3) == 3.3


def test_no_overflow_on_extreme_inputs(functions):
    for name in functions.names():
        fn = functions.get(name)
        for z in (-1e9, -60.0, 0.0, 60.0, 1e9):
            value = fn(z)
            assert math.isfinite(value), f"{name}({z}) not finite"


def test_registry_contains_builtins(functions):
    for name in ("sigmoid", "tanh", "relu", "identity"):
        assert name in functions


def test_registry_get_unknown_raises(functions):
    with pytest.raises(InvalidActivationError):
        functions.get("definitely-not-registered")


def test_registry_add_custom(functions):
    functions.add("double", lambda z: 2 * z)
    assert functions.get("double")(2.0) == 4.0
    assert functions.is_valid("double")


def test_registry_add_non_callable_raises(functions):
    with pytest.raises(TypeError):
        functions.add("bad", 42)


def test_codes_are_stable_and_bijective():
    assert len(ACTIVATION_CODES) == len(ACTIVATION_NAMES)
    for name, code in ACTIVATION_CODES.items():
        assert ACTIVATION_NAMES[code] == name
    # codes must fit the 4-bit hardware field (Fig. 6)
    assert max(ACTIVATION_CODES.values()) < 16


def test_registry_len_matches_codes(functions):
    assert len(functions) == len(ACTIVATION_CODES)
