"""Unit tests for the characterisation / reuse / footprint analyses."""

import pytest

from repro.analysis.characterization import characterise_env, record_workload
from repro.analysis.footprint import footprint_report, genes_to_bytes
from repro.analysis.reuse import reuse_stats
from repro.hw.sram import SRAMConfig
from repro.neat.reproduction import ReproductionEvent, ReproductionPlan


@pytest.fixture(scope="module")
def cartpole_char():
    return characterise_env(
        "CartPole-v0", runs=2, generations=6, pop_size=20, base_seed=0,
        max_steps=80,
    )


class TestCharacterisation:
    def test_runs_recorded(self, cartpole_char):
        assert len(cartpole_char.runs) == 2
        for run in cartpole_char.runs:
            assert run.generations >= 1
            assert len(run.num_genes) == run.generations

    def test_normalised_fitness_in_unit_range(self, cartpole_char):
        for curve in cartpole_char.normalised_fitness_curves():
            assert all(0.0 <= v <= 1.0 for v in curve)

    def test_mean_fitness_curve_length(self, cartpole_char):
        mean_curve = cartpole_char.mean_normalised_fitness()
        assert len(mean_curve) == max(r.generations for r in cartpole_char.runs)

    def test_gene_series_positive(self, cartpole_char):
        series = cartpole_char.gene_count_series()
        assert all(v > 0 for v in series)

    def test_ops_distribution_nonempty(self, cartpole_char):
        assert cartpole_char.ops_distribution()

    def test_footprint_under_sram(self, cartpole_char):
        # Section III-D1: generations fit in the 1.5 MB genome buffer.
        assert max(cartpole_char.footprint_distribution()) < 1.5 * 1024 * 1024

    def test_composition_sums_to_genes(self, cartpole_char):
        comp = cartpole_char.composition()
        assert comp["nodes"] > 0 and comp["connections"] > 0

    def test_convergence_tracked(self, cartpole_char):
        assert len(cartpole_char.convergence_generations()) == 2


class TestRecordWorkload:
    def test_workloads(self):
        trace = record_workload(
            "MountainCar-v0", generations=2, pop_size=15, max_steps=50, seed=1
        )
        assert trace.generations == 2
        assert trace.workloads[0].population == 15


class TestReuse:
    def make_plan(self):
        plan = ReproductionPlan(generation=3)
        plan.events = [
            ReproductionEvent(10, 1, 2, 1),
            ReproductionEvent(11, 1, 3, 1),
            ReproductionEvent(12, 1, 1, 1),
            ReproductionEvent(13, 4, 5, 1),
        ]
        return plan

    def test_reuse_stats(self):
        stats = reuse_stats(self.make_plan(), {1: 9.0, 2: 1.0, 3: 1.0, 4: 5.0, 5: 2.0})
        assert stats.fittest_parent_reuse == 3
        assert stats.max_parent_reuse == 3
        assert stats.children == 4
        assert stats.distinct_parents == 5
        assert stats.read_savings_factor == pytest.approx(2 * 4 / 5)

    def test_empty_plan(self):
        stats = reuse_stats(ReproductionPlan(generation=0), {})
        assert stats.fittest_parent_reuse == 0
        assert stats.read_savings_factor == 1.0


class TestFootprint:
    def test_genes_to_bytes(self):
        assert genes_to_bytes(1000) == 8000

    def test_report_fits_on_chip(self):
        trace = record_workload(
            "CartPole-v0", generations=2, pop_size=10, max_steps=40, seed=0
        )
        report = footprint_report("CartPole-v0", trace.workloads)
        assert report.fits_on_chip
        assert 0.0 < report.occupancy < 1.0
        assert report.max_bytes >= report.mean_bytes

    def test_report_overflow_detection(self):
        trace = record_workload(
            "CartPole-v0", generations=1, pop_size=10, max_steps=40, seed=0
        )
        tiny = SRAMConfig(num_banks=1, bank_depth=8)
        report = footprint_report("CartPole-v0", trace.workloads, sram=tiny)
        assert not report.fits_on_chip
