"""Integration tests: whole-system behaviour across modules.

These exercise the paper's end-to-end claims: NEAT converges on the gym
suite (Section III-B robustness), the hardware path is functionally
faithful, and software/hardware loops agree qualitatively.
"""

import numpy as np
import pytest

from repro.core import (
    GeneSysConfig,
    GeneSysSoC,
    TraceRecorder,
    config_for_env,
    evolve_on_hardware,
    evolve_software,
)
from repro.envs import EVALUATION_SUITE, make
from repro.hw import (
    ADAM,
    EvEConfig,
    build_inference_plan,
    decode_genome,
    encode_genome,
    quantize_genome,
)
from repro.neat.network import FeedForwardNetwork

# Whole-system runs dominate suite wall time; the quick CI matrix skips
# them with -m "not slow" (the coverage job and tier-1 still run them).
pytestmark = pytest.mark.slow


class TestSoftwareConvergence:
    """Section III-B: 'All environments reached the target fitness'.

    Full convergence of every env is too slow for CI; CartPole converges
    reliably and fast, and for the rest we assert monotone learning
    progress over a short budget.
    """

    def test_cartpole_reaches_target(self):
        result = evolve_software(
            "CartPole-v0", max_generations=20, pop_size=50, episodes=2, seed=0
        )
        assert result.converged

    @pytest.mark.parametrize(
        "env_id", ["MountainCar-v0", "LunarLander-v2", "Asterix-ram-v0"]
    )
    def test_learning_progress(self, env_id):
        result = evolve_software(
            env_id,
            max_generations=8,
            pop_size=30,
            episodes=1,
            seed=1,
            max_steps=120,
            fitness_threshold=1e9,  # never stop early
        )
        series = result.population.statistics.best_fitness_series()
        assert max(series) >= series[0]  # never worse than generation 0
        assert result.generations == 8

    def test_same_codebase_different_fitness_function(self):
        """The paper's robustness claim: identical algorithm, only the
        environment/fitness changes."""
        for env_id in ("CartPole-v0", "MountainCar-v0"):
            result = evolve_software(
                env_id, max_generations=2, pop_size=15, seed=0, max_steps=50,
                fitness_threshold=1e9,
            )
            assert result.generations == 2


class TestHardwareFidelity:
    def test_encode_decode_identity_over_evolution(self):
        """Every genome of a real evolved population round-trips through
        the 64-bit encoding with only Q4.4 attribute loss."""
        result = evolve_software(
            "MountainCar-v0", max_generations=4, pop_size=20, seed=3,
            max_steps=60, fitness_threshold=1e9,
        )
        config = result.population.config.genome
        for genome in result.population.population.values():
            decoded = decode_genome(encode_genome(genome, config), genome.key, config)
            assert set(decoded.nodes) == set(genome.nodes)
            assert set(decoded.connections) == set(genome.connections)

    def test_adam_equals_software_on_evolved_population(self):
        result = evolve_software(
            "CartPole-v0", max_generations=5, pop_size=20, seed=4, max_steps=60,
            fitness_threshold=1e9,
        )
        config = result.population.config.genome
        env = make("CartPole-v0", seed=0)
        obs = env.reset()
        for genome in list(result.population.population.values())[:10]:
            net = FeedForwardNetwork.create(genome, config)
            plan = build_inference_plan(genome, config)
            adam = ADAM()
            assert np.allclose(
                net.activate(obs.tolist()), adam.run(plan, obs.tolist()), atol=1e-9
            )

    def test_quantised_genome_behaviour_close(self):
        """Q4.4 quantisation ('Limit & Quantize') perturbs the phenotype
        only mildly: outputs stay within the quantisation error envelope."""
        result = evolve_software(
            "CartPole-v0", max_generations=6, pop_size=30, seed=5, max_steps=80
        )
        config = result.population.config.genome
        genome = result.best_genome
        quantised = quantize_genome(genome, config)
        net_f = FeedForwardNetwork.create(genome, config)
        net_q = FeedForwardNetwork.create(quantised, config)
        rng = np.random.default_rng(0)
        diffs = []
        for _ in range(20):
            x = rng.uniform(-1, 1, size=4).tolist()
            diffs.append(abs(net_f.activate(x)[0] - net_q.activate(x)[0]))
        assert np.mean(diffs) < 0.5

    def test_hardware_loop_learns_cartpole(self):
        result = evolve_on_hardware(
            "CartPole-v0", max_generations=15, pop_size=40, seed=1
        )
        assert result.best_genome.fitness >= 100.0

    def test_hw_and_sw_loops_comparable_quality(self):
        """HW reproduction (quantised, own PRNG) should reach a best
        fitness in the same league as software NEAT on CartPole."""
        sw = evolve_software("CartPole-v0", max_generations=10, pop_size=30, seed=7)
        hw = evolve_on_hardware("CartPole-v0", max_generations=10, pop_size=30, seed=7)
        assert hw.best_genome.fitness >= 0.3 * sw.best_genome.fitness


class TestWorkloadClasses:
    def test_atari_class_heavier_than_classic(self):
        """Fig. 5(a): Atari workloads are ~2 orders heavier in ops and
        genes than classic control."""
        classic = TraceRecorder(
            "CartPole-v0", pop_size=20, seed=0, max_steps=40
        ).record(3).mean_workload()
        atari = TraceRecorder(
            "Alien-ram-v0", pop_size=20, seed=0, max_steps=40
        ).record(3).mean_workload()
        assert atari.total_genes > 10 * classic.total_genes
        assert atari.evolution_ops > 5 * classic.evolution_ops

    def test_all_suite_envs_trace(self):
        for env_id in EVALUATION_SUITE:
            trace = TraceRecorder(env_id, pop_size=10, seed=0, max_steps=20).record(2)
            assert trace.generations == 2


class TestSoCAccountingConsistency:
    def test_energy_components_match_counters(self):
        neat = config_for_env("CartPole-v0", pop_size=12)
        config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=4), seed=0)
        soc = GeneSysSoC(config, "CartPole-v0", max_steps=40)
        report = soc.run_generation()
        ledger = report.energy
        assert ledger.adam_macs == report.inference.macs
        assert ledger.eve_pe_cycles == report.evolution.pe_stats.busy_cycles
        assert ledger.total_energy_j == pytest.approx(
            sum(v for k, v in ledger.as_dict().items() if k != "total")
        )

    def test_sram_accesses_cover_reads_and_writes(self):
        neat = config_for_env("CartPole-v0", pop_size=12)
        config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=4), seed=0)
        soc = GeneSysSoC(config, "CartPole-v0", max_steps=40)
        report = soc.run_generation()
        assert report.energy.sram_reads > 0
        assert report.energy.sram_writes > 0
