"""Unit tests for the scenario spec layer: ScenarioSpec + curriculum +
registry + the embedded-scenario contract on ExperimentSpec.

Mirrors ``tests/test_platform_spec.py``: validation, JSON round-trip,
content-key properties (hypothesis), and golden pinning that a spec
*without* a scenario block serializes — and cache-keys — byte-identically
to every earlier release.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExperimentSpec, SpecError
from repro.dse import SweepSpec, SweepSpecError
from repro.dse.cache import spec_key
from repro.scenarios import (
    CurriculumController,
    CurriculumSchedule,
    PerturbationSpec,
    ScenarioSpec,
    ScenarioSpecError,
    UnknownScenarioError,
    as_scenario_spec,
    get_scenario,
    register_scenario,
    registered_scenarios,
    scenario_names,
    unregister_scenario,
)

SMALL = dict(max_generations=2, pop_size=10, max_steps=30, seed=0)


# ---------------------------------------------------------------------------
# spec validation


class TestSpecValidation:
    def test_unknown_env(self):
        with pytest.raises(ScenarioSpecError, match="unknown environment"):
            ScenarioSpec(env_id="Pong-v0")

    def test_unknown_tunable_param(self):
        with pytest.raises(ScenarioSpecError, match="no tunable parameter"):
            ScenarioSpec(env_id="CartPole-v0", params={"warp": 9})

    def test_non_numeric_param(self):
        with pytest.raises(ScenarioSpecError, match="must be a number"):
            ScenarioSpec(env_id="CartPole-v0", params={"length": "long"})
        with pytest.raises(ScenarioSpecError, match="must be a number"):
            ScenarioSpec(env_id="CartPole-v0", params={"length": True})

    def test_unknown_perturbation_kind(self):
        with pytest.raises(ScenarioSpecError, match="unknown perturbation"):
            ScenarioSpec(
                env_id="CartPole-v0",
                perturbations=[{"kind": "earthquake"}],
            )

    def test_perturbation_param_ranges(self):
        with pytest.raises(ScenarioSpecError, match=r"\[0, 1\]"):
            PerturbationSpec("action_dropout", {"prob": 1.5})
        with pytest.raises(ScenarioSpecError, match=">= 0"):
            PerturbationSpec("observation_noise", {"std": -0.1})
        with pytest.raises(ScenarioSpecError, match="unknown observation_noise"):
            PerturbationSpec("observation_noise", {"sigma": 0.1})

    def test_jitter_params_must_be_a_list(self):
        with pytest.raises(ScenarioSpecError, match="list of parameter"):
            PerturbationSpec("parameter_jitter", {"params": "length"})

    def test_curriculum_needs_two_stages(self):
        with pytest.raises(ScenarioSpecError, match="at least 2 stages"):
            CurriculumSchedule(stages=({"params": {}},))

    def test_fixed_curriculum_needs_increasing_boundaries(self):
        with pytest.raises(ScenarioSpecError, match="strictly"):
            CurriculumSchedule(stages=(
                {"params": {}},
                {"params": {}, "at_generation": 3},
                {"params": {}, "at_generation": 3},
            ))

    def test_adaptive_curriculum_needs_exit_thresholds(self):
        with pytest.raises(ScenarioSpecError, match="no exit threshold"):
            CurriculumSchedule(
                mode="adaptive",
                stages=({"params": {}}, {"params": {}}),
            )

    def test_adaptive_rejects_at_generation(self):
        with pytest.raises(ScenarioSpecError, match="at_generation"):
            CurriculumSchedule(
                mode="adaptive",
                advance_threshold=10.0,
                stages=(
                    {"params": {}, "at_generation": 2},
                    {"params": {}},
                ),
            )

    def test_curriculum_stage_params_validated_against_env(self):
        with pytest.raises(ScenarioSpecError, match="no tunable parameter"):
            ScenarioSpec(
                env_id="CartPole-v0",
                curriculum={
                    "stages": [
                        {"params": {}},
                        {"params": {"warp": 9}, "at_generation": 2},
                    ],
                },
            )

    def test_stage_scenario_merges_params(self):
        scenario = ScenarioSpec(
            env_id="CartPole-v0",
            params={"gravity": 12.0},
            curriculum={
                "stages": [
                    {"params": {"length": 0.5}},
                    {"params": {"length": 1.0}, "at_generation": 4},
                ],
            },
        )
        stage1 = scenario.stage_scenario(1)
        assert stage1.params == {"gravity": 12.0, "length": 1.0}
        assert stage1.curriculum is None
        with pytest.raises(ScenarioSpecError, match="out of range"):
            scenario.stage_scenario(2)


# ---------------------------------------------------------------------------
# round-trip + content key


class TestRoundTrip:
    def test_json_round_trip_every_builtin(self):
        for name, scenario in registered_scenarios().items():
            clone = ScenarioSpec.from_json(scenario.to_json())
            assert clone == scenario
            assert clone.content_key() == scenario.content_key()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ScenarioSpecError, match="unknown scenario"):
            ScenarioSpec.from_dict({"env_id": "CartPole-v0", "turbo": True})

    def test_from_dict_requires_env_id(self):
        with pytest.raises(ScenarioSpecError, match="env_id"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_save_load(self, tmp_path):
        path = tmp_path / "scenario.json"
        scenario = get_scenario("cartpole-windy")
        scenario.save(path)
        assert ScenarioSpec.load(path) == scenario

    def test_content_key_is_canonical(self):
        scenario = get_scenario("cartpole-long-pole")
        payload = json.loads(scenario.canonical_json())
        assert list(payload) == sorted(payload)

    def test_content_key_differs_on_any_change(self):
        a = ScenarioSpec(env_id="CartPole-v0", params={"length": 0.5})
        b = ScenarioSpec(env_id="CartPole-v0", params={"length": 0.75})
        c = a.replace(perturbations=({"kind": "observation_noise"},))
        assert len({a.content_key(), b.content_key(), c.content_key()}) == 3

    @settings(max_examples=25, deadline=None)
    @given(
        gravity=st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
        length=st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
        std=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        prob=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        kinds=st.lists(
            st.sampled_from(["observation_noise", "action_dropout"]),
            max_size=3,
        ),
    )
    def test_property_round_trip_and_hash(self, gravity, length, std, prob,
                                          kinds):
        perturbations = []
        for kind in kinds:
            params = {"std": std} if kind == "observation_noise" else {
                "prob": prob}
            perturbations.append({"kind": kind, "params": params})
        scenario = ScenarioSpec(
            env_id="CartPole-v0",
            params={"gravity": gravity, "length": length},
            perturbations=perturbations,
        )
        clone = ScenarioSpec.from_json(scenario.to_json())
        assert clone == scenario
        assert clone.content_key() == scenario.content_key()
        via_dict = ScenarioSpec.from_dict(scenario.to_dict())
        assert via_dict.content_key() == scenario.content_key()

    @settings(max_examples=15, deadline=None)
    @given(
        threshold=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
        patience=st.integers(min_value=1, max_value=5),
        boundaries=st.lists(
            st.integers(min_value=1, max_value=50),
            min_size=1, max_size=4, unique=True,
        ),
    )
    def test_property_curriculum_round_trip(self, threshold, patience,
                                            boundaries):
        fixed = ScenarioSpec(
            env_id="CartPole-v0",
            curriculum={
                "stages": [{"params": {}}] + [
                    {"params": {"length": 0.5}, "at_generation": g}
                    for g in sorted(boundaries)
                ],
            },
        )
        adaptive = ScenarioSpec(
            env_id="CartPole-v0",
            curriculum={
                "mode": "adaptive",
                "advance_threshold": threshold,
                "patience": patience,
                "stages": [{"params": {}}, {"params": {"length": 1.0}}],
            },
        )
        for scenario in (fixed, adaptive):
            clone = ScenarioSpec.from_json(scenario.to_json())
            assert clone == scenario
            assert clone.content_key() == scenario.content_key()


# ---------------------------------------------------------------------------
# golden pinning: scenario-free specs are untouched


class TestGoldenNoScenario:
    #: Computed at the seed revision (before scenarios existed); a spec
    #: without a scenario block must keep this exact serialization and
    #: DSE cache key forever.
    PINNED_SPEC_KEY = (
        "4908380a976db685901cf27943184ab60c24acae20ca260e128e203193565ab7"
    )
    PINNED_JSON = (
        '{\n  "backend": "software",\n  "backend_options": {},\n'
        '  "env_id": "CartPole-v0",\n  "episodes": 2,\n'
        '  "fitness_threshold": 195.0,\n  "max_generations": 7,\n'
        '  "max_steps": null,\n  "pop_size": 24,\n  "seed": 11,\n'
        '  "vectorizer": "numpy",\n  "workers": 2\n}'
    )

    def _spec(self):
        return ExperimentSpec(
            "CartPole-v0", max_generations=7, pop_size=24, episodes=2,
            seed=11, workers=2, vectorizer="numpy", fitness_threshold=195.0,
        )

    def test_to_dict_omits_unset_scenario(self):
        spec = self._spec()
        assert "scenario" not in spec.to_dict()
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec and clone.scenario is None

    def test_json_byte_identical_to_seed(self):
        assert self._spec().to_json() == self.PINNED_JSON

    def test_dse_cache_key_byte_identical_to_seed(self):
        assert spec_key(self._spec()) == self.PINNED_SPEC_KEY

    def test_scenario_block_changes_the_key(self):
        spec = self._spec().replace(
            scenario={"env_id": "CartPole-v0", "params": {"length": 0.5}}
        )
        assert spec_key(spec) != self.PINNED_SPEC_KEY


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_builtins_resolve(self):
        for name in ("cartpole-short-pole", "cartpole-long-pole",
                     "cartpole-windy", "cartpole-jittery",
                     "cartpole-pole-curriculum", "mountaincar-weak-engine"):
            assert get_scenario(name).name == name

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownScenarioError, match="cartpole-windy"):
            get_scenario("lava-floor")
        with pytest.raises(KeyError):  # back-compat catch class
            get_scenario("lava-floor")

    def test_register_unregister(self):
        register_scenario(
            "test-low-gravity",
            {"env_id": "CartPole-v0", "params": {"gravity": 3.7}},
        )
        try:
            assert "test-low-gravity" in scenario_names()
            scenario = get_scenario("test-low-gravity")
            assert scenario.name == "test-low-gravity"
            assert scenario.params == {"gravity": 3.7}
            assert as_scenario_spec("test-low-gravity") == scenario
        finally:
            unregister_scenario("test-low-gravity")
        assert "test-low-gravity" not in scenario_names()
        with pytest.raises(UnknownScenarioError):
            unregister_scenario("test-low-gravity")

    def test_as_scenario_spec_coercions(self):
        direct = ScenarioSpec(env_id="CartPole-v0")
        assert as_scenario_spec(direct) is direct
        assert as_scenario_spec({"env_id": "CartPole-v0"}) == direct
        with pytest.raises(ScenarioSpecError):
            as_scenario_spec(42)


# ---------------------------------------------------------------------------
# embedded scenario on the experiment spec


class TestEmbeddedScenario:
    def test_dict_coerces_and_round_trips(self):
        spec = ExperimentSpec(
            "CartPole-v0",
            scenario={"env_id": "CartPole-v0", "params": {"length": 0.25}},
            **SMALL,
        )
        assert isinstance(spec.scenario, ScenarioSpec)
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.to_dict()["scenario"]["params"] == {"length": 0.25}

    def test_env_mismatch_rejected(self):
        with pytest.raises(SpecError, match="does not match"):
            ExperimentSpec(
                "MountainCar-v0",
                scenario={"env_id": "CartPole-v0"},
                **SMALL,
            )

    def test_fuzzy_env_spellings_match(self):
        spec = ExperimentSpec(
            "cartpole_v0", scenario={"env_id": "CartPole-v0"}, **SMALL
        )
        assert spec.scenario.env_id == "CartPole-v0"

    def test_soc_backend_rejected(self):
        with pytest.raises(SpecError, match="soc backend does not support"):
            ExperimentSpec(
                "CartPole-v0", backend="soc",
                scenario={"env_id": "CartPole-v0"}, **SMALL,
            )

    def test_invalid_scenario_becomes_spec_error(self):
        with pytest.raises(SpecError, match="invalid scenario spec"):
            ExperimentSpec(
                "CartPole-v0",
                scenario={"env_id": "CartPole-v0", "params": {"warp": 1}},
                **SMALL,
            )


# ---------------------------------------------------------------------------
# dse axes


class TestScenarioAxes:
    def _base(self):
        return ExperimentSpec("CartPole-v0", **SMALL)

    def test_scenario_field_is_not_a_plain_axis(self):
        from repro.dse.spec import SPEC_AXES

        assert "scenario" not in SPEC_AXES

    def test_unknown_scenario_axis_rejected(self):
        for axis in ("scenario.bogus", "scenario.params."):
            with pytest.raises(SweepSpecError, match="unknown sweep axis"):
                SweepSpec(base=self._base(), axes={axis: [1]})

    def test_name_axis_resolves_points(self):
        sweep = SweepSpec(
            base=self._base(),
            axes={"scenario.name": [None, "cartpole-short-pole"]},
        )
        points = sweep.expand()
        assert points[0].spec.scenario is None
        assert points[1].spec.scenario == get_scenario("cartpole-short-pole")

    def test_param_axis_creates_and_merges(self):
        sweep = SweepSpec(
            base=self._base(),
            axes={
                "scenario.name": ["cartpole-short-pole"],
                "scenario.params.gravity": [12.0],
            },
        )
        (point,) = sweep.expand()
        # name applies first, then the param merges over its base params
        assert point.spec.scenario.params == {"length": 0.25, "gravity": 12.0}

    def test_param_axis_alone_builds_scenario_for_spec_env(self):
        sweep = SweepSpec(
            base=self._base(), axes={"scenario.params.length": [0.3, 0.6]}
        )
        points = sweep.expand()
        assert [p.spec.scenario.params["length"] for p in points] == [0.3, 0.6]
        assert all(p.spec.scenario.env_id == "CartPole-v0" for p in points)

    def test_bad_values_surface_as_sweep_errors(self):
        with pytest.raises(SweepSpecError, match="unknown scenario"):
            SweepSpec(
                base=self._base(), axes={"scenario.name": ["lava-floor"]}
            ).expand()
        with pytest.raises(SweepSpecError, match="no tunable parameter"):
            SweepSpec(
                base=self._base(), axes={"scenario.params.warp": [1.0]}
            ).expand()

    def test_points_cache_key_on_scenario_content(self):
        sweep = SweepSpec(
            base=self._base(),
            axes={"scenario.params.length": [0.3, 0.6]},
        )
        a, b = sweep.expand()
        assert spec_key(a.spec) != spec_key(b.spec)
        # identical axis values -> identical keys (memoisation)
        (a2,) = SweepSpec(
            base=self._base(), axes={"scenario.params.length": [0.3]}
        ).expand()
        assert spec_key(a2.spec) == spec_key(a.spec)


# ---------------------------------------------------------------------------
# curriculum fold


class TestCurriculumController:
    def _adaptive(self, patience=2):
        return ScenarioSpec(
            env_id="CartPole-v0",
            curriculum={
                "mode": "adaptive",
                "advance_threshold": 50.0,
                "patience": patience,
                "stages": [
                    {"params": {"length": 0.5}},
                    {"params": {"length": 0.75}},
                    {"params": {"length": 1.0}},
                ],
            },
        )

    def test_fixed_switches_at_boundaries(self):
        scenario = ScenarioSpec(
            env_id="CartPole-v0",
            curriculum={
                "stages": [
                    {"params": {}},
                    {"params": {"length": 1.0}, "at_generation": 2},
                ],
            },
        )
        controller = CurriculumController(scenario)
        # generation 0 completes -> next gen (1) still stage 0
        assert controller.step(0, 10.0) is None
        # generation 1 completes -> generation 2 runs stage 1
        assert controller.step(1, 10.0) == 1
        assert controller.active_scenario().params == {"length": 1.0}
        assert controller.step(2, 10.0) is None

    def test_adaptive_needs_patience_consecutive(self):
        controller = CurriculumController(self._adaptive(patience=2))
        assert controller.step(0, 60.0) is None   # streak 1
        assert controller.step(1, 40.0) is None   # streak reset
        assert controller.step(2, 60.0) is None   # streak 1
        assert controller.step(3, 60.0) == 1      # streak 2 -> advance
        assert controller.stage == 1

    def test_forgetting_and_recovery_annotations(self):
        from repro.api.result import GenerationMetrics

        def row(gen):
            return GenerationMetrics(
                generation=gen, best_fitness=0.0, mean_fitness=0.0,
                num_species=1, num_genes=1, footprint_bytes=1,
            )

        controller = CurriculumController(self._adaptive(patience=1))
        m0 = row(0)
        assert controller.step(0, 80.0, m0) == 1
        assert m0.scenario_stage == 0 and m0.scenario_forgetting is None
        m1 = row(1)
        controller.step(1, 30.0, m1)
        assert m1.scenario_stage == 1
        assert m1.scenario_forgetting == pytest.approx(50.0)
        assert m1.scenario_recovery is None
        m2 = row(2)
        # recovers (and instantly qualifies to advance again)
        controller.step(2, 85.0, m2)
        assert m2.scenario_forgetting == 0.0
        assert m2.scenario_recovery == 2

    def test_restore_replays_to_identical_state(self):
        live = CurriculumController(self._adaptive(patience=2))
        fitness = [60.0, 60.0, 30.0, 55.0, 70.0, 90.0]
        rows = []
        for gen, best in enumerate(fitness):
            live.step(gen, best)
            rows.append({"generation": gen, "best_fitness": best})
        replayed = CurriculumController(self._adaptive(patience=2))
        replayed.restore(rows)
        assert replayed.stage == live.stage
        assert replayed._streak == live._streak
        assert replayed._stage_best == live._stage_best
        assert replayed._pre_switch_best == live._pre_switch_best
        assert replayed._switch_generation == live._switch_generation
