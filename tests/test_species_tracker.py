"""Unit tests for the species dynamics tracker."""

import pytest

from repro.analysis.species_tracker import SpeciesHistory, track_run
from repro.neat import NEATConfig, Population


def size_fitness(genomes, config):
    for genome in genomes:
        genome.fitness = float(genome.num_genes)


@pytest.fixture
def history():
    config = NEATConfig.for_env(2, 1, pop_size=20)
    config.species.compatibility_threshold = 1.5  # encourage splits
    config.genome.node_add_prob = 0.4
    population = Population(config, seed=0)
    return track_run(population, size_fitness, generations=6)


def test_snapshot_per_generation(history):
    assert len(history.snapshots) == 6
    assert [s.generation for s in history.snapshots] == list(range(6))


def test_sizes_cover_population(history):
    for snapshot in history.snapshots:
        assert sum(snapshot.sizes.values()) == 20


def test_dominance_bounds(history):
    for value in history.dominance_series():
        assert 0.0 < value <= 1.0


def test_count_series_matches_snapshots(history):
    assert history.count_series() == [s.num_species for s in history.snapshots]


def test_lifetimes_positive(history):
    lifetimes = history.lifetimes()
    assert lifetimes
    assert all(1 <= v <= 6 for v in lifetimes.values())


def test_births_and_extinctions_consistent(history):
    events = history.births_and_extinctions()
    assert len(events) == 6
    # first generation: every species is newly born
    assert events[0]["born"] == set(history.snapshots[0].sizes)
    assert events[0]["extinct"] == set()
    # replaying births/extinctions reconstructs each snapshot's key set
    alive = set()
    for event, snapshot in zip(events, history.snapshots):
        alive = (alive | event["born"]) - event["extinct"]
        assert alive == set(snapshot.sizes)


def test_speciation_actually_splits(history):
    """With a tight threshold and structural pressure, the population
    should not stay a single species for the whole run."""
    assert max(history.count_series()) >= 2
