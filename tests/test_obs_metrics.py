"""Metrics registry, Prometheus exposition, and the ``GET /metrics`` route.

The exposition checks use a minimal line-format validator written here
against the text format 0.0.4 spec — no prometheus client dependency.
"""

import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import ExperimentSpec
from repro.obs import (
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    MetricsRegistry,
    MetricsServer,
    prometheus_text,
    render_top,
    snapshot_fleet,
)
from repro.obs.fleet import _fmt_age
from repro.obs.metrics import escape_label_value
from repro.runs.locking import RunDirLock
from repro.serve import (
    DONE,
    RUNNING,
    JobApiServer,
    JobStore,
    Scheduler,
    ServeClient,
)

# -- a minimal exposition-format validator (test-local, no client dep) ------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABELS = r'\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"' \
          r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}'
_VALUE = r"(?:[+-]?Inf|NaN|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)"
SAMPLE_RE = re.compile(rf"^({_NAME})(?:{_LABELS})? {_VALUE}$")
HELP_RE = re.compile(rf"^# HELP ({_NAME}) \S.*$")
TYPE_RE = re.compile(
    rf"^# TYPE ({_NAME}) (counter|gauge|histogram|summary|untyped)$"
)


def validate_exposition(text):
    """Assert ``text`` is well-formed exposition; return sample names.

    Checks line shapes, that every sample belongs to a # TYPE'd family
    (histogram samples fold back to their base name), and that HELP/TYPE
    precede the family's samples.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    typed, samples = {}, []
    for line in text.splitlines():
        if line.startswith("# HELP "):
            assert HELP_RE.match(line), f"bad HELP line: {line!r}"
            continue
        if line.startswith("# TYPE "):
            match = TYPE_RE.match(line)
            assert match, f"bad TYPE line: {line!r}"
            typed[match.group(1)] = match.group(2)
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = SAMPLE_RE.match(line)
        assert match, f"bad sample line: {line!r}"
        name = match.group(1)
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or base in typed, f"sample {name!r} has no TYPE"
        samples.append(name)
    return samples


# -- registry unit tests ----------------------------------------------------


def test_counter_renders_and_only_goes_up():
    registry = MetricsRegistry()
    counter = registry.counter("repro_things_total", "Things counted.")
    text = registry.render()
    assert "repro_things_total 0" in text  # zero-filled before first inc
    counter.inc()
    counter.inc(2.0)
    assert counter.value() == 3.0
    assert "repro_things_total 3" in registry.render()
    with pytest.raises(ValueError):
        counter.inc(-1.0)
    validate_exposition(registry.render())


def test_labelled_samples_sort_and_escape():
    registry = MetricsRegistry()
    counter = registry.counter("repro_outcomes_total", "By outcome.")
    counter.inc(outcome="retried")
    counter.inc(outcome="done")
    counter.inc(outcome='we"ird\\path\nx')
    lines = [
        line for line in registry.render().splitlines()
        if not line.startswith("#")
    ]
    assert lines[0].startswith('repro_outcomes_total{outcome="done"}')
    assert '\\"ird\\\\path\\nx' in lines[-1]
    validate_exposition(registry.render())
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_gauge_has_no_default_sample_until_set():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_depth", "A depth.")
    assert gauge.value() is None
    rendered = registry.render()
    assert "# TYPE repro_depth gauge" in rendered
    assert "\nrepro_depth " not in rendered
    gauge.set(2.5)
    gauge.set(1, job="job-000001")
    assert "repro_depth 2.5" in registry.render()
    validate_exposition(registry.render())


def test_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_seconds", "Latency.", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    text = registry.render()
    assert 'repro_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_seconds_bucket{le="1"} 3' in text
    assert 'repro_seconds_bucket{le="10"} 4' in text
    assert 'repro_seconds_bucket{le="+Inf"} 5' in text
    assert "repro_seconds_count 5" in text
    assert "repro_seconds_sum 56.05" in text
    assert histogram.count() == 5
    validate_exposition(text)


def test_registry_reregistration_is_idempotent_but_kind_checked():
    registry = MetricsRegistry()
    first = registry.counter("repro_x_total", "X.")
    assert registry.counter("repro_x_total", "different help") is first
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("repro_x_total", "X.")


def test_empty_registry_renders_empty():
    assert MetricsRegistry().render() == ""


def test_concurrent_updates_and_renders_are_safe():
    registry = MetricsRegistry()
    counter = registry.counter("repro_bumps_total", "Bumps.")
    histogram = registry.histogram("repro_obs_seconds", "Obs.")
    stop = threading.Event()
    rendered = []

    def bump():
        while not stop.is_set():
            counter.inc(outcome="a")
            histogram.observe(0.01)

    def scrape():
        for _ in range(200):
            rendered.append(registry.render())

    bumper = threading.Thread(target=bump)
    bumper.start()
    try:
        scrape()
    finally:
        stop.set()
        bumper.join()
    for text in rendered[::50]:
        validate_exposition(text)


# -- fleet snapshot and /metrics --------------------------------------------


def spec_dict(**overrides):
    defaults = dict(
        env_id="CartPole-v0", max_generations=4, pop_size=12, seed=3,
        max_steps=40,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults).to_dict()


def test_prometheus_text_tracks_job_state_transitions(tmp_path):
    store = JobStore(tmp_path / "root")
    text = prometheus_text(store)
    validate_exposition(text)
    assert 'repro_jobs{state="queued"} 0' in text
    assert "repro_queue_depth 0" in text

    record = store.submit(spec_dict())
    text = prometheus_text(store)
    assert 'repro_jobs{state="queued"} 1' in text
    assert "repro_queue_depth 1" in text
    assert f'repro_job_generations_done{{job="{record.id}"}} 0' in text

    store.transition(record.id, RUNNING, worker_pid=1)
    rd = store.run_dir(record.id)
    rd.create()
    with RunDirLock(rd.path):  # a live heartbeat to age against
        text = prometheus_text(store)
        assert 'repro_jobs{state="queued"} 0' in text
        assert 'repro_jobs{state="running"} 1' in text
        assert "repro_running_jobs 1" in text
        assert "repro_queue_depth 0" in text
        assert f'repro_heartbeat_age_seconds{{job="{record.id}"}}' in text

    store.transition(record.id, DONE, worker_pid=None, generations_done=4)
    text = prometheus_text(store)
    validate_exposition(text)
    assert 'repro_jobs{state="done"} 1' in text
    assert "repro_heartbeat_age_seconds{" not in text
    assert "repro_job_generations_done{" not in text  # terminal: dropped


def test_metrics_route_serves_exposition_with_registry(tmp_path):
    store = JobStore(tmp_path / "root")
    scheduler = Scheduler(store, workers=1, poll_interval=0.05)
    with JobApiServer(store, port=0, registry=scheduler.metrics) as server:
        client = ServeClient(server.url)
        client.submit(spec_dict(max_generations=2))
        scheduler.run_until_idle(timeout=300)
        text = client.metrics_text()
        validate_exposition(text)
        # store-derived gauges and scheduler counters on one surface
        assert 'repro_jobs{state="done"} 1' in text
        assert "repro_dispatches_total 1" in text
        assert 'repro_jobs_settled_total{outcome="done"} 1' in text
        assert "# TYPE repro_generation_seconds histogram" in text
        assert "repro_generation_seconds_count" in text
        with urllib.request.urlopen(server.url + "/metrics") as response:
            content_type = response.headers["Content-Type"]
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"


def test_metrics_route_without_registry_still_serves_gauges(tmp_path):
    store = JobStore(tmp_path / "root")
    with JobApiServer(store, port=0) as server:
        text = ServeClient(server.url).metrics_text()
    validate_exposition(text)
    assert "repro_jobs{" in text
    assert "repro_dispatches_total" not in text  # no scheduler attached


def test_concurrent_scrapes_are_safe(tmp_path):
    store = JobStore(tmp_path / "root")
    store.submit(spec_dict())
    registry = MetricsRegistry()
    counter = registry.counter("repro_churn_total", "Churn.")
    with JobApiServer(store, port=0, registry=registry) as server:
        client = ServeClient(server.url)
        failures = []

        def scrape():
            try:
                for _ in range(20):
                    validate_exposition(client.metrics_text())
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append(exc)

        def churn():
            for _ in range(500):
                counter.inc(outcome="x")

        threads = [threading.Thread(target=scrape) for _ in range(4)]
        threads.append(threading.Thread(target=churn))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    assert failures == []


def test_snapshot_and_top_render(tmp_path):
    store = JobStore(tmp_path / "root")
    record = store.submit(spec_dict(), priority=5)
    snapshot = snapshot_fleet(store, detail=True)
    assert snapshot["states"]["queued"] == 1
    assert snapshot["queue_depth"] == 1
    assert snapshot["jobs"][0]["id"] == record.id
    assert snapshot["jobs"][0]["heartbeat_age_s"] is None
    screen = render_top(snapshot)
    assert record.id in screen
    assert "CartPole-v0" in screen
    assert "queue_depth=1" in screen


def test_counter_metric_standalone_zero_fill():
    counter = Counter("repro_alone_total", "Alone.", threading.Lock())
    assert counter.render()[-1] == "repro_alone_total 0"


# -- standalone MetricsServer (worker processes without a job API) ----------


def test_metrics_server_serves_registry_exposition():
    registry = MetricsRegistry()
    registry.counter("repro_scrapes_total", "Scrapes.").inc()
    with MetricsServer(registry) as server:
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url) as response:
            body = response.read().decode()
            content_type = response.headers["Content-Type"]
    assert content_type == PROMETHEUS_CONTENT_TYPE
    validate_exposition(body)
    assert "repro_scrapes_total 1" in body


def test_metrics_server_reflects_live_counter_updates():
    registry = MetricsRegistry()
    counter = registry.counter("repro_live_total", "Live.")
    with MetricsServer(registry) as server:
        url = f"http://127.0.0.1:{server.port}/metrics"
        for expected in (0, 1, 2):
            with urllib.request.urlopen(url) as response:
                assert f"repro_live_total {expected}" in (
                    response.read().decode()
                )
            counter.inc()


def test_metrics_server_404s_everything_else():
    with MetricsServer(MetricsRegistry()) as server:
        url = f"http://127.0.0.1:{server.port}/healthz"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url)
        assert excinfo.value.code == 404


def test_metrics_server_port_requires_running_server():
    server = MetricsServer(MetricsRegistry())
    with pytest.raises(RuntimeError, match="not running"):
        server.port
    server.start()
    try:
        assert server.port > 0
    finally:
        server.stop()
    with pytest.raises(RuntimeError, match="not running"):
        server.port
    server.stop()  # stop twice is a no-op


# -- fleet rendering edges --------------------------------------------------


def test_fmt_age_branches():
    assert _fmt_age(None) == "-"
    assert _fmt_age(3.25) == "3.2s"
    assert _fmt_age(119.9) == "119.9s"
    assert _fmt_age(150.0) == "2.5m"


def test_render_top_formats_progress_and_heartbeat(tmp_path):
    store = JobStore(tmp_path / "root")
    record = store.submit(spec_dict())
    store.transition(
        record.id, RUNNING, worker_pid=1, generations_done=2
    )
    snapshot = snapshot_fleet(store, detail=True)
    job = snapshot["jobs"][0]
    job["best_fitness"] = 37.125
    job["heartbeat_age_s"] = 240.0
    screen = render_top(snapshot)
    assert "2/4" in screen
    assert "37.12" in screen
    assert "4.0m" in screen
    assert "running=1" in screen


def test_running_job_without_lock_has_no_heartbeat(tmp_path):
    store = JobStore(tmp_path / "root")
    record = store.submit(spec_dict())
    store.transition(record.id, RUNNING, worker_pid=1)
    snapshot = snapshot_fleet(store)  # run dir never created, no lock
    assert snapshot["jobs"][0]["heartbeat_age_s"] is None
    text = prometheus_text(store)
    validate_exposition(text)
    assert "repro_heartbeat_age_seconds{" not in text
