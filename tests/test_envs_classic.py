"""Unit tests for the classic-control environments (CartPole,
MountainCar, Acrobot) — exact ports of the gym dynamics."""

import math

import numpy as np
import pytest

from repro.envs import AcrobotEnv, CartPoleEnv, MountainCarEnv


class TestCartPole:
    def test_table1_spaces(self):
        env = CartPoleEnv(seed=0)
        # Table I: four floating point observations, one binary action.
        assert env.num_observations == 4
        assert env.action_space.n == 2

    def test_reset_near_zero(self):
        env = CartPoleEnv(seed=0)
        obs = env.reset()
        assert np.all(np.abs(obs) <= 0.05)

    def test_step_returns_reward_one(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        _obs, reward, _done, _info = env.step(0)
        assert reward == 1.0

    def test_known_transition(self):
        """One Euler step from the origin under force +10 N."""
        env = CartPoleEnv(seed=0)
        env.reset()
        env.state = np.zeros(4)
        obs, _r, _d, _i = env.step(1)
        # temp = 10/1.1; theta_acc = -(temp)/ (0.5*(4/3 - 0.1/1.1))
        temp = 10.0 / 1.1
        theta_acc = -temp / (0.5 * (4.0 / 3.0 - 0.1 / 1.1))
        x_acc = temp - 0.05 * theta_acc / 1.1
        assert obs[1] == pytest.approx(0.02 * x_acc)
        assert obs[3] == pytest.approx(0.02 * theta_acc)
        assert obs[0] == 0.0 and obs[2] == 0.0  # positions lag one step

    def test_terminates_on_angle(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        done = False
        steps = 0
        while not done and steps < 200:
            _obs, _r, done, _info = env.step(0)  # constant push -> falls
            steps += 1
        assert done
        assert steps < 200

    def test_time_limit_truncation(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        env.max_episode_steps = 5
        for _ in range(4):
            _o, _r, done, _i = env.step(0)
            if done:
                pytest.skip("fell before truncation")
        _o, _r, done, info = env.step(0)
        assert done
        assert info.get("TimeLimit.truncated")

    def test_step_after_done_raises(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        env.state = np.array([3.0, 0, 0, 0])  # out of bounds next step
        _o, _r, done, _i = env.step(0)
        assert done
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_invalid_action_raises(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        with pytest.raises(ValueError):
            env.step(5)

    def test_deterministic_given_seed(self):
        rollouts = []
        for _ in range(2):
            env = CartPoleEnv()
            env.seed(77)
            obs = env.reset()
            trace = [obs]
            for _ in range(10):
                obs, _r, done, _i = env.step(1)
                trace.append(obs)
                if done:
                    break
            rollouts.append(np.stack(trace))
        assert np.allclose(rollouts[0], rollouts[1])


class TestMountainCar:
    def test_table1_spaces(self):
        env = MountainCarEnv(seed=0)
        # Table I: two floating point observations; action integer < 3.
        assert env.num_observations == 2
        assert env.action_space.n == 3

    def test_reset_in_valley(self):
        env = MountainCarEnv(seed=0)
        obs = env.reset()
        assert -0.6 <= obs[0] <= -0.4
        assert obs[1] == 0.0

    def test_velocity_clipped(self):
        env = MountainCarEnv(seed=0)
        env.reset()
        for _ in range(100):
            obs, _r, done, _i = env.step(2)
            assert abs(obs[1]) <= env.MAX_SPEED + 1e-12
            if done:
                break

    def test_reward_is_minus_one(self):
        env = MountainCarEnv(seed=0)
        env.reset()
        _obs, reward, _d, _i = env.step(1)
        assert reward == -1.0

    def test_left_wall_zeroes_velocity(self):
        env = MountainCarEnv(seed=0)
        env.reset()
        env.state = np.array([env.MIN_POSITION, -0.05])
        obs, *_ = env.step(0)
        assert obs[0] == env.MIN_POSITION
        assert obs[1] == 0.0

    def test_oscillation_strategy_reaches_goal(self):
        """The classic bang-bang policy (push in direction of motion)."""
        env = MountainCarEnv(seed=4)
        obs = env.reset()
        for _ in range(200):
            action = 2 if obs[1] >= 0 else 0
            obs, _r, done, _i = env.step(action)
            if done:
                break
        assert obs[0] >= env.GOAL_POSITION

    def test_idle_never_reaches_goal(self):
        env = MountainCarEnv(seed=0)
        env.reset()
        for _ in range(200):
            obs, _r, done, _i = env.step(1)
            if done:
                break
        assert obs[0] < env.GOAL_POSITION


class TestAcrobot:
    def test_table1_spaces(self):
        env = AcrobotEnv(seed=0)
        # Table I: six floating point observations.
        assert env.num_observations == 6
        assert env.action_space.n == 3

    def test_observation_is_trig_encoded(self):
        env = AcrobotEnv(seed=0)
        obs = env.reset()
        assert obs[0] == pytest.approx(math.cos(env.state[0]))
        assert obs[1] == pytest.approx(math.sin(env.state[0]))
        assert np.all(np.abs(obs[:4]) <= 1.0)

    def test_velocities_bounded(self):
        env = AcrobotEnv(seed=1)
        env.reset()
        for _ in range(100):
            obs, _r, done, _i = env.step(2)
            assert abs(obs[4]) <= env.MAX_VEL_1 + 1e-9
            assert abs(obs[5]) <= env.MAX_VEL_2 + 1e-9
            if done:
                break

    def test_reward_structure(self):
        env = AcrobotEnv(seed=0)
        env.reset()
        _obs, reward, done, _i = env.step(0)
        if not done:
            assert reward == -1.0

    def test_hanging_start_not_done(self):
        env = AcrobotEnv(seed=0)
        env.reset()
        # near-hanging state: -cos(0) - cos(0) = -2 < 1
        _obs, _r, done, _i = env.step(1)
        assert not done

    def test_energy_injection_changes_state(self):
        env = AcrobotEnv(seed=0)
        env.reset()
        initial = env.state.copy()
        for _ in range(10):
            env.step(2)
        assert not np.allclose(env.state, initial)
