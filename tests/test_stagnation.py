"""Unit tests for repro.neat.stagnation."""

import random

import pytest

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.species import SpeciesSet
from repro.neat.stagnation import Stagnation


@pytest.fixture
def config():
    cfg = NEATConfig.for_env(2, 1, pop_size=10)
    cfg.species.max_stagnation = 3
    cfg.species.species_elitism = 0
    return cfg


def make_species_set(config, fitness_histories):
    """Build a SpeciesSet with hand-crafted fitness histories."""
    rng = random.Random(0)
    population = {}
    species_set = SpeciesSet(config)
    for i, _history in enumerate(fitness_histories):
        g = Genome(i)
        g.configure_new(config.genome, rng)
        g.fitness = 0.0
        population[i] = g
    species_set.speciate(population, 0)
    # Single species by construction: split manually.
    species = next(iter(species_set.species.values()))
    species_set.species.clear()
    for i, history in enumerate(fitness_histories):
        from repro.neat.species import Species

        s = Species(i + 1, created_generation=0)
        s.members = {i: population[i]}
        s.representative = population[i]
        s.fitness_history = list(history)
        s.fitness = history[-1] if history else None
        s.last_improved = 0
        species_set.species[i + 1] = s
    return species_set


def test_improving_species_not_stagnant(config):
    species_set = make_species_set(config, [[1.0, 2.0, 3.0]])
    stagnation = Stagnation(config)
    results = stagnation.update(species_set, generation=5)
    # last_improved updated to 5 because 3.0 > max of earlier history
    assert results[0][2] is False


def test_flat_species_becomes_stagnant(config):
    species_set = make_species_set(config, [[2.0, 2.0, 2.0, 2.0]])
    stagnation = Stagnation(config)
    results = stagnation.update(species_set, generation=5)
    assert results[0][2] is True


def test_species_elitism_protects_best(config):
    config.species.species_elitism = 1
    species_set = make_species_set(config, [[5.0, 5.0], [1.0, 1.0]])
    stagnation = Stagnation(config)
    results = {key: stagnant for key, _s, stagnant in stagnation.update(species_set, 10)}
    # the fitter species is protected even though both are stagnant
    fit_key = max(
        species_set.species, key=lambda k: species_set.species[k].fitness
    )
    assert results[fit_key] is False
    other = next(k for k in species_set.species if k != fit_key)
    assert results[other] is True


def test_recently_created_species_survives(config):
    species_set = make_species_set(config, [[1.0]])
    for s in species_set.species.values():
        s.last_improved = 4
    stagnation = Stagnation(config)
    results = stagnation.update(species_set, generation=5)
    assert results[0][2] is False
