"""Golden pins across the platform-API redesign.

The committed files pin behaviour captured on the *pre-redesign* code:

* ``tests/golden/analytical_genesys_seed0.json`` — a fixed-seed
  ``analytical:GENESYS`` run's full metric trajectory (fitness,
  modelled runtime/energy) plus its DSE cache key.
* ``tests/golden/hw_sweep_soc_4point.json`` — a 4-point ``hw.*``-axis
  ``soc`` sweep's metrics *and* per-point cache keys.

Together they prove the unified-PlatformSpec registry is a pure
refactor for pre-existing specs: identical modelled costs, identical
evolution, identical cache keys (so warmed caches survive the
migration), and that the new ``platform.*`` axes alias the old ``hw.*``
axes bit-for-bit.

Regenerate (only for an *intentional* cost-model change, in the same
commit) by rerunning the producing snippets with the values in each
file's ``description``/``sweep`` blocks.
"""

import json
import warnings
from pathlib import Path

import pytest

from repro.api import Experiment, ExperimentSpec
from repro.dse import SweepRunner, SweepSpec, spec_key

GOLDEN_DIR = Path(__file__).parent / "golden"

_METRIC_KEYS = ("fitness", "generations", "converged", "runtime_s",
                "energy_j", "env_steps", "inference_macs")


@pytest.fixture(scope="module")
def genesys_golden():
    return json.loads(
        (GOLDEN_DIR / "analytical_genesys_seed0.json").read_text()
    )


@pytest.fixture(scope="module")
def hw_sweep_golden():
    return json.loads((GOLDEN_DIR / "hw_sweep_soc_4point.json").read_text())


class TestAnalyticalGenesysGolden:
    def test_trajectory_is_byte_identical(self, genesys_golden):
        spec = ExperimentSpec.from_dict(genesys_golden["spec"])
        result = Experiment(spec).run()
        observed = {
            "best_fitness": [m.best_fitness for m in result.metrics],
            "mean_fitness": [m.mean_fitness for m in result.metrics],
            "runtime_s": [m.runtime_s for m in result.metrics],
            "energy_j": [m.energy_j for m in result.metrics],
            "generations": result.generations,
            "converged": result.converged,
        }
        for key, expected in genesys_golden["trajectory"].items():
            assert observed[key] == expected, (
                f"analytical:GENESYS {key} diverged from pre-redesign "
                f"golden\n  expected {expected}\n  observed {observed[key]}"
            )
        assert result.total_runtime_s == genesys_golden["totals"]["total_runtime_s"]
        assert result.total_energy_j == genesys_golden["totals"]["total_energy_j"]

    def test_cache_key_unchanged_for_pre_existing_spec(self, genesys_golden):
        """A spec without a platform block must hash exactly as it did
        before the redesign — warmed DSE caches stay valid."""
        spec = ExperimentSpec.from_dict(genesys_golden["spec"])
        assert spec.platform is None
        assert spec_key(spec) == genesys_golden["spec_key"]
        # and the serialised dict is the pre-redesign shape (no
        # platform key at all, not platform: null)
        assert spec.to_dict() == genesys_golden["spec"]


class TestHwAxisAliasGolden:
    def _run(self, sweep):
        return SweepRunner(sweep).run().rows

    def test_hw_sweep_metrics_and_keys_unchanged(self, hw_sweep_golden):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sweep = SweepSpec.from_dict(hw_sweep_golden["sweep"])
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "platform.eve_pes" in str(w.message)
            for w in caught
        ), "hw.* axes must warn and point at the platform.* spelling"
        rows = self._run(sweep)
        assert [r["key"] for r in rows] == hw_sweep_golden["spec_keys"], (
            "hw.*-axis cache keys changed across the redesign"
        )
        for row, golden in zip(rows, hw_sweep_golden["rows"]):
            for key in _METRIC_KEYS:
                assert row[key] == golden[key], (
                    f"hw.* sweep {key} diverged at point "
                    f"{golden['hw.eve_pes']}/{golden['hw.noc']}"
                )

    def test_platform_axes_alias_hw_axes_bit_for_bit(self, hw_sweep_golden):
        """The migrated spelling evaluates the identical experiments."""
        base = ExperimentSpec.from_dict(hw_sweep_golden["sweep"]["base"])
        axes = {
            f"platform.{name.split('.', 1)[1]}": values
            for name, values in hw_sweep_golden["sweep"]["axes"].items()
        }
        rows = self._run(SweepSpec(base=base, axes=axes))
        for row, golden in zip(rows, hw_sweep_golden["rows"]):
            for key in _METRIC_KEYS:
                assert row[key] == golden[key], (
                    f"platform.* sweep {key} diverged from the hw.* "
                    f"golden at point {golden['hw.eve_pes']}/"
                    f"{golden['hw.noc']}"
                )

    def test_platform_axis_points_carry_embedded_specs(self, hw_sweep_golden):
        base = ExperimentSpec.from_dict(hw_sweep_golden["sweep"]["base"])
        points = SweepSpec(
            base=base, axes={"platform.eve_pes": [8, 32]}
        ).expand()
        assert all(p.spec.platform is not None for p in points)
        assert [p.spec.platform.params.eve_pes for p in points] == [8, 32]
