"""Unit tests for the NoC models (Fig. 11b ablation)."""

import pytest

from repro.hw.noc import (
    NOC_KINDS,
    MulticastTreeNoC,
    PointToPointNoC,
    canonical_noc_kind,
    make_noc,
)


def demands_shared_parent(n_pes):
    """n PEs all demanding word 3 of genome 7."""
    return [(pe, 7, 3) for pe in range(n_pes)]


def demands_distinct(n_pes):
    return [(pe, pe, 0) for pe in range(n_pes)]


class TestPointToPoint:
    def test_one_read_per_pe(self):
        noc = PointToPointNoC()
        assert noc.distribute_cycle(demands_shared_parent(8)) == 8
        assert noc.stats.sram_reads == 8
        assert noc.stats.genes_delivered == 8

    def test_cycles_counted(self):
        noc = PointToPointNoC()
        for _ in range(5):
            noc.distribute_cycle(demands_distinct(4))
        assert noc.stats.cycles == 5
        assert noc.stats.reads_per_cycle == 4.0


class TestMulticastTree:
    def test_shared_word_single_read(self):
        noc = MulticastTreeNoC()
        assert noc.distribute_cycle(demands_shared_parent(8)) == 1
        assert noc.stats.multicast_hits == 7

    def test_distinct_words_no_savings(self):
        noc = MulticastTreeNoC()
        assert noc.distribute_cycle(demands_distinct(8)) == 8
        assert noc.stats.multicast_hits == 0

    def test_mixed(self):
        noc = MulticastTreeNoC()
        demands = [(0, 1, 0), (1, 1, 0), (2, 2, 0)]
        assert noc.distribute_cycle(demands) == 2

    def test_never_more_reads_than_p2p(self):
        p2p = PointToPointNoC()
        tree = MulticastTreeNoC()
        import random

        rng = random.Random(0)
        for _ in range(100):
            demands = [
                (pe, rng.randrange(4), rng.randrange(10)) for pe in range(16)
            ]
            assert tree.distribute_cycle(list(demands)) <= p2p.distribute_cycle(
                list(demands)
            )


class TestFactory:
    def test_aliases(self):
        assert isinstance(make_noc("p2p"), PointToPointNoC)
        assert isinstance(make_noc("point-to-point"), PointToPointNoC)
        assert isinstance(make_noc("multicast"), MulticastTreeNoC)
        assert isinstance(make_noc("Multicast Tree"), MulticastTreeNoC)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_noc("torus")


class TestCanonicaliser:
    """One shared spelling canonicaliser for every layer (NoC factory,
    soc backend options, platform specs, sweep axes)."""

    @pytest.mark.parametrize("spelling,expected", [
        ("p2p", "p2p"),
        ("P2P", "p2p"),
        ("point-to-point", "p2p"),
        ("point to point", "p2p"),
        ("bus", "p2p"),
        ("multicast", "multicast"),
        ("Multicast-Tree", "multicast"),
        ("tree", "multicast"),
    ])
    def test_accepted_spellings(self, spelling, expected):
        assert canonical_noc_kind(spelling) == expected
        assert expected in NOC_KINDS

    @pytest.mark.parametrize("bad", ["torus", "mesh", "", "p2p2", 3])
    def test_rejected_spellings_name_the_kinds(self, bad):
        with pytest.raises(ValueError, match="p2p"):
            canonical_noc_kind(bad)

    def test_backends_reexport_is_the_same_table(self):
        from repro.api.backends import NOC_KINDS as backend_kinds

        assert backend_kinds == NOC_KINDS

    def test_soc_backend_accepts_long_spelling(self):
        from repro.api import make_backend

        backend = make_backend("soc", noc="point-to-point")
        assert backend.noc == "p2p"


def test_reset_stats():
    noc = MulticastTreeNoC()
    noc.distribute_cycle(demands_shared_parent(4))
    old = noc.reset_stats()
    assert old.sram_reads == 1
    assert noc.stats.cycles == 0


def test_stats_merge():
    noc = PointToPointNoC()
    noc.distribute_cycle(demands_distinct(3))
    a = noc.reset_stats()
    noc.distribute_cycle(demands_distinct(2))
    b = noc.reset_stats()
    a.merge(b)
    assert a.sram_reads == 5
    assert a.cycles == 2
