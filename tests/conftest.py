"""Shared fixtures for the test suite."""

import random

import pytest

from repro.neat import Genome, GenomeConfig, InnovationTracker, NEATConfig


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def genome_config():
    return GenomeConfig(num_inputs=3, num_outputs=2)


@pytest.fixture
def neat_config():
    return NEATConfig.for_env(3, 2, pop_size=20)


@pytest.fixture
def innovations():
    return InnovationTracker(next_node_id=2)


@pytest.fixture
def fresh_genome(genome_config, rng):
    genome = Genome(0)
    genome.configure_new(genome_config, rng)
    return genome


@pytest.fixture
def evolved_genome(genome_config, rng, innovations):
    """A genome taken through a burst of random mutations."""
    genome = Genome(7)
    genome.configure_new(genome_config, rng)
    for _ in range(25):
        genome.mutate(genome_config, rng, innovations)
    genome.validate(genome_config)
    return genome


def make_evolved_pair(genome_config, rng, innovations, mutations=15):
    """Two related genomes with fitness set (crossover-ready)."""
    parent1 = Genome(1)
    parent1.configure_new(genome_config, rng)
    for _ in range(mutations):
        parent1.mutate(genome_config, rng, innovations)
    parent2 = parent1.copy(2)
    for _ in range(mutations):
        parent2.mutate(genome_config, rng, innovations)
        parent1.mutate(genome_config, rng, innovations)
    parent1.fitness = 10.0
    parent2.fitness = 5.0
    return parent1, parent2


@pytest.fixture
def evolved_pair(genome_config, rng, innovations):
    return make_evolved_pair(genome_config, rng, innovations)
