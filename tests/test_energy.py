"""Unit tests for the area/power/energy model (Section V, Fig. 8)."""

import pytest

from repro.hw.energy import (
    DEFAULT_NUM_EVE_PES,
    EVE_PE_AREA_MM2,
    PAPER_TOTAL_AREA_MM2,
    PAPER_TOTAL_POWER_MW,
    EnergyLedger,
    area_breakdown,
    cycles_to_seconds,
    pe_sweep,
    roofline_power,
)


class TestPaperCalibration:
    def test_eve_pe_area_matches_fig8a(self):
        # 59 um x 59 um PE; 256 of them = 0.89 mm^2 (paper table).
        assert 256 * EVE_PE_AREA_MM2 == pytest.approx(0.89, abs=0.01)

    def test_adam_area_matches_fig8a(self):
        area = area_breakdown(num_eve_pes=256)
        assert area.adam_mm2 == pytest.approx(0.25, abs=0.01)

    def test_total_area_matches_paper(self):
        area = area_breakdown(num_eve_pes=DEFAULT_NUM_EVE_PES)
        assert area.total_mm2 == pytest.approx(PAPER_TOTAL_AREA_MM2, rel=0.01)

    def test_roofline_power_matches_paper(self):
        power = roofline_power(num_eve_pes=256)
        assert power.total_mw == pytest.approx(PAPER_TOTAL_POWER_MW, rel=0.005)

    def test_under_one_watt_at_256(self):
        # "With 256 PEs, we comfortably blanket under 1W" (Section V).
        assert roofline_power(256).total_mw < 1000.0


class TestSweeps:
    def test_power_monotonic_in_pes(self):
        rows = pe_sweep()
        powers = [r["power_mw"] for r in rows]
        assert powers == sorted(powers)
        assert [r["num_eve_pe"] for r in rows] == [2, 4, 8, 16, 32, 64, 128, 256, 512]

    def test_area_monotonic_in_pes(self):
        rows = pe_sweep()
        areas = [r["area_mm2"] for r in rows]
        assert areas == sorted(areas)

    def test_non_eve_power_constant(self):
        p2 = roofline_power(2)
        p512 = roofline_power(512)
        assert p2.adam_mw == p512.adam_mw
        assert p2.sram_mw == p512.sram_mw
        delta = p512.total_mw - p2.total_mw
        assert delta == pytest.approx(p512.eve_mw - p2.eve_mw)

    def test_breakdown_dicts(self):
        area = area_breakdown(64)
        power = roofline_power(64)
        assert area.as_dict()["total"] == pytest.approx(area.total_mm2)
        assert power.as_dict()["total"] == pytest.approx(power.total_mw)


class TestEnergyLedger:
    def test_zero_ledger(self):
        assert EnergyLedger().total_energy_j == 0.0

    def test_component_sums(self):
        ledger = EnergyLedger(
            eve_pe_cycles=1000,
            adam_macs=1000,
            sram_reads=100,
            sram_writes=100,
            dram_accesses=10,
            noc_gene_hops=50,
            m0_cycles=20,
        )
        total = (
            ledger.eve_energy_j
            + ledger.adam_energy_j
            + ledger.sram_energy_j
            + ledger.dram_energy_j
            + ledger.noc_energy_j
            + ledger.m0_energy_j
        )
        assert ledger.total_energy_j == pytest.approx(total)
        assert ledger.total_energy_j > 0

    def test_dram_much_pricier_than_sram(self):
        sram = EnergyLedger(sram_reads=100)
        dram = EnergyLedger(dram_accesses=100)
        assert dram.total_energy_j > 50 * sram.total_energy_j

    def test_merge(self):
        a = EnergyLedger(eve_pe_cycles=10, sram_reads=5)
        b = EnergyLedger(eve_pe_cycles=20, sram_writes=7)
        a.merge(b)
        assert a.eve_pe_cycles == 30
        assert a.sram_reads == 5 and a.sram_writes == 7

    def test_as_dict_total(self):
        ledger = EnergyLedger(adam_macs=100, sram_reads=10)
        d = ledger.as_dict()
        assert d["total"] == pytest.approx(ledger.total_energy_j)


def test_cycles_to_seconds_at_200mhz():
    assert cycles_to_seconds(200_000_000) == pytest.approx(1.0)
    assert cycles_to_seconds(200) == pytest.approx(1e-6)
