"""Continuous learning across power cycles (the paper's premise).

Section I of the paper frames GeneSys around agents that "continue to
learn in the field": evolved state must survive interruption and keep
improving.  This bench exercises that story end to end through
:mod:`repro.runs` and gates its core guarantee:

1. a CartPole run recorded with artifacts is killed mid-evolution and
   resumed — the resulting ``metrics.jsonl``/``champion.json`` must be
   byte-identical to a run that was never interrupted;
2. extending the finished run's generation budget continues evolving
   from the final checkpoint with zero re-simulation of recorded
   generations;
3. the fitness table is rebuilt from artifacts alone (what
   ``repro report`` prints).
"""

import time

import pytest

from conftest import BENCH_MAX_STEPS, bench_spec, record_run
from repro.analysis.reporting import render_table
from repro.runs import RunDir, fitness_table, load_run, resume_run

GENERATIONS = 6
KILL_AT = 3


class PowerCycle(RuntimeError):
    pass


def spec():
    return bench_spec(
        "CartPole-v0", generations=GENERATIONS, max_steps=BENCH_MAX_STEPS
    ).replace(fitness_threshold=1e9)


def test_interrupted_resume_is_bit_identical(runs_root, emit):
    reference_dir = runs_root / "reference"
    start = time.perf_counter()
    record_run(spec(), reference_dir, checkpoint_every=2)
    reference_elapsed = time.perf_counter() - start

    def kill(metrics):
        if metrics.generation == KILL_AT:
            raise PowerCycle

    resumed_dir = runs_root / "resumed"
    with pytest.raises(PowerCycle):
        record_run(spec(), resumed_dir, checkpoint_every=2,
                   on_generation=kill)
    start = time.perf_counter()
    result = resume_run(resumed_dir)
    resume_elapsed = time.perf_counter() - start

    for name in ("metrics.jsonl", "champion.json", "spec.json"):
        assert (
            (resumed_dir / name).read_bytes()
            == (reference_dir / name).read_bytes()
        ), f"{name} diverged after the power cycle"

    headers, rows = fitness_table(load_run(resumed_dir))
    emit(render_table(
        headers, rows,
        title=f"Continuous learning: killed at generation {KILL_AT}, "
              f"resumed, byte-identical to uninterrupted "
              f"(full run {reference_elapsed:.2f}s, "
              f"resume {resume_elapsed:.2f}s)",
    ))
    assert result.generations == GENERATIONS


def test_extending_a_finished_run(runs_root, emit):
    run_dir = runs_root / "extended"
    record_run(spec(), run_dir, checkpoint_every=2)

    resimulated = []
    extended = resume_run(
        run_dir,
        max_generations=GENERATIONS + 3,
        on_generation=lambda m: resimulated.append(m.generation),
    )
    # Only the *new* generations ran; the recorded ones came from disk.
    assert resimulated == list(range(GENERATIONS, GENERATIONS + 3))
    assert extended.generations == GENERATIONS + 3
    assert len(RunDir(run_dir).read_metrics()) == GENERATIONS + 3
    emit(
        f"extended a finished {GENERATIONS}-generation run to "
        f"{GENERATIONS + 3} generations; re-simulated only "
        f"{len(resimulated)} generations (best fitness "
        f"{extended.best_fitness:.1f})"
    )
