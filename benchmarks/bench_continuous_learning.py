"""Continuous learning across power cycles (the paper's premise).

Section I of the paper frames GeneSys around agents that "continue to
learn in the field": evolved state must survive interruption and keep
improving.  This bench exercises that story end to end through
:mod:`repro.runs` and gates its core guarantee:

1. a CartPole run recorded with artifacts is killed mid-evolution and
   resumed — the resulting ``metrics.jsonl``/``champion.json`` must be
   byte-identical to a run that was never interrupted;
2. extending the finished run's generation budget continues evolving
   from the final checkpoint with zero re-simulation of recorded
   generations;
3. the fitness table is rebuilt from artifacts alone (what
   ``repro report`` prints);
4. the task-switch benchmark: a curriculum scenario changes the physics
   mid-run and the recorded metrics quantify forgetting at each switch
   and how many generations the population takes to recover.
"""

import time

import pytest

from conftest import BENCH_MAX_STEPS, bench_spec, record_run
from repro.analysis.reporting import render_table
from repro.runs import RunDir, fitness_table, load_run, resume_run

GENERATIONS = 6
KILL_AT = 3


class PowerCycle(RuntimeError):
    pass


def spec():
    return bench_spec(
        "CartPole-v0", generations=GENERATIONS, max_steps=BENCH_MAX_STEPS
    ).replace(fitness_threshold=1e9)


def test_interrupted_resume_is_bit_identical(runs_root, emit):
    reference_dir = runs_root / "reference"
    start = time.perf_counter()
    record_run(spec(), reference_dir, checkpoint_every=2)
    reference_elapsed = time.perf_counter() - start

    def kill(metrics):
        if metrics.generation == KILL_AT:
            raise PowerCycle

    resumed_dir = runs_root / "resumed"
    with pytest.raises(PowerCycle):
        record_run(spec(), resumed_dir, checkpoint_every=2,
                   on_generation=kill)
    start = time.perf_counter()
    result = resume_run(resumed_dir)
    resume_elapsed = time.perf_counter() - start

    for name in ("metrics.jsonl", "champion.json", "spec.json"):
        assert (
            (resumed_dir / name).read_bytes()
            == (reference_dir / name).read_bytes()
        ), f"{name} diverged after the power cycle"

    headers, rows = fitness_table(load_run(resumed_dir))
    emit(render_table(
        headers, rows,
        title=f"Continuous learning: killed at generation {KILL_AT}, "
              f"resumed, byte-identical to uninterrupted "
              f"(full run {reference_elapsed:.2f}s, "
              f"resume {resume_elapsed:.2f}s)",
    ))
    assert result.generations == GENERATIONS


def test_extending_a_finished_run(runs_root, emit):
    run_dir = runs_root / "extended"
    record_run(spec(), run_dir, checkpoint_every=2)

    resimulated = []
    extended = resume_run(
        run_dir,
        max_generations=GENERATIONS + 3,
        on_generation=lambda m: resimulated.append(m.generation),
    )
    # Only the *new* generations ran; the recorded ones came from disk.
    assert resimulated == list(range(GENERATIONS, GENERATIONS + 3))
    assert extended.generations == GENERATIONS + 3
    assert len(RunDir(run_dir).read_metrics()) == GENERATIONS + 3
    emit(
        f"extended a finished {GENERATIONS}-generation run to "
        f"{GENERATIONS + 3} generations; re-simulated only "
        f"{len(resimulated)} generations (best fitness "
        f"{extended.best_fitness:.1f})"
    )


def test_task_switch_forgetting_and_recovery(runs_root, emit):
    """Task-switch continuous learning: the environment changes under the
    population mid-run (pole length curriculum) and the run artifacts
    must quantify the damage and the comeback."""
    from repro.scenarios import ScenarioSpec, export_continual_csv

    curriculum = ScenarioSpec(
        env_id="CartPole-v0",
        curriculum={
            "mode": "fixed",
            "stages": [
                {"params": {"length": 0.5}},
                {"at_generation": 3,
                 "params": {"length": 0.1, "gravity": 25.0}},
            ],
        },
    )
    run_dir = runs_root / "task-switch"
    record_run(
        spec().replace(scenario=curriculum, max_generations=GENERATIONS),
        run_dir,
        checkpoint_every=2,
    )
    rows = RunDir(run_dir).read_metrics()
    stages = [row["scenario_stage"] for row in rows]
    assert stages == [0, 0, 0, 1, 1, 1]

    switches = export_continual_csv(rows, run_dir / "continual.csv")
    assert len(switches) == 1
    assert switches[0]["generation"] == 3
    assert switches[0]["max_forgetting"] >= 0.0

    headers, table = (
        ["gen", "stage", "best", "forgetting"],
        [
            [row["generation"], row["scenario_stage"],
             f"{row['best_fitness']:.1f}",
             f"{row['scenario_forgetting']:.1f}"
             if row.get("scenario_forgetting") is not None else "-"]
            for row in rows
        ],
    )
    recovery = switches[0]["recovery_generations"]
    emit(render_table(
        headers, table,
        title=f"Task switch at generation 3: max forgetting "
              f"{switches[0]['max_forgetting']:.1f}, recovery in "
              f"{recovery if recovery is not None else '>budget'} "
              f"generations",
    ))
