"""Ablation: NEAT vs OpenAI-ES (Salimans et al. [3]) on CartPole.

The paper positions EAs (including ES) as the backprop-free alternative
to RL, but NEAT differs from ES in evolving *structure*: ES perturbs a
fixed parameter vector.  This bench contrasts their per-generation
compute profile — NEAT's gene-level reproduction ops vs ES's
population x full-network inference — and checks both learn.
"""

import pytest

from conftest import get_trace
from repro.analysis.reporting import fmt_si, render_table
from repro.baselines.evolution_strategies import ESConfig, EvolutionStrategies
from repro.envs import make


def test_ablation_es_vs_neat_profile(benchmark, emit):
    trace = get_trace("CartPole-v0")
    neat_w = trace.mean_workload()

    env = make("CartPole-v0", seed=0)
    es = EvolutionStrategies(
        env, ESConfig(population=10, hidden_sizes=(8,), max_steps=60), seed=0
    )
    es.run(generations=3)
    es_macs_per_gen = es.stats.inference_macs // es.stats.generations
    es_steps_per_gen = es.stats.env_steps // es.stats.generations

    rows = [
        ["inference MACs / gen", fmt_si(neat_w.inference_macs), fmt_si(es_macs_per_gen)],
        ["env steps / gen", fmt_si(neat_w.env_steps), fmt_si(es_steps_per_gen)],
        ["structural ops / gen", fmt_si(neat_w.evolution_ops), "0 (fixed topology)"],
        ["parameter updates / gen", "n/a (ops above)",
         fmt_si(es.stats.parameter_updates // es.stats.generations)],
    ]
    emit(render_table(
        ["metric", "NEAT (pop 20)", "OpenAI-ES (10 pairs)"],
        rows,
        title="Ablation: NEAT vs ES per-generation compute profile",
    ))
    # ES does no structural evolution; NEAT does no dense parameter update.
    assert neat_w.evolution_ops > 0
    assert es.stats.parameter_updates > 0

    benchmark(lambda: es.policy.forward(es.theta, [0.0, 0.0, 0.0, 0.0]))


def test_ablation_both_learn_cartpole(benchmark, emit):
    from repro.api import Experiment, ExperimentSpec

    neat_result = Experiment(ExperimentSpec(
        "CartPole-v0", max_generations=10, pop_size=30, seed=1, episodes=1
    )).run()
    env = make("CartPole-v0", seed=0)
    es = EvolutionStrategies(
        env,
        ESConfig(population=12, sigma=0.2, learning_rate=0.15,
                 hidden_sizes=(8,), max_steps=200),
        seed=1,
    )
    es_best = es.run(generations=10, target=100.0)
    emit(
        f"CartPole after 10 generations: NEAT best "
        f"{neat_result.best_fitness:.0f}, ES best {es_best:.0f}"
    )
    assert neat_result.best_fitness >= 60
    assert es_best >= 30  # ES learns more slowly at this tiny budget

    benchmark(lambda: es.run_generation(99))
