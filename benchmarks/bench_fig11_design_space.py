"""Fig. 11 — gene composition, NoC ablation, and the EvE PE sweep.

(a) node vs connection gene composition per workload,
(b) SRAM reads/cycle: point-to-point bus vs multicast tree,
(c) SRAM energy and runtime per generation as a function of EvE PEs
    (with the ADAM inference runtime for comparison).

(b) and (c) replay a *real* recorded reproduction plan through the
cycle-level EvE model, exactly the paper's trace-driven methodology.
"""

import pytest

from conftest import get_trace
from repro.analysis.reporting import render_table
from repro.core.runner import config_for_env
from repro.envs.evaluate import FitnessEvaluator
from repro.envs.registry import ATARI_SUITE, CLASSIC_SUITE
from repro.hw.adam import ADAM, build_inference_plan
from repro.hw.energy import SRAM_ACCESS_ENERGY_PJ
from repro.hw.eve import EvEConfig, EvolutionEngine
from repro.hw.gene_encoding import encode_genome
from repro.hw.sram import GenomeBuffer
from repro.neat.population import Population

PE_SWEEP = [2, 4, 8, 16, 32, 64]

_WORKLOAD_CACHE = {}


def eve_replay_workload(env_id="Alien-ram-v0", pop_size=16, warm_generations=1,
                        seed=0, max_steps=40):
    """An evaluated population + reproduction plan ready for EvE replay."""
    key = (env_id, pop_size, warm_generations, seed)
    if key in _WORKLOAD_CACHE:
        return _WORKLOAD_CACHE[key]
    config = config_for_env(env_id, pop_size=pop_size)
    population = Population(config, seed=seed)
    evaluator = FitnessEvaluator(env_id, max_steps=max_steps, seed=seed)
    for _ in range(warm_generations):
        population.run_generation(evaluator)
    genomes = list(population.population.values())
    evaluator(genomes, config)
    population.species_set.adjust_fitnesses(population.generation)
    plan = population.reproduction.plan_generation(
        population.species_set, population.generation, population.rng
    )
    _WORKLOAD_CACHE[key] = (config, population.population, plan)
    return _WORKLOAD_CACHE[key]


def fresh_buffer(config, population):
    buffer = GenomeBuffer()
    for gkey, genome in population.items():
        buffer.write_genome(gkey, encode_genome(genome, config.genome))
        buffer.set_fitness(gkey, genome.fitness)
    return buffer


def test_fig11a_gene_composition(benchmark, emit):
    rows = []
    for env_id in CLASSIC_SUITE + ATARI_SUITE:
        trace = get_trace(env_id)
        w = trace.workloads[-1]
        rows.append([
            env_id, w.total_nodes, w.total_connections,
            f"{w.total_connections / max(1, w.total_nodes):.1f}",
        ])
    emit(render_table(
        ["Environment", "node genes", "connection genes", "conns/node"],
        rows,
        title="Fig 11(a): gene-type composition per workload",
    ))
    # Connection genes dominate in every workload (denser weight matrices
    # during inference -> higher ADAM utilisation, per the paper).
    for _env, nodes, conns, _ratio in rows:
        assert conns > nodes

    benchmark(lambda: get_trace("CartPole-v0").workloads[-1].total_connections)


def test_fig11b_noc_ablation(benchmark, emit):
    config, population, plan = eve_replay_workload()
    rows = []
    ratios = []
    for num_pes in PE_SWEEP:
        reads_per_cycle = {}
        for noc in ("p2p", "multicast"):
            buffer = fresh_buffer(config, population)
            eve = EvolutionEngine(EvEConfig(num_pes=num_pes, noc=noc, seed=1))
            result = eve.reproduce_generation(buffer, plan.events, plan.elite_keys)
            reads_per_cycle[noc] = result.noc_stats.reads_per_cycle
        ratio = reads_per_cycle["p2p"] / max(1e-9, reads_per_cycle["multicast"])
        ratios.append((num_pes, ratio))
        rows.append([
            num_pes,
            f"{reads_per_cycle['p2p']:.2f}",
            f"{reads_per_cycle['multicast']:.2f}",
            f"{ratio:.1f}x",
        ])
    emit(render_table(
        ["EvE PEs", "P2P reads/cycle", "Multicast reads/cycle", "savings"],
        rows,
        title="Fig 11(b): SRAM reads per cycle, point-to-point vs multicast",
    ))
    # P2P reads/cycle grow with PE count; multicast savings grow with PE
    # count (paper: >100x at 256 PEs with population 150; scaled here).
    assert ratios[-1][1] > ratios[0][1]
    assert ratios[-1][1] > 3.0

    config2, population2, plan2 = eve_replay_workload("CartPole-v0", pop_size=12)

    def replay():
        buffer = fresh_buffer(config2, population2)
        eve = EvolutionEngine(EvEConfig(num_pes=8, noc="multicast", seed=1))
        return eve.reproduce_generation(buffer, plan2.events, plan2.elite_keys)

    benchmark(replay)


def test_fig11c_pe_sweep(benchmark, emit):
    config, population, plan = eve_replay_workload()

    # ADAM inference runtime for the same generation (constant line).
    adam = ADAM()
    steps_per_genome = 40
    for genome in population.values():
        inference_plan = build_inference_plan(genome, config.genome)
        adam.run(inference_plan, [0.0] * config.genome.num_inputs)
    adam_cycles = adam.stats.total_cycles * steps_per_genome

    rows = []
    series = []
    for num_pes in PE_SWEEP:
        buffer = fresh_buffer(config, population)
        eve = EvolutionEngine(EvEConfig(num_pes=num_pes, noc="multicast", seed=1))
        result = eve.reproduce_generation(buffer, plan.events, plan.elite_keys)
        accesses = result.sram_reads + result.sram_writes
        energy_uj = accesses * SRAM_ACCESS_ENERGY_PJ * 1e-6
        series.append((num_pes, result.cycles, energy_uj))
        rows.append([
            num_pes, result.cycles, adam_cycles, f"{energy_uj:.2f}",
        ])
    emit(render_table(
        ["EvE PEs", "EvE cycles/gen", "ADAM cycles/gen", "SRAM RD+WR energy (uJ)"],
        rows,
        title="Fig 11(c): evolution runtime and SRAM energy vs EvE PE count",
    ))

    cycles = [c for _n, c, _e in series]
    energies = [e for _n, _c, e in series]
    # Evolution runtime falls monotonically with PE count (compute-bound,
    # "exponential fall off" on the log-x sweep).
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    assert cycles[0] > 3 * cycles[-1]
    # SRAM energy improves with PE count thanks to multicast GLR.
    assert energies[-1] < energies[0]

    def sweep_point():
        buffer = fresh_buffer(config, population)
        eve = EvolutionEngine(EvEConfig(num_pes=16, noc="multicast", seed=1))
        return eve.reproduce_generation(buffer, plan.events, plan.elite_keys)

    benchmark(sweep_point)
