"""Fig. 11 — gene composition, NoC ablation, and the EvE PE sweep.

(a) node vs connection gene composition per workload,
(b) SRAM reads/cycle: point-to-point bus vs multicast tree,
(c) SRAM energy and runtime per generation as a function of EvE PEs
    (with the ADAM inference runtime for comparison).

(b) and (c) replay a *real* recorded reproduction plan through the
cycle-level EvE model, exactly the paper's trace-driven methodology —
declared as :class:`repro.dse.SweepSpec` axes and driven through
:class:`repro.dse.SweepRunner` with the shared EvE replay evaluator.
The recorded workload itself comes from the session-cached
:func:`conftest.get_replay_workload`.
"""

import pytest

from conftest import get_replay_workload, get_trace
from repro.analysis.reporting import render_table
from repro.api import ExperimentSpec
from repro.dse import SweepRunner, SweepSpec, eve_replay_evaluator
from repro.envs.registry import ATARI_SUITE, CLASSIC_SUITE
from repro.hw.adam import ADAM, build_inference_plan

PE_SWEEP = [2, 4, 8, 16, 32, 64]

#: Base spec mirroring the recorded replay workload's provenance.
REPLAY_BASE = ExperimentSpec("Alien-ram-v0", pop_size=16, seed=0, max_steps=40)


def replay_sweep(axes, workload=None):
    """Run one hardware-axis sweep over the recorded reproduction plan."""
    config, population, plan = workload or get_replay_workload()
    runner = SweepRunner(
        SweepSpec(base=REPLAY_BASE, axes=axes),
        evaluate=eve_replay_evaluator(config, population, plan),
    )
    return runner.run()


def test_fig11a_gene_composition(benchmark, emit):
    rows = []
    for env_id in CLASSIC_SUITE + ATARI_SUITE:
        trace = get_trace(env_id)
        w = trace.workloads[-1]
        rows.append([
            env_id, w.total_nodes, w.total_connections,
            f"{w.total_connections / max(1, w.total_nodes):.1f}",
        ])
    emit(render_table(
        ["Environment", "node genes", "connection genes", "conns/node"],
        rows,
        title="Fig 11(a): gene-type composition per workload",
    ))
    # Connection genes dominate in every workload (denser weight matrices
    # during inference -> higher ADAM utilisation, per the paper).
    for _env, nodes, conns, _ratio in rows:
        assert conns > nodes

    benchmark(lambda: get_trace("CartPole-v0").workloads[-1].total_connections)


def test_fig11b_noc_ablation(benchmark, emit):
    result = replay_sweep(
        {"platform.eve_pes": PE_SWEEP, "platform.noc": ["p2p", "multicast"]}
    )
    reads = {
        (row["platform.eve_pes"], row["platform.noc"]): row["reads_per_cycle"]
        for row in result.rows
    }
    rows = []
    ratios = []
    for num_pes in PE_SWEEP:
        ratio = reads[(num_pes, "p2p")] / max(1e-9, reads[(num_pes, "multicast")])
        ratios.append((num_pes, ratio))
        rows.append([
            num_pes,
            f"{reads[(num_pes, 'p2p')]:.2f}",
            f"{reads[(num_pes, 'multicast')]:.2f}",
            f"{ratio:.1f}x",
        ])
    emit(render_table(
        ["EvE PEs", "P2P reads/cycle", "Multicast reads/cycle", "savings"],
        rows,
        title="Fig 11(b): SRAM reads per cycle, point-to-point vs multicast",
    ))
    # P2P reads/cycle grow with PE count; multicast savings grow with PE
    # count (paper: >100x at 256 PEs with population 150; scaled here).
    assert ratios[-1][1] > ratios[0][1]
    assert ratios[-1][1] > 3.0

    workload2 = get_replay_workload("CartPole-v0", pop_size=12)

    def replay():
        return replay_sweep(
            {"platform.eve_pes": [8], "platform.noc": ["multicast"]}, workload=workload2
        )

    benchmark(replay)


def test_fig11c_pe_sweep(benchmark, emit):
    config, population, plan = get_replay_workload()

    # ADAM inference runtime for the same generation (constant line).
    adam = ADAM()
    steps_per_genome = 40
    for genome in population.values():
        inference_plan = build_inference_plan(genome, config.genome)
        adam.run(inference_plan, [0.0] * config.genome.num_inputs)
    adam_cycles = adam.stats.total_cycles * steps_per_genome

    result = replay_sweep({"platform.eve_pes": PE_SWEEP, "platform.noc": ["multicast"]})
    rows = []
    series = []
    for row in result.rows:
        series.append((row["platform.eve_pes"], row["cycles"], row["sram_energy_uj"]))
        rows.append([
            row["platform.eve_pes"], row["cycles"], adam_cycles,
            f"{row['sram_energy_uj']:.2f}",
        ])
    emit(render_table(
        ["EvE PEs", "EvE cycles/gen", "ADAM cycles/gen", "SRAM RD+WR energy (uJ)"],
        rows,
        title="Fig 11(c): evolution runtime and SRAM energy vs EvE PE count",
    ))

    cycles = [c for _n, c, _e in series]
    energies = [e for _n, _c, e in series]
    # Evolution runtime falls monotonically with PE count (compute-bound,
    # "exponential fall off" on the log-x sweep).
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    assert cycles[0] > 3 * cycles[-1]
    # SRAM energy improves with PE count thanks to multicast GLR.
    assert energies[-1] < energies[0]

    def sweep_point():
        return replay_sweep({"platform.eve_pes": [16], "platform.noc": ["multicast"]})

    benchmark(sweep_point)
