"""Ablation: one PE per child vs spreading a genome across PEs.

Footnote 2 of the paper motivates the shipped 1-PE-per-child dataflow;
this bench quantifies the alternative on a real recorded workload:
per-child latency improves with splitting, but Gene Merge reordering and
wave multiplication erode generation throughput.
"""

import pytest

from conftest import get_replay_workload
from repro.analysis.reporting import render_table
from repro.hw.gene_encoding import encode_genome
from repro.hw.split_dataflow import sweep_pes_per_child


def test_ablation_split_dataflow(benchmark, emit):
    config, population, plan = get_replay_workload()
    # stream length per child = the fitter parent's gene count
    lengths = []
    for event in plan.events:
        parent = population[event.parent1_key]
        other = population[event.parent2_key]
        fitter = parent if (parent.fitness or 0) >= (other.fitness or 0) else other
        lengths.append(len(encode_genome(fitter, config.genome)))

    # Two regimes: PEs scarce (fewer slots than children -> waves matter)
    # and PEs abundant (splitting can only help latency).
    scarce_pes = max(2, len(lengths) // 2)
    regimes = {
        f"scarce ({scarce_pes} PEs)": sweep_pes_per_child(
            lengths, num_pes=scarce_pes, k_values=(1, 2, 4)
        ),
        "abundant (64 PEs)": sweep_pes_per_child(
            lengths, num_pes=64, k_values=(1, 2, 4)
        ),
    }
    for label, estimates in regimes.items():
        rows = [
            [est.pes_per_child, est.child_latency_cycles,
             est.merge_overhead_cycles, est.waves, est.generation_cycles]
            for est in estimates
        ]
        emit(render_table(
            ["PEs/child", "child latency (cyc)", "merge overhead (cyc)",
             "waves", "generation (cyc)"],
            rows,
            title=f"Ablation: genome-split dataflow — {label}",
        ))

    for estimates in regimes.values():
        latencies = [e.child_latency_cycles for e in estimates]
        assert latencies == sorted(latencies, reverse=True)
        assert estimates[0].merge_overhead_cycles == 0
        assert all(e.merge_overhead_cycles > 0 for e in estimates[1:])
    # When PEs are scarce, 1 PE per child maximises generation throughput
    # — the paper's design choice.
    scarce = regimes[f"scarce ({scarce_pes} PEs)"]
    assert scarce[0].generation_cycles == min(
        e.generation_cycles for e in scarce
    )

    benchmark(lambda: sweep_pes_per_child(lengths, num_pes=scarce_pes))
