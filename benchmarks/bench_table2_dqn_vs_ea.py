"""Table II — DQN vs EA compute/memory comparison, both "running ATARI".

The DQN column uses the exact op/byte accounting of the paper's conv-DQN
operating point; the EA column is measured from a recorded Atari-RAM
workload trace.  The benchmark times one DQN training step vs one EA
reproduction event at comparable scales.
"""

import numpy as np
import pytest

from conftest import get_trace
from repro.analysis.reporting import fmt_bytes, fmt_si, render_table
from repro.baselines.dqn import DQNAgent, DQNConfig, paper_dqn_accounting, ea_accounting
from repro.envs import make


def test_table2_comparison(benchmark, emit):
    dqn = paper_dqn_accounting(replay_entries=100, batch_size=32)
    trace = get_trace("Alien-ram-v0")
    w = trace.mean_workload()
    ea = ea_accounting(w.inference_macs, w.evolution_ops, w.footprint_bytes)

    rows = [
        ["Compute",
         f"{fmt_si(dqn['forward_macs'])} MACs fwd, "
         f"{fmt_si(dqn['gradient_calcs'])} gradient calcs in BP",
         f"{fmt_si(ea['inference_macs'])} MACs inference, "
         f"{fmt_si(ea['evolution_ops'])} crossover+mutations"],
        ["Memory",
         f"{fmt_bytes(dqn['replay_bytes'])} replay (100 entries), "
         f"{fmt_bytes(dqn['param_activation_bytes'])} params+activations",
         f"{fmt_bytes(ea['generation_bytes'])} to fit entire generation"],
        ["Parallelism", dqn["parallelism"], ea["parallelism"]],
        ["Regularity", dqn["regularity"], ea["regularity"]],
    ]
    emit(render_table(["", "DQN", "EA"], rows, title="Table II (reproduced)"))

    # Shape checks against the paper's numbers:
    assert 2.5e6 <= dqn["forward_macs"] <= 3.5e6          # "3M MAC ops"
    assert 6.0e5 <= dqn["gradient_calcs"] <= 7.5e5        # "680K gradients"
    assert ea["generation_bytes"] < 1 << 20               # "<1MB"
    # EA needs far less compute than DQN forward+backward at Atari scale
    assert ea["inference_macs"] < dqn["forward_macs"]

    # Benchmark one DQN learning step on the RAM env.
    env = make("Alien-ram-v0", seed=0)
    agent = DQNAgent(env, DQNConfig(hidden_sizes=(64,), warmup_transitions=32,
                                    batch_size=32), seed=0)
    state = env.reset()
    for _ in range(64):
        action = agent.select_action(state)
        next_state, reward, done, _ = env.step(action)
        agent.memory.push(state, action, reward, next_state, done)
        state = env.reset() if done else next_state

    benchmark(agent._learn)


def test_table2_extended_measured_profiles(benchmark, emit):
    """Table II extended: measured per-episode op profiles of every
    learner family implemented here (DQN, REINFORCE, OpenAI-ES, NEAT) on
    the same environment — the backprop-vs-perturbation contrast of
    Section II, with real counters rather than analytical accounting."""
    from repro.baselines.evolution_strategies import ESConfig, EvolutionStrategies
    from repro.baselines.reinforce import ReinforceAgent, ReinforceConfig

    env_id = "CartPole-v0"

    dqn_env = make(env_id, seed=0)
    dqn = DQNAgent(dqn_env, DQNConfig(hidden_sizes=(32,), warmup_transitions=32,
                                      batch_size=16), seed=0)
    for _ in range(5):
        dqn.train_episode(max_steps=50)

    pg_env = make(env_id, seed=0)
    reinforce = ReinforceAgent(pg_env, ReinforceConfig(max_steps=50), seed=0)
    for episode in range(5):
        reinforce.train_episode(episode_seed=episode)

    es_env = make(env_id, seed=0)
    es = EvolutionStrategies(es_env, ESConfig(population=6, max_steps=50), seed=0)
    es.run(generations=2)

    neat_w = get_trace(env_id).mean_workload()

    rows = [
        ["DQN",
         fmt_si(dqn.online.counters.forward_macs),
         fmt_si(dqn.online.counters.backward_macs),
         fmt_si(dqn.online.counters.gradient_calcs),
         "0"],
        ["REINFORCE",
         fmt_si(reinforce.policy.counters.forward_macs),
         fmt_si(reinforce.policy.counters.backward_macs),
         fmt_si(reinforce.policy.counters.gradient_calcs),
         "0"],
        ["OpenAI-ES",
         fmt_si(es.stats.inference_macs),
         "0 (no backprop)",
         "0",
         "0 (fixed topology)"],
        ["NEAT (per gen)",
         fmt_si(neat_w.inference_macs),
         "0 (no backprop)",
         "0",
         fmt_si(neat_w.evolution_ops)],
    ]
    emit(render_table(
        ["learner", "fwd MACs", "bwd MACs", "gradient calcs", "evolution ops"],
        rows,
        title="Table II (extended): measured learner op profiles on CartPole",
    ))
    # The structural contrast: only backprop families compute gradients;
    # only NEAT performs structural evolution ops.
    assert dqn.online.counters.gradient_calcs > 0
    assert reinforce.policy.counters.gradient_calcs > 0
    assert neat_w.evolution_ops > 0

    benchmark(lambda: reinforce.policy.forward([0.0] * 4))


def test_dqn_actually_learns_a_ram_env(benchmark, emit):
    """Sanity: the DQN baseline is a real, improving learner (not a stub)."""
    env = make("Asterix-ram-v0", seed=0)
    agent = DQNAgent(
        env,
        DQNConfig(hidden_sizes=(32,), warmup_transitions=64, batch_size=16,
                  epsilon_decay_steps=1500, learning_rate=3e-4),
        seed=0,
    )
    first = np.mean([agent.train_episode(max_steps=80) for _ in range(5)])
    for _ in range(15):
        agent.train_episode(max_steps=80)
    last = np.mean([agent.evaluate_episode(max_steps=80) for _ in range(5)])
    emit(f"DQN on Asterix-ram: first-5 train return {first:.1f}, "
         f"greedy eval after training {last:.1f}")
    assert np.isfinite(last)

    benchmark(lambda: agent.evaluate_episode(max_steps=40))
