"""The disabled-tracer overhead gate for :mod:`repro.obs`.

Instrumentation earns its keep only if it costs nothing when off: with
no tracer installed every ``obs.span(...)`` is one module-global read
and the shared null-span context — and this bench holds that to the
<= 2% gate on a paper-scale generation (150 CartPole genomes,
Section III-D3) across the serial, pooled (``workers=2``) and
vectorized evaluation paths.

Three modes per path:

* **baseline** — the instrumentation monkey-patched to bare stubs, the
  closest measurable stand-in for uninstrumented code (the call sites
  themselves cannot be removed without editing the modules);
* **disabled** — the real dispatch with no tracer installed (what every
  untraced run pays); the gate is ``disabled <= baseline * 1.02 + eps``
  with a small absolute epsilon so sub-millisecond timer noise cannot
  fail a run that is fast in absolute terms;
* **enabled** — a real tracer appending to a scratch file, reported for
  context (generation-granularity spans make this cheap, but it is not
  gated: enabled tracing is opt-in).

Measurements land in a JSON artifact (``BENCH_OBS_OVERHEAD_JSON``
overrides the path) for CI upload, like ``bench_soc_vectorized.py``.
"""

import json
import os
import time

from repro import obs
from repro.api.parallel import ParallelFitnessEvaluator
from repro.core.runner import config_for_env
from repro.envs.evaluate import FitnessEvaluator
from repro.neat.compiled import BatchedEvaluator
from repro.neat.population import Population

ENV_ID = "CartPole-v0"
POP_SIZE = 150  # the paper's population (Section III-D3)
MAX_STEPS = 60
REPEATS = 3
OVERHEAD_GATE = 1.02  # disabled tracing within 2% of the stub baseline
EPSILON_S = 0.025

ARTIFACT_ENV_VAR = "BENCH_OBS_OVERHEAD_JSON"
DEFAULT_ARTIFACT = "bench_obs_overhead.json"


class _StubSpan:
    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False

    def set(self, **_attrs):
        return self


_STUB_SPAN = _StubSpan()


def _stub_span(_name, **_attrs):
    return _STUB_SPAN


def _stub_incr(_name, _value=1, **_attrs):
    return None


def _evaluators():
    """(label, factory) for each evaluation path, constructor-fresh so
    every mode sees identical generation/seed sequences."""
    return [
        ("serial", lambda: FitnessEvaluator(
            ENV_ID, max_steps=MAX_STEPS, seed=0)),
        ("workers2", lambda: ParallelFitnessEvaluator(
            ENV_ID, max_steps=MAX_STEPS, seed=0, workers=2)),
        ("vectorized", lambda: BatchedEvaluator(
            ENV_ID, max_steps=MAX_STEPS, seed=0)),
    ]


def _time_generation(evaluator, genomes, config):
    """Best-of-REPEATS wall time for one generation evaluation.

    The evaluator's generation counter is pinned back to zero before
    every repetition so each one rolls out the exact same episodes —
    repeats measure the machine, not seed-dependent episode lengths.
    """
    best = float("inf")
    evaluator(genomes, config)  # warmup: pools, env caches
    for _ in range(REPEATS):
        evaluator._generation = 0
        start = time.perf_counter()
        evaluator(genomes, config)
        best = min(best, time.perf_counter() - start)
    return best


def _measure(mode, factory, genomes, config, tmp_path):
    """One (mode, path) cell: seconds for a 150-genome generation."""
    evaluator = factory()
    try:
        if mode == "baseline":
            saved = (obs.span, obs.incr)
            obs.span, obs.incr = _stub_span, _stub_incr
            try:
                return _time_generation(evaluator, genomes, config)
            finally:
                obs.span, obs.incr = saved
        if mode == "enabled":
            with obs.tracing(tmp_path / f"telemetry-{id(evaluator)}.jsonl"):
                return _time_generation(evaluator, genomes, config)
        assert obs.current() is None  # "disabled" must really be off
        return _time_generation(evaluator, genomes, config)
    finally:
        if hasattr(evaluator, "close"):
            evaluator.close()


def test_disabled_tracer_overhead_within_gate(emit, tmp_path):
    config = config_for_env(ENV_ID, pop_size=POP_SIZE)
    genomes = list(Population(config, seed=0).population.values())

    results = {}
    for path_label, factory in _evaluators():
        cell = {
            mode: _measure(mode, factory, genomes, config, tmp_path)
            for mode in ("baseline", "disabled", "enabled")
        }
        cell["overhead"] = cell["disabled"] / cell["baseline"]
        results[path_label] = cell

    lines = [
        f"Tracer overhead: {POP_SIZE}-genome {ENV_ID} generation "
        f"(best of {REPEATS}; gate: disabled <= baseline * "
        f"{OVERHEAD_GATE} + {EPSILON_S}s)"
    ]
    for path_label, cell in results.items():
        lines.append(
            f"  {path_label:<10} baseline {cell['baseline'] * 1e3:8.1f} ms"
            f"  disabled {cell['disabled'] * 1e3:8.1f} ms"
            f"  enabled {cell['enabled'] * 1e3:8.1f} ms"
            f"  overhead {100 * (cell['overhead'] - 1):+6.2f}%"
        )
    emit("\n".join(lines))

    artifact = {
        "env_id": ENV_ID,
        "pop_size": POP_SIZE,
        "max_steps": MAX_STEPS,
        "repeats": REPEATS,
        "overhead_gate": OVERHEAD_GATE,
        "epsilon_seconds": EPSILON_S,
        "paths": results,
    }
    path = os.environ.get(ARTIFACT_ENV_VAR, DEFAULT_ARTIFACT)
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for path_label, cell in results.items():
        limit = cell["baseline"] * OVERHEAD_GATE + EPSILON_S
        assert cell["disabled"] <= limit, (
            f"{path_label}: disabled tracing took {cell['disabled']:.4f}s "
            f"vs baseline {cell['baseline']:.4f}s "
            f"(limit {limit:.4f}s) — the no-op fast path has regressed"
        )
