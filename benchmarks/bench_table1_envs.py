"""Table I — the OpenAI-gym environment suite.

Regenerates the environment/observation/action rows of Table I from the
implemented substrate, and benchmarks raw environment step throughput.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.envs import CANONICAL_IDS, make
from repro.envs.spaces import Box, Discrete


def describe_space(space):
    if isinstance(space, Discrete):
        return f"1 integer < {space.n}"
    if isinstance(space, Box):
        return f"{space.flat_dim} floats"
    return repr(space)


def test_table1_rows(benchmark, emit):
    rows = []
    for env_id in CANONICAL_IDS:
        env = make(env_id, seed=0)
        rows.append(
            [env_id, describe_space(env.observation_space),
             describe_space(env.action_space), env.max_episode_steps]
        )
    emit(render_table(
        ["Environment", "Observation", "Action", "Step limit"],
        rows,
        title="Table I: environment suite (reproduced)",
    ))

    env = make("CartPole-v0", seed=0)

    def run_steps():
        env.reset()
        for _ in range(100):
            _obs, _r, done, _i = env.step(0)
            if done:
                env.reset()

    benchmark(run_steps)


def test_table1_spaces_match_paper(benchmark, emit):
    """The paper's stated dimensions for every Table I row."""
    expected = {
        "Acrobot-v1": (6, 3),
        "BipedalWalker-v2": (24, 4),
        "CartPole-v0": (4, 2),
        "MountainCar-v0": (2, 3),
        "LunarLander-v2": (8, 4),
        "AirRaid-ram-v0": (128, 6),
        "Alien-ram-v0": (128, 6),
        "Asterix-ram-v0": (128, 6),
        "Amidar-ram-v0": (128, 6),
    }
    mismatches = []
    for env_id, (obs, act) in expected.items():
        env = make(env_id)
        if (env.num_observations, env.num_actions) != (obs, act):
            mismatches.append(env_id)
    assert not mismatches
    benchmark(lambda: [make(env_id) for env_id in expected])
