"""Batched inference engine vs the scalar reference (ISSUE 2 acceptance).

The paper's premise is that levelised NEAT graphs pack into matrix-vector
waves that evaluate far faster than a node-by-node graph walk (Section
IV-A).  This bench demonstrates the software version of that claim: one
full 150-genome CartPole generation — the paper's population size — is
evaluated by the scalar :class:`repro.envs.FitnessEvaluator` and by the
compiled :class:`repro.neat.BatchedEvaluator`, on identical derived
episode seeds.  The vectorized path must be >= 5x faster *and* produce
bit-identical fitnesses.

The population is first evolved for a few generations so the timed
genomes carry evolved hidden structure rather than the trivial initial
topology.
"""

import time

import numpy as np

from repro.core.runner import config_for_env
from repro.envs.evaluate import FitnessEvaluator
from repro.neat.compiled import BatchedEvaluator, compile_network
from repro.neat.network import FeedForwardNetwork
from repro.neat.population import Population

ENV_ID = "CartPole-v0"
POP_SIZE = 150  # the paper's population (Section III-D3)
WARMUP_GENERATIONS = 6
# 3 rollouts per genome: 450 concurrent lanes. The gate holds from
# episodes=1 up, but more lanes amortise the per-step numpy dispatch
# better (~5.4x at 2 episodes, ~6.7x at 3 on a laptop-class core),
# buying headroom against noisy shared CI runners.
EPISODES = 3
REPEATS = 3
REQUIRED_SPEEDUP = 5.0

_POPULATION_CACHE = {}


def evolved_population():
    """A 150-genome CartPole population with evolved topology (cached)."""
    if ENV_ID not in _POPULATION_CACHE:
        config = config_for_env(ENV_ID, POP_SIZE, None)
        population = Population(config, seed=0)
        evaluator = FitnessEvaluator(ENV_ID, episodes=1, seed=0)
        for _ in range(WARMUP_GENERATIONS):
            population.run_generation(evaluator)
        _POPULATION_CACHE[ENV_ID] = (config, list(population.population.values()))
    return _POPULATION_CACHE[ENV_ID]


def _best_time(evaluator_factory, genomes, config):
    """Fitnesses plus best-of-N wall time for one generation evaluation.

    A fresh evaluator per repetition pins the internal generation counter
    (and therefore the derived episode seeds) so both paths replay the
    same episodes every time.
    """
    best = float("inf")
    fitnesses = None
    for _ in range(REPEATS):
        evaluator = evaluator_factory()
        start = time.perf_counter()
        evaluator(genomes, config)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        fitnesses = [g.fitness for g in genomes]
    return fitnesses, best


def test_batched_generation_speedup(emit):
    config, genomes = evolved_population()

    scalar_fit, scalar_t = _best_time(
        lambda: FitnessEvaluator(ENV_ID, episodes=EPISODES, seed=0),
        genomes, config,
    )
    batched_fit, batched_t = _best_time(
        lambda: BatchedEvaluator(ENV_ID, episodes=EPISODES, seed=0),
        genomes, config,
    )
    speedup = scalar_t / batched_t

    emit(
        f"Batched inference: {POP_SIZE}-genome {ENV_ID} generation "
        f"({EPISODES} episodes/genome, after {WARMUP_GENERATIONS} "
        f"generations of evolution)\n"
        f"  scalar     {scalar_t * 1e3:8.1f} ms\n"
        f"  vectorized {batched_t * 1e3:8.1f} ms\n"
        f"  speedup    {speedup:8.1f} x (required >= {REQUIRED_SPEEDUP})"
    )

    assert batched_fit == scalar_fit, "vectorized fitnesses diverged from scalar"
    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched inference only {speedup:.1f}x faster "
        f"(need >= {REQUIRED_SPEEDUP}x)"
    )


def test_compiled_forward_throughput(benchmark, emit):
    """Single-genome packed forward passes vs the node-by-node walk."""
    config, genomes = evolved_population()
    genome = max(genomes, key=lambda g: len(g.connections))
    network = FeedForwardNetwork.create(genome, config.genome)
    plan = compile_network(genome, config.genome)
    rng = np.random.default_rng(0)
    batch = rng.uniform(-1.0, 1.0, size=(256, plan.num_inputs))

    reference = np.array([network.activate(row.tolist()) for row in batch])
    packed = plan.activate_batch(batch)
    assert np.allclose(packed, reference, atol=1e-9)

    start = time.perf_counter()
    for row in batch:
        network.activate(row.tolist())
    scalar_t = time.perf_counter() - start
    benchmark(lambda: plan.activate_batch(batch))
    emit(
        f"Compiled forward (256-row batch, {len(genome.connections)} conns): "
        f"scalar loop {scalar_t * 1e3:.2f} ms/batch; batched timing above"
    )
