"""Population-vectorised SoC evaluation vs the serial walkthrough.

The cycle-level SoC used to cost one generation by tracing every genome
through :meth:`repro.hw.adam.ADAM.run` one env step at a time.  The
vectorised path compiles the population into lockstep numpy lanes and
charges the ADAM counters through one
:class:`repro.hw.adam.StackedAdamEnvelope` (per-pass costs are static
per plan, so cost = per-pass x steps in exact integer arithmetic).

Gate, mirroring ``bench_batched_inference.py``: one 150-genome CartPole
generation — the paper's population size — must evaluate >= 5x faster
vectorised *and* produce bit-identical fitnesses, ADAM counters and SRAM
traffic.  The measurements are also written as a JSON artifact (path
overridable via ``BENCH_SOC_VECTORIZED_JSON``) for CI upload.
"""

import json
import os
import time
from dataclasses import astuple

from repro.core.config import GeneSysConfig
from repro.core.runner import config_for_env
from repro.core.soc import GeneSysSoC
from repro.hw.eve import EvEConfig

ENV_ID = "CartPole-v0"
POP_SIZE = 150  # the paper's population (Section III-D3)
WARMUP_GENERATIONS = 3
EPISODES = 2
MAX_STEPS = 80
REPEATS = 3
REQUIRED_SPEEDUP = 5.0

ARTIFACT_ENV_VAR = "BENCH_SOC_VECTORIZED_JSON"
DEFAULT_ARTIFACT = "bench_soc_vectorized.json"


def evolved_soc():
    """A 150-genome SoC a few generations in, so the timed population
    carries evolved hidden structure rather than the trivial initial
    topology."""
    neat = config_for_env(ENV_ID, pop_size=POP_SIZE)
    config = GeneSysConfig(neat=neat, eve=EvEConfig(num_pes=32), seed=0)
    soc = GeneSysSoC(
        config, ENV_ID, episodes=EPISODES, max_steps=MAX_STEPS
    )
    for _ in range(WARMUP_GENERATIONS):
        soc.run_generation()
    return soc


def _timed_evaluation(soc, vectorize):
    """(fitnesses, inference stats, sram stats, best-of-N time) for one
    generation evaluation.

    ``evaluate_population`` never advances the generation counter, so the
    derived episode seeds — and therefore the rollouts — are identical
    on every repetition and across both paths.
    """
    soc.vectorize = vectorize
    best = float("inf")
    observed = None
    for _ in range(REPEATS):
        soc.adam.reset_stats()
        soc.buffer.reset_stats()
        start = time.perf_counter()
        soc.evaluate_population()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        observed = (
            {k: g.fitness for k, g in soc.population.items()},
            astuple(soc.adam.reset_stats()),
            astuple(soc.buffer.reset_stats()),
        )
    return observed + (best,)


def test_vectorized_generation_speedup(emit):
    soc = evolved_soc()

    serial_fit, serial_adam, serial_sram, serial_t = _timed_evaluation(
        soc, vectorize=False
    )
    vec_fit, vec_adam, vec_sram, vec_t = _timed_evaluation(
        soc, vectorize=True
    )
    speedup = serial_t / vec_t

    emit(
        f"Vectorized SoC evaluation: {POP_SIZE}-genome {ENV_ID} "
        f"generation ({EPISODES} episodes/genome, after "
        f"{WARMUP_GENERATIONS} generations of evolution)\n"
        f"  serial     {serial_t * 1e3:8.1f} ms\n"
        f"  vectorized {vec_t * 1e3:8.1f} ms\n"
        f"  speedup    {speedup:8.1f} x (required >= {REQUIRED_SPEEDUP})"
    )

    artifact = {
        "env_id": ENV_ID,
        "pop_size": POP_SIZE,
        "episodes": EPISODES,
        "max_steps": MAX_STEPS,
        "warmup_generations": WARMUP_GENERATIONS,
        "repeats": REPEATS,
        "serial_seconds": serial_t,
        "vectorized_seconds": vec_t,
        "speedup": speedup,
        "required_speedup": REQUIRED_SPEEDUP,
        "bit_identical": serial_fit == vec_fit
        and serial_adam == vec_adam
        and serial_sram == vec_sram,
    }
    path = os.environ.get(ARTIFACT_ENV_VAR, DEFAULT_ARTIFACT)
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert vec_fit == serial_fit, "vectorized fitnesses diverged from serial"
    assert vec_adam == serial_adam, "ADAM counters diverged from serial"
    assert vec_sram == serial_sram, "SRAM traffic diverged from serial"
    assert speedup >= REQUIRED_SPEEDUP, (
        f"vectorized SoC evaluation only {speedup:.1f}x faster "
        f"(need >= {REQUIRED_SPEEDUP}x)"
    )
