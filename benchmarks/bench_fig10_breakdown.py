"""Fig. 10 — where inference time goes, and memory footprints.

(a) GPU_a transfer/kernel split, (b) GPU_b split, (c) GENESYS split,
(d) on-chip memory requirement for GPU_a vs GPU_b vs GENESYS.
"""

import pytest

from repro.analysis.reporting import fmt_bytes, fmt_seconds, render_table
from repro.envs.registry import EVALUATION_SUITE
from repro.platforms import footprint_comparison, genesys, gpu_a, gpu_b


def test_fig10abc_time_distribution(benchmark, emit, evaluation_traces):
    platforms = [("GPU_a", gpu_a()), ("GPU_b", gpu_b()), ("GENESYS", genesys())]
    for label, platform in platforms:
        rows = []
        for env_id in EVALUATION_SUITE:
            w = evaluation_traces[env_id].mean_workload()
            cost = platform.inference_cost(w)
            rows.append([
                env_id,
                fmt_seconds(cost.transfer_s),
                fmt_seconds(cost.compute_s),
                f"{cost.transfer_fraction:.0%}",
            ])
        emit(render_table(
            ["Environment", "transfer", "kernel/compute", "transfer %"],
            rows,
            title=f"Fig 10: {label} inference time split",
        ))

    # Shape targets: GPU_a ~70% transfer, GPU_b well below GPU_a,
    # GENESYS ~15% (all data on chip).
    fracs = {}
    for label, platform in platforms:
        w = evaluation_traces["Alien-ram-v0"].mean_workload()
        fracs[label] = platform.inference_cost(w).transfer_fraction
    assert 0.5 <= fracs["GPU_a"] <= 0.85
    assert fracs["GPU_b"] < fracs["GPU_a"]
    assert fracs["GENESYS"] == pytest.approx(0.15, abs=0.02)

    w = evaluation_traces["Alien-ram-v0"].mean_workload()
    benchmark(lambda: gpu_b().inference_cost(w))


def test_fig10d_memory_footprint(benchmark, emit, evaluation_traces):
    # The paper plots MountainCar and Amidar-RAM.
    rows = []
    checks = {}
    for env_id in ["MountainCar-v0", "Amidar-ram-v0"]:
        w = evaluation_traces[env_id].mean_workload()
        foot = footprint_comparison(w, [gpu_a(), gpu_b(), genesys()])
        rows.append([
            env_id,
            fmt_bytes(foot["GPU_a"]),
            fmt_bytes(foot["GPU_b"]),
            fmt_bytes(foot["GENESYS"]),
        ])
        checks[env_id] = foot
    emit(render_table(
        ["Environment", "GPU_a", "GPU_b", "GENESYS"],
        rows,
        title="Fig 10(d): memory requirement per platform",
    ))
    # Orderings from the paper: GENESYS holds the whole population (more
    # than GPU_a's single compacted genome), GPU_b's uncompacted tensors
    # dwarf both on the Atari-class workload.
    amidar = checks["Amidar-ram-v0"]
    assert amidar["GPU_a"] < amidar["GENESYS"] < amidar["GPU_b"]

    w = evaluation_traces["Amidar-ram-v0"].mean_workload()
    benchmark(lambda: footprint_comparison(w, [gpu_a(), gpu_b(), genesys()]))
