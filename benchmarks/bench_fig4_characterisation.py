"""Fig. 4 — evolution behaviour vs generation.

(a) normalised fitness, (b) total gene count, (c) fittest-parent reuse.
One multi-run NEAT characterisation feeds all three panels; the bench
measures the cost of one full NEAT generation (evaluate + reproduce).
"""

import pytest

from conftest import bench_spec
from repro.analysis.characterization import characterise_env
from repro.analysis.reporting import render_series, render_table
from repro.api import build_evaluator
from repro.core.runner import config_for_env
from repro.neat.population import Population

#: Fig. 4(a) plots these four workloads.
FIG4A_ENVS = ["CartPole-v0", "LunarLander-v2", "MountainCar-v0", "Asterix-ram-v0"]

_CHAR_CACHE = {}


def characterisation(env_id):
    if env_id not in _CHAR_CACHE:
        _CHAR_CACHE[env_id] = characterise_env(
            env_id, runs=2, generations=8, pop_size=20, max_steps=60, base_seed=0,
            stop_at_solve=False,
        )
    return _CHAR_CACHE[env_id]


def test_fig4a_normalised_fitness(benchmark, emit):
    series = {}
    for env_id in FIG4A_ENVS:
        char = characterisation(env_id)
        series[env_id] = char.mean_normalised_fitness()
    length = max(len(s) for s in series.values())
    padded = {
        k: v + [v[-1]] * (length - len(v)) for k, v in series.items()
    }
    emit(render_series(
        "Fig 4(a): normalised best fitness vs generation (mean over runs)",
        list(range(length)), padded, x_label="gen",
    ))
    # every individual run's normalised curve peaks at exactly 1.0
    for env_id in FIG4A_ENVS:
        for curve in characterisation(env_id).normalised_fitness_curves():
            assert max(curve) == pytest.approx(1.0)

    spec = bench_spec("CartPole-v0")
    config = config_for_env(spec.env_id, pop_size=spec.pop_size)
    population = Population(config, seed=spec.seed)
    evaluator = build_evaluator(
        spec.env_id, max_steps=spec.max_steps, seed=spec.seed,
        workers=spec.workers,
    )
    benchmark(lambda: population.run_generation(evaluator))


def test_fig4b_gene_growth(benchmark, emit):
    rows = []
    for env_id in ["CartPole-v0", "LunarLander-v2", "MountainCar-v0",
                   "AirRaid-ram-v0", "Alien-ram-v0", "Asterix-ram-v0"]:
        char = characterisation(env_id)
        series = char.gene_count_series()
        rows.append([env_id, int(series[0]), int(series[-1]),
                     f"{series[-1] / series[0]:.2f}x"])
    emit(render_table(
        ["Environment", "genes @gen0", "genes @end", "growth"],
        rows,
        title="Fig 4(b): total gene count growth (population-wide)",
    ))
    # the paper's two classes: classic ~10^2-10^4 genes, Atari ~10^5
    # (scaled: Atari >> classic at any population size)
    classic = characterisation("CartPole-v0").gene_count_series()[-1]
    atari = characterisation("Alien-ram-v0").gene_count_series()[-1]
    assert atari > 10 * classic

    char = characterisation("CartPole-v0")
    benchmark(char.gene_count_series)


def test_fig4c_fittest_parent_reuse(benchmark, emit):
    rows = []
    for env_id in FIG4A_ENVS:
        char = characterisation(env_id)
        dist = char.reuse_distribution()
        if not dist:
            continue
        rows.append([env_id, min(dist), max(dist),
                     f"{sum(dist) / len(dist):.1f}"])
    emit(render_table(
        ["Environment", "min", "max", "mean"],
        rows,
        title="Fig 4(c): fittest-parent reuse per generation",
    ))
    # GLR exists: the fittest parent breeds multiple children every
    # generation (paper: ~20 mean, up to 80 at population 150; scales with
    # population — at pop 20 expect >= 2).
    for _env, _mn, mx, _mean in rows:
        assert mx >= 2

    char = characterisation("CartPole-v0")
    benchmark(char.reuse_distribution)
