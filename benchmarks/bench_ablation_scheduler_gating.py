"""Ablations beyond the paper's figures.

1. PE allocation policy: the paper's greedy GLR-aware allocation
   (Section IV-C5) vs a naive round-robin — measured as SRAM reads on the
   multicast NoC.
2. Clock/power gating (Section VI-D discussion): average SoC power as
   the environment-interaction window grows.
"""

import pytest

from conftest import fresh_buffer, get_replay_workload
from repro.analysis.reporting import render_table
from repro.hw.energy import gated_power
from repro.hw.eve import EvEConfig, EvolutionEngine


def test_ablation_pe_allocation(benchmark, emit):
    config, population, plan = get_replay_workload()
    rows = []
    reads = {}
    for scheduler in ("greedy", "round-robin"):
        buffer = fresh_buffer(config, population)
        eve = EvolutionEngine(EvEConfig(
            num_pes=4, noc="multicast", scheduler=scheduler, seed=1,
        ))
        result = eve.reproduce_generation(buffer, plan.events, plan.elite_keys)
        reads[scheduler] = result.sram_reads
        rows.append([scheduler, result.sram_reads, result.cycles, result.waves])
    emit(render_table(
        ["scheduler", "SRAM reads/gen", "cycles/gen", "waves"],
        rows,
        title="Ablation: PE allocation policy (multicast NoC, 4 PEs)",
    ))
    # Greedy co-schedules siblings, so multicast deduplicates their parent
    # streams; round-robin scatters them across waves.
    assert reads["greedy"] <= reads["round-robin"]

    def run_greedy():
        buffer = fresh_buffer(config, population)
        eve = EvolutionEngine(EvEConfig(num_pes=4, noc="multicast", seed=1))
        return eve.reproduce_generation(buffer, plan.events, plan.elite_keys)

    benchmark(run_greedy)


def test_ablation_gating(benchmark, emit):
    """Average power vs environment-interaction window (Section VI-D)."""
    compute_s = 50e-6  # a generation's compute window at 256 PEs
    rows = []
    for interaction_ms in (0.0, 0.1, 1.0, 10.0, 100.0):
        interaction_s = interaction_ms * 1e-3
        none = gated_power(compute_s, interaction_s, mode="none")
        clock = gated_power(compute_s, interaction_s, mode="clock")
        power = gated_power(compute_s, interaction_s, mode="power")
        rows.append([
            f"{interaction_ms:g}",
            f"{none.duty_cycle:.2%}",
            f"{none.average_power_mw:.1f}",
            f"{clock.average_power_mw:.1f}",
            f"{power.average_power_mw:.1f}",
        ])
    emit(render_table(
        ["env interaction (ms)", "duty cycle", "no gating mW",
         "clock gating mW", "power gating mW"],
        rows,
        title="Ablation: clock/power gating vs interaction window",
    ))
    # With realistic (slow) environments the SoC spends almost all time
    # waiting, so gating wins large factors over the roofline.
    busy = gated_power(compute_s, 0.0, mode="none").average_power_mw
    idle_gated = gated_power(compute_s, 0.1, mode="power").average_power_mw
    assert idle_gated < 0.1 * busy

    benchmark(lambda: gated_power(compute_s, 0.01, mode="clock").average_power_mw)
