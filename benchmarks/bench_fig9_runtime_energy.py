"""Fig. 9 — per-generation runtime and energy across platforms.

(a) inference runtime, (b) inference energy, (c) evolution runtime,
(d) evolution energy — for the six evaluation workloads on the Table III
platform matrix.  Absolute numbers are model-based; the reproduction
targets are the paper's orderings and orders-of-magnitude gaps.
"""

import math

import pytest

from repro.analysis.reporting import fmt_joules, fmt_seconds, render_table
from repro.envs.registry import EVALUATION_SUITE
from repro.platforms import all_platforms, genesys, gpu_a, gpu_b, gpu_c, gpu_d, table3


def _phase_table(traces, phase):
    platforms = all_platforms()
    headers = ["Environment"] + [p.name for p in platforms]
    runtime_rows, energy_rows = [], []
    for env_id in EVALUATION_SUITE:
        workload = traces[env_id].mean_workload()
        runtime_row, energy_row = [env_id], [env_id]
        for platform in platforms:
            cost = getattr(platform, f"{phase}_cost")(workload)
            runtime_row.append(fmt_seconds(cost.runtime_s))
            energy_row.append(fmt_joules(cost.energy_j))
        runtime_rows.append(runtime_row)
        energy_rows.append(energy_row)
    return headers, runtime_rows, energy_rows


def test_table3_configurations(benchmark, emit):
    rows = [[r["Legend"], r["Inference"], r["Evolution"], r["Platform"]]
            for r in table3()]
    emit(render_table(["Legend", "Inference", "Evolution", "Platform"], rows,
                      title="Table III: target system configurations"))
    benchmark(table3)


def test_fig9ab_inference(benchmark, emit, evaluation_traces):
    headers, runtime_rows, energy_rows = _phase_table(evaluation_traces, "inference")
    emit(render_table(headers, runtime_rows,
                      title="Fig 9(a): inference runtime per generation"))
    emit(render_table(headers, energy_rows,
                      title="Fig 9(b): inference energy per generation"))

    g = genesys()
    for env_id in EVALUATION_SUITE:
        w = evaluation_traces[env_id].mean_workload()
        ours = g.inference_cost(w)
        best_gpu = min(
            (p.inference_cost(w) for p in (gpu_a(), gpu_b(), gpu_c(), gpu_d())),
            key=lambda c: c.runtime_s,
        )
        # Paper: "Genesys outperforms the best GPU implementation by 100x
        # in inference" — assert >= 1 order at bench scale.
        assert best_gpu.runtime_s / ours.runtime_s >= 10, env_id

    w = evaluation_traces["CartPole-v0"].mean_workload()
    benchmark(lambda: [p.inference_cost(w) for p in all_platforms()])


def test_fig9cd_evolution(benchmark, emit, evaluation_traces):
    headers, runtime_rows, energy_rows = _phase_table(evaluation_traces, "evolution")
    emit(render_table(headers, runtime_rows,
                      title="Fig 9(c): evolution runtime per generation"))
    emit(render_table(headers, energy_rows,
                      title="Fig 9(d): evolution energy per generation"))

    g = genesys()
    for env_id in EVALUATION_SUITE:
        w = evaluation_traces[env_id].mean_workload()
        if w.evolution_ops == 0:
            continue
        ours = g.evolution_cost(w).energy_j
        vs_gpu_c = gpu_c().evolution_cost(w).energy_j
        orders = math.log10(vs_gpu_c / ours)
        # Paper: EvE is 4-5 orders more energy-efficient than GPU_c; the
        # gap shrinks with the scaled-down workloads, so assert >= 2.5.
        assert orders >= 2.5, f"{env_id}: {orders:.1f}"

    w = evaluation_traces["Alien-ram-v0"].mean_workload()
    benchmark(lambda: [p.evolution_cost(w) for p in all_platforms()])
