"""Fig. 8 — GeneSys SoC power (b) and area (c) vs number of EvE PEs.

Regenerated from the analytical 15 nm model calibrated against the
paper's published implementation points (Fig. 8a table).
"""

import pytest

from repro.analysis.reporting import render_table
from repro.hw.energy import (
    PAPER_TOTAL_AREA_MM2,
    PAPER_TOTAL_POWER_MW,
    area_breakdown,
    pe_sweep,
    roofline_power,
)


def test_fig8b_power_sweep(benchmark, emit):
    rows = []
    for entry in pe_sweep():
        n = entry["num_eve_pe"]
        power = roofline_power(n)
        rows.append([
            n,
            f"{power.eve_mw:.1f}",
            f"{power.sram_mw:.1f}",
            f"{power.adam_mw:.1f}",
            f"{power.m0_mw:.1f}",
            f"{power.total_mw:.1f}",
        ])
    emit(render_table(
        ["EvE PEs", "EvE mW", "SRAM mW", "ADAM mW", "M0 mW", "Net mW"],
        rows,
        title="Fig 8(b): roofline power vs EvE PE count",
    ))
    # Paper's design point: 947.5 mW at 256 PEs, "comfortably under 1W".
    at_256 = roofline_power(256).total_mw
    assert at_256 == pytest.approx(PAPER_TOTAL_POWER_MW, rel=0.005)
    assert at_256 < 1000.0

    benchmark(pe_sweep)


def test_fig8c_area_sweep(benchmark, emit):
    rows = []
    for entry in pe_sweep():
        n = entry["num_eve_pe"]
        area = area_breakdown(n)
        rows.append([
            n,
            f"{area.eve_mm2:.3f}",
            f"{area.sram_mm2:.3f}",
            f"{area.adam_mm2:.3f}",
            f"{area.m0_mm2:.3f}",
            f"{area.total_mm2:.3f}",
        ])
    emit(render_table(
        ["EvE PEs", "EvE mm2", "SRAM mm2", "ADAM mm2", "M0 mm2", "Total mm2"],
        rows,
        title="Fig 8(c): area footprint vs EvE PE count",
    ))
    at_256 = area_breakdown(256)
    assert at_256.eve_mm2 == pytest.approx(0.89, abs=0.01)   # paper: 0.89 mm^2
    assert at_256.adam_mm2 == pytest.approx(0.25, abs=0.01)  # paper: 0.25 mm^2
    assert at_256.total_mm2 == pytest.approx(PAPER_TOTAL_AREA_MM2, rel=0.01)

    benchmark(lambda: [area_breakdown(n) for n in (2, 64, 512)])
