"""Successive-halving DSE: the pruned-sweep budget gate.

The paper's Fig. 11 design-space sweeps evaluate every configuration at
the full budget.  The ``repro.dse.halving`` scheduler spends geometric
rung budgets instead, pruning dominated points early while keeping every
rung's Pareto frontier alive.  This bench holds the acceptance bound:

* on a 64-point sweep the schedule costs <= 50% of the full run's
  generation budget, and
* the surviving frontier is *exactly* the full sweep's Pareto frontier
  (survivors re-run the final rung at the full budget through the same
  cache keys, so their metrics match the unpruned sweep bit-for-bit).

A second test drives the same scheduler over the real Fig. 11 EvE
replay design space to show the pruning applies to the paper's
hardware axes, not just synthetic metrics.
"""

import pytest

from conftest import get_replay_workload
from repro.analysis.reporting import render_table
from repro.api import ExperimentSpec
from repro.dse import (
    SuccessiveHalvingScheduler,
    SweepRunner,
    SweepSpec,
    eve_replay_evaluator,
    halving_budgets,
)

REPLAY_BASE = ExperimentSpec("Alien-ram-v0", pop_size=16, seed=0, max_steps=40)


def _rung_table(result, title):
    rows = [
        [r["rung"], r["budget"], r["points"], r["promoted"], r["pruned"],
         r["frontier"]]
        for r in result.rungs
    ]
    return render_table(
        ["rung", "budget", "points", "promoted", "pruned", "frontier"],
        rows,
        title=title,
    )


def test_halving_64_point_budget_bound(benchmark, emit):
    n = 64
    fitness = [float((i * 37) % n) for i in range(n)]
    energy = [float((i * 11) % n + 1) for i in range(n)]

    def evaluate(point):
        seed = point.spec.seed
        return {
            "fitness": fitness[seed] * point.spec.max_generations,
            "energy_j": energy[seed],
        }

    sweep = SweepSpec(
        base=ExperimentSpec(
            "CartPole-v0", max_generations=16, pop_size=8, max_steps=20
        ),
        axes={"seed": list(range(n))},
    )
    objectives = {"fitness": "max", "energy_j": "min"}
    result = SuccessiveHalvingScheduler(
        sweep, objectives, reduction=4,
        evaluate=evaluate, evaluator_version="bench-halving-v1",
    ).run()

    emit(_rung_table(result, "Successive halving: 64-point synthetic sweep"))
    emit(
        f"scheduled {result.scheduled_generations}/"
        f"{result.full_generations} generations "
        f"({result.budget_fraction:.0%} of the full sweep)"
    )

    # The acceptance bound: <= 50% of the full generation budget ...
    assert result.budget_fraction <= 0.5
    # ... with the full sweep's Pareto frontier intact.
    full = SweepRunner(
        sweep, evaluate=evaluate, evaluator_version="bench-halving-v1"
    ).run()
    assert (
        {row["point"] for row in full.pareto_front(objectives)}
        == {row["point"] for row in result.pareto_front()}
    )

    benchmark(lambda: halving_budgets(16, reduction=4))


def test_halving_on_fig11_replay_axes(benchmark, emit):
    """Prune the Fig. 11 EvE design space with the real replay evaluator."""
    config, population, plan = get_replay_workload()
    evaluate = eve_replay_evaluator(config, population, plan)
    sweep = SweepSpec(
        base=REPLAY_BASE,
        axes={
            "platform.eve_pes": [2, 4, 8, 16, 32, 64],
            "platform.noc": ["p2p", "multicast"],
        },
    )
    objectives = {"cycles": "min", "sram_energy_uj": "min"}
    result = SuccessiveHalvingScheduler(
        sweep, objectives, reduction=3,
        evaluate=evaluate, evaluator_version="bench-replay-v1",
    ).run()

    emit(_rung_table(result, "Successive halving: Fig 11 EvE replay axes"))
    emit(
        f"scheduled {result.scheduled_generations}/"
        f"{result.full_generations} generations "
        f"({result.budget_fraction:.0%} of the full sweep)"
    )

    full = SweepRunner(
        sweep, evaluate=evaluate, evaluator_version="bench-replay-v1"
    ).run()
    assert (
        {row["point"] for row in full.pareto_front(objectives)}
        == {row["point"] for row in result.pareto_front()}
    )
    # rung tallies and terminal states agree: every non-survivor was
    # pruned at some rung, and the schedule undercuts the full budget
    pruned = [s for s in result.states.values() if s.startswith("pruned:")]
    assert len(pruned) == sum(r["pruned"] for r in result.rungs)
    assert (
        result.scheduled_generations
        < result.budgets[-1] * len(result.states)
    )

    benchmark(lambda: result.pareto_front())
