"""Fig. 5 — per-generation compute ops (a) and memory footprint (b).

Distributions are pooled across generations and runs, exactly as the
paper plots them ("across all generations till convergence and 100
separate runs"; scaled down here).
"""

import pytest

from repro.analysis.characterization import characterise_env
from repro.analysis.reporting import render_distribution_table
from repro.hw.sram import SRAMConfig

ENVS = [
    "CartPole-v0",
    "MountainCar-v0",
    "LunarLander-v2",
    "AirRaid-ram-v0",
    "Alien-ram-v0",
    "Amidar-ram-v0",
]

_CACHE = {}


def characterisation(env_id):
    if env_id not in _CACHE:
        _CACHE[env_id] = characterise_env(
            env_id, runs=2, generations=6, pop_size=20, max_steps=50, base_seed=0,
            stop_at_solve=False,
        )
    return _CACHE[env_id]


def test_fig5a_ops_distribution(benchmark, emit):
    distributions = {
        env_id: characterisation(env_id).ops_distribution() for env_id in ENVS
    }
    emit(render_distribution_table(
        "Fig 5(a): crossover+mutation ops per generation", distributions
    ))
    # Two workload classes separated by >= 1 order of magnitude:
    classic_median = sorted(distributions["CartPole-v0"])[
        len(distributions["CartPole-v0"]) // 2
    ]
    atari_median = sorted(distributions["Alien-ram-v0"])[
        len(distributions["Alien-ram-v0"]) // 2
    ]
    assert atari_median > 10 * classic_median

    benchmark(characterisation("CartPole-v0").ops_distribution)


def test_fig5b_memory_footprint(benchmark, emit):
    distributions = {
        env_id: characterisation(env_id).footprint_distribution()
        for env_id in ENVS
    }
    emit(render_distribution_table(
        "Fig 5(b): memory footprint per generation (bytes)", distributions
    ))
    # Paper: "the overall memory footprint per generation was less than
    # 1MB" for every workload — and therefore fits the 1.5 MB SRAM.
    sram = SRAMConfig()
    for env_id, dist in distributions.items():
        assert max(dist) < 1 << 20, env_id
        assert max(dist) < sram.capacity_bytes, env_id

    benchmark(characterisation("CartPole-v0").footprint_distribution)
