"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Workload
traces are recorded once per session at a laptop-friendly scale (the
paper uses population 150 and 100 runs; we default to population 20-30
and a handful of generations — the shapes the paper reports are already
stable there, and EXPERIMENTS.md records the scale used).

The ``emit`` fixture prints through pytest's capture so the regenerated
rows/series appear in the benchmark log.
"""

import pytest

from repro.api import ExperimentSpec
from repro.core.runner import config_for_env
from repro.core.trace import TraceRecorder, WorkloadTrace
from repro.envs.evaluate import FitnessEvaluator
from repro.envs.registry import EVALUATION_SUITE
from repro.neat.population import Population

BENCH_POP = 20
BENCH_GENERATIONS = 3
BENCH_MAX_STEPS = 60


@pytest.fixture
def emit(capsys):
    """Print results through pytest's output capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}")

    return _emit


@pytest.fixture(scope="session")
def runs_root(tmp_path_factory):
    """Session-scoped root for benches that record run artifacts
    (:mod:`repro.runs`) — one place, cleaned up by pytest."""
    return tmp_path_factory.mktemp("bench-runs")


def record_run(spec, run_dir, **kwargs):
    """Run a spec with durable artifacts (benchmark-scale wrapper over
    :func:`repro.runs.run_in_dir`)."""
    from repro.runs import run_in_dir

    return run_in_dir(spec, run_dir, **kwargs)


_TRACE_CACHE = {}


def bench_spec(env_id: str, pop_size: int = BENCH_POP,
               generations: int = BENCH_GENERATIONS,
               max_steps: int = BENCH_MAX_STEPS, seed: int = 0) -> ExperimentSpec:
    """The laptop-scale spec every bench derives its runs from."""
    return ExperimentSpec(
        env_id,
        max_generations=generations,
        pop_size=pop_size,
        max_steps=max_steps,
        seed=seed,
    )


def get_trace(env_id: str, pop_size: int = BENCH_POP,
              generations: int = BENCH_GENERATIONS,
              max_steps: int = BENCH_MAX_STEPS, seed: int = 0) -> WorkloadTrace:
    key = (env_id, pop_size, generations, max_steps, seed)
    if key not in _TRACE_CACHE:
        spec = bench_spec(env_id, pop_size, generations, max_steps, seed)
        _TRACE_CACHE[key] = TraceRecorder.from_spec(spec).record(
            spec.max_generations
        )
    return _TRACE_CACHE[key]


@pytest.fixture(scope="session")
def evaluation_traces():
    """Recorded workload traces for the paper's six evaluation envs."""
    return {env_id: get_trace(env_id) for env_id in EVALUATION_SUITE}


_REPLAY_CACHE = {}


def get_replay_workload(env_id="Alien-ram-v0", pop_size=16,
                        warm_generations=1, seed=0, max_steps=40):
    """An evaluated population + reproduction plan ready for EvE replay.

    Cached per session like :func:`get_trace`, so the Fig. 11 ablations
    (and any other EvE replay bench) share one recording.
    """
    key = (env_id, pop_size, warm_generations, seed, max_steps)
    if key not in _REPLAY_CACHE:
        config = config_for_env(env_id, pop_size=pop_size)
        population = Population(config, seed=seed)
        evaluator = FitnessEvaluator(env_id, max_steps=max_steps, seed=seed)
        for _ in range(warm_generations):
            population.run_generation(evaluator)
        genomes = list(population.population.values())
        evaluator(genomes, config)
        population.species_set.adjust_fitnesses(population.generation)
        plan = population.reproduction.plan_generation(
            population.species_set, population.generation, population.rng
        )
        _REPLAY_CACHE[key] = (config, population.population, plan)
    return _REPLAY_CACHE[key]


def fresh_buffer(config, population):
    """A new GenomeBuffer loaded with an evaluated population — replays
    mutate buffer state, so every replay starts from a fresh one."""
    from repro.hw.gene_encoding import encode_genome
    from repro.hw.sram import GenomeBuffer

    buffer = GenomeBuffer()
    for gkey, genome in population.items():
        buffer.write_genome(gkey, encode_genome(genome, config.genome))
        buffer.set_fitness(gkey, genome.fitness)
    return buffer
