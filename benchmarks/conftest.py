"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Workload
traces are recorded once per session at a laptop-friendly scale (the
paper uses population 150 and 100 runs; we default to population 20-30
and a handful of generations — the shapes the paper reports are already
stable there, and EXPERIMENTS.md records the scale used).

The ``emit`` fixture prints through pytest's capture so the regenerated
rows/series appear in the benchmark log.
"""

import pytest

from repro.api import ExperimentSpec
from repro.core.trace import TraceRecorder, WorkloadTrace
from repro.envs.registry import EVALUATION_SUITE

BENCH_POP = 20
BENCH_GENERATIONS = 3
BENCH_MAX_STEPS = 60


@pytest.fixture
def emit(capsys):
    """Print results through pytest's output capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}")

    return _emit


_TRACE_CACHE = {}


def bench_spec(env_id: str, pop_size: int = BENCH_POP,
               generations: int = BENCH_GENERATIONS,
               max_steps: int = BENCH_MAX_STEPS, seed: int = 0) -> ExperimentSpec:
    """The laptop-scale spec every bench derives its runs from."""
    return ExperimentSpec(
        env_id,
        max_generations=generations,
        pop_size=pop_size,
        max_steps=max_steps,
        seed=seed,
    )


def get_trace(env_id: str, pop_size: int = BENCH_POP,
              generations: int = BENCH_GENERATIONS,
              max_steps: int = BENCH_MAX_STEPS, seed: int = 0) -> WorkloadTrace:
    key = (env_id, pop_size, generations, max_steps, seed)
    if key not in _TRACE_CACHE:
        spec = bench_spec(env_id, pop_size, generations, max_steps, seed)
        _TRACE_CACHE[key] = TraceRecorder.from_spec(spec).record(
            spec.max_generations
        )
    return _TRACE_CACHE[key]


@pytest.fixture(scope="session")
def evaluation_traces():
    """Recorded workload traces for the paper's six evaluation envs."""
    return {env_id: get_trace(env_id) for env_id in EVALUATION_SUITE}
