#!/usr/bin/env python
"""Continuous learning at the edge: LunarLander on the GeneSys SoC model.

The paper's pitch is an autonomous agent that keeps learning in the field
under a ~1 W power budget.  This example runs the full closed loop —
ADAM inference against the lander physics, reward-to-fitness on the CPU,
EvE reproduction — and reports the energy-per-generation the SoC model
charges, compared against what the platform models say an embedded CPU
and GPU (Jetson-class) would burn for the same workload.

Usage:  python examples/lunar_lander_hwloop.py [generations]
Spec-driven equivalent:
    python -m repro run LunarLander-v2 --backend soc --generations 12
    (add --run-dir runs/lander to record a resumable run; see docs/runs.md)
"""

import sys

from repro.analysis.reporting import (
    fmt_joules,
    fmt_seconds,
    orders_of_magnitude,
    render_table,
)
from repro.api import Experiment, ExperimentSpec
from repro.core import TraceRecorder
from repro.platforms import cpu_c, gpu_c


def main() -> None:
    generations = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    print(f"evolving LunarLander-v2 on the GeneSys SoC model "
          f"({generations} generations, population 40) ...\n")
    spec = ExperimentSpec(
        "LunarLander-v2",
        backend="soc",
        max_generations=generations,
        pop_size=40,
        episodes=1,
        seed=0,
        max_steps=200,
        fitness_threshold=1e9,  # run the full budget
    )
    result = Experiment(spec).run()

    rows = []
    for report in result.reports:
        rows.append([
            report.generation,
            f"{report.best_fitness:.1f}",
            f"{report.mean_fitness:.1f}",
            report.num_species,
            fmt_seconds(report.inference_seconds + report.evolution_seconds),
            fmt_joules(report.energy.total_energy_j),
        ])
    print(render_table(
        ["gen", "best", "mean", "species", "chip time", "chip energy"],
        rows,
        title="Closed-loop learning on the SoC model",
    ))

    best = result.champion
    print(f"\nbest lander fitness {best.fitness:.1f} with "
          f"{best.size()[0]} enabled connections / {best.size()[1]} nodes")

    # Compare against the embedded platforms for the same workload; the
    # analytical backends are driven by the same spec shape.
    trace = TraceRecorder.from_spec(
        spec.replace(backend="software", fitness_threshold=None)
    ).record(min(3, generations))
    workload = trace.mean_workload()
    genesys_energy = sum(r.energy.total_energy_j for r in result.reports) \
        / len(result.reports)
    rows = [["GENESYS (SoC model)", fmt_joules(genesys_energy), "-"]]
    for platform in (cpu_c(), gpu_c()):
        energy = (
            platform.inference_cost(workload).energy_j
            + platform.evolution_cost(workload).energy_j
        )
        rows.append([
            f"{platform.name} ({platform.platform_desc})",
            fmt_joules(energy),
            f"{orders_of_magnitude(energy, genesys_energy):.1f} orders",
        ])
    print()
    print(render_table(
        ["platform", "energy / generation", "vs GENESYS"],
        rows,
        title="Energy per generation: edge platforms vs GeneSys",
    ))


if __name__ == "__main__":
    main()
