#!/usr/bin/env python
"""Evolve Atari-RAM players and characterise the workload class.

The paper's motivating edge workload: agents that learn autonomously from
a 128-byte console RAM observation.  This example evolves Alien-ram and
Asterix-ram agents with NEAT, then prints the characterisation the paper
builds its architecture from — gene counts (Fig. 4b), op counts
(Fig. 5a), footprint (Fig. 5b) and parent reuse (Fig. 4c) — showing why
Atari-class genomes are one-to-two orders heavier than classic control.

Usage:  python examples/atari_ram_evolution.py [generations]
Spec-driven equivalent:
    python -m repro characterise Alien-ram-v0 --generations 5
    python -m repro run Asterix-ram-v0 --generations 5 --run-dir runs/asterix
"""

import sys

from repro.analysis.reporting import fmt_bytes, render_table
from repro.core import TraceRecorder
from repro.envs import make


def main() -> None:
    generations = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    env_ids = ["CartPole-v0", "Alien-ram-v0", "Asterix-ram-v0"]

    rows = []
    for env_id in env_ids:
        env = make(env_id)
        print(f"evolving {env_id} "
              f"({env.num_observations} obs -> {env.num_actions} actions) ...")
        recorder = TraceRecorder(env_id, pop_size=30, seed=0, max_steps=100)
        trace = recorder.record(generations)
        w = trace.mean_workload()
        best = max(wl.generation for wl in trace.workloads)
        rows.append([
            env_id,
            w.population,
            w.total_nodes,
            w.total_connections,
            w.evolution_ops,
            fmt_bytes(w.footprint_bytes),
            w.fittest_parent_reuse,
        ])

    print()
    print(render_table(
        ["Environment", "pop", "node genes", "conn genes",
         "ops/gen", "footprint", "fittest reuse"],
        rows,
        title=f"Workload characterisation (mean over {generations} generations)",
    ))
    print(
        "\nNote the two workload classes of Fig. 5: the RAM games carry "
        "~2 orders of magnitude more genes and reproduction ops than "
        "classic control, yet still fit far inside the 1.5 MB genome buffer."
    )


if __name__ == "__main__":
    main()
