#!/usr/bin/env python
"""Quickstart: evolve a CartPole controller, in software and on GeneSys.

Runs the same NEAT problem through the unified experiment API twice —
one :class:`repro.api.ExperimentSpec`, two backends:

1. ``software`` — the paper's CPU baseline path, and
2. ``soc`` — hardware-in-the-loop: reproduction executed by the EvE PE
   model on packed 64-bit genes, inference by the ADAM systolic model —

prints what the hardware did (cycles, energy, SRAM traffic), and then
demonstrates the paper's continuous-learning premise with
:mod:`repro.runs`: the software run is recorded to a run directory,
"power-cycled", and resumed bit-identically from its last checkpoint.

Usage:  python examples/quickstart.py
CLI equivalents:
    python -m repro run CartPole-v0 --generations 25 --population 60
    python -m repro run CartPole-v0 --backend soc --generations 25
    python -m repro run CartPole-v0 --run-dir runs/quickstart
    python -m repro run --resume runs/quickstart --generations 35
"""

import tempfile
from pathlib import Path

from repro.analysis.reporting import fmt_joules, fmt_seconds, render_table
from repro.api import Experiment, ExperimentSpec
from repro.runs import resume_run, run_in_dir


def main() -> None:
    print("=== GeneSys quickstart: CartPole-v0 ===\n")

    spec = ExperimentSpec(
        "CartPole-v0", max_generations=25, pop_size=60, episodes=2, seed=0
    )

    print("[1/3] software NEAT (neat-python-style baseline) ...")
    sw = Experiment(spec).run()
    print(
        f"  converged={sw.converged} after {sw.generations} generations; "
        f"best fitness {sw.best_fitness:.1f}; "
        f"champion size {sw.champion.size()} (enabled conns, nodes)\n"
    )

    print("[2/3] hardware-in-the-loop (EvE + ADAM models) ...")
    hw = Experiment(spec.replace(backend="soc")).run()
    print(
        f"  converged={hw.converged} after {hw.generations} generations; "
        f"best fitness {hw.best_fitness:.1f}\n"
    )

    rows = []
    for report in hw.reports:
        rows.append([
            report.generation,
            f"{report.best_fitness:.1f}",
            report.num_genes,
            fmt_seconds(report.inference_seconds),
            fmt_seconds(report.evolution_seconds),
            fmt_joules(report.energy.total_energy_j),
            report.fittest_parent_reuse,
        ])
    print(render_table(
        ["gen", "best fit", "genes", "ADAM time", "EvE time", "energy", "reuse"],
        rows,
        title="GeneSys per-generation hardware accounting (200 MHz SoC model)",
    ))
    print(
        f"\nTotal on-chip energy for the whole evolution: "
        f"{fmt_joules(hw.total_energy_j)}"
    )

    print("\n[3/3] continuous learning: record, power-cycle, resume ...")
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "quickstart"

        # Record the run durably; kill it partway through to simulate a
        # power cycle (any crash/ctrl-C leaves the same artifacts).
        class PowerCycle(Exception):
            pass

        def pull_the_plug(metrics):
            if metrics.generation == 1:
                raise PowerCycle

        try:
            run_in_dir(spec, run_dir, checkpoint_every=1,
                       on_generation=pull_the_plug)
        except PowerCycle:
            print("  interrupted at generation 1 "
                  f"(artifacts + checkpoints in {run_dir.name}/)")

        # Resume: continues from the last checkpoint, bit-identical to a
        # run that was never interrupted (see docs/runs.md).
        resumed = resume_run(run_dir)
        print(
            f"  resumed and finished: {resumed.generations} generations, "
            f"best fitness {resumed.best_fitness:.1f}, "
            f"champion saved to {run_dir.name}/champion.json"
        )
        assert resumed.best_fitness == sw.best_fitness, \
            "resume must reproduce the uninterrupted run exactly"
        print("  verified: identical to the uninterrupted run in part 1")


if __name__ == "__main__":
    main()
