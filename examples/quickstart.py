#!/usr/bin/env python
"""Quickstart: evolve a CartPole controller, in software and on GeneSys.

Runs the same NEAT problem twice:

1. pure software (the paper's CPU baseline path), and
2. hardware-in-the-loop — reproduction executed by the EvE PE model on
   packed 64-bit genes, inference by the ADAM systolic-array model —

then prints what the hardware did: cycles, energy, SRAM traffic.

Usage:  python examples/quickstart.py
"""

from repro.analysis.reporting import fmt_joules, fmt_seconds, render_table
from repro.core import evolve_on_hardware, evolve_software


def main() -> None:
    print("=== GeneSys quickstart: CartPole-v0 ===\n")

    print("[1/2] software NEAT (neat-python-style baseline) ...")
    sw = evolve_software(
        "CartPole-v0", max_generations=25, pop_size=60, episodes=2, seed=0
    )
    print(
        f"  converged={sw.converged} after {sw.generations} generations; "
        f"best fitness {sw.best_genome.fitness:.1f}; "
        f"champion size {sw.best_genome.size()} (enabled conns, nodes)\n"
    )

    print("[2/2] hardware-in-the-loop (EvE + ADAM models) ...")
    hw = evolve_on_hardware(
        "CartPole-v0", max_generations=25, pop_size=60, episodes=2, seed=0
    )
    print(
        f"  converged={hw.converged} after {hw.generations} generations; "
        f"best fitness {hw.best_genome.fitness:.1f}\n"
    )

    rows = []
    for report in hw.reports:
        rows.append([
            report.generation,
            f"{report.best_fitness:.1f}",
            report.num_genes,
            fmt_seconds(report.inference_seconds),
            fmt_seconds(report.evolution_seconds),
            fmt_joules(report.energy.total_energy_j),
            report.fittest_parent_reuse,
        ])
    print(render_table(
        ["gen", "best fit", "genes", "ADAM time", "EvE time", "energy", "reuse"],
        rows,
        title="GeneSys per-generation hardware accounting (200 MHz SoC model)",
    ))
    print(
        f"\nTotal on-chip energy for the whole evolution: "
        f"{fmt_joules(hw.total_energy_j)}"
    )


if __name__ == "__main__":
    main()
