#!/usr/bin/env python
"""Quickstart: evolve a CartPole controller, in software and on GeneSys.

Runs the same NEAT problem through the unified experiment API twice —
one :class:`repro.api.ExperimentSpec`, two backends:

1. ``software`` — the paper's CPU baseline path, and
2. ``soc`` — hardware-in-the-loop: reproduction executed by the EvE PE
   model on packed 64-bit genes, inference by the ADAM systolic model —

then prints what the hardware did: cycles, energy, SRAM traffic.

Usage:  python examples/quickstart.py
"""

from repro.analysis.reporting import fmt_joules, fmt_seconds, render_table
from repro.api import Experiment, ExperimentSpec


def main() -> None:
    print("=== GeneSys quickstart: CartPole-v0 ===\n")

    spec = ExperimentSpec(
        "CartPole-v0", max_generations=25, pop_size=60, episodes=2, seed=0
    )

    print("[1/2] software NEAT (neat-python-style baseline) ...")
    sw = Experiment(spec).run()
    print(
        f"  converged={sw.converged} after {sw.generations} generations; "
        f"best fitness {sw.best_fitness:.1f}; "
        f"champion size {sw.champion.size()} (enabled conns, nodes)\n"
    )

    print("[2/2] hardware-in-the-loop (EvE + ADAM models) ...")
    hw = Experiment(spec.replace(backend="soc")).run()
    print(
        f"  converged={hw.converged} after {hw.generations} generations; "
        f"best fitness {hw.best_fitness:.1f}\n"
    )

    rows = []
    for report in hw.reports:
        rows.append([
            report.generation,
            f"{report.best_fitness:.1f}",
            report.num_genes,
            fmt_seconds(report.inference_seconds),
            fmt_seconds(report.evolution_seconds),
            fmt_joules(report.energy.total_energy_j),
            report.fittest_parent_reuse,
        ])
    print(render_table(
        ["gen", "best fit", "genes", "ADAM time", "EvE time", "energy", "reuse"],
        rows,
        title="GeneSys per-generation hardware accounting (200 MHz SoC model)",
    ))
    print(
        f"\nTotal on-chip energy for the whole evolution: "
        f"{fmt_joules(hw.total_energy_j)}"
    )


if __name__ == "__main__":
    main()
