#!/usr/bin/env python
"""Hybrid learning: NEAT explores topology, gradient descent tunes weights.

Section VII ("Future Directions"): "GENESYS can be run in conjunction
with supervised learning, with the former enabling rapid topology
exploration and then using conventional training to tune the weights."

This example does exactly that on a supervised regression task
(approximating a 2-D function):

1. NEAT evolves topology + weights against the regression fitness;
2. the champion's topology is frozen and its weights are fine-tuned by
   backpropagation through the evolved DAG;
3. the tuned genome is re-encoded into 64-bit hardware words, showing the
   round trip back onto the GeneSys datapath.

Usage:  python examples/hybrid_evolve_finetune.py
The evolution stage is the spec-driven software loop; for gym-style
workloads use `python -m repro run <env>` / `repro.api.run_experiment`
(this example keeps a custom supervised fitness, passed as
`fitness_transform`).
"""

import math
import random

from repro.analysis.reporting import render_table
from repro.hw import encode_genome, quantize_genome
from repro.neat import NEATConfig, Population
from repro.neat.backprop import DifferentiableNetwork
from repro.neat.network import FeedForwardNetwork


def target_function(a: float, b: float) -> float:
    return math.tanh(0.9 * a - 0.5 * b + 0.3 * a * b)


def make_dataset(n: int = 40, seed: int = 0):
    rng = random.Random(seed)
    return [
        ((a, b), [target_function(a, b)])
        for a, b in ((rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(n))
    ]


def mse(network, samples) -> float:
    return sum(
        (network.activate(list(x))[0] - y[0]) ** 2 for x, y in samples
    ) / len(samples)


def main() -> None:
    train = make_dataset(40, seed=0)
    test = make_dataset(20, seed=1)

    config = NEATConfig.for_env(2, 1, pop_size=60)
    config.genome.activation_options = ["tanh"]

    def fitness(genomes, cfg):
        for genome in genomes:
            network = FeedForwardNetwork.create(genome, cfg.genome)
            genome.fitness = -mse(network, train)

    print("[1/3] evolving topology with NEAT (25 generations) ...")
    population = Population(config, seed=2)
    champion = population.run(fitness, max_generations=25)
    evolved_net = FeedForwardNetwork.create(champion, config.genome)
    evolved_mse = mse(evolved_net, test)
    conns, nodes = champion.size()
    print(f"  champion: {conns} connections / {nodes} nodes, "
          f"test MSE {evolved_mse:.4f}")

    print("[2/3] gradient fine-tuning the evolved topology ...")
    trainable = DifferentiableNetwork(champion, config.genome)
    result = trainable.train(train, epochs=300, learning_rate=0.4)
    trainable.write_back()
    tuned_net = FeedForwardNetwork.create(champion, config.genome)
    tuned_mse = mse(tuned_net, test)
    print(f"  train loss {result.initial_loss:.4f} -> {result.final_loss:.4f}")

    print("[3/3] back onto the hardware datapath (64-bit genes, Q4.4) ...")
    quantised = quantize_genome(champion, config.genome)
    quantised_net = FeedForwardNetwork.create(quantised, config.genome)
    quantised_mse = mse(quantised_net, test)
    stream = encode_genome(champion, config.genome)

    print()
    print(render_table(
        ["stage", "test MSE"],
        [
            ["NEAT evolution only", f"{evolved_mse:.4f}"],
            ["+ gradient fine-tuning", f"{tuned_mse:.4f}"],
            ["+ Q4.4 hardware quantisation", f"{quantised_mse:.4f}"],
        ],
        title="Hybrid learning pipeline",
    ))
    print(f"\nfinal genome = {len(stream)} x 64-bit gene words "
          f"({len(stream) * 8} bytes in the genome buffer)")
    if tuned_mse <= evolved_mse:
        print("fine-tuning improved (or matched) the evolved champion.")


if __name__ == "__main__":
    main()
