#!/usr/bin/env python
"""HyperNEAT: evolve a CPPN that paints a CartPole controller.

The paper (Section III-D1) notes HyperNEAT as the efficient-encoding
option for larger genomes.  Here a 4-input CPPN — queried at neuron
coordinates (x1, y1, x2, y2) — generates every substrate connection
weight, so the evolved artefact is the tiny CPPN, not the controller.

Usage:  python examples/hyperneat_cartpole.py
Spec-driven twin for direct-encoded NEAT on the same workload:
    python -m repro run CartPole-v0 --generations 25 --population 60
"""

from repro.analysis.reporting import render_table
from repro.envs import make, run_episode
from repro.neat.hyperneat import Substrate, evolve_hyperneat
from repro.neat.network import FeedForwardNetwork


def main() -> None:
    substrate = Substrate.grid(num_inputs=4, num_outputs=2, num_hidden=4)
    env_id = "CartPole-v0"

    def fitness(phenotype, config):
        network = FeedForwardNetwork.create(phenotype, config)
        env = make(env_id)
        env.seed(0)
        return run_episode(network, env, max_steps=200).total_reward

    print("evolving CPPNs (population 40, up to 15 generations) ...")
    best_cppn, population, decoder = evolve_hyperneat(
        substrate, fitness, generations=15, pop_size=40, seed=3,
        fitness_threshold=150.0,
    )

    phenotype = decoder.decode(best_cppn)
    rows = [
        ["CPPN genes (the evolved artefact)", best_cppn.num_genes],
        ["substrate phenotype genes", phenotype.num_genes],
        ["compression ratio", f"{decoder.compression_ratio(best_cppn):.1f}x"],
        ["best fitness (balance steps)", f"{best_cppn.fitness:.0f}"],
        ["generations used", population.generation],
    ]
    print()
    print(render_table(["metric", "value"], rows,
                       title="HyperNEAT on CartPole"))

    network = FeedForwardNetwork.create(phenotype, substrate.phenotype_config)
    env = make(env_id)
    rewards = []
    for episode in range(3):
        env.seed(100 + episode)
        rewards.append(run_episode(network, env).total_reward)
    print(f"\nheld-out episodes: {[f'{r:.0f}' for r in rewards]}")


if __name__ == "__main__":
    main()
