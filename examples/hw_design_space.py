#!/usr/bin/env python
"""Hardware design-space exploration: PE count, NoC and scheduler.

Replays one real recorded reproduction plan through the cycle-level EvE
model across the design axes the paper explores:

* EvE PE count (Fig. 8b/c power/area roofline; Fig. 11c runtime/energy),
* point-to-point bus vs multicast tree NoC (Fig. 11b),
* greedy parent-reuse PE allocation vs naive round-robin (Section IV-C5).

The axes are declared as :class:`repro.dse.SweepSpec` objects and driven
by :class:`repro.dse.SweepRunner` with a trace-replay evaluator — the
same subsystem behind ``python -m repro dse``, here exploring the SoC's
*reproduction* pass at single-generation granularity.

Usage:  python examples/hw_design_space.py
Spec-driven equivalent (full-experiment sweeps over the same knobs):
    python -m repro dse --sweep examples/sweeps/design_space.json \
        --runs-dir runs/design-space
"""

from repro.analysis.reporting import render_table
from repro.api import ExperimentSpec
from repro.core.runner import config_for_env
from repro.dse import SweepRunner, SweepSpec, eve_replay_evaluator
from repro.envs.evaluate import FitnessEvaluator
from repro.hw.energy import area_breakdown, roofline_power
from repro.neat.population import Population

#: The recorded workload every axis replays (laptop-scale Alien-ram).
BASE = ExperimentSpec("Alien-ram-v0", pop_size=20, seed=0, max_steps=60)


def record_plan(spec=BASE):
    """Evaluate one generation and plan its reproduction (not executed)."""
    config = config_for_env(spec.env_id, pop_size=spec.pop_size)
    population = Population(config, seed=spec.seed)
    evaluator = FitnessEvaluator(spec.env_id, max_steps=spec.max_steps,
                                 seed=spec.seed)
    population.run_generation(evaluator)
    genomes = list(population.population.values())
    evaluator(genomes, config)
    population.species_set.adjust_fitnesses(population.generation)
    plan = population.reproduction.plan_generation(
        population.species_set, population.generation, population.rng
    )
    return config, population.population, plan


def run_axis(axes, evaluate):
    """One single-axis study through the sweep engine (uncached replay)."""
    sweep = SweepSpec(base=BASE, axes=axes)
    return SweepRunner(sweep, evaluate=evaluate).run()


def main() -> None:
    print("recording an Alien-ram reproduction plan ...\n")
    evaluate = eve_replay_evaluator(*record_plan())

    # -- axis 1: PE count ---------------------------------------------------
    result = run_axis({"platform.eve_pes": [2, 8, 32, 128, 256]}, evaluate)
    rows = []
    for row in result.rows:
        num_pes = row["platform.eve_pes"]
        rows.append([
            num_pes,
            row["waves"],
            row["cycles"],
            f"{row['cycles'] / 200e6 * 1e6:.2f}",
            f"{row['sram_energy_uj']:.2f}",
            f"{roofline_power(num_pes).total_mw:.0f}",
            f"{area_breakdown(num_pes).total_mm2:.2f}",
        ])
    print(render_table(
        ["EvE PEs", "waves", "cycles/gen", "us/gen @200MHz",
         "SRAM energy uJ", "roofline mW", "area mm2"],
        rows,
        title="Axis 1 — EvE PE count (Fig. 8 + Fig. 11c)",
    ))

    # -- axis 2: NoC --------------------------------------------------------
    result = run_axis(
        {"platform.eve_pes": [32], "platform.noc": ["p2p", "multicast"]}, evaluate
    )
    rows = [
        [
            row["platform.noc"],
            row["sram_reads"],
            f"{row['reads_per_cycle']:.2f}",
            row["multicast_hits"],
        ]
        for row in result.rows
    ]
    print()
    print(render_table(
        ["NoC", "SRAM reads/gen", "reads/cycle", "multicast hits"],
        rows,
        title="Axis 2 — gene distribution network (Fig. 11b)",
    ))

    # -- axis 3: PE allocation policy ----------------------------------------
    # Few PEs force multiple waves; the policies then differ in how well
    # co-scheduled children share parent streams over the multicast tree.
    result = run_axis(
        {
            "platform.eve_pes": [4],
            "platform.noc": ["multicast"],
            "platform.scheduler": ["greedy", "round-robin"],
        },
        evaluate,
    )
    rows = [
        [row["platform.scheduler"], row["sram_reads"], row["cycles"]]
        for row in result.rows
    ]
    print()
    print(render_table(
        ["scheduler", "SRAM reads/gen", "cycles/gen"],
        rows,
        title="Axis 3 — PE allocation policy (Section IV-C5 greedy GLR)",
    ))
    print(
        "\nGreedy allocation co-schedules children that share parents, so "
        "the multicast tree turns genome-level reuse into SRAM read savings."
    )


if __name__ == "__main__":
    main()
