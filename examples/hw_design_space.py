#!/usr/bin/env python
"""Hardware design-space exploration: PE count, NoC and scheduler.

Replays one real recorded reproduction plan through the cycle-level EvE
model across the design axes the paper explores:

* EvE PE count (Fig. 8b/c power/area roofline; Fig. 11c runtime/energy),
* point-to-point bus vs multicast tree NoC (Fig. 11b),
* greedy parent-reuse PE allocation vs naive round-robin (Section IV-C5).

Usage:  python examples/hw_design_space.py
"""

from repro.analysis.reporting import render_table
from repro.core.runner import config_for_env
from repro.envs.evaluate import FitnessEvaluator
from repro.hw.energy import SRAM_ACCESS_ENERGY_PJ, area_breakdown, roofline_power
from repro.hw.eve import EvEConfig, EvolutionEngine
from repro.hw.gene_encoding import encode_genome
from repro.hw.sram import GenomeBuffer
from repro.neat.population import Population


def record_plan(env_id="Alien-ram-v0", pop_size=20, seed=0):
    """Evaluate one generation and plan its reproduction (not executed)."""
    config = config_for_env(env_id, pop_size=pop_size)
    population = Population(config, seed=seed)
    evaluator = FitnessEvaluator(env_id, max_steps=60, seed=seed)
    population.run_generation(evaluator)
    genomes = list(population.population.values())
    evaluator(genomes, config)
    population.species_set.adjust_fitnesses(population.generation)
    plan = population.reproduction.plan_generation(
        population.species_set, population.generation, population.rng
    )
    return config, population.population, plan


def replay(config, population, plan, **eve_kwargs):
    buffer = GenomeBuffer()
    for key, genome in population.items():
        buffer.write_genome(key, encode_genome(genome, config.genome))
        buffer.set_fitness(key, genome.fitness)
    eve = EvolutionEngine(EvEConfig(seed=1, **eve_kwargs))
    return eve.reproduce_generation(buffer, plan.events, plan.elite_keys)


def main() -> None:
    print("recording an Alien-ram reproduction plan ...\n")
    config, population, plan = record_plan()

    # -- axis 1: PE count ---------------------------------------------------
    rows = []
    for num_pes in (2, 8, 32, 128, 256):
        result = replay(config, population, plan, num_pes=num_pes)
        energy_uj = (result.sram_reads + result.sram_writes) \
            * SRAM_ACCESS_ENERGY_PJ * 1e-6
        rows.append([
            num_pes,
            result.waves,
            result.cycles,
            f"{result.cycles / 200e6 * 1e6:.2f}",
            f"{energy_uj:.2f}",
            f"{roofline_power(num_pes).total_mw:.0f}",
            f"{area_breakdown(num_pes).total_mm2:.2f}",
        ])
    print(render_table(
        ["EvE PEs", "waves", "cycles/gen", "us/gen @200MHz",
         "SRAM energy uJ", "roofline mW", "area mm2"],
        rows,
        title="Axis 1 — EvE PE count (Fig. 8 + Fig. 11c)",
    ))

    # -- axis 2: NoC --------------------------------------------------------
    rows = []
    for noc in ("p2p", "multicast"):
        result = replay(config, population, plan, num_pes=32, noc=noc)
        rows.append([
            noc,
            result.sram_reads,
            f"{result.noc_stats.reads_per_cycle:.2f}",
            result.noc_stats.multicast_hits,
        ])
    print()
    print(render_table(
        ["NoC", "SRAM reads/gen", "reads/cycle", "multicast hits"],
        rows,
        title="Axis 2 — gene distribution network (Fig. 11b)",
    ))

    # -- axis 3: PE allocation policy ----------------------------------------
    # Few PEs force multiple waves; the policies then differ in how well
    # co-scheduled children share parent streams over the multicast tree.
    rows = []
    for scheduler in ("greedy", "round-robin"):
        result = replay(
            config, population, plan, num_pes=4, noc="multicast",
            scheduler=scheduler,
        )
        rows.append([scheduler, result.sram_reads, result.cycles])
    print()
    print(render_table(
        ["scheduler", "SRAM reads/gen", "cycles/gen"],
        rows,
        title="Axis 3 — PE allocation policy (Section IV-C5 greedy GLR)",
    ))
    print(
        "\nGreedy allocation co-schedules children that share parents, so "
        "the multicast tree turns genome-level reuse into SRAM read savings."
    )


if __name__ == "__main__":
    main()
