"""Exclusive on-disk claims: one owner per resource, crash-reclaimable.

Two layers live here:

* :class:`ClaimFile` — the generic protocol: an atomically-created
  claim file (payload written aside, hard-linked into place — the link
  fails like ``O_EXCL`` but the file appears with its content) holding
  the owner's PID, host and a
  heartbeat timestamp.  Exactly one contender wins the create; while
  held, a daemon thread refreshes ``heartbeat_at``; a claim whose owner
  is observably dead (same-host PID gone) or silent past ``stale_after``
  seconds — or whose file is torn JSON (its writer died mid-claim) — is
  *reclaimable*: the breaker atomically renames the stale file aside
  (only one contender can win the rename) and then claims normally.
* :class:`RunDirLock` — the run-directory specialisation (``run.lock``
  inside the run dir), held by :func:`repro.runs.run_in_dir` for the
  whole execution so two schedulers, a scheduler plus a CLI user, or
  two CLI users can never corrupt one run directory between them.

The distributed sweep executor (:mod:`repro.dse.distributed`) builds its
per-point work queue on :class:`ClaimFile` directly: every pending sweep
point is one claim file, so any number of worker processes on any number
of hosts sharing the filesystem drain one sweep with no coordinator.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .artifacts import RunError

LOCK_FILENAME = "run.lock"

#: A heartbeat older than this (seconds) marks the claim stale even when
#: the owner PID cannot be probed (e.g. it lives on another host).
DEFAULT_STALE_AFTER = 60.0
#: How often the holder refreshes ``heartbeat_at`` while running.
DEFAULT_HEARTBEAT_INTERVAL = 5.0


class ClaimConflictError(RunError):
    """The resource is exclusively claimed by a live process."""


class RunLockedError(ClaimConflictError):
    """The run directory is exclusively claimed by a live process."""


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a same-host PID."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # unknowable: err on the side of "alive"
    return True


def read_claim(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The payload of a claim file, or ``None``.

    Returns ``None`` both when no claim exists and when the file is torn
    (its writer died between create and write) — callers distinguish via
    ``Path(path).exists()`` when they care.
    """
    try:
        text = Path(path).read_text()
    except (FileNotFoundError, IsADirectoryError):
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


class ClaimFile:
    """An exclusive, heartbeat-refreshed claim on one on-disk path.

    Use as a context manager, or via :meth:`try_acquire` when losing the
    race is an expected outcome (the distributed-sweep workers simply
    move on to the next point)::

        claim = ClaimFile(path, stale_after=30.0)
        if claim.try_acquire():
            try:
                ...  # sole owner
            finally:
                claim.release()

    ``extra`` is merged into the claim payload (e.g. a sweep point key
    or a worker id) for observability; it never affects the protocol.
    ``stale_after`` and ``heartbeat_interval`` are tunable for tests and
    for schedulers that want faster crash detection.
    """

    #: Raised by :meth:`acquire` on a live conflict; subclasses override.
    conflict_error = ClaimConflictError

    def __init__(
        self,
        path: Union[str, Path],
        stale_after: float = DEFAULT_STALE_AFTER,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        if stale_after <= 0:
            raise ValueError("stale_after must be > 0")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        self.path = Path(path)
        self.stale_after = stale_after
        self.heartbeat_interval = heartbeat_interval
        self.extra = dict(extra) if extra else {}
        #: Stale claims this instance broke while acquiring — observers
        #: (the distributed sweep worker) count these as reclaims.
        self.reclaimed = 0
        self._held = False
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- inspection -------------------------------------------------------

    @property
    def held(self) -> bool:
        return self._held

    def read(self) -> Optional[Dict[str, Any]]:
        """The current claim payload, or ``None`` when unclaimed/torn."""
        return read_claim(self.path)

    def is_stale(self, payload: Optional[Dict[str, Any]] = None) -> bool:
        """Is the recorded owner observably dead or silent too long?

        A torn/unreadable claim file also counts as stale — its writer
        died mid-claim.
        """
        if payload is None:
            if not self.path.exists():
                return False
            payload = self.read()
        if payload is None:
            return True
        heartbeat = payload.get("heartbeat_at", payload.get("acquired_at", 0))
        try:
            heartbeat = float(heartbeat)
        except (TypeError, ValueError):
            return True  # unparseable payload: its writer is gone
        if time.time() - heartbeat > self.stale_after:
            return True
        if payload.get("host") == socket.gethostname():
            pid = payload.get("pid")
            if isinstance(pid, int) and not _pid_alive(pid):
                return True
        return False

    def _describe_target(self) -> str:
        return str(self.path)

    # -- acquire / release ------------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        now = time.time()
        payload = {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": now,
            "heartbeat_at": now,
        }
        payload.update(self.extra)
        return payload

    def _try_break(self) -> None:
        """Move a stale claim aside; exactly one contender wins the rename."""
        aside = self.path.with_name(
            f"{self.path.name}.stale-{os.getpid()}-{time.monotonic_ns()}"
        )
        try:
            os.rename(self.path, aside)
        except FileNotFoundError:
            return  # another contender broke it first
        self.reclaimed += 1
        try:
            aside.unlink()
        except OSError:
            pass

    def _take(self) -> bool:
        """One atomic claim attempt; True on success, False on conflict.

        The payload is written to a private temp file first and then
        hard-linked into place — ``link`` fails with ``FileExistsError``
        exactly like ``O_EXCL``, but the claim appears with its payload
        already durable.  A direct O_EXCL create would expose a window
        where a contender reads the just-created empty file, judges it
        torn (= stale) and steals a live claim.
        """
        tmp = self.path.with_name(
            f"{self.path.name}.tmp-{os.getpid()}-{time.monotonic_ns()}"
        )
        fd = os.open(tmp, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        try:
            os.write(fd, (json.dumps(self._payload(), sort_keys=True) + "\n")
                     .encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            os.link(tmp, self.path)
        except FileExistsError:
            return False
        finally:
            try:
                tmp.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._held = True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._heartbeat_loop, daemon=True,
            name=f"claim-heartbeat:{self.path.name}",
        )
        self._thread.start()
        return True

    def try_acquire(self) -> bool:
        """Claim without raising: True when won, False when a live owner
        holds the path.  Stale claims are broken and retried."""
        if self.held:
            raise RunError(f"claim on {self._describe_target()} is "
                           "already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _attempt in range(3):
            if self._take():
                return True
            if not self.is_stale(self.read()):
                return False
            self._try_break()
        return self._take()

    def acquire(self) -> "ClaimFile":
        if not self.try_acquire():
            payload = self.read()
            owner = "unknown process"
            if payload:
                owner = (f"pid {payload.get('pid')} on "
                         f"{payload.get('host')}")
            raise self.conflict_error(
                f"{self._describe_target()} is claimed by {owner} "
                f"(claim file {self.path}); a stale claim becomes "
                f"reclaimable after {self.stale_after:.0f}s without a "
                "heartbeat"
            )
        return self

    def heartbeat(self) -> None:
        """Refresh ``heartbeat_at`` in place (atomic rewrite)."""
        if not self.held:
            return
        payload = self.read() or self._payload()
        payload["heartbeat_at"] = time.time()
        tmp = self.path.with_name(self.path.name + f".hb-{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.heartbeat()
            except OSError:  # pragma: no cover - disk full etc.
                pass

    def release(self) -> None:
        if not self.held:
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.heartbeat_interval + 1)
            self._thread = None
        self._held = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ClaimFile":
        return self.acquire()

    def __exit__(self, *_exc) -> None:
        self.release()


class RunDirLock(ClaimFile):
    """An exclusive, heartbeat-refreshed claim on one run directory.

    Use as a context manager (what :func:`repro.runs.run_in_dir` does)::

        with RunDirLock(run_dir):
            ...  # sole writer of run_dir
    """

    conflict_error = RunLockedError

    def __init__(
        self,
        run_dir: Union[str, Path],
        stale_after: float = DEFAULT_STALE_AFTER,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ) -> None:
        self.run_dir = Path(run_dir)
        super().__init__(
            self.run_dir / LOCK_FILENAME,
            stale_after=stale_after,
            heartbeat_interval=heartbeat_interval,
        )

    def _describe_target(self) -> str:
        return str(self.run_dir)

    def acquire(self) -> "RunDirLock":
        super().acquire()
        return self


def read_lock(run_dir: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The lock payload of a run directory, or ``None``.

    Returns ``None`` both when no claim exists and when the file is torn
    (its writer died between create and write) — callers distinguish via
    ``(run_dir / LOCK_FILENAME).exists()`` when they care.
    """
    return read_claim(Path(run_dir) / LOCK_FILENAME)
