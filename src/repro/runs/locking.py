"""Exclusive run-directory claims: one writer per run dir, ever.

Durable runs made a latent race urgent: two processes that both open the
same run directory would interleave ``metrics.jsonl`` appends and fight
over checkpoints — silently, because every individual write is atomic.
:class:`RunDirLock` closes the race with an on-disk claim file
(``run.lock``) holding the owner's PID, host and a heartbeat timestamp:

* acquisition is an atomic ``O_CREAT | O_EXCL`` create — exactly one
  process wins;
* while held, a daemon thread refreshes ``heartbeat_at`` every
  ``heartbeat_interval`` seconds, so observers (the ``repro.serve``
  scheduler) can tell a live run from a dead one;
* a lock whose owner died (same-host PID gone) or whose heartbeat is
  older than ``stale_after`` seconds is *reclaimable*: the breaker
  atomically renames the stale file aside (only one contender can win
  the rename) and then takes the claim normally.

:func:`repro.runs.run_in_dir` holds this lock for the whole execution,
so two schedulers, a scheduler plus a CLI user, or two CLI users can
never corrupt one run directory between them.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .artifacts import RunError

LOCK_FILENAME = "run.lock"

#: A heartbeat older than this (seconds) marks the lock stale even when
#: the owner PID cannot be probed (e.g. it lives on another host).
DEFAULT_STALE_AFTER = 60.0
#: How often the holder refreshes ``heartbeat_at`` while running.
DEFAULT_HEARTBEAT_INTERVAL = 5.0


class RunLockedError(RunError):
    """The run directory is exclusively claimed by a live process."""


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a same-host PID."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # unknowable: err on the side of "alive"
    return True


class RunDirLock:
    """An exclusive, heartbeat-refreshed claim on one run directory.

    Use as a context manager (what :func:`repro.runs.run_in_dir` does)::

        with RunDirLock(run_dir):
            ...  # sole writer of run_dir

    ``stale_after`` and ``heartbeat_interval`` are tunable for tests and
    for schedulers that want faster crash detection.
    """

    def __init__(
        self,
        run_dir: Union[str, Path],
        stale_after: float = DEFAULT_STALE_AFTER,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ) -> None:
        if stale_after <= 0:
            raise ValueError("stale_after must be > 0")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / LOCK_FILENAME
        self.stale_after = stale_after
        self.heartbeat_interval = heartbeat_interval
        self._fd: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- inspection -------------------------------------------------------

    @property
    def held(self) -> bool:
        return self._fd is not None

    def read(self) -> Optional[Dict[str, Any]]:
        """The current lock payload, or ``None`` when unlocked/torn."""
        return read_lock(self.run_dir)

    def is_stale(self, payload: Optional[Dict[str, Any]] = None) -> bool:
        """Is the recorded owner observably dead or silent too long?

        A torn/unreadable lock file also counts as stale — its writer
        died mid-claim.
        """
        if payload is None:
            if not self.path.exists():
                return False
            payload = self.read()
        if payload is None:
            return True
        heartbeat = payload.get("heartbeat_at", payload.get("acquired_at", 0))
        if time.time() - float(heartbeat) > self.stale_after:
            return True
        if payload.get("host") == socket.gethostname():
            pid = payload.get("pid")
            if isinstance(pid, int) and not _pid_alive(pid):
                return True
        return False

    # -- acquire / release ------------------------------------------------

    def _payload(self) -> Dict[str, Any]:
        now = time.time()
        return {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "acquired_at": now,
            "heartbeat_at": now,
        }

    def _try_break(self) -> None:
        """Move a stale claim aside; exactly one contender wins the rename."""
        aside = self.path.with_name(
            f"{LOCK_FILENAME}.stale-{os.getpid()}-{time.monotonic_ns()}"
        )
        try:
            os.rename(self.path, aside)
        except FileNotFoundError:
            return  # another contender broke it first
        try:
            aside.unlink()
        except OSError:
            pass

    def acquire(self) -> "RunDirLock":
        if self.held:
            raise RunError(f"lock on {self.run_dir} is already held")
        self.run_dir.mkdir(parents=True, exist_ok=True)
        for attempt in range(3):
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                payload = self.read()
                if self.is_stale(payload):
                    self._try_break()
                    continue
                owner = "unknown process"
                if payload:
                    owner = (f"pid {payload.get('pid')} on "
                             f"{payload.get('host')}")
                raise RunLockedError(
                    f"{self.run_dir} is claimed by {owner} "
                    f"(lock file {self.path}); a stale claim becomes "
                    f"reclaimable after {self.stale_after:.0f}s without a "
                    "heartbeat"
                )
            os.write(fd, (json.dumps(self._payload(), sort_keys=True) + "\n")
                     .encode())
            os.fsync(fd)
            os.close(fd)
            self._fd = 1  # sentinel: the claim is the file, not the fd
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._heartbeat_loop, daemon=True,
                name=f"run-lock-heartbeat:{self.run_dir.name}",
            )
            self._thread.start()
            return self
        raise RunLockedError(
            f"could not claim {self.run_dir}: lost the reclaim race "
            "repeatedly"
        )

    def heartbeat(self) -> None:
        """Refresh ``heartbeat_at`` in place (atomic rewrite)."""
        if not self.held:
            return
        payload = self.read() or self._payload()
        payload["heartbeat_at"] = time.time()
        tmp = self.path.with_name(self.path.name + f".hb-{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.heartbeat()
            except OSError:  # pragma: no cover - disk full etc.
                pass

    def release(self) -> None:
        if not self.held:
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.heartbeat_interval + 1)
            self._thread = None
        self._fd = None
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "RunDirLock":
        return self.acquire()

    def __exit__(self, *_exc) -> None:
        self.release()


def read_lock(run_dir: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The lock payload of a run directory, or ``None``.

    Returns ``None`` both when no claim exists and when the file is torn
    (its writer died between create and write) — callers distinguish via
    ``(run_dir / LOCK_FILENAME).exists()`` when they care.
    """
    path = Path(run_dir) / LOCK_FILENAME
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None
