"""The on-disk layout of one run directory.

A run directory is the durable record of one experiment:

```
<run-dir>/
    spec.json                 the ExperimentSpec that produced the run
    metrics.jsonl             append-only, one GenerationMetrics per line
    checkpoints/
        gen-00005.json        full evolution state at a generation boundary
        gen-00010.json        (population + species + innovation counters
        ...                    + RNG state; repro.neat.serialize format)
    champion.json             best genome so far (repro run --save format)
    result.json               final RunResult.summary() — present only
                              when the run finished cleanly
    telemetry.jsonl           out-of-band span/counter telemetry — present
                              only when the run was traced (repro.obs);
                              never part of the byte-identity contract
```

:class:`RunDir` is the one place that knows this layout; everything else
(:mod:`repro.runs.runner`, :mod:`repro.runs.report`, the CLI, the DSE
sweep engine) goes through it.  All single-file writes are atomic
(temp file + ``os.replace``) so an interrupted run never leaves a torn
spec/checkpoint/champion; ``metrics.jsonl`` is append-only and a torn
final line (the one failure mode appends have) is tolerated by the
reader and rewound by resume.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..api.spec import ExperimentSpec
from ..neat.config import NEATConfig
from ..obs.tracer import TELEMETRY_FILENAME
from ..neat.genome import Genome
from ..neat.serialize import (
    DeserializationError,
    genome_to_dict,
    load_genome,
    load_genome_with_config,
    load_population_state,
)

SPEC_FILENAME = "spec.json"
METRICS_FILENAME = "metrics.jsonl"
CHAMPION_FILENAME = "champion.json"
RESULT_FILENAME = "result.json"
RUNMETA_FILENAME = "run.json"
CHECKPOINT_DIRNAME = "checkpoints"

#: Version tag of the run-directory layout itself (``run.json``).
RUN_FORMAT_VERSION = 1

_CHECKPOINT_RE = re.compile(r"^gen-(\d+)\.json$")


class RunError(RuntimeError):
    """Raised for malformed, missing or conflicting run artifacts."""


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class RunDir:
    """Accessor for one run directory (see module docstring for layout)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def __repr__(self) -> str:
        return f"RunDir({str(self.path)!r})"

    # -- paths ------------------------------------------------------------

    @property
    def spec_path(self) -> Path:
        return self.path / SPEC_FILENAME

    @property
    def metrics_path(self) -> Path:
        return self.path / METRICS_FILENAME

    @property
    def champion_path(self) -> Path:
        return self.path / CHAMPION_FILENAME

    @property
    def result_path(self) -> Path:
        return self.path / RESULT_FILENAME

    @property
    def checkpoints_path(self) -> Path:
        return self.path / CHECKPOINT_DIRNAME

    @property
    def telemetry_path(self) -> Path:
        return self.path / TELEMETRY_FILENAME

    def checkpoint_path(self, generation: int) -> Path:
        return self.checkpoints_path / f"gen-{generation:05d}.json"

    # -- lifecycle --------------------------------------------------------

    def create(self) -> "RunDir":
        self.path.mkdir(parents=True, exist_ok=True)
        self.checkpoints_path.mkdir(exist_ok=True)
        return self

    def has_artifacts(self) -> bool:
        """Does this directory already hold a run (a spec at minimum)?"""
        return self.spec_path.exists()

    @property
    def is_complete(self) -> bool:
        """Did the run finish cleanly (``result.json`` written)?"""
        return self.result_path.exists()

    # -- spec -------------------------------------------------------------

    def write_spec(self, spec: ExperimentSpec) -> None:
        _atomic_write(self.spec_path, spec.to_json() + "\n")

    def load_spec(self) -> ExperimentSpec:
        if not self.spec_path.exists():
            raise RunError(f"{self.path} is not a run directory (no spec.json)")
        return ExperimentSpec.from_json(self.spec_path.read_text())

    # -- run metadata -----------------------------------------------------

    @property
    def meta_path(self) -> Path:
        return self.path / RUNMETA_FILENAME

    def write_meta(self, **fields: Any) -> None:
        """Persist run-level settings (checkpoint cadence, layout
        version) so a resume replays them without the caller having to
        remember what the original invocation used."""
        payload = {"format": RUN_FORMAT_VERSION, **fields}
        _atomic_write(
            self.meta_path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def load_meta(self) -> Dict[str, Any]:
        if not self.meta_path.exists():
            return {}
        return json.loads(self.meta_path.read_text())

    # -- metrics ----------------------------------------------------------

    def append_metrics(self, row: Dict[str, Any]) -> None:
        """Append one generation's metrics (flushed immediately, so the
        file is current up to the moment of an interruption)."""
        with open(self.metrics_path, "a") as handle:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
            handle.flush()

    def read_metrics(self) -> List[Dict[str, Any]]:
        """All persisted metrics rows, in generation order.

        A torn final line (interrupted mid-append) is dropped silently;
        a malformed line anywhere else is corruption and raises.
        """
        if not self.metrics_path.exists():
            return []
        rows: List[Dict[str, Any]] = []
        lines = self.metrics_path.read_text().splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break
                raise RunError(
                    f"corrupt metrics line {index + 1} in {self.metrics_path}"
                ) from None
        return rows

    def truncate_metrics(self, before_generation: int) -> List[Dict[str, Any]]:
        """Rewind ``metrics.jsonl`` to generations ``< before_generation``.

        Resume uses this to drop rows past the checkpoint it restarts
        from; the re-run generations then re-append identical rows.
        Returns the retained rows.
        """
        rows = [
            row for row in self.read_metrics()
            if row.get("generation", 0) < before_generation
        ]
        text = "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)
        _atomic_write(self.metrics_path, text)
        return rows

    # -- checkpoints ------------------------------------------------------

    def write_checkpoint(self, state: Dict[str, Any]) -> Path:
        path = self.checkpoint_path(int(state["generation"]))
        self.checkpoints_path.mkdir(parents=True, exist_ok=True)
        _atomic_write(path, json.dumps(state, sort_keys=True))
        return path

    def checkpoints(self) -> List[Tuple[int, Path]]:
        """``(generation, path)`` for every checkpoint, oldest first."""
        if not self.checkpoints_path.is_dir():
            return []
        found = []
        for entry in self.checkpoints_path.iterdir():
            match = _CHECKPOINT_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        return sorted(found)

    def latest_checkpoint(self) -> Optional[Tuple[int, Path]]:
        checkpoints = self.checkpoints()
        return checkpoints[-1] if checkpoints else None

    def load_checkpoint(
        self, generation: Optional[int] = None
    ) -> Dict[str, Any]:
        """The checkpoint payload for ``generation`` (default: latest)."""
        if generation is None:
            latest = self.latest_checkpoint()
            if latest is None:
                raise RunError(f"{self.path} holds no checkpoints")
            _, path = latest
        else:
            path = self.checkpoint_path(generation)
            if not path.exists():
                raise RunError(f"no checkpoint for generation {generation}")
        try:
            return load_population_state(path)
        except DeserializationError as exc:
            raise RunError(f"{path}: {exc}") from exc

    # -- champion ---------------------------------------------------------

    def write_champion(
        self, genome: Genome, config: Optional[NEATConfig] = None
    ) -> None:
        """Persist the champion in the ``repro run --save`` file format
        (loadable by :func:`repro.neat.serialize.load_genome` and the
        ``repro infer`` command), atomically."""
        payload: Dict[str, Any] = {"genome": genome_to_dict(genome)}
        if config is not None:
            payload["config"] = config.to_dict()
        _atomic_write(
            self.champion_path, json.dumps(payload, indent=2, sort_keys=True)
        )

    def load_champion(self) -> Genome:
        if not self.champion_path.exists():
            raise RunError(f"{self.path} holds no champion.json")
        return load_genome(self.champion_path)

    def load_champion_with_config(self):
        if not self.champion_path.exists():
            raise RunError(f"{self.path} holds no champion.json")
        return load_genome_with_config(self.champion_path)

    # -- result summary ---------------------------------------------------

    def write_result(self, summary: Dict[str, Any]) -> None:
        _atomic_write(
            self.result_path,
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
        )

    def load_result(self) -> Optional[Dict[str, Any]]:
        if not self.result_path.exists():
            return None
        return json.loads(self.result_path.read_text())
