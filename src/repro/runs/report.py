"""Rebuild result tables from run artifacts — no re-simulation.

``repro report <dir...>`` goes through here: everything is computed from
``spec.json`` + ``metrics.jsonl`` (+ ``result.json``/``champion.json``
when present), so reporting on a finished — or still-running, or
interrupted — run costs file reads only.  Exports ride the same
CSV/JSON writers as the benchmark harness
(:mod:`repro.analysis.reporting`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..analysis.reporting import (
    fmt_bytes,
    fmt_joules,
    fmt_seconds,
    write_csv,
    write_json,
)
from ..api.spec import ExperimentSpec
from .artifacts import RunDir, RunError

#: The per-generation columns every backend reports (fitness curve).
FITNESS_COLUMNS = (
    "generation", "best_fitness", "mean_fitness", "num_species",
    "num_genes", "footprint_bytes",
)

#: The per-generation hardware/cost columns; the optional ones appear
#: only on backends that can measure them.
HARDWARE_COLUMNS = ("env_steps", "inference_macs", "energy_j", "cycles",
                    "runtime_s")

#: The per-generation curriculum columns; present only on scenario runs
#: (see :mod:`repro.scenarios`).
SCENARIO_COLUMNS = ("scenario_stage", "scenario_forgetting",
                    "scenario_recovery")


@dataclass
class RunReport:
    """One run directory, loaded: spec + metrics rows + optional summary."""

    run_dir: RunDir
    spec: ExperimentSpec
    metrics: List[Dict[str, Any]]
    summary: Optional[Dict[str, Any]]

    @property
    def name(self) -> str:
        return self.run_dir.path.name

    @property
    def generations(self) -> int:
        if self.summary is not None:
            return int(self.summary["generations"])
        return len(self.metrics)

    @property
    def best_fitness(self) -> Optional[float]:
        if self.summary is not None:
            return self.summary.get("best_fitness")
        best = [m["best_fitness"] for m in self.metrics]
        return max(best) if best else None

    @property
    def converged(self) -> Optional[bool]:
        return self.summary.get("converged") if self.summary else None

    @property
    def complete(self) -> bool:
        return self.summary is not None

    def total(self, column: str) -> Optional[float]:
        values = [m.get(column) for m in self.metrics]
        present = [v for v in values if v is not None]
        return sum(present) if present else None


def load_run(path: Union[str, Path, RunDir]) -> RunReport:
    """Load one run directory's artifacts (spec.json is the only
    requirement; an interrupted run reports what it has so far)."""
    run_dir = path if isinstance(path, RunDir) else RunDir(path)
    spec = run_dir.load_spec()  # raises RunError for a non-run directory
    return RunReport(
        run_dir=run_dir,
        spec=spec,
        metrics=run_dir.read_metrics(),
        summary=run_dir.load_result(),
    )


def _fmt(value: Any) -> Any:
    if isinstance(value, float):
        return f"{value:.6g}"
    if value is None:
        return "-"
    return value


def fitness_table(report: RunReport) -> Tuple[List[str], List[List[Any]]]:
    """The Fig. 4(a)-style fitness curve, rebuilt from metrics.jsonl."""
    headers = ["gen", "best fitness", "mean fitness", "species", "genes",
               "footprint"]
    rows = []
    for m in report.metrics:
        rows.append([
            m["generation"],
            _fmt(m["best_fitness"]),
            _fmt(m["mean_fitness"]),
            m["num_species"],
            m["num_genes"],
            fmt_bytes(m["footprint_bytes"]),
        ])
    return headers, rows


def hardware_table(report: RunReport) -> Tuple[List[str], List[List[Any]]]:
    """Per-generation workload/cost columns, with a totals row.

    Optional columns (energy, cycles, modelled runtime) appear only when
    the backend recorded them.
    """
    present = [
        column for column in HARDWARE_COLUMNS
        if any(m.get(column) is not None for m in report.metrics)
    ]
    formatters = {
        "energy_j": fmt_joules,
        "runtime_s": fmt_seconds,
    }

    def cell(column: str, value: Any) -> Any:
        if value is None:
            return "-"
        return formatters.get(column, _fmt)(value)

    headers = ["gen"] + present
    rows = [
        [m["generation"]] + [cell(c, m.get(c)) for c in present]
        for m in report.metrics
    ]
    rows.append(
        ["total"] + [cell(c, report.total(c)) for c in present]
    )
    return headers, rows


def scenario_table(report: RunReport) -> Tuple[List[str], List[List[Any]]]:
    """Per-generation curriculum columns (stage, forgetting, recovery).

    Empty (no rows) for runs recorded without a scenario — callers skip
    the table entirely in that case.
    """
    if not any(m.get("scenario_stage") is not None for m in report.metrics):
        return [], []
    headers = ["gen", "stage", "forgetting", "recovery"]
    rows = [
        [
            m["generation"],
            _fmt(m.get("scenario_stage")),
            _fmt(m.get("scenario_forgetting")),
            _fmt(m.get("scenario_recovery")),
        ]
        for m in report.metrics
    ]
    return headers, rows


def summary_table(
    reports: List[RunReport],
) -> Tuple[List[str], List[List[Any]]]:
    """One row per run directory: outcome + cost totals at a glance."""
    headers = ["run", "env", "backend", "gens", "best fitness", "converged",
               "env steps", "energy", "runtime", "state"]
    rows = []
    for report in reports:
        energy = report.total("energy_j")
        runtime = report.total("runtime_s")
        rows.append([
            report.name,
            report.spec.env_id,
            report.spec.backend,
            report.generations,
            _fmt(report.best_fitness),
            {True: "yes", False: "no", None: "-"}[report.converged],
            report.total("env_steps") or 0,
            fmt_joules(energy) if energy is not None else "-",
            fmt_seconds(runtime) if runtime is not None else "-",
            "complete" if report.complete else "in progress",
        ])
    return headers, rows


def export_reports(
    reports: List[RunReport], prefix: Union[str, Path]
) -> Tuple[Path, Path]:
    """Write ``<prefix>.csv`` (per-generation rows, one ``run`` column)
    and ``<prefix>.json`` (full spec + metrics + summary per run)."""
    if not reports:
        raise RunError("nothing to export: no run directories loaded")
    columns = list(FITNESS_COLUMNS) + [
        column for column in HARDWARE_COLUMNS + SCENARIO_COLUMNS
        if any(
            m.get(column) is not None
            for report in reports for m in report.metrics
        )
    ]
    csv_path = Path(f"{prefix}.csv")
    json_path = Path(f"{prefix}.json")
    write_csv(
        csv_path,
        ["run"] + columns,
        (
            [report.name] + [m.get(column, "") for column in columns]
            for report in reports
            for m in report.metrics
        ),
    )
    write_json(json_path, [
        {
            "run_dir": str(report.run_dir.path),
            "spec": report.spec.to_dict(),
            "summary": report.summary,
            "metrics": report.metrics,
        }
        for report in reports
    ])
    return csv_path, json_path
