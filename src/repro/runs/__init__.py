"""Run artifacts, checkpoint/resume and artifact-only reporting.

The paper's premise is *continuous learning*: an agent's evolved state
must survive power cycles and keep improving across sessions (Section
I — "the system continues to learn in the field").  This package is
that premise as a subsystem — every experiment can leave a durable,
resumable record:

* :class:`RunDir` — the on-disk layout of one run (``spec.json``,
  append-only ``metrics.jsonl``, ``checkpoints/gen-*.json`` full-state
  snapshots, ``champion.json``, ``result.json``).
* :func:`run_in_dir` / :class:`RunWriter` — execute an experiment while
  streaming its artifacts; checkpoint cadence via ``checkpoint_every``.
* :func:`resume_run` — continue an interrupted run from its last
  checkpoint, **bit-identically** to a run that was never interrupted
  (golden-tested across the serial, pooled and vectorized evaluation
  paths), or extend a finished run's generation budget.
* :mod:`repro.runs.report` — rebuild fitness-curve and hardware-metric
  tables from artifacts alone, with CSV/JSON export; no re-simulation.

Quickstart::

    from repro.api import ExperimentSpec
    from repro.runs import resume_run, run_in_dir

    spec = ExperimentSpec("CartPole-v0", max_generations=30, pop_size=50)
    run_in_dir(spec, "runs/cartpole", checkpoint_every=5)
    # ... power cycle anywhere ...
    result = resume_run("runs/cartpole")        # continues, bit-identical

CLI: ``repro run CartPole-v0 --run-dir runs/cartpole``,
``repro run --resume runs/cartpole``, ``repro report runs/cartpole``.
The DSE engine writes one run directory per sweep point with
``repro dse --runs-dir DIR``.
"""

from .artifacts import (
    CHAMPION_FILENAME,
    CHECKPOINT_DIRNAME,
    METRICS_FILENAME,
    RESULT_FILENAME,
    SPEC_FILENAME,
    RunDir,
    RunError,
)
from .locking import (
    LOCK_FILENAME,
    ClaimConflictError,
    ClaimFile,
    RunDirLock,
    RunLockedError,
    read_claim,
    read_lock,
)
from .report import (
    RunReport,
    export_reports,
    fitness_table,
    hardware_table,
    load_run,
    scenario_table,
    summary_table,
)
from .runner import (
    DEFAULT_CHECKPOINT_EVERY,
    RunWriter,
    resume_run,
    run_in_dir,
)

__all__ = [
    "CHAMPION_FILENAME",
    "CHECKPOINT_DIRNAME",
    "DEFAULT_CHECKPOINT_EVERY",
    "LOCK_FILENAME",
    "METRICS_FILENAME",
    "RESULT_FILENAME",
    "SPEC_FILENAME",
    "ClaimConflictError",
    "ClaimFile",
    "RunDir",
    "RunDirLock",
    "RunError",
    "RunLockedError",
    "RunReport",
    "RunWriter",
    "read_claim",
    "read_lock",
    "export_reports",
    "fitness_table",
    "hardware_table",
    "load_run",
    "resume_run",
    "run_in_dir",
    "scenario_table",
    "summary_table",
]
