"""Durable, resumable experiment execution.

:func:`run_in_dir` is :func:`repro.api.run_experiment` with a memory: it
streams every generation's metrics to ``metrics.jsonl``, snapshots the
full evolution state every ``checkpoint_every`` generations (plus once
at the end), keeps ``champion.json`` current, and stamps ``result.json``
when the run completes.  :func:`resume_run` continues an interrupted run
from its last checkpoint.

The guarantee (golden-tested in ``tests/test_resume_golden.py``): a run
killed at any generation and resumed produces a ``metrics.jsonl``,
``champion.json`` and fitness trajectory *byte-identical* to the run
that was never interrupted — across the serial, ``workers=N`` pooled and
``vectorizer="numpy"`` evaluation paths.  Three pieces compose to make
that true:

* checkpoints capture everything (:mod:`repro.neat.serialize` state
  format: genomes, speciation, counters, RNG, last plan);
* the evaluator's episode-seed stream is a pure function of
  ``(experiment seed, generation, genome key, episode)``, so resuming at
  generation *k* replays exactly the seeds the uninterrupted run used;
* resume rewinds ``metrics.jsonl`` to the checkpoint's boundary before
  re-appending, so rows past the last checkpoint are regenerated rather
  than duplicated.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..api.backends import (
    EvaluationObserver,
    GenerationObserver,
    ResumeUnsupportedError,
    ShouldStop,
    StateObserver,
)
from ..api.experiment import Experiment
from ..api.result import GenerationMetrics, RunResult
from ..api.spec import ExperimentSpec
from ..neat.population import Population
from .. import obs
from .artifacts import RunDir, RunError
from .locking import RunDirLock

#: Default checkpoint cadence (generations between full-state snapshots).
DEFAULT_CHECKPOINT_EVERY = 5


class RunWriter:
    """The observer bundle that persists a run's artifacts as it goes.

    Wire :meth:`on_generation` / :meth:`on_state` into
    :meth:`repro.api.Experiment.run` and call :meth:`finalize` with the
    result; :func:`run_in_dir` does exactly this.
    """

    def __init__(
        self,
        run_dir: RunDir,
        spec: ExperimentSpec,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.run_dir = run_dir
        self.spec = spec
        self.checkpoint_every = checkpoint_every
        self._population: Optional[Population] = None
        self._last_checkpoint_generation: Optional[int] = None
        self._scenario_stage: Optional[int] = None

    def on_generation(self, metrics: GenerationMetrics) -> None:
        # Remember the stage of the latest row (on_generation fires
        # before on_state) so the checkpoint records the stage at its
        # boundary.
        self._scenario_stage = metrics.scenario_stage
        self.run_dir.append_metrics(metrics.to_dict())

    def on_state(self, population: Population) -> None:
        # The cadence is modulo the absolute generation (not "every N
        # since start"), so interrupted and uninterrupted runs lay down
        # the same checkpoint files.
        self._population = population
        if population.generation % self.checkpoint_every == 0:
            self.checkpoint(population)

    def checkpoint(self, population: Population) -> None:
        with obs.span("checkpoint", generation=population.generation):
            state = population.to_state()
            if self._scenario_stage is not None:
                # Recorded for humans inspecting the checkpoint; resume
                # itself re-derives the stage by replaying the metrics
                # prefix through the curriculum fold.
                state["scenario_stage"] = self._scenario_stage
            self.run_dir.write_checkpoint(state)
            self._last_checkpoint_generation = population.generation
            if population.best_genome is not None:
                self.run_dir.write_champion(
                    population.best_genome, population.config
                )

    def finalize(self, result: RunResult, complete: bool = True) -> None:
        """Seal the run: final checkpoint, champion — and, for a run
        that actually finished (budget exhausted or threshold met), the
        ``result.json`` summary.  A preempted run (``complete=False``)
        leaves no ``result.json``, so the directory still reads as
        in-progress and a later resume completes it bit-identically."""
        if (
            self._population is not None
            and self._population.generation != self._last_checkpoint_generation
        ):
            self.checkpoint(self._population)
        self.run_dir.write_champion(result.champion, result.neat_config)
        if complete:
            self.run_dir.write_result(result.summary())


def _resolve_resume_spec(
    run_dir: RunDir, spec: Optional[ExperimentSpec]
) -> ExperimentSpec:
    """The spec a resume runs under: the stored one, optionally with an
    extended/shrunk generation budget — any other difference would break
    the bit-identity contract, so it is rejected."""
    stored = run_dir.load_spec()
    if spec is None:
        return stored
    if spec.replace(max_generations=stored.max_generations) != stored:
        detail = ""
        if spec.platform != stored.platform:
            # The platform block is part of the run's identity: a
            # different design point would re-cost (analytical) or
            # re-simulate (soc) the recorded generations differently.
            detail = (
                f" (stored platform: "
                f"{stored.platform.to_dict() if stored.platform else None}, "
                f"requested: "
                f"{spec.platform.to_dict() if spec.platform else None})"
            )
        raise RunError(
            f"resume spec differs from the one stored in {run_dir.path} "
            "in more than max_generations; resuming under a different "
            f"spec would diverge from the recorded run{detail}"
        )
    if spec != stored:
        run_dir.write_spec(spec)
    return spec


def run_in_dir(
    spec: Optional[Union[ExperimentSpec, str, Path]],
    run_dir: Union[str, Path, RunDir],
    *,
    resume: Union[bool, str] = False,
    checkpoint_every: Optional[int] = None,
    on_generation: Optional[GenerationObserver] = None,
    on_evaluation: Optional[EvaluationObserver] = None,
    on_state: Optional[StateObserver] = None,
    should_stop: Optional[ShouldStop] = None,
    lock_stale_after: Optional[float] = None,
    trace: Optional[bool] = None,
    **experiment_kwargs: Any,
) -> RunResult:
    """Run an experiment with durable artifacts in ``run_dir``.

    ``resume=False`` starts a fresh run and refuses a directory that
    already holds one (pass a new directory or resume explicitly).
    ``resume=True`` continues from the last checkpoint — ``spec`` may be
    ``None`` (use the stored one) or differ only in ``max_generations``
    (extending a finished run is legitimate; anything else would
    diverge).  ``resume="auto"`` resumes when artifacts exist and starts
    fresh otherwise — the mode the DSE sweep engine and the
    :mod:`repro.serve` scheduler use.  An explicit ``resume=True`` on a
    ``soc``-backend run raises :class:`repro.api.ResumeUnsupportedError`
    (the chip model keeps no checkpoints); ``"auto"`` restarts such a
    run from scratch instead, which reproduces it exactly.

    The whole execution holds the directory's exclusive claim
    (:class:`repro.runs.RunDirLock`, heartbeat-refreshed), so two
    processes can never write the same run dir concurrently; a claim
    left by a crashed process is reclaimed automatically.
    ``lock_stale_after`` overrides the staleness window (seconds).

    ``should_stop`` is polled after every generation; returning ``True``
    ends the run cooperatively at that boundary.  A run stopped before
    its budget/threshold writes no ``result.json`` (it reads as
    in-progress) and resumes bit-identically later — the
    checkpoint-yield-resume preemption primitive of ``repro.serve``.

    ``trace=True`` (or the ``REPRO_TRACE`` environment variable when
    ``trace`` is ``None``) appends span/counter telemetry to
    ``telemetry.jsonl`` in the run directory — strictly out-of-band:
    every other artifact stays byte-identical to an untraced run (see
    :mod:`repro.obs` and ``docs/observability.md``).

    Returns the same :class:`repro.api.RunResult` a plain
    :meth:`Experiment.run` would, with ``metrics`` covering the *whole*
    trajectory (persisted prefix + freshly run generations).
    """
    rd = run_dir if isinstance(run_dir, RunDir) else RunDir(run_dir)
    if spec is not None and not isinstance(spec, ExperimentSpec):
        spec = ExperimentSpec.load(spec)
    explicit_resume = resume is True
    if resume == "auto":
        resume = rd.has_artifacts()
    elif not isinstance(resume, bool):
        raise ValueError(f"resume must be True, False or 'auto', got {resume!r}")

    lock_kwargs: Dict[str, Any] = {}
    if lock_stale_after is not None:
        lock_kwargs["stale_after"] = lock_stale_after
    if trace is None:
        trace = obs.env_trace_enabled()
    with RunDirLock(rd.path, **lock_kwargs):
        locked_kwargs = dict(
            resume=resume,
            explicit_resume=explicit_resume,
            checkpoint_every=checkpoint_every,
            on_generation=on_generation,
            on_evaluation=on_evaluation,
            on_state=on_state,
            should_stop=should_stop,
            **experiment_kwargs,
        )
        if trace:
            with obs.tracing(rd.telemetry_path), obs.span(
                "run", run_dir=str(rd.path), resume=bool(resume)
            ):
                return _run_in_locked_dir(spec, rd, **locked_kwargs)
        return _run_in_locked_dir(spec, rd, **locked_kwargs)


def _run_in_locked_dir(
    spec: Optional[ExperimentSpec],
    rd: RunDir,
    *,
    resume: bool,
    explicit_resume: bool,
    checkpoint_every: Optional[int],
    on_generation: Optional[GenerationObserver],
    on_evaluation: Optional[EvaluationObserver],
    on_state: Optional[StateObserver],
    should_stop: Optional[ShouldStop],
    **experiment_kwargs: Any,
) -> RunResult:
    resume_state: Optional[Dict[str, Any]] = None
    prefix_rows: List[Dict[str, Any]] = []
    if resume:
        spec = _resolve_resume_spec(rd, spec)
        if explicit_resume and spec.backend.partition(":")[0] == "soc":
            raise ResumeUnsupportedError(
                f"{rd.path} was recorded by the soc backend, which keeps "
                "no checkpoints (its population lives inside the serial "
                "chip simulation) — re-run the spec fresh, or use the "
                "software/analytical backends for resumable runs"
            )
        if checkpoint_every is None:
            # Keep the original cadence so an interrupted-and-resumed
            # run lays down the same checkpoint files as an
            # uninterrupted one.
            checkpoint_every = rd.load_meta().get(
                "checkpoint_every", DEFAULT_CHECKPOINT_EVERY
            )
        elif rd.load_meta().get("checkpoint_every") != checkpoint_every:
            rd.write_meta(checkpoint_every=checkpoint_every)
        latest = rd.latest_checkpoint()
        if latest is not None:
            resume_state = rd.load_checkpoint(latest[0])
            # Annotation only — Population.from_state must not see it.
            resume_state.pop("scenario_stage", None)
            # Rewind metrics to the checkpoint boundary; the generations
            # past it re-run and re-append identical rows.
            prefix_rows = rd.truncate_metrics(int(resume_state["generation"]))
        else:
            # Interrupted before the first checkpoint: a full restart is
            # the resume (the initial population is a pure function of
            # the spec, so this still reproduces the original run).
            rd.create()
            rd.truncate_metrics(0)
    else:
        if rd.has_artifacts():
            raise RunError(
                f"{rd.path} already holds a run; resume it or pick a "
                "fresh directory"
            )
        if spec is None:
            raise RunError("a spec is required to start a fresh run")
        if checkpoint_every is None:
            checkpoint_every = DEFAULT_CHECKPOINT_EVERY
        rd.create()
        rd.write_spec(spec)
        rd.write_meta(checkpoint_every=checkpoint_every)

    writer = RunWriter(rd, spec, checkpoint_every=checkpoint_every)

    def generation_observer(metrics: GenerationMetrics) -> None:
        writer.on_generation(metrics)
        if on_generation is not None:
            on_generation(metrics)

    def state_observer(population: Population) -> None:
        writer.on_state(population)
        if on_state is not None:
            on_state(population)

    run_kwargs: Dict[str, Any] = {}
    if spec.scenario is not None:
        # Scenario runs replay the curriculum fold over the persisted
        # rows so a resumed run re-enters the exact stage the
        # uninterrupted run would be in at this boundary.
        run_kwargs["resume_metrics"] = prefix_rows
    result = Experiment(spec, **experiment_kwargs).run(
        on_generation=generation_observer,
        on_evaluation=on_evaluation,
        on_state=state_observer,
        resume_state=resume_state,
        should_stop=should_stop,
        **run_kwargs,
    )
    if prefix_rows:
        prefix = [GenerationMetrics(**row) for row in prefix_rows]
        result.metrics = prefix + result.metrics
        if result.total_energy_j is not None:
            result.total_energy_j = sum(
                m.energy_j or 0.0 for m in result.metrics
            )
        if result.total_runtime_s is not None:
            result.total_runtime_s = sum(
                m.runtime_s or 0.0 for m in result.metrics
            )
    # A cooperatively stopped run that nevertheless reached its budget
    # or threshold is complete; only a genuinely early yield stays open.
    complete = (
        result.converged or result.generations >= spec.max_generations
    )
    writer.finalize(result, complete=complete)
    return result


def resume_run(
    run_dir: Union[str, Path, RunDir],
    max_generations: Optional[int] = None,
    **kwargs: Any,
) -> RunResult:
    """Continue an interrupted (or extend a finished) run.

    ``max_generations`` overrides the stored budget — the one spec field
    a resume may change; a completed run resumed with a larger budget
    keeps evolving from its final checkpoint with no re-simulation of
    the generations already on disk.
    """
    rd = run_dir if isinstance(run_dir, RunDir) else RunDir(run_dir)
    spec: Optional[ExperimentSpec] = None
    if max_generations is not None:
        spec = rd.load_spec().replace(max_generations=max_generations)
    return run_in_dir(spec, rd, resume=True, **kwargs)
