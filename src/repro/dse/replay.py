"""Trace-replay point evaluator: hardware axes at generation granularity.

The paper's Fig. 11 methodology replays one *recorded* reproduction plan
through the cycle-level EvE model under different hardware
configurations — same genomes, same reproduction events, different
silicon.  :func:`eve_replay_evaluator` packages that methodology as a
:class:`repro.dse.SweepRunner` evaluator, so the single-generation
hardware ablations (``examples/hw_design_space.py``,
``benchmarks/bench_fig11_design_space.py``) run through the same axis
expansion and tabulation as full-experiment sweeps.

The evaluator honours the unified platform axes that affect the EvE
reproduction pass (``platform.eve_pes``, ``platform.noc``,
``platform.scheduler``), plus their deprecated ``hw.*`` aliases;
``platform.adam_shape`` parameterises inference, which a reproduction
replay does not execute.
"""

from __future__ import annotations

from typing import Any, Dict

from ..hw.energy import SRAM_ACCESS_ENERGY_PJ
from ..hw.eve import EvEConfig, EvolutionEngine
from ..hw.gene_encoding import encode_genome
from ..hw.sram import GenomeBuffer
from .runner import PointEvaluator
from .spec import SweepPoint

#: Cache identity for sweeps that want to memoise replay points.
EVE_REPLAY_EVALUATOR = "eve-replay-v1"


def eve_replay_evaluator(
    config, population, plan, eve_seed: int = 1
) -> PointEvaluator:
    """An evaluator replaying ``plan`` over ``population``'s genomes.

    ``config`` is the :class:`repro.neat.NEATConfig` the population was
    evolved under; ``plan`` a
    :meth:`repro.neat.reproduction.Reproduction.plan_generation` result.
    Each point gets a fresh :class:`GenomeBuffer` and a fresh
    :class:`EvolutionEngine` seeded with ``eve_seed``, so points are
    independent and deterministic.
    """

    def evaluate(point: SweepPoint) -> Dict[str, Any]:
        axes = point.axes

        def axis(field: str) -> Any:
            # unified spelling first, then the deprecated hw.* alias
            return axes.get(f"platform.{field}", axes.get(f"hw.{field}"))

        eve_kwargs = {}
        if axis("eve_pes") is not None:
            eve_kwargs["num_pes"] = axis("eve_pes")
        if axis("noc") is not None:
            eve_kwargs["noc"] = axis("noc")
        if axis("scheduler") is not None:
            eve_kwargs["scheduler"] = axis("scheduler")
        buffer = GenomeBuffer()
        for key, genome in population.items():
            buffer.write_genome(key, encode_genome(genome, config.genome))
            buffer.set_fitness(key, genome.fitness)
        eve = EvolutionEngine(EvEConfig(seed=eve_seed, **eve_kwargs))
        result = eve.reproduce_generation(buffer, plan.events, plan.elite_keys)
        return {
            "waves": result.waves,
            "cycles": result.cycles,
            "sram_reads": result.sram_reads,
            "sram_writes": result.sram_writes,
            "sram_energy_uj": (result.sram_reads + result.sram_writes)
            * SRAM_ACCESS_ENERGY_PJ * 1e-6,
            "reads_per_cycle": result.noc_stats.reads_per_cycle,
            "multicast_hits": result.noc_stats.multicast_hits,
        }

    return evaluate
