"""Declarative sweep specifications: one record describes a design space.

A :class:`SweepSpec` is to a design-space study what
:class:`repro.api.ExperimentSpec` is to a single run: a frozen,
JSON-round-trippable description.  It names a *base* experiment spec and
a set of *axes* — each axis a spec field (``env_id``, ``backend``,
``pop_size``, ``seed``, …) or a field of the unified
:class:`repro.platforms.PlatformSpec` (``platform.eve_pes``,
``platform.noc``, ``platform.scheduler``, ``platform.adam_shape``, …) —
with the list of values to explore.  ``expand()`` materialises the spec
into concrete :class:`SweepPoint`\\ s either as the full cartesian
``grid`` or as a seeded ``random`` sample of it.

Platform axes parameterise the hardware substrates: on ``soc``-backend
points they update (or create) the embedded ``soc``-kind platform spec;
on ``analytical:<name>`` points they derive a variant of the named
registry platform; on other backends they do not change the executed
experiment, so equivalent points collapse to one evaluation under the
content-hash cache (:mod:`repro.dse.cache`).  The pre-redesign ``hw.*``
axes remain as deprecated aliases with their original semantics
(folding into ``soc`` ``backend_options``), so existing sweep files and
their cache keys are untouched.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import random
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..api.spec import ExperimentSpec, SpecError
from ..platforms import (
    PLATFORM_KINDS,
    PlatformSpec,
    PlatformSpecError,
    platform_spec,
)


class SweepSpecError(SpecError):
    """Raised for invalid or inconsistent sweep specifications."""


#: Sampling strategies ``expand()`` understands.
STRATEGIES = ("grid", "random")

#: Deprecated hardware axes -> the :class:`repro.api.SoCBackend` option
#: they set.  Kept as aliases of the ``platform.*`` axes so existing
#: sweep files (and their cache keys) keep working; new sweeps should
#: spell them ``platform.eve_pes``, ``platform.noc``, ….
HW_AXES = {
    "hw.eve_pes": "eve_pes",
    "hw.noc": "noc",
    "hw.scheduler": "scheduler",
    "hw.adam_shape": "adam_shape",
}

#: Every sweepable field of the unified platform spec, as
#: ``platform.<field>`` axis names — the union of all platform kinds'
#: parameter fields (validated per point against the actual kind).
PLATFORM_AXES = tuple(
    sorted(
        {
            f"platform.{params_field.name}"
            for params_cls in PLATFORM_KINDS.values()
            for params_field in dataclasses.fields(params_cls)
        }
    )
)

#: Experiment-spec fields an axis may sweep (``backend_options`` is
#: reserved for the hardware-axis folding, ``platform`` for the
#: ``platform.*`` axes, ``scenario`` for the ``scenario.*`` axes).
SPEC_AXES = tuple(
    sorted(
        f.name
        for f in dataclasses.fields(ExperimentSpec)
        if f.name not in ("backend_options", "platform", "scenario")
    )
)

#: The fixed scenario axis; ``scenario.params.<key>`` axes are validated
#: dynamically (the key set is environment-specific).
SCENARIO_NAME_AXIS = "scenario.name"
SCENARIO_PARAM_PREFIX = "scenario.params."


def _is_scenario_axis(name: str) -> bool:
    if name == SCENARIO_NAME_AXIS:
        return True
    return (
        name.startswith(SCENARIO_PARAM_PREFIX)
        and len(name) > len(SCENARIO_PARAM_PREFIX)
    )


def _is_json_scalar(value: Any) -> bool:
    return value is None or isinstance(value, (bool, int, float, str))


@dataclass(frozen=True)
class SweepPoint:
    """One concrete point of a sweep: chosen axis values + effective spec.

    ``axes`` records the value every axis took at this point; ``spec`` is
    the resolved :class:`ExperimentSpec` the default executor runs
    (hardware axes folded into ``backend_options`` on ``soc`` points).
    """

    index: int
    axes: Dict[str, Any]
    spec: ExperimentSpec

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "axes": dict(self.axes),
            "spec": self.spec.to_dict(),
        }


@dataclass(frozen=True)
class SweepSpec:
    """A design-space study, JSON-serialisable.

    ``axes`` maps axis names to candidate-value lists.  An axis name is
    an :class:`repro.api.ExperimentSpec` field (:data:`SPEC_AXES` —
    ``seed``, ``backend``, ``pop_size``, …), a unified platform-spec
    field (:data:`PLATFORM_AXES` — ``platform.eve_pes``,
    ``platform.noc``, ``platform.scheduler``, ``platform.adam_shape``,
    …), which parameterises the ``soc``/``analytical`` substrates and
    leaves other backends unchanged, a scenario axis (``scenario.name``
    sweeps registered environment scenarios — ``None`` meaning the
    unmodified base env — and ``scenario.params.<key>`` sweeps one
    tunable environment parameter), or a deprecated ``hw.*`` alias
    (:data:`HW_AXES`).  ``strategy`` is ``grid`` (full
    cartesian product, the default) or ``random`` (``samples`` draws
    from the grid using ``sample_seed`` — duplicates collapse, so the
    expansion may be shorter than ``samples``).

    Execute with :class:`repro.dse.SweepRunner` / :func:`repro.dse.run_sweep`
    (CLI: ``repro dse --sweep FILE``); pass ``runs_dir`` there to give
    every evaluated point a durable, resumable :mod:`repro.runs`
    directory.
    """

    base: ExperimentSpec
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    strategy: str = "grid"
    samples: Optional[int] = None
    sample_seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.base, ExperimentSpec):
            raise SweepSpecError("base must be an ExperimentSpec")
        if self.strategy not in STRATEGIES:
            raise SweepSpecError(
                f"strategy must be one of {list(STRATEGIES)}, "
                f"got {self.strategy!r}"
            )
        if not self.axes:
            raise SweepSpecError("a sweep needs at least one axis")
        for name, values in self.axes.items():
            if name in HW_AXES:
                warnings.warn(
                    f"sweep axis {name!r} is deprecated; use "
                    f"'platform.{HW_AXES[name]}' (the unified "
                    "PlatformSpec field)",
                    DeprecationWarning,
                    stacklevel=3,
                )
            elif (
                name not in SPEC_AXES
                and name not in PLATFORM_AXES
                and not _is_scenario_axis(name)
            ):
                raise SweepSpecError(
                    f"unknown sweep axis {name!r}; spec axes: "
                    f"{list(SPEC_AXES)}; platform axes: "
                    f"{list(PLATFORM_AXES)}; scenario axes: "
                    f"['{SCENARIO_NAME_AXIS}', "
                    f"'{SCENARIO_PARAM_PREFIX}<key>'] "
                    f"(deprecated aliases: {sorted(HW_AXES)})"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise SweepSpecError(
                    f"axis {name!r} needs a non-empty list of values"
                )
            for value in values:
                if not _is_json_scalar(value):
                    raise SweepSpecError(
                        f"axis {name!r} value {value!r} is not a JSON scalar"
                    )
            if len(set(values)) != len(values):
                raise SweepSpecError(f"axis {name!r} has duplicate values")
        if self.strategy == "random":
            if self.samples is None or self.samples < 1:
                raise SweepSpecError(
                    "random sampling needs samples >= 1"
                )
        elif self.samples is not None:
            raise SweepSpecError("samples only applies to strategy='random'")

    # -- expansion --------------------------------------------------------

    @property
    def axis_names(self) -> List[str]:
        return list(self.axes)

    def grid_size(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def _combinations(self) -> List[Tuple[Any, ...]]:
        names = self.axis_names
        if self.strategy == "grid":
            return list(itertools.product(*(self.axes[n] for n in names)))
        rng = random.Random(self.sample_seed)
        seen, combos = set(), []
        for _ in range(self.samples):
            combo = tuple(rng.choice(self.axes[n]) for n in names)
            if combo not in seen:
                seen.add(combo)
                combos.append(combo)
        return combos

    def resolve_point(self, index: int, values: Mapping[str, Any]) -> SweepPoint:
        """Resolve one axis-value assignment into a :class:`SweepPoint`."""
        spec_fields = {k: v for k, v in values.items() if k in SPEC_AXES}
        try:
            spec = self.base.replace(**spec_fields) if spec_fields else self.base
        except SpecError as exc:
            raise SweepSpecError(f"point {dict(values)}: {exc}") from exc
        hw = {
            HW_AXES[k]: v for k, v in values.items() if k in HW_AXES
        }
        if hw and spec.backend == "soc":
            spec = spec.replace(
                backend_options={**spec.backend_options, **hw}
            )
        platform_fields = {
            k.split(".", 1)[1]: v
            for k, v in values.items()
            if k in PLATFORM_AXES
        }
        if platform_fields:
            spec = self._apply_platform_fields(spec, platform_fields, values)
        scenario_fields = {
            k: v for k, v in values.items() if _is_scenario_axis(k)
        }
        if scenario_fields:
            spec = self._apply_scenario_fields(spec, scenario_fields, values)
        return SweepPoint(index=index, axes=dict(values), spec=spec)

    @staticmethod
    def _apply_scenario_fields(
        spec: ExperimentSpec,
        fields: Mapping[str, Any],
        values: Mapping[str, Any],
    ) -> ExperimentSpec:
        """Fold ``scenario.*`` axis values into the point's spec.

        ``scenario.name`` swaps in a registered scenario wholesale
        (``None`` drops the scenario block, giving the unmodified base
        environment); it applies before any ``scenario.params.<key>``
        axis, which then overrides one tunable parameter — creating a
        params-only scenario for the spec's own env when no scenario is
        embedded.  Params are merged into the scenario's base ``params``
        so curriculum stages still layer on top.
        """
        from ..scenarios import (
            ScenarioSpec,
            ScenarioSpecError,
            UnknownScenarioError,
            get_scenario,
        )

        try:
            scenario = spec.scenario
            name = fields.get(SCENARIO_NAME_AXIS, ...)
            if name is not ...:
                scenario = get_scenario(name) if name is not None else None
            for axis, value in sorted(fields.items()):
                if axis == SCENARIO_NAME_AXIS:
                    continue
                key = axis[len(SCENARIO_PARAM_PREFIX):]
                if scenario is None:
                    scenario = ScenarioSpec(
                        env_id=spec.env_id, params={key: value}
                    )
                else:
                    scenario = scenario.replace(
                        params={**scenario.params, key: value}
                    )
            if scenario is spec.scenario:
                return spec
            return spec.replace(scenario=scenario)
        except (
            ScenarioSpecError,
            UnknownScenarioError,
            SpecError,
        ) as exc:
            message = exc.args[0] if exc.args else exc
            raise SweepSpecError(
                f"point {dict(values)}: {message}"
            ) from exc

    @staticmethod
    def _apply_platform_fields(
        spec: ExperimentSpec,
        fields: Mapping[str, Any],
        values: Mapping[str, Any],
    ) -> ExperimentSpec:
        """Fold ``platform.*`` axis values into the point's spec.

        The embedded platform spec is updated when present; a ``soc``
        point without one gets the paper design point plus the swept
        fields; an ``analytical:<name>`` point derives a variant of the
        named registry platform.  Only the fields of the point's
        platform *kind* apply — a ``platform.eve_pes`` axis shapes the
        ``soc`` points of a mixed-backend sweep and leaves an
        ``analytical:CPU_a`` point's spec untouched, so (exactly like
        the legacy ``hw.*`` folding) the unaffected points collapse to
        one evaluation in the cache.  Backends without a platform
        notion (``software``, custom) are never touched.
        """
        base_name, _, arg = spec.backend.partition(":")
        try:
            target: Optional[PlatformSpec] = spec.platform
            new_backend = spec.backend
            if target is None:
                if base_name == "soc":
                    target = PlatformSpec("soc")
                elif base_name == "analytical" and arg:
                    try:
                        target = platform_spec(arg)
                    except PlatformSpecError:
                        return spec  # factory-backed: no declarative params
                    new_backend = "analytical"
            if target is None:
                return spec
            valid = {
                f.name
                for f in dataclasses.fields(PLATFORM_KINDS[target.kind])
            }
            applicable = {k: v for k, v in fields.items() if k in valid}
            if not applicable:
                return spec
            return spec.replace(
                backend=new_backend,
                platform=target.replace_params(**applicable),
            )
        except (PlatformSpecError, KeyError, SpecError) as exc:
            message = exc.args[0] if exc.args else exc
            raise SweepSpecError(
                f"point {dict(values)}: {message}"
            ) from exc

    def expand(self) -> List[SweepPoint]:
        """Materialise the sweep into concrete points."""
        names = self.axis_names
        return [
            self.resolve_point(i, dict(zip(names, combo)))
            for i, combo in enumerate(self._combinations())
        ]

    # -- dict / JSON round-trip -------------------------------------------

    def replace(self, **changes: Any) -> "SweepSpec":
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "axes": {name: list(values) for name, values in self.axes.items()},
            "strategy": self.strategy,
            "samples": self.samples,
            "sample_seed": self.sample_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SweepSpecError(f"unknown sweep fields: {unknown}")
        if "base" not in data:
            raise SweepSpecError("a sweep spec needs a 'base' experiment spec")
        base = data["base"]
        if not isinstance(base, ExperimentSpec):
            if not isinstance(base, Mapping):
                raise SweepSpecError("'base' must be an experiment-spec object")
            base = ExperimentSpec.from_dict(base)
        return cls(**{**dict(data), "base": base})

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SweepSpecError(f"invalid sweep JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SweepSpecError("sweep JSON must be an object")
        return cls.from_dict(data)

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "SweepSpec":
        return cls.from_json(Path(path).read_text())
