"""The sweep engine: expand, memoise, execute in parallel, tabulate.

:class:`SweepRunner` turns a :class:`repro.dse.SweepSpec` into a
:class:`SweepResult` table:

1. the spec expands into concrete points;
2. each point is keyed by content hash; points already in the on-disk
   cache (or duplicated within the sweep) are served without running a
   backend, so re-running an edited sweep only evaluates the new points;
3. the remaining points run through :class:`repro.api.Experiment` —
   serially, or across a process pool (``jobs=N``).  Within a point the
   experiment's own ``workers``/``vectorizer`` settings still apply, so
   a sweep can shard across points while each point batches inside.

A custom ``evaluate`` callable replaces the experiment executor —
the trace-replay harnesses (``examples/hw_design_space.py``,
``benchmarks/bench_fig11_design_space.py``) drive the paper's
single-generation EvE replays through the same axis/table machinery.
Custom evaluators run in-process (``jobs`` does not apply) and are only
cached when an ``evaluator_version`` string declares their identity.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .. import obs
from ..analysis.reporting import write_csv, write_json
from .cache import EXPERIMENT_EVALUATOR, SweepCache, point_key
from .pareto import ObjectiveError, pareto_front
from .spec import SweepPoint, SweepSpec

#: A point evaluator: point -> flat metrics dict (JSON-serialisable).
PointEvaluator = Callable[[SweepPoint], Mapping[str, Any]]
#: Progress observer fired as each row lands: (done, total, row).
ProgressObserver = Callable[[int, int, Dict[str, Any]], None]

#: Metric columns the default executor reports, in table order.
METRIC_COLUMNS = (
    "fitness",
    "generations",
    "converged",
    "runtime_s",
    "energy_j",
    "env_steps",
    "cached",
)


def evaluate_experiment_point(
    spec_json: str, run_dir: Optional[str] = None
) -> Dict[str, Any]:
    """The default executor: run one experiment spec, summarise it.

    Takes the spec as JSON (not a pickled object) so process-pool
    workers rebuild it exactly the way a spec file would.  With
    ``run_dir`` the point executes through :func:`repro.runs.run_in_dir`
    in ``resume="auto"`` mode: the point leaves durable artifacts
    (metrics, checkpoints, champion) and an interrupted sweep point
    continues from its last checkpoint instead of restarting.
    """
    from ..api import Experiment, ExperimentSpec

    spec = ExperimentSpec.from_json(spec_json)
    with obs.span(
        "dse.point", env_id=spec.env_id, backend=spec.backend
    ):
        if run_dir is not None:
            from ..runs import run_in_dir

            result = run_in_dir(spec, run_dir, resume="auto")
        else:
            result = Experiment(spec).run()
    return {
        "fitness": result.best_fitness,
        "generations": result.generations,
        "converged": result.converged,
        "runtime_s": result.total_runtime_s,
        "energy_j": result.total_energy_j,
        "env_steps": sum(m.env_steps for m in result.metrics),
        "inference_macs": sum(m.inference_macs for m in result.metrics),
    }


@dataclass
class SweepResult:
    """The tabulated outcome of one sweep run.

    ``rows`` are flat dicts — axis values first, then metrics, then the
    bookkeeping columns ``point`` (expansion index), ``key`` (content
    hash, when caching applies), ``cached`` (served without running a
    backend: an on-disk hit or an intra-sweep duplicate) and — when the
    runner was given ``runs_dir`` — ``run_dir``, the point's durable
    artifact directory (inspect with ``repro report <run_dir>``).
    """

    sweep: SweepSpec
    rows: List[Dict[str, Any]] = field(default_factory=list)
    cache_dir: Optional[str] = None

    # -- counters ---------------------------------------------------------

    @property
    def points(self) -> int:
        return len(self.rows)

    @property
    def cache_hits(self) -> int:
        return sum(1 for row in self.rows if row.get("cached"))

    @property
    def evaluated(self) -> int:
        return self.points - self.cache_hits

    # -- shaping ----------------------------------------------------------

    @property
    def axis_names(self) -> List[str]:
        return self.sweep.axis_names

    def metric_names(self) -> List[str]:
        """Every non-axis, non-bookkeeping column present in the rows —
        canonical metrics first (in :data:`METRIC_COLUMNS` order, which
        also undoes the sorted-key order cached records come back in),
        then any evaluator-specific extras, with ``cached`` last."""
        skip = set(self.axis_names) | {"point", "key", "run_dir"}
        seen: List[str] = []
        for row in self.rows:
            for name in row:
                if name not in skip and name not in seen:
                    seen.append(name)
        head = [name for name in METRIC_COLUMNS if name in seen and name != "cached"]
        tail = [name for name in seen if name not in head and name != "cached"]
        return head + tail + (["cached"] if "cached" in seen else [])

    def table(
        self, columns: Optional[Sequence[str]] = None
    ) -> Tuple[List[str], List[List[Any]]]:
        """(headers, rows) ready for :func:`repro.analysis.render_table`."""
        headers = list(columns) if columns else (
            self.axis_names + self.metric_names()
        )
        return headers, [
            [_format_cell(row.get(name)) for name in headers]
            for row in self.rows
        ]

    def group_by(
        self, axis: str, metric: str
    ) -> List[Dict[str, Any]]:
        """Per-axis-value summary of one metric: count/mean/min/max.

        Raises :class:`repro.dse.ObjectiveError` for an unknown axis or
        a metric no row carries — a typo, not an empty summary.
        """
        if self.rows:
            if axis not in self.axis_names:
                raise ObjectiveError(
                    f"unknown axis {axis!r}; sweep axes: {self.axis_names}"
                )
            if not any(
                isinstance(row.get(metric), (int, float))
                and not isinstance(row.get(metric), bool)
                for row in self.rows
            ):
                raise ObjectiveError(
                    f"metric {metric!r} is not a numeric column of any "
                    f"result row"
                )
        groups: Dict[Any, List[float]] = {}
        order: List[Any] = []
        for row in self.rows:
            value = row.get(metric)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            key = row.get(axis)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(float(value))
        return [
            {
                axis: key,
                "count": len(groups[key]),
                "mean": sum(groups[key]) / len(groups[key]),
                "min": min(groups[key]),
                "max": max(groups[key]),
            }
            for key in order
            if groups[key]
        ]

    def pareto_front(
        self, objectives: Mapping[str, str]
    ) -> List[Dict[str, Any]]:
        """Non-dominated rows under ``{column: "min"|"max"}`` objectives."""
        return pareto_front(self.rows, objectives)

    # -- export -----------------------------------------------------------

    def to_csv(self, path: Union[str, Path]) -> None:
        headers = (
            self.axis_names + self.metric_names() + ["point", "key"]
        )
        if any("run_dir" in row for row in self.rows):
            headers = headers + ["run_dir"]
        write_csv(
            path,
            headers,
            ([row.get(name, "") for name in headers] for row in self.rows),
        )

    def summary(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep.to_dict(),
            "points": self.points,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "cache_dir": self.cache_dir,
            "rows": self.rows,
        }

    def to_json(self, path: Union[str, Path]) -> None:
        write_json(path, self.summary())


def _format_cell(value: Any) -> Any:
    if isinstance(value, float):
        return f"{value:.6g}"
    if value is None:
        return "-"
    return value


class SweepRunner:
    """Execute a :class:`SweepSpec` with memoisation and parallelism.

    ``cache_dir=None`` disables the on-disk cache (intra-sweep duplicate
    points still collapse); the CLI defaults it to
    :func:`repro.dse.default_cache_dir`.  ``jobs=N`` shards uncached
    points across a process pool (default executor only).
    """

    def __init__(
        self,
        sweep: SweepSpec,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs: int = 1,
        evaluate: Optional[PointEvaluator] = None,
        evaluator_version: Optional[str] = None,
        runs_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if runs_dir is not None and evaluate is not None:
            raise ValueError(
                "runs_dir applies to the default experiment executor "
                "only; custom evaluators do not run experiments"
            )
        self.sweep = sweep
        self.cache = SweepCache(cache_dir) if cache_dir is not None else None
        self.jobs = jobs
        #: With ``runs_dir`` every evaluated point gets a durable,
        #: resumable run directory ``<runs_dir>/<content-key>`` —
        #: content-addressed like the cache, so re-sweeps find (and
        #: interrupted sweeps resume) their points' artifacts.
        self.runs_dir = Path(runs_dir) if runs_dir is not None else None
        self.evaluate = evaluate
        if evaluate is None:
            self.evaluator_version = EXPERIMENT_EVALUATOR
        else:
            # Custom evaluators must declare an identity to be cacheable;
            # their keys also hash the raw axis values (the evaluator sees
            # the whole point, not just the effective spec).
            self.evaluator_version = evaluator_version
        if self.evaluator_version is None:
            self.cache = None

    def _key(self, point: SweepPoint) -> str:
        return point_key(
            point,
            evaluator=self.evaluator_version or "uncached",
            include_axes=self.evaluate is not None,
        )

    def _point_run_dir(self, key: str) -> Optional[str]:
        if self.runs_dir is None:
            return None
        return str(self.runs_dir / key)

    def _run_point(self, point: SweepPoint, key: str) -> Dict[str, Any]:
        if self.evaluate is not None:
            return dict(self.evaluate(point))
        return evaluate_experiment_point(
            point.spec.to_json(), run_dir=self._point_run_dir(key)
        )

    def run(
        self,
        progress: Optional[ProgressObserver] = None,
        points: Optional[Sequence[SweepPoint]] = None,
    ) -> SweepResult:
        """Run the sweep; ``points`` overrides the expansion with an
        explicit subset (the successive-halving scheduler re-runs
        surviving points at growing budgets this way)."""
        points = list(points) if points is not None else self.sweep.expand()
        keys = [self._key(point) for point in points]
        rows: List[Optional[Dict[str, Any]]] = [None] * len(points)
        done = 0

        def land(index: int, metrics: Mapping[str, Any], cached: bool) -> None:
            nonlocal done
            row = dict(points[index].axes)
            row.update(metrics)
            row["point"] = points[index].index
            row["key"] = keys[index]
            row["cached"] = cached
            if self.runs_dir is not None:
                # Cached rows point at their artifacts too, when an
                # earlier sweep (or this one, via a duplicate) left them.
                point_dir = self.runs_dir / keys[index]
                if point_dir.exists():
                    row["run_dir"] = str(point_dir)
            rows[index] = row
            done += 1
            if progress is not None:
                progress(done, len(points), row)

        # Pass 1: serve on-disk hits and collapse intra-sweep duplicates.
        pending: Dict[str, List[int]] = {}
        for index, (point, key) in enumerate(zip(points, keys)):
            record = self.cache.get(key) if self.cache is not None else None
            if record is not None:
                obs.incr("dse.cache_hit")
                land(index, record["metrics"], cached=True)
            else:
                obs.incr("dse.cache_miss")
                pending.setdefault(key, []).append(index)

        # Pass 2: evaluate one representative per unique key.  Each
        # record is persisted the moment it lands, so an interrupted or
        # failing sweep keeps every already-finished point.
        fresh: Dict[str, Mapping[str, Any]] = {}

        def land_fresh(index: int, metrics: Mapping[str, Any]) -> None:
            fresh[keys[index]] = metrics
            if self.cache is not None:
                self.cache.put(keys[index], metrics, points[index])
            land(index, metrics, cached=False)

        leaders = [indices[0] for indices in pending.values()]
        if self.evaluate is None and self.jobs > 1 and len(leaders) > 1:
            self._run_pool(points, keys, leaders, land_fresh)
        else:
            for index in leaders:
                land_fresh(
                    index, self._run_point(points[index], keys[index])
                )
        for key, metrics in fresh.items():
            for index in pending[key][1:]:
                land(index, metrics, cached=True)

        result_rows = [row for row in rows if row is not None]
        result_rows.sort(key=lambda row: row["point"])
        return SweepResult(
            sweep=self.sweep,
            rows=result_rows,
            cache_dir=str(self.cache.root) if self.cache is not None else None,
        )

    def _run_pool(
        self,
        points: Sequence[SweepPoint],
        keys: Sequence[str],
        leaders: Sequence[int],
        land_fresh: Callable[[int, Mapping[str, Any]], None],
    ) -> None:
        max_workers = min(self.jobs, len(leaders))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    evaluate_experiment_point,
                    points[index].spec.to_json(),
                    self._point_run_dir(keys[index]),
                ): index
                for index in leaders
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    land_fresh(futures[future], future.result())


def run_sweep(
    sweep: Union[SweepSpec, str, Path],
    cache_dir: Optional[Union[str, Path]] = None,
    jobs: int = 1,
    progress: Optional[ProgressObserver] = None,
    **runner_kwargs: Any,
) -> SweepResult:
    """Convenience: run a sweep spec object or a sweep JSON file."""
    if not isinstance(sweep, SweepSpec):
        sweep = SweepSpec.load(sweep)
    runner = SweepRunner(sweep, cache_dir=cache_dir, jobs=jobs, **runner_kwargs)
    return runner.run(progress=progress)
