"""Successive halving with Pareto-aware promotion: pay less for losers.

A full sweep spends ``max_generations`` on every point, including the
ones whose fate is obvious after a generation or two.  Successive
halving (Jamieson & Talwalkar's bandit formulation, the core of
Hyperband) runs the whole population at a small generation budget first,
then promotes only the promising fraction to each successively larger
budget — the *rungs* — so the total budget concentrates on the points
that might actually win.

The promotion rule here is **Pareto-aware**: a rung's survivors are the
top ``ceil(n / reduction)`` by the primary objective *union the rung's
entire Pareto frontier* under all objectives.  The union guarantee is
what the property tests pin: no point that is non-dominated at its rung
is ever pruned, so a multi-objective study (fitness vs energy, the
paper's Fig. 11 trade-off) cannot lose a frontier candidate to a
single-metric cut-off.

Every rung evaluation flows through the ordinary
:class:`repro.dse.SweepRunner` with the point's spec re-budgeted to the
rung's ``max_generations`` — so rung results are content-hash cached
like any other point, and the final rung (always the sweep's full
budget) produces records byte-identical to an unpruned sweep's for the
surviving points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .. import obs
from .pareto import ObjectiveError, pareto_front
from .runner import PointEvaluator, ProgressObserver, SweepResult, SweepRunner
from .spec import SweepPoint, SweepSpec, SweepSpecError


class HalvingError(SweepSpecError):
    """Raised for invalid successive-halving configurations."""


def halving_budgets(
    final: int, reduction: int = 3, min_generations: int = 1
) -> List[int]:
    """The default rung budgets: geometric steps up to ``final``.

    Derived downward from the full budget (``final``, ``final //
    reduction``, …) and clipped at ``min_generations``, then reversed —
    so the last rung is always the sweep's own ``max_generations`` and
    rung results there are interchangeable with an unpruned sweep's.
    """
    if final < 1:
        raise HalvingError("final budget must be >= 1 generation")
    if reduction < 2:
        raise HalvingError("reduction factor must be >= 2")
    if min_generations < 1:
        raise HalvingError("min_generations must be >= 1")
    budgets = [final]
    while budgets[0] > min_generations:
        step = max(min_generations, budgets[0] // reduction)
        if step >= budgets[0]:
            break
        budgets.insert(0, step)
    return budgets


@dataclass
class HalvingResult:
    """The outcome of one successive-halving run.

    ``states`` maps every expansion index to its terminal state —
    ``"survivor"`` or ``"pruned:rung<i>"`` — and partitions the sweep:
    each point lands in exactly one state.  ``rows`` are the survivors'
    final-rung rows (full budget, cache-compatible with an unpruned
    sweep).  ``rung_rows[i]`` keeps every rung's full table for audits
    and the property tests.
    """

    sweep: SweepSpec
    objectives: Dict[str, str]
    reduction: int
    budgets: List[int]
    rungs: List[Dict[str, Any]] = field(default_factory=list)
    rung_rows: List[List[Dict[str, Any]]] = field(default_factory=list)
    states: Dict[int, str] = field(default_factory=dict)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    scheduled_generations: int = 0
    full_generations: int = 0
    cache_dir: Optional[str] = None

    @property
    def survivors(self) -> List[int]:
        return sorted(
            index
            for index, state in self.states.items()
            if state == "survivor"
        )

    @property
    def budget_fraction(self) -> float:
        """Scheduled generations as a fraction of the unpruned sweep's."""
        if self.full_generations == 0:
            return 1.0
        return self.scheduled_generations / self.full_generations

    def pareto_front(self) -> List[Dict[str, Any]]:
        """Non-dominated survivor rows under the run's objectives."""
        return pareto_front(self.rows, self.objectives)

    def to_result(self) -> SweepResult:
        """The survivor table as an ordinary :class:`SweepResult` (for
        ``--export``, ``--group-by`` and friends)."""
        return SweepResult(
            sweep=self.sweep, rows=self.rows, cache_dir=self.cache_dir
        )

    def summary(self) -> Dict[str, Any]:
        return {
            "objectives": dict(self.objectives),
            "reduction": self.reduction,
            "budgets": list(self.budgets),
            "rungs": [dict(r) for r in self.rungs],
            "states": {str(k): v for k, v in sorted(self.states.items())},
            "survivors": self.survivors,
            "scheduled_generations": self.scheduled_generations,
            "full_generations": self.full_generations,
            "budget_fraction": self.budget_fraction,
            "rows": self.rows,
        }


class SuccessiveHalvingScheduler:
    """Run a sweep through geometric generation-budget rungs.

    ``objectives`` uses the Pareto syntax (``{"fitness": "max",
    "energy_j": "min"}``); the first entry is the *primary* objective
    that ranks the top-``ceil(n/reduction)`` promotion slice.  Points
    are re-budgeted per rung by replacing their spec's
    ``max_generations``, so a sweep may not itself sweep that field.
    """

    def __init__(
        self,
        sweep: SweepSpec,
        objectives: Mapping[str, str],
        reduction: int = 3,
        min_generations: int = 1,
        budgets: Optional[Sequence[int]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        jobs: int = 1,
        evaluate: Optional[PointEvaluator] = None,
        evaluator_version: Optional[str] = None,
        runs_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if not objectives:
            raise HalvingError(
                "successive halving needs at least one objective "
                "(e.g. 'fitness:max')"
            )
        for direction in objectives.values():
            if direction not in ("min", "max"):
                raise ObjectiveError(
                    f"objective direction must be 'min' or 'max', "
                    f"got {direction!r}"
                )
        if "max_generations" in sweep.axes:
            raise HalvingError(
                "successive halving re-budgets max_generations per rung; "
                "a sweep cannot also use it as an axis"
            )
        final = sweep.base.max_generations
        if budgets is None:
            budgets = halving_budgets(final, reduction, min_generations)
        else:
            budgets = [int(b) for b in budgets]
            if not budgets or any(b < 1 for b in budgets):
                raise HalvingError("rung budgets must be positive integers")
            if any(b2 <= b1 for b1, b2 in zip(budgets, budgets[1:])):
                raise HalvingError("rung budgets must be strictly increasing")
            if budgets[-1] != final:
                raise HalvingError(
                    f"the last rung budget must equal the sweep's "
                    f"max_generations ({final}), got {budgets[-1]} — "
                    "otherwise survivor metrics are not comparable with "
                    "a full sweep's"
                )
        if reduction < 2:
            raise HalvingError("reduction factor must be >= 2")
        self.sweep = sweep
        self.objectives = dict(objectives)
        self.reduction = reduction
        self.budgets = list(budgets)
        self.cache_dir = cache_dir
        self.runner = SweepRunner(
            sweep,
            cache_dir=cache_dir,
            jobs=jobs,
            evaluate=evaluate,
            evaluator_version=evaluator_version,
            runs_dir=runs_dir,
        )

    # -- promotion --------------------------------------------------------

    def _promote(
        self, rows: List[Dict[str, Any]]
    ) -> List[int]:
        """The expansion indexes promoted out of one rung.

        Top ``ceil(n / reduction)`` by the primary objective, union the
        rung's Pareto frontier under all objectives.  Ties on the
        primary break toward the lower expansion index, so promotion is
        deterministic for identical metrics.
        """
        primary, direction = next(iter(self.objectives.items()))
        ranked = [
            row
            for row in rows
            if isinstance(row.get(primary), (int, float))
            and not isinstance(row.get(primary), bool)
        ]
        sign = -1.0 if direction == "max" else 1.0
        ranked.sort(key=lambda row: (sign * float(row[primary]), row["point"]))
        keep = math.ceil(len(rows) / self.reduction)
        promoted = {row["point"] for row in ranked[:keep]}
        promoted |= {
            row["point"]
            for row in pareto_front(rows, self.objectives)
        }
        return sorted(promoted)

    # -- execution --------------------------------------------------------

    def run(self, progress: Optional[ProgressObserver] = None) -> HalvingResult:
        points = self.sweep.expand()
        final = self.budgets[-1]
        result = HalvingResult(
            sweep=self.sweep,
            objectives=dict(self.objectives),
            reduction=self.reduction,
            budgets=list(self.budgets),
            full_generations=final * len(points),
            cache_dir=(
                str(self.runner.cache.root)
                if self.runner.cache is not None
                else None
            ),
        )
        alive = list(points)
        for rung, budget in enumerate(self.budgets):
            budgeted = [
                SweepPoint(
                    index=point.index,
                    axes=dict(point.axes),
                    spec=point.spec.replace(max_generations=budget),
                )
                for point in alive
            ]
            with obs.span(
                "dse.rung", rung=rung, budget=budget, points=len(budgeted)
            ):
                rung_result = self.runner.run(
                    progress=progress, points=budgeted
                )
            rows = rung_result.rows
            result.rung_rows.append(rows)
            result.scheduled_generations += budget * len(budgeted)
            last = rung == len(self.budgets) - 1
            if last:
                promoted = sorted(row["point"] for row in rows)
                pruned: List[int] = []
            else:
                promoted = self._promote(rows)
                pruned = sorted(
                    row["point"] for row in rows
                    if row["point"] not in set(promoted)
                )
            for index in pruned:
                result.states[index] = f"pruned:rung{rung}"
                obs.incr("dse.prune")
            if not last:
                for _ in promoted:
                    obs.incr("dse.promote")
            result.rungs.append(
                {
                    "rung": rung,
                    "budget": budget,
                    "points": len(budgeted),
                    "promoted": len(promoted),
                    "pruned": len(pruned),
                    "frontier": len(pareto_front(rows, self.objectives)),
                }
            )
            keep = set(promoted)
            alive = [point for point in alive if point.index in keep]
            if last:
                for row in rows:
                    result.states[row["point"]] = "survivor"
                result.rows = sorted(rows, key=lambda row: row["point"])
        return result


def run_halving(
    sweep: Union[SweepSpec, str, Path],
    objectives: Mapping[str, str],
    **scheduler_kwargs: Any,
) -> HalvingResult:
    """Convenience: successive halving over a spec object or JSON file."""
    if not isinstance(sweep, SweepSpec):
        sweep = SweepSpec.load(sweep)
    return SuccessiveHalvingScheduler(
        sweep, objectives, **scheduler_kwargs
    ).run()
