"""Pareto-frontier extraction over sweep rows.

The paper's design-space narrative (Figs. 8 and 11, Table III) is a
trade-off story — runtime vs energy vs area across hardware
configurations and platforms.  :func:`pareto_front` is the generic
version: given result rows and a mapping of objective keys to
directions, keep the non-dominated set.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

#: Accepted objective directions.
DIRECTIONS = ("min", "max")


class ObjectiveError(ValueError):
    """Raised for malformed objective mappings."""


def parse_objectives(text: str) -> Dict[str, str]:
    """Parse ``"energy_j:min,fitness:max"`` into an objective mapping."""
    objectives: Dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, direction = part.partition(":")
        direction = direction or "min"
        if direction not in DIRECTIONS:
            raise ObjectiveError(
                f"objective {part!r}: direction must be 'min' or 'max'"
            )
        objectives[key.strip()] = direction
    if not objectives:
        raise ObjectiveError("no objectives given")
    return objectives


def _scores(row: Mapping[str, Any], objectives: Mapping[str, str]):
    """Minimisation-oriented score vector, or None if any objective is
    missing/None for this row (rows a backend cannot measure — e.g. no
    energy model — simply do not compete)."""
    scores = []
    for key, direction in objectives.items():
        value = row.get(key)
        if value is None or not isinstance(value, (int, float)):
            return None
        scores.append(float(value) if direction == "min" else -float(value))
    return tuple(scores)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if score vector ``a`` is no worse everywhere and better
    somewhere (both minimisation-oriented)."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(
    rows: Sequence[Mapping[str, Any]], objectives: Mapping[str, str]
) -> List[Dict[str, Any]]:
    """The non-dominated subset of ``rows`` under ``objectives``.

    ``objectives`` maps a row key to ``"min"`` or ``"max"``.  Rows
    missing an objective value are excluded.  Duplicate score vectors all
    survive (they tie), and input order is preserved.
    """
    for key, direction in objectives.items():
        if direction not in DIRECTIONS:
            raise ObjectiveError(
                f"objective {key!r}: direction must be 'min' or 'max'"
            )
        # Per-row missing values are tolerated (a backend may not measure
        # energy), but a key no row carries is a typo, not an empty front.
        if rows and not any(
            isinstance(row.get(key), (int, float)) for row in rows
        ):
            raise ObjectiveError(
                f"objective {key!r} is not a numeric column of any "
                f"result row"
            )
    scored = [
        (row, score)
        for row in rows
        if (score := _scores(row, objectives)) is not None
    ]
    front = []
    for row, score in scored:
        if not any(dominates(other, score) for _, other in scored):
            front.append(dict(row))
    return front
