"""Content-hash memoisation of sweep points on disk.

Every sweep point is keyed by the SHA-256 of a canonical JSON payload
(sorted keys, fixed separators), so the key is invariant to spec field
ordering and stable across processes and machines — no pickling, no
``PYTHONHASHSEED`` sensitivity.  Records live one-per-file under a
two-level fanout (``<root>/<key[:2]>/<key>.json``), written atomically
(temp file + ``os.replace``) so concurrent sweeps sharing one cache
directory never observe torn records.

The default executor's metrics are a pure function of the *effective*
:class:`repro.api.ExperimentSpec`, so its keys hash the spec alone —
points that resolve to the same experiment (e.g. a hardware axis on a
non-``soc`` backend) collapse to one evaluation.  Custom evaluators see
the whole point, so their keys also hash the raw axis values.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from ..api.spec import ExperimentSpec
from .spec import SweepPoint, SweepSpec

#: Bump when the record layout or key payload changes shape.
CACHE_FORMAT = 1

#: The built-in experiment executor's identity in cache keys.  Bump when
#: its metric semantics change.
EXPERIMENT_EVALUATOR = "experiment-v1"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_key(
    spec: Union[ExperimentSpec, Mapping[str, Any]],
    evaluator: str = EXPERIMENT_EVALUATOR,
) -> str:
    """Content hash of an experiment spec (field-order invariant)."""
    data = spec.to_dict() if isinstance(spec, ExperimentSpec) else dict(spec)
    payload = {"format": CACHE_FORMAT, "evaluator": evaluator, "spec": data}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def point_key(
    point: SweepPoint,
    evaluator: str = EXPERIMENT_EVALUATOR,
    include_axes: bool = False,
) -> str:
    """Content hash identifying one sweep point's evaluation."""
    if not include_axes:
        return spec_key(point.spec, evaluator)
    payload = {
        "format": CACHE_FORMAT,
        "evaluator": evaluator,
        "spec": point.spec.to_dict(),
        "axes": dict(point.axes),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def sweep_key(sweep: "SweepSpec", evaluator: str = EXPERIMENT_EVALUATOR) -> str:
    """Content hash identifying one whole sweep (spec + evaluator).

    The distributed executor keys its work directory (claims + event
    ledger) on this, so workers handed the same sweep file land in the
    same queue and sweeps never share claim state by accident.
    """
    payload = {
        "format": CACHE_FORMAT,
        "evaluator": evaluator,
        "sweep": sweep.to_dict(),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_DSE_CACHE``, else ``$XDG_CACHE_HOME/repro-dse``, else
    ``~/.cache/repro-dse``."""
    override = os.environ.get("REPRO_DSE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-dse"


class SweepCache:
    """A directory of memoised point records, addressed by content hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record, or ``None`` on a miss (corrupt files count
        as misses and will simply be rewritten)."""
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) or record.get("format") != CACHE_FORMAT:
            return None
        return record

    def put(self, key: str, metrics: Mapping[str, Any],
            point: Optional[SweepPoint] = None) -> Dict[str, Any]:
        """Atomically persist one evaluated point; returns the record."""
        record: Dict[str, Any] = {
            "format": CACHE_FORMAT,
            "key": key,
            "metrics": dict(metrics),
        }
        if point is not None:
            record["spec"] = point.spec.to_dict()
            record["axes"] = dict(point.axes)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return record

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
