"""Coordinator-free distributed sweeps over a shared filesystem.

The content-hash cache (:mod:`repro.dse.cache`) already makes every
sweep point a location-independent work unit: any process that can see
the cache directory can evaluate a point and publish its record
atomically.  This module adds the one missing piece — *mutual
exclusion* per point — so N ``repro dse --worker`` processes on any
number of hosts drain one sweep together without a coordinator:

* Each pending point gets an atomically-created **claim file**
  (:class:`repro.runs.ClaimFile`) under ``<work_dir>/claims/``, carrying
  the owner's pid/host plus a heartbeat.  Exactly one worker wins each
  claim; a crashed worker's claim goes stale (old heartbeat, same-host
  dead pid, or torn JSON) and is reclaimed by a single rename-aside
  winner, so a SIGKILL mid-point costs one ``stale_after`` delay, never
  a lost or doubly-evaluated point.
* Workers append to a per-sweep **event ledger**
  (``<work_dir>/events.jsonl``): ``claimed`` / ``reclaimed`` /
  ``evaluated`` / ``released`` / ``failed``, one JSON object per line,
  written with a single ``O_APPEND`` write so concurrent workers never
  interleave.  The ledger is the audit trail (exactly-once means exactly
  one ``evaluated`` event per key) and the source of truth for the
  ``cached`` column when the finished sweep is collected.
* :meth:`DistributedSweepRunner.collect` replays the finished sweep
  through the ordinary :class:`repro.dse.SweepRunner` — every point is a
  cache hit by then — and restores the serial run's ``cached`` flags
  from the ledger, so the collected table, CSV/JSON exports and cache
  records are byte-identical to a single-process run of the same sweep.

Evaluation order across workers is nondeterministic; byte-identity holds
because each point's metrics are a pure function of its spec and the
exports canonicalise column and key order.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

from .. import obs
from ..runs.artifacts import RunError
from ..runs.locking import ClaimFile
from .cache import EXPERIMENT_EVALUATOR, sweep_key
from .pareto import pareto_front
from .runner import PointEvaluator, SweepResult, SweepRunner
from .spec import SweepPoint, SweepSpec

#: Ledger event types, in lifecycle order.
EVENTS = ("claimed", "reclaimed", "evaluated", "released", "failed")

EVENTS_FILENAME = "events.jsonl"
CLAIMS_DIRNAME = "claims"


class DistributedSweepError(RunError):
    """Raised for distributed-sweep protocol misuse (e.g. collecting an
    unfinished sweep)."""


def default_work_dir(
    cache_dir: Union[str, Path],
    sweep: SweepSpec,
    evaluator: str = EXPERIMENT_EVALUATOR,
) -> Path:
    """Where a sweep's claims + ledger live when the caller doesn't say.

    A sibling of the cache directory (never inside it — cache contents
    must stay byte-identical to a serial run's), fanned out by the
    sweep's own content hash so two different sweeps sharing one cache
    never share claim state.
    """
    return Path(str(cache_dir) + ".work") / sweep_key(sweep, evaluator)[:16]


def _append_jsonl(path: Path, payload: Mapping[str, Any]) -> None:
    """One atomic append: a single O_APPEND write per line."""
    line = (json.dumps(payload, sort_keys=True) + "\n").encode()
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every well-formed ledger event, in append order.

    A torn final line (a worker died mid-append) is skipped, matching
    the telemetry reader's tolerance.
    """
    events: List[Dict[str, Any]] = []
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return events
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events


class SweepWorkQueue:
    """The on-disk face of one distributed sweep: claims + event ledger."""

    def __init__(
        self,
        work_dir: Union[str, Path],
        stale_after: float = 60.0,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        self.work_dir = Path(work_dir)
        self.claims_dir = self.work_dir / CLAIMS_DIRNAME
        self.events_path = self.work_dir / EVENTS_FILENAME
        self.stale_after = stale_after
        # A live holder must beat several heartbeats into one staleness
        # window, or a tight --stale-after would reclaim live claims.
        if heartbeat_interval is None:
            heartbeat_interval = min(5.0, stale_after / 4.0)
        self.heartbeat_interval = heartbeat_interval

    def claim_for(self, key: str, worker: str) -> ClaimFile:
        return ClaimFile(
            self.claims_dir / f"{key}.claim",
            stale_after=self.stale_after,
            heartbeat_interval=self.heartbeat_interval,
            extra={"key": key, "worker": worker},
        )

    def log(self, event: str, key: str, worker: str, **extra: Any) -> None:
        self.work_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "event": event,
            "key": key,
            "worker": worker,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "ts": time.time(),
        }
        payload.update(extra)
        _append_jsonl(self.events_path, payload)

    def events(self) -> List[Dict[str, Any]]:
        return read_events(self.events_path)

    def evaluated_keys(self) -> Dict[str, int]:
        """key -> number of ``evaluated`` events (exactly-once audit)."""
        counts: Dict[str, int] = {}
        for event in self.events():
            if event.get("event") == "evaluated":
                key = event.get("key")
                if isinstance(key, str):
                    counts[key] = counts.get(key, 0) + 1
        return counts

    def live_claims(self) -> List[Dict[str, Any]]:
        """Current claim payloads (live and stale alike), for status."""
        claims = []
        if not self.claims_dir.is_dir():
            return claims
        for path in sorted(self.claims_dir.glob("*.claim")):
            probe = ClaimFile(path, stale_after=self.stale_after)
            payload = probe.read() or {}
            claims.append(
                {
                    "key": payload.get("key", path.stem),
                    "payload": payload,
                    "stale": probe.is_stale(payload if payload else None),
                }
            )
        return claims


class DistributedSweepRunner:
    """Drain one sweep cooperatively with any number of sibling workers.

    Composes an ordinary :class:`SweepRunner` for point keys, evaluation
    and the cache, and a :class:`SweepWorkQueue` for mutual exclusion.
    The cache directory is mandatory — it is the shared medium through
    which workers publish results.

    ``drain()`` runs the worker loop until every unique point of the
    sweep has a cache record; ``collect()`` then assembles the
    serial-identical :class:`SweepResult`.  A single process calling
    ``drain()`` then ``collect()`` is exactly a slow serial sweep.
    """

    def __init__(
        self,
        sweep: SweepSpec,
        cache_dir: Union[str, Path],
        work_dir: Optional[Union[str, Path]] = None,
        evaluate: Optional[PointEvaluator] = None,
        evaluator_version: Optional[str] = None,
        runs_dir: Optional[Union[str, Path]] = None,
        stale_after: float = 60.0,
        heartbeat_interval: Optional[float] = None,
        poll_interval: float = 0.5,
        worker_id: Optional[str] = None,
        metrics: Optional["obs.MetricsRegistry"] = None,
    ) -> None:
        if cache_dir is None:
            raise DistributedSweepError(
                "distributed sweeps need a cache directory — it is how "
                "workers publish results to each other"
            )
        self.runner = SweepRunner(
            sweep,
            cache_dir=cache_dir,
            jobs=1,
            evaluate=evaluate,
            evaluator_version=evaluator_version,
            runs_dir=runs_dir,
        )
        if self.runner.cache is None:
            raise DistributedSweepError(
                "a custom evaluator needs an evaluator_version to take "
                "part in a distributed sweep (its results must be "
                "cacheable)"
            )
        self.sweep = sweep
        evaluator = self.runner.evaluator_version or EXPERIMENT_EVALUATOR
        if work_dir is None:
            work_dir = default_work_dir(cache_dir, sweep, evaluator)
        self.queue = SweepWorkQueue(
            work_dir,
            stale_after=stale_after,
            heartbeat_interval=heartbeat_interval,
        )
        self.poll_interval = poll_interval
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self._metrics = metrics
        if metrics is not None:
            self._m_claims = metrics.counter(
                "repro_dse_claims_total", "Point claims won by this worker"
            )
            self._m_reclaims = metrics.counter(
                "repro_dse_reclaims_total",
                "Stale claims broken and taken over by this worker",
            )
            self._m_evaluated = metrics.counter(
                "repro_dse_points_evaluated_total",
                "Points this worker evaluated (fresh, not cache hits)",
            )
            self._m_cache_hits = metrics.counter(
                "repro_dse_cache_hits_total",
                "Points this worker found already cached",
            )
            self._m_total = metrics.gauge(
                "repro_dse_points_total", "Unique points in the sweep"
            )
            self._m_done = metrics.gauge(
                "repro_dse_points_done",
                "Unique points with a cache record",
            )

    # -- the sweep's work units -------------------------------------------

    def _leaders(self) -> "Dict[str, SweepPoint]":
        """Unique key -> its first-occurrence point (expansion order).

        The first occurrence is what a serial sweep evaluates and stores
        (its axes go into the cache record), so distributed workers must
        pick the same representative for byte-identical cache contents.
        """
        leaders: Dict[str, SweepPoint] = {}
        for point in self.sweep.expand():
            key = self.runner._key(point)
            leaders.setdefault(key, point)
        return leaders

    # -- worker loop ------------------------------------------------------

    def drain(
        self,
        max_points: Optional[int] = None,
        progress: Optional[Callable[[str, str], None]] = None,
    ) -> Dict[str, int]:
        """Evaluate claimable points until the sweep is fully cached.

        Returns this worker's tally: ``{"evaluated", "cache_hits",
        "claims", "reclaims", "points"}``.  ``max_points`` stops the
        worker after it has evaluated that many fresh points (fault
        tests use it to script partial progress); ``progress`` fires as
        ``progress(event, key)`` for each lifecycle step.
        """
        cache = self.runner.cache
        assert cache is not None
        leaders = self._leaders()
        if self._metrics is not None:
            self._m_total.set(len(leaders))
        tally = {
            "points": len(leaders),
            "evaluated": 0,
            "cache_hits": 0,
            "claims": 0,
            "reclaims": 0,
        }

        def note(event: str, key: str) -> None:
            if progress is not None:
                progress(event, key)

        done: set = set()
        while True:
            blocked = 0
            advanced = False
            for key, point in leaders.items():
                if key in done:
                    continue
                if cache.get(key) is not None:
                    # Published by a sibling (or a previous sweep).
                    done.add(key)
                    advanced = True
                    continue
                claim = self.queue.claim_for(key, self.worker_id)
                if not claim.try_acquire():
                    blocked += 1
                    continue
                try:
                    if claim.reclaimed:
                        obs.incr("dse.reclaim")
                        tally["reclaims"] += claim.reclaimed
                        if self._metrics is not None:
                            self._m_reclaims.inc(claim.reclaimed)
                        self.queue.log("reclaimed", key, self.worker_id)
                        note("reclaimed", key)
                    obs.incr("dse.claim")
                    tally["claims"] += 1
                    if self._metrics is not None:
                        self._m_claims.inc()
                    self.queue.log("claimed", key, self.worker_id)
                    note("claimed", key)
                    # Double-check under the claim: the previous holder
                    # may have published its record and died just before
                    # releasing.
                    if cache.get(key) is None:
                        with obs.span("dse.point.distributed", key=key):
                            metrics = self.runner._run_point(point, key)
                        tally["evaluated"] += 1
                        if self._metrics is not None:
                            self._m_evaluated.inc()
                        self.queue.log("evaluated", key, self.worker_id)
                        note("evaluated", key)
                        cache.put(key, metrics, point)
                    else:
                        obs.incr("dse.cache_hit")
                        tally["cache_hits"] += 1
                        if self._metrics is not None:
                            self._m_cache_hits.inc()
                except BaseException:
                    self.queue.log("failed", key, self.worker_id)
                    note("failed", key)
                    claim.release()
                    raise
                self.queue.log("released", key, self.worker_id)
                note("released", key)
                claim.release()
                done.add(key)
                advanced = True
                if self._metrics is not None:
                    self._m_done.set(len(done))
                if (
                    max_points is not None
                    and tally["evaluated"] >= max_points
                ):
                    return tally
            if self._metrics is not None:
                self._m_done.set(len(done))
            if blocked == 0:
                return tally
            if not advanced:
                # Everything left is claimed by live siblings: wait for
                # them to publish (or for their claims to go stale).
                time.sleep(self.poll_interval)

    # -- progress / assembly ----------------------------------------------

    def status(self) -> Dict[str, Any]:
        """A point-in-time snapshot for ``repro dse --watch``."""
        cache = self.runner.cache
        assert cache is not None
        leaders = self._leaders()
        cached = [key for key in leaders if cache.get(key) is not None]
        claims = self.queue.live_claims()
        evaluated = self.queue.evaluated_keys()
        return {
            "points": len(leaders),
            "done": len(cached),
            "claimed": sum(1 for c in claims if not c["stale"]),
            "stale_claims": sum(1 for c in claims if c["stale"]),
            "evaluated_events": sum(evaluated.values()),
            "duplicate_evaluations": sum(
                count - 1 for count in evaluated.values() if count > 1
            ),
            "complete": len(cached) == len(leaders),
        }

    def frontier(
        self, objectives: Mapping[str, str]
    ) -> List[Dict[str, Any]]:
        """The Pareto frontier over the points finished *so far*."""
        cache = self.runner.cache
        assert cache is not None
        rows = []
        for key, point in self._leaders().items():
            record = cache.get(key)
            if record is None:
                continue
            row = dict(point.axes)
            row.update(record["metrics"])
            row["point"] = point.index
            row["key"] = key
            rows.append(row)
        if not any(
            all(isinstance(row.get(name), (int, float)) for name in objectives)
            for row in rows
        ):
            return []  # nothing finished yet — a frontier of nothing
        return pareto_front(rows, objectives)

    def collect(self) -> SweepResult:
        """The finished sweep as a serial-identical :class:`SweepResult`.

        Every point must already be cached (``drain()`` elsewhere or
        here).  The ``cached`` column is restored from the event ledger:
        a key some worker *evaluated* during this sweep reads
        ``cached=False`` on its first-occurrence row — exactly what a
        single-process run would have reported — while keys served from
        a pre-existing cache stay ``cached=True`` everywhere.
        """
        cache = self.runner.cache
        assert cache is not None
        leaders = self._leaders()
        missing = [k for k in leaders if cache.get(k) is None]
        if missing:
            raise DistributedSweepError(
                f"sweep is not finished: {len(missing)}/{len(leaders)} "
                "points have no cache record yet (run more workers, or "
                "wait for the live ones)"
            )
        result = self.runner.run()
        fresh = set(self.queue.evaluated_keys())
        seen: set = set()
        for row in result.rows:  # sorted by expansion index
            key = row["key"]
            if key in fresh and key not in seen:
                row["cached"] = False
            seen.add(key)
        return result


def worker_metrics_registry() -> "obs.MetricsRegistry":
    """A fresh registry wired for one worker's ``/metrics`` endpoint."""
    return obs.MetricsRegistry()
