"""Declarative design-space exploration over the unified experiment API.

The paper's central deliverable is a design-space story — PE-count
sweeps, NoC ablations, cross-platform runtime/energy comparisons
(Figs. 8 and 11, Table III).  This package is that story as a subsystem:

* :class:`SweepSpec` — a frozen, JSON-round-trippable sweep description:
  a base :class:`repro.api.ExperimentSpec` plus axes over any spec field
  and over unified platform-spec fields (``platform.eve_pes``,
  ``platform.noc``, ``platform.scheduler``, ``platform.adam_shape``, …;
  the pre-redesign ``hw.*`` spellings remain as deprecated aliases),
  expanded by ``grid`` or seeded ``random`` sampling.
* :class:`SweepRunner` / :func:`run_sweep` — executes points through the
  registered backends with process-pool parallelism across points
  (``jobs=N``) and content-hash memoisation on disk, so re-running an
  edited sweep only evaluates the new points.
* :class:`SweepResult` — the per-point metrics table (fitness,
  generations, runtime_s, energy_j, …) with Pareto-frontier extraction,
  group-by summaries and CSV/JSON export.
* :class:`SweepCache` — the on-disk store; :func:`spec_key` /
  :func:`point_key` / :func:`sweep_key` are the stable content hashes.
* :class:`DistributedSweepRunner` — coordinator-free multi-process /
  multi-host draining of one sweep over a shared filesystem: per-point
  ``O_EXCL`` claim files with crash reclaim, an append-only event
  ledger, and a ``collect()`` whose outputs are byte-identical to a
  single-process run (CLI: ``repro dse --worker`` / ``--watch``).
* :class:`SuccessiveHalvingScheduler` / :func:`run_halving` — early
  stopping: geometric ``max_generations`` rungs with Pareto-aware
  promotion, so dominated points stop early and no rung-frontier point
  is ever pruned (CLI: ``repro dse --halving fitness:max,energy_j:min``).

Quickstart::

    from repro.api import ExperimentSpec
    from repro.dse import SweepSpec, run_sweep

    sweep = SweepSpec(
        base=ExperimentSpec("CartPole-v0", max_generations=10, pop_size=30),
        axes={
            "backend": ["soc", "analytical:GENESYS"],
            "platform.eve_pes": [16, 64, 256],
            "seed": [0, 1],
        },
    )
    result = run_sweep(sweep, jobs=4)
    for row in result.pareto_front({"fitness": "max", "energy_j": "min"}):
        print(row)

CLI: ``python -m repro dse --sweep sweep.json --jobs 4 --export out``.
"""

from .cache import (
    CACHE_FORMAT,
    EXPERIMENT_EVALUATOR,
    SweepCache,
    default_cache_dir,
    point_key,
    spec_key,
    sweep_key,
)
from .distributed import (
    DistributedSweepError,
    DistributedSweepRunner,
    SweepWorkQueue,
    default_work_dir,
    read_events,
)
from .halving import (
    HalvingError,
    HalvingResult,
    SuccessiveHalvingScheduler,
    halving_budgets,
    run_halving,
)
from .pareto import ObjectiveError, dominates, pareto_front, parse_objectives
from .replay import EVE_REPLAY_EVALUATOR, eve_replay_evaluator
from .runner import (
    METRIC_COLUMNS,
    SweepResult,
    SweepRunner,
    evaluate_experiment_point,
    run_sweep,
)
from .spec import (
    HW_AXES,
    PLATFORM_AXES,
    SPEC_AXES,
    SweepPoint,
    SweepSpec,
    SweepSpecError,
)

__all__ = [
    "CACHE_FORMAT",
    "EVE_REPLAY_EVALUATOR",
    "EXPERIMENT_EVALUATOR",
    "HW_AXES",
    "METRIC_COLUMNS",
    "PLATFORM_AXES",
    "DistributedSweepError",
    "DistributedSweepRunner",
    "HalvingError",
    "HalvingResult",
    "ObjectiveError",
    "SPEC_AXES",
    "SuccessiveHalvingScheduler",
    "SweepCache",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "SweepSpecError",
    "SweepWorkQueue",
    "default_cache_dir",
    "default_work_dir",
    "dominates",
    "evaluate_experiment_point",
    "eve_replay_evaluator",
    "halving_budgets",
    "pareto_front",
    "parse_objectives",
    "point_key",
    "read_events",
    "run_halving",
    "run_sweep",
    "spec_key",
    "sweep_key",
]
