"""GPU platform models: GTX 1080 (desktop) and Tegra/TX2 (embedded).

Section VI-B "GPU deep dive": "GPU_a exploits GLP by forming compaction on
input vectors serially and evaluating multiple vertices in parallel for
each genome.  In GPU_b, multiple vertices across genomes are evaluated in
parallel thus exploiting both GLP and PLP.  However the inputs and weights
could no longer be compacted resulting in large sparse tensors."

Calibration targets from the paper:

* memory transfers are ~70 % of GPU_a inference runtime and ~20 % of
  GPU_b's (Fig. 10a/b);
* GPU_b is the fastest GPU config but stores dense/sparse tensors for the
  whole population (Fig. 10d);
* evolution maps poorly: per-generation genome copies in/out plus
  divergent mutation kernels leave the GPU 4-5 orders of magnitude less
  energy-efficient than EvE (Fig. 9d).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.trace import GenerationWorkload
from ..neat.statistics import GENE_BYTES
from .base import PhaseCost, Platform


@dataclass
class GPUParams:
    """Calibration constants for one GPU."""

    launch_overhead_s: float      # kernel launch + host sync
    transfer_overhead_s: float    # latency of one small HtoD/DtoH copy
    bandwidth_bytes_per_s: float  # PCIe/DMA effective bandwidth
    compact_mac_rate: float       # MAC/s on small compacted kernels (GPU_a)
    sparse_mac_rate: float        # MAC/s on uncompacted sparse tensors (GPU_b)
    evolution_op_time_s: float    # effective per reproduction op (divergent)
    power_w: float


#: NVIDIA GTX 1080: 9 TFLOP/s peak, but tiny irregular kernels reach a
#: sliver of it; PCIe 3.0 x16 ~12 GB/s effective.
GTX1080_PARAMS = GPUParams(
    launch_overhead_s=10.0e-6,
    transfer_overhead_s=12.0e-6,
    bandwidth_bytes_per_s=12e9,
    compact_mac_rate=5e9,
    sparse_mac_rate=5e9,
    evolution_op_time_s=0.25e-6,
    power_w=180.0,
)

#: NVIDIA Tegra (Pascal, Jetson TX2): lower clocks, shared LPDDR4 (~20 GB/s
#: raw, ~6 GB/s effective for small copies), ~10 W GPU rail.
TEGRA_PARAMS = GPUParams(
    launch_overhead_s=20.0e-6,
    transfer_overhead_s=25.0e-6,
    bandwidth_bytes_per_s=6e9,
    compact_mac_rate=1e9,
    sparse_mac_rate=1.5e9,
    evolution_op_time_s=1.0e-6,
    power_w=10.0,
)

_FLOAT_BYTES = 4


def _nodes_per_genome(workload: GenerationWorkload) -> float:
    """Vertex count per genome including the (implicit) input nodes.

    GPU_b's uncompacted tensors are sized by the full vertex set; the
    node-gene count excludes inputs, which for RAM workloads dominate, so
    we approximate inputs from the connection structure (each input feeds
    >= 1 output in the initial mesh and stays in the adjacency forever).
    """
    if workload.population == 0:
        return 1.0
    nodes = workload.total_nodes / workload.population
    conns = workload.total_connections / workload.population
    # inputs ~ initial dense mesh size / outputs; bounded by connections.
    return max(nodes + conns / max(1.0, nodes), nodes + 1)


class GPUPlatform(Platform):
    def __init__(
        self,
        name: str,
        params: GPUParams,
        batch_population: bool,
        platform_desc: str,
    ) -> None:
        self.name = name
        self.params = params
        self.batch_population = batch_population  # GPU_b / GPU_d
        self.inference_strategy = "BSP + PLP" if batch_population else "BSP"
        self.evolution_strategy = "PLP"
        self.platform_desc = platform_desc

    # -- inference ------------------------------------------------------

    def inference_cost(self, workload: GenerationWorkload) -> PhaseCost:
        params = self.params
        depth = max(1.0, workload.mean_network_depth)
        if not self.batch_population:
            # GPU_a/c: one genome at a time; every env step pays its own
            # wave-kernel launches and its own small HtoD/DtoH copies.
            kernel_s = (
                workload.env_steps * depth * params.launch_overhead_s
                + workload.inference_macs / params.compact_mac_rate
            )
            transfer_s = workload.env_steps * 2 * params.transfer_overhead_s
            # weights HtoD once per genome per generation
            weight_bytes = workload.total_connections * _FLOAT_BYTES
            transfer_s += weight_bytes / params.bandwidth_bytes_per_s
        else:
            # GPU_b/d: the whole population steps together, so launches are
            # paid once per (episode step x wave) — but the tensors are the
            # *uncompacted* per-population sparse matrices.
            mean_steps = workload.env_steps / max(1, workload.population)
            kernel_launches = mean_steps * depth
            nodes = _nodes_per_genome(workload)
            dense_macs = (
                workload.population * nodes * nodes * depth * mean_steps
            )
            kernel_s = (
                kernel_launches * params.launch_overhead_s
                + dense_macs / params.sparse_mac_rate
            )
            tensor_bytes = (
                workload.population * nodes * nodes * _FLOAT_BYTES * 2
            )
            transfer_s = (
                tensor_bytes / params.bandwidth_bytes_per_s
                + mean_steps * 2 * params.transfer_overhead_s
            )
        runtime = kernel_s + transfer_s
        return PhaseCost(
            runtime_s=runtime,
            energy_j=runtime * params.power_w,
            transfer_s=transfer_s,
        )

    # -- evolution --------------------------------------------------------

    def evolution_cost(self, workload: GenerationWorkload) -> PhaseCost:
        params = self.params
        # Genomes out to device, children back: the "extensive memory
        # copies" of the paper's conclusion.
        genome_bytes = workload.total_genes * GENE_BYTES
        transfer_s = (
            2 * genome_bytes / params.bandwidth_bytes_per_s
            + 4 * params.transfer_overhead_s
        )
        kernel_s = (
            workload.evolution_ops * params.evolution_op_time_s
            + 6 * params.launch_overhead_s  # one kernel per op class
        )
        runtime = kernel_s + transfer_s
        return PhaseCost(
            runtime_s=runtime,
            energy_j=runtime * params.power_w,
            transfer_s=transfer_s,
        )

    def memory_footprint_bytes(self, workload: GenerationWorkload) -> int:
        if not self.batch_population:
            # Compact matrices for one genome at a time (Fig. 10d GPU_a).
            per_genome = workload.total_connections / max(1, workload.population)
            return int(per_genome * _FLOAT_BYTES * 2 + 1024)
        # Sparse/uncompacted weight+input matrices for all genomes.
        nodes = _nodes_per_genome(workload)
        return int(workload.population * nodes * nodes * _FLOAT_BYTES * 2)


def gpu_a() -> GPUPlatform:
    return GPUPlatform("GPU_a", GTX1080_PARAMS, False, "Nvidia GTX 1080")


def gpu_b() -> GPUPlatform:
    return GPUPlatform("GPU_b", GTX1080_PARAMS, True, "Nvidia GTX 1080")


def gpu_c() -> GPUPlatform:
    return GPUPlatform("GPU_c", TEGRA_PARAMS, False, "Nvidia Tegra")


def gpu_d() -> GPUPlatform:
    return GPUPlatform("GPU_d", TEGRA_PARAMS, True, "Nvidia Tegra")
