"""Platform model interface (Table III).

The paper measures NEAT's per-generation inference and evolution phases on
eight CPU/GPU configurations plus GENESYS.  Real hardware and power meters
are unavailable offline, so each platform is an analytical model: runtime
and energy are computed from a :class:`repro.core.trace.GenerationWorkload`
(the same op/step/MAC aggregates the paper's traces carry) using published
platform characteristics (clock, power, launch/transfer overheads).

The reproduction targets are the paper's *relative* claims — who wins, by
roughly what factor, and how time splits between transfer and compute —
not absolute milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.trace import GenerationWorkload


@dataclass
class PhaseCost:
    """Runtime/energy of one phase (inference or evolution) per generation."""

    runtime_s: float
    energy_j: float
    transfer_s: float = 0.0  # memory-movement share of runtime_s

    @property
    def compute_s(self) -> float:
        return max(0.0, self.runtime_s - self.transfer_s)

    @property
    def transfer_fraction(self) -> float:
        return self.transfer_s / self.runtime_s if self.runtime_s > 0 else 0.0


class Platform:
    """One row of Table III."""

    #: short id used in the paper's figures, e.g. "CPU_a"
    name: str = "base"
    #: legend fields of Table III
    inference_strategy: str = ""
    evolution_strategy: str = ""
    platform_desc: str = ""

    def inference_cost(self, workload: GenerationWorkload) -> PhaseCost:
        raise NotImplementedError

    def evolution_cost(self, workload: GenerationWorkload) -> PhaseCost:
        raise NotImplementedError

    def memory_footprint_bytes(self, workload: GenerationWorkload) -> int:
        raise NotImplementedError

    def table3_row(self) -> Dict[str, str]:
        return {
            "Legend": self.name,
            "Inference": self.inference_strategy,
            "Evolution": self.evolution_strategy,
            "Platform": self.platform_desc,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
