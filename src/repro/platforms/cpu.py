"""CPU platform models: desktop i7 and embedded Cortex-A57 (Table III).

Per the paper's methodology: "In CPU, evolution happens sequentially while
we try to exploit PLP in inference by using multithreading, running 4
concurrent threads (CPU b and CPU d).  Parallel inference on CPU is 3.5
times faster than the serial counterpart."

Cost model: the evolution phase executes one interpreted reproduction op
at a time (neat-python-style object manipulation, microseconds per op);
the inference phase pays a per-environment-step bookkeeping overhead plus
per-MAC arithmetic.  Energy is runtime x package power, matching the
paper's measurement method (Intel power gadget / INA3221 sampling).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.trace import GenerationWorkload
from ..neat.statistics import GENE_BYTES
from .base import PhaseCost, Platform


#: Paper: "Parallel inference on CPU is 3.5 times faster than the serial
#: counterpart" (4 threads).
PLP_INFERENCE_SPEEDUP = 3.5


@dataclass
class CPUParams:
    """Calibration constants for one CPU."""

    evolution_op_time_s: float  # one crossover/mutation op, interpreted
    mac_time_s: float           # one MAC inside a network eval
    step_overhead_s: float      # per env-step interpreter/dispatch cost
    power_w: float              # package power while busy
    #: PLP multithreading gain, applied only when the platform runs
    #: parallel inference (CPU_b/d).
    inference_speedup: float = PLP_INFERENCE_SPEEDUP


#: 6th-gen Intel i7 (desktop), ~4 GHz, measured-package-power class.
I7_PARAMS = CPUParams(
    evolution_op_time_s=2.0e-6,
    mac_time_s=25e-9,
    step_overhead_s=12e-6,
    power_w=45.0,
)

#: ARM Cortex-A57 on the Jetson TX2 (embedded), ~2 GHz.
A57_PARAMS = CPUParams(
    evolution_op_time_s=9.0e-6,
    mac_time_s=110e-9,
    step_overhead_s=55e-6,
    power_w=5.0,
)


class CPUPlatform(Platform):
    """Serial or PLP-threaded CPU execution of NEAT."""

    def __init__(self, name: str, params: CPUParams, parallel_inference: bool,
                 platform_desc: str) -> None:
        self.name = name
        self.params = params
        self.parallel_inference = parallel_inference
        self.inference_strategy = "PLP" if parallel_inference else "Serial"
        self.evolution_strategy = "Serial"
        self.platform_desc = platform_desc

    def inference_cost(self, workload: GenerationWorkload) -> PhaseCost:
        params = self.params
        serial = (
            workload.env_steps * params.step_overhead_s
            + workload.inference_macs * params.mac_time_s
        )
        speedup = params.inference_speedup if self.parallel_inference else 1.0
        runtime = serial / speedup
        return PhaseCost(runtime_s=runtime, energy_j=runtime * params.power_w)

    def evolution_cost(self, workload: GenerationWorkload) -> PhaseCost:
        runtime = workload.evolution_ops * self.params.evolution_op_time_s
        return PhaseCost(runtime_s=runtime, energy_j=runtime * self.params.power_w)

    def memory_footprint_bytes(self, workload: GenerationWorkload) -> int:
        # Host DRAM holds the full population's gene objects; Python object
        # overhead is ~8x the packed 64-bit representation.
        return workload.total_genes * GENE_BYTES * 8


def cpu_a() -> CPUPlatform:
    return CPUPlatform("CPU_a", I7_PARAMS, False, "6th gen i7")


def cpu_b() -> CPUPlatform:
    return CPUPlatform("CPU_b", I7_PARAMS, True, "6th gen i7")


def cpu_c() -> CPUPlatform:
    return CPUPlatform("CPU_c", A57_PARAMS, False, "ARM Cortex A57")


def cpu_d() -> CPUPlatform:
    return CPUPlatform("CPU_d", A57_PARAMS, True, "ARM Cortex A57")
