"""Cross-platform memory footprint comparison (Fig. 10d).

"GENESYS stores entire population in memory, thus we see 100x more
footprint than GPU_a, which is expected as we have a population size of
150.  GENESYS has 100x less footprint than GPU_b as genomes rather than
sparse-matrices are stored on chip."
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..core.trace import GenerationWorkload
from .base import Platform


def footprint_comparison(
    workload: GenerationWorkload, platforms: Sequence[Platform]
) -> Dict[str, int]:
    """Bytes required on each platform for one generation's working set."""
    return {p.name: p.memory_footprint_bytes(workload) for p in platforms}


def footprint_ratios(footprints: Dict[str, int], reference: str) -> Dict[str, float]:
    """Each platform's footprint relative to ``reference``."""
    base = footprints[reference]
    if base <= 0:
        raise ValueError(f"reference {reference!r} footprint is zero")
    return {name: value / base for name, value in footprints.items()}
