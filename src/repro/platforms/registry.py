"""The open, string-keyed platform registry.

Mirrors :mod:`repro.api.backends`' backend registry and
:mod:`repro.envs.registry`: every platform — the nine Table III legend
names *and* the cycle-level ``soc`` design point — is one entry, and
user code adds its own with :func:`register_platform` without touching
backend or sweep code.  An entry is either a declarative
:class:`repro.platforms.PlatformSpec` (built through its kind's model
family) or, for fully custom cost models, a zero-argument factory
returning a :class:`repro.platforms.Platform`.

:func:`make_platform` accepts a registered name, a spec, or a raw dict
(the JSON form); unknown names raise :class:`UnknownPlatformError`
listing what is registered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Union

from .base import Platform
from .cpu import A57_PARAMS, CPUParams, CPUPlatform, I7_PARAMS
from .genesys import GenesysPlatform
from .gpu import GPUParams, GPUPlatform, GTX1080_PARAMS, TEGRA_PARAMS
from .soc_platform import SoCPlatform
from .spec import (
    PLATFORM_KINDS,
    PlatformSpec,
    PlatformSpecError,
    UnknownPlatformError,
    as_platform_spec,
)

PlatformFactory = Callable[[], Platform]


# ---------------------------------------------------------------------------
# kind -> Platform builders


def _build_cpu(spec: PlatformSpec) -> Platform:
    p = spec.params
    return CPUPlatform(
        spec.name,
        CPUParams(
            evolution_op_time_s=p.evolution_op_time_s,
            mac_time_s=p.mac_time_s,
            step_overhead_s=p.step_overhead_s,
            power_w=p.power_w,
            inference_speedup=p.inference_speedup,
        ),
        p.parallel_inference,
        p.desc,
    )


def _build_gpu(spec: PlatformSpec) -> Platform:
    p = spec.params
    return GPUPlatform(
        spec.name,
        GPUParams(
            launch_overhead_s=p.launch_overhead_s,
            transfer_overhead_s=p.transfer_overhead_s,
            bandwidth_bytes_per_s=p.bandwidth_bytes_per_s,
            compact_mac_rate=p.compact_mac_rate,
            sparse_mac_rate=p.sparse_mac_rate,
            evolution_op_time_s=p.evolution_op_time_s,
            power_w=p.power_w,
        ),
        p.batch_population,
        p.desc,
    )


def _build_genesys(spec: PlatformSpec) -> Platform:
    p = spec.params
    platform = GenesysPlatform(
        num_eve_pes=p.num_eve_pes,
        adam_rows=p.adam_rows,
        adam_cols=p.adam_cols,
        frequency_hz=p.frequency_hz,
    )
    platform.name = spec.name
    return platform


def _build_soc(spec: PlatformSpec) -> Platform:
    return SoCPlatform(spec)


_BUILDERS: Dict[str, Callable[[PlatformSpec], Platform]] = {
    "cpu": _build_cpu,
    "gpu": _build_gpu,
    "genesys": _build_genesys,
    "soc": _build_soc,
}


def build_platform(
    spec: Union[PlatformSpec, Mapping[str, object]],
) -> Platform:
    """Instantiate the platform a spec (or its dict form) describes."""
    spec = as_platform_spec(spec)
    return _BUILDERS[spec.kind](spec)


# ---------------------------------------------------------------------------
# the registry


@dataclass(frozen=True)
class _Entry:
    spec: Optional[PlatformSpec]
    factory: Optional[PlatformFactory]
    table3: bool  # one of the paper's Table III legend rows?


_REGISTRY: Dict[str, _Entry] = {}


def register_platform(
    name: str,
    spec_or_factory: Union[PlatformSpec, Mapping[str, object], PlatformFactory],
    *,
    table3: bool = False,
) -> None:
    """Register (or override) a platform under a legend name.

    ``spec_or_factory`` is a :class:`PlatformSpec` (or its dict form) —
    the declarative path — or a zero-argument callable returning a
    :class:`Platform` for custom cost models.  Re-registering a name
    replaces the entry (latest wins), which is how tests and notebooks
    shadow a built-in with a variant.
    """
    if not name or not isinstance(name, str):
        raise PlatformSpecError(
            f"platform name must be a non-empty string, got {name!r}"
        )
    if callable(spec_or_factory) and not isinstance(
        spec_or_factory, (PlatformSpec, Mapping)
    ):
        _REGISTRY[name] = _Entry(spec=None, factory=spec_or_factory,
                                 table3=table3)
        return
    spec = as_platform_spec(spec_or_factory)
    if spec.name != name:
        spec = spec.replace(name=name)
    _REGISTRY[name] = _Entry(spec=spec, factory=None, table3=table3)


def unregister_platform(name: str) -> None:
    """Remove a registry entry (unknown names raise)."""
    if name not in _REGISTRY:
        raise UnknownPlatformError(
            f"unknown platform {name!r}; registered: {platform_names()}"
        )
    del _REGISTRY[name]


def make_platform(
    spec_or_name: Union[str, PlatformSpec, Mapping[str, object]],
) -> Platform:
    """Instantiate a platform from a registered name, a spec, or a dict.

    Unknown names raise :class:`UnknownPlatformError` listing every
    registered name (a ``KeyError`` subclass, so pre-registry callers
    that caught ``KeyError`` keep working).
    """
    if isinstance(spec_or_name, str):
        entry = _REGISTRY.get(spec_or_name)
        if entry is None:
            raise UnknownPlatformError(
                f"unknown platform {spec_or_name!r}; "
                f"registered: {platform_names()}"
            )
        if entry.factory is not None:
            return entry.factory()
        return build_platform(entry.spec)
    return build_platform(spec_or_name)


def platform_names() -> List[str]:
    """Every registered platform name, sorted."""
    return sorted(_REGISTRY)


def all_platforms() -> List[Platform]:
    """One instantiated platform per registry entry (name-sorted)."""
    return [make_platform(name) for name in platform_names()]


def platform_spec(name: str) -> PlatformSpec:
    """The declarative spec behind a registered name.

    Factory-backed (custom cost model) entries have no spec and raise
    :class:`PlatformSpecError`.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        raise UnknownPlatformError(
            f"unknown platform {name!r}; registered: {platform_names()}"
        )
    if entry.spec is None:
        raise PlatformSpecError(
            f"platform {name!r} is factory-backed and has no declarative "
            "spec"
        )
    return entry.spec


def registered_platforms() -> Dict[str, Optional[PlatformSpec]]:
    """``name -> spec`` for every entry (``None`` for factory-backed)."""
    return {name: _REGISTRY[name].spec for name in platform_names()}


def table3() -> List[Dict[str, str]]:
    """Rows of Table III (target system configurations), paper order."""
    return [
        make_platform(name).table3_row()
        for name, entry in _REGISTRY.items()
        if entry.table3
    ]


# ---------------------------------------------------------------------------
# built-in entries: the nine Table III rows + the cycle-level SoC

_CPU_COMMON_I7 = dict(
    evolution_op_time_s=I7_PARAMS.evolution_op_time_s,
    mac_time_s=I7_PARAMS.mac_time_s,
    step_overhead_s=I7_PARAMS.step_overhead_s,
    power_w=I7_PARAMS.power_w,
    desc="6th gen i7",
)
_CPU_COMMON_A57 = dict(
    evolution_op_time_s=A57_PARAMS.evolution_op_time_s,
    mac_time_s=A57_PARAMS.mac_time_s,
    step_overhead_s=A57_PARAMS.step_overhead_s,
    power_w=A57_PARAMS.power_w,
    desc="ARM Cortex A57",
)
_GPU_COMMON_GTX = dict(
    launch_overhead_s=GTX1080_PARAMS.launch_overhead_s,
    transfer_overhead_s=GTX1080_PARAMS.transfer_overhead_s,
    bandwidth_bytes_per_s=GTX1080_PARAMS.bandwidth_bytes_per_s,
    compact_mac_rate=GTX1080_PARAMS.compact_mac_rate,
    sparse_mac_rate=GTX1080_PARAMS.sparse_mac_rate,
    evolution_op_time_s=GTX1080_PARAMS.evolution_op_time_s,
    power_w=GTX1080_PARAMS.power_w,
    desc="Nvidia GTX 1080",
)
_GPU_COMMON_TEGRA = dict(
    launch_overhead_s=TEGRA_PARAMS.launch_overhead_s,
    transfer_overhead_s=TEGRA_PARAMS.transfer_overhead_s,
    bandwidth_bytes_per_s=TEGRA_PARAMS.bandwidth_bytes_per_s,
    compact_mac_rate=TEGRA_PARAMS.compact_mac_rate,
    sparse_mac_rate=TEGRA_PARAMS.sparse_mac_rate,
    evolution_op_time_s=TEGRA_PARAMS.evolution_op_time_s,
    power_w=TEGRA_PARAMS.power_w,
    desc="Nvidia Tegra",
)

_BUILTIN_SPECS = [
    PlatformSpec("cpu", "CPU_a", {**_CPU_COMMON_I7,
                                  "parallel_inference": False}),
    PlatformSpec("cpu", "CPU_b", {**_CPU_COMMON_I7,
                                  "parallel_inference": True}),
    PlatformSpec("cpu", "CPU_c", {**_CPU_COMMON_A57,
                                  "parallel_inference": False}),
    PlatformSpec("cpu", "CPU_d", {**_CPU_COMMON_A57,
                                  "parallel_inference": True}),
    PlatformSpec("gpu", "GPU_a", {**_GPU_COMMON_GTX,
                                  "batch_population": False}),
    PlatformSpec("gpu", "GPU_b", {**_GPU_COMMON_GTX,
                                  "batch_population": True}),
    PlatformSpec("gpu", "GPU_c", {**_GPU_COMMON_TEGRA,
                                  "batch_population": False}),
    PlatformSpec("gpu", "GPU_d", {**_GPU_COMMON_TEGRA,
                                  "batch_population": True}),
    PlatformSpec("genesys", "GENESYS"),
]

for _spec in _BUILTIN_SPECS:
    register_platform(_spec.name, _spec, table3=True)
register_platform("soc", PlatformSpec("soc"))

assert set(PLATFORM_KINDS) == set(_BUILDERS), "kind/builder tables diverged"
