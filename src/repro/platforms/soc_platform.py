"""The cycle-level GeneSys SoC as a first-class platform.

:class:`SoCPlatform` wraps the EvE/ADAM chip models behind the same
:class:`repro.platforms.Platform` interface the analytical Table III
rows implement, so the SoC is one more registry entry instead of a
special backend:

* :meth:`SoCPlatform.genesys_config` resolves the spec's design point
  (``eve_pes``, ``noc``, ``scheduler``, ``adam_shape``) into the
  :class:`repro.core.GeneSysConfig` the cycle-level
  :class:`repro.core.GeneSysSoC` simulation runs — this is the path the
  ``soc`` backend takes.
* The :class:`Platform` cost methods answer from the *analytical*
  GENESYS model shaped to the same design point, so the SoC can sit in
  a Fig. 9-style cost matrix next to the CPU/GPU rows.  Cycle-accurate
  numbers come from actually running ``backend="soc"``; the analytical
  projection here is the workload-aggregate estimate.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import GeneSysConfig
from ..core.trace import GenerationWorkload
from .base import PhaseCost, Platform
from .genesys import GenesysPlatform
from .spec import PlatformSpec, SoCPlatformParams


class SoCPlatform(Platform):
    """One registry entry wrapping the cycle-level EvE/ADAM SoC."""

    inference_strategy = "PLP"
    evolution_strategy = "PLP + GLP"
    platform_desc = "GeneSys SoC (cycle-level)"

    def __init__(self, spec: Optional[PlatformSpec] = None) -> None:
        if spec is None:
            spec = PlatformSpec(kind="soc")
        if spec.kind != "soc":
            raise ValueError(
                f"SoCPlatform needs a 'soc'-kind spec, got {spec.kind!r}"
            )
        self.spec = spec
        self.name = spec.name or "soc"

    @property
    def params(self) -> SoCPlatformParams:
        return self.spec.params

    # -- the cycle-level design point -------------------------------------

    def genesys_config(
        self,
        neat=None,
        seed: int = 0,
        base: Optional[GeneSysConfig] = None,
    ) -> GeneSysConfig:
        """The :class:`repro.core.GeneSysConfig` this spec describes.

        ``base`` (default: the paper design point) supplies everything
        the spec does not parameterise — SRAM geometry, PE registers —
        and is never mutated; the spec's design-point knobs and the
        caller's NEAT sizing/seed are applied to a copy.
        """
        import dataclasses

        params = self.params
        if base is None:
            base = GeneSysConfig.paper_design_point()
        config = dataclasses.replace(
            base,
            eve=dataclasses.replace(
                base.eve,
                num_pes=params.eve_pes,
                noc=params.noc,
                scheduler=params.scheduler,
            ),
            adam=dataclasses.replace(
                base.adam,
                rows=params.adam_rows,
                cols=params.adam_cols,
            ),
            frequency_hz=params.frequency_hz,
            seed=seed,
        )
        if neat is not None:
            config.neat = neat
        return config

    # -- analytical projection (Platform interface) -----------------------

    def _analytical(self) -> GenesysPlatform:
        params = self.params
        return GenesysPlatform(
            num_eve_pes=params.eve_pes,
            adam_rows=params.adam_rows,
            adam_cols=params.adam_cols,
            frequency_hz=params.frequency_hz,
        )

    def inference_cost(self, workload: GenerationWorkload) -> PhaseCost:
        return self._analytical().inference_cost(workload)

    def evolution_cost(self, workload: GenerationWorkload) -> PhaseCost:
        return self._analytical().evolution_cost(workload)

    def memory_footprint_bytes(self, workload: GenerationWorkload) -> int:
        return self._analytical().memory_footprint_bytes(workload)
