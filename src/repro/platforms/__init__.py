"""Platform models behind one declarative API (Table III + the SoC).

Two pieces compose here:

* :class:`PlatformSpec` (:mod:`repro.platforms.spec`) — a frozen,
  JSON-round-trippable description of one platform: a ``kind`` (``cpu``,
  ``gpu``, ``genesys`` analytical models; ``soc`` the cycle-level
  EvE/ADAM design point) plus a typed parameter block, content-hashable
  for the DSE cache.
* the open registry (:mod:`repro.platforms.registry`) — every Table III
  legend name and the ``soc`` design point as entries;
  :func:`register_platform` adds custom platforms (specs or factories)
  that immediately become ``analytical:<name>`` backends and CLI rows
  without touching backend or sweep code.

``make_platform`` accepts a registered name, a :class:`PlatformSpec`,
or a raw spec dict; unknown names raise :class:`UnknownPlatformError`
(a ``KeyError`` subclass) listing what is registered.  The legacy
factory helpers (``cpu_a`` … ``gpu_d``, ``genesys``) remain for direct
model construction.
"""

from typing import Dict, List

from .base import PhaseCost, Platform
from .cpu import (
    A57_PARAMS,
    CPUParams,
    CPUPlatform,
    I7_PARAMS,
    PLP_INFERENCE_SPEEDUP,
    cpu_a,
    cpu_b,
    cpu_c,
    cpu_d,
)
from .genesys import ONCHIP_TRANSFER_FRACTION, GenesysPlatform, genesys
from .gpu import GPUParams, GPUPlatform, GTX1080_PARAMS, TEGRA_PARAMS, gpu_a, gpu_b, gpu_c, gpu_d
from .memory_model import footprint_comparison, footprint_ratios
from .registry import (
    all_platforms,
    build_platform,
    make_platform,
    platform_names,
    platform_spec,
    register_platform,
    registered_platforms,
    table3,
    unregister_platform,
)
from .soc_platform import SoCPlatform
from .spec import (
    PLATFORM_KINDS,
    CPUPlatformParams,
    GenesysPlatformParams,
    GPUPlatformParams,
    PlatformSpec,
    PlatformSpecError,
    SoCPlatformParams,
    UnknownPlatformError,
    as_platform_spec,
    parse_adam_shape,
)

__all__ = [
    "A57_PARAMS",
    "CPUParams",
    "CPUPlatform",
    "CPUPlatformParams",
    "GPUParams",
    "GPUPlatform",
    "GPUPlatformParams",
    "GTX1080_PARAMS",
    "GenesysPlatform",
    "GenesysPlatformParams",
    "I7_PARAMS",
    "ONCHIP_TRANSFER_FRACTION",
    "PLATFORM_KINDS",
    "PLP_INFERENCE_SPEEDUP",
    "PhaseCost",
    "Platform",
    "PlatformSpec",
    "PlatformSpecError",
    "SoCPlatform",
    "SoCPlatformParams",
    "TEGRA_PARAMS",
    "UnknownPlatformError",
    "all_platforms",
    "as_platform_spec",
    "build_platform",
    "cpu_a",
    "cpu_b",
    "cpu_c",
    "cpu_d",
    "footprint_comparison",
    "footprint_ratios",
    "genesys",
    "gpu_a",
    "gpu_b",
    "gpu_c",
    "gpu_d",
    "make_platform",
    "parse_adam_shape",
    "platform_names",
    "platform_spec",
    "register_platform",
    "registered_platforms",
    "table3",
    "unregister_platform",
]
