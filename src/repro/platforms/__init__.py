"""Platform models for the Fig. 9/10 evaluation (Table III)."""

from typing import Dict, List

from .base import PhaseCost, Platform
from .cpu import (
    A57_PARAMS,
    CPUParams,
    CPUPlatform,
    I7_PARAMS,
    PLP_INFERENCE_SPEEDUP,
    cpu_a,
    cpu_b,
    cpu_c,
    cpu_d,
)
from .genesys import ONCHIP_TRANSFER_FRACTION, GenesysPlatform, genesys
from .gpu import GPUParams, GPUPlatform, GTX1080_PARAMS, TEGRA_PARAMS, gpu_a, gpu_b, gpu_c, gpu_d
from .memory_model import footprint_comparison, footprint_ratios

_FACTORIES = {
    "CPU_a": cpu_a,
    "CPU_b": cpu_b,
    "CPU_c": cpu_c,
    "CPU_d": cpu_d,
    "GPU_a": gpu_a,
    "GPU_b": gpu_b,
    "GPU_c": gpu_c,
    "GPU_d": gpu_d,
    "GENESYS": genesys,
}


def make_platform(name: str) -> Platform:
    """Instantiate a Table III platform by its legend name."""
    if name not in _FACTORIES:
        raise KeyError(f"unknown platform {name!r}; known: {sorted(_FACTORIES)}")
    return _FACTORIES[name]()


def platform_names() -> List[str]:
    """Legend names of every registered Table III platform."""
    return sorted(_FACTORIES)


def all_platforms() -> List[Platform]:
    return [factory() for factory in _FACTORIES.values()]


def table3() -> List[Dict[str, str]]:
    """Rows of Table III (target system configurations)."""
    return [platform.table3_row() for platform in all_platforms()]


__all__ = [
    "A57_PARAMS",
    "CPUParams",
    "CPUPlatform",
    "GPUParams",
    "GPUPlatform",
    "GTX1080_PARAMS",
    "GenesysPlatform",
    "I7_PARAMS",
    "ONCHIP_TRANSFER_FRACTION",
    "PLP_INFERENCE_SPEEDUP",
    "PhaseCost",
    "Platform",
    "TEGRA_PARAMS",
    "all_platforms",
    "cpu_a",
    "cpu_b",
    "cpu_c",
    "cpu_d",
    "footprint_comparison",
    "footprint_ratios",
    "genesys",
    "gpu_a",
    "gpu_b",
    "gpu_c",
    "gpu_d",
    "make_platform",
    "platform_names",
    "table3",
]
