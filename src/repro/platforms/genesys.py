"""GENESYS platform model: the SoC as a Table III row.

Analytical counterpart of the cycle-level simulators in :mod:`repro.hw`,
so the Fig. 9/10 platform sweeps can run from workload aggregates alone.
Inference exploits PLP by batching the population's vertex updates per
environment step onto the 32x32 array; evolution exploits PLP + GLP by
spreading children over the EvE PEs in waves.

Energy is built from the same per-op constants as the detailed model
(:mod:`repro.hw.energy`): MAC energy for ADAM, PE-cycle energy for EvE,
SRAM word energy for genome traffic, plus the always-on SRAM+M0 share of
the roofline power for the active window.  On-chip staging (genome buffer
to/from the engines) accounts for ~15 % of runtime, matching Fig. 10(c).
"""

from __future__ import annotations

from ..core.trace import GenerationWorkload
from ..hw.energy import (
    ADAM_MAC_ENERGY_PJ,
    EVE_OP_ENERGY_PJ,
    FREQUENCY_HZ,
    PAPER_TOTAL_POWER_MW,
    SRAM_ACCESS_ENERGY_PJ,
)
from ..neat.statistics import GENE_BYTES
from .base import PhaseCost, Platform

#: fraction of runtime spent staging data between SRAM and the engines
ONCHIP_TRANSFER_FRACTION = 0.15
#: The paper's power methodology is measured chip power x time; we use the
#: roofline power (947.5 mW, Section V) for the active window, which is
#: deliberately pessimistic for GENESYS ("actual power will be much lower").
_ACTIVE_POWER_W = PAPER_TOTAL_POWER_MW / 1e3


class GenesysPlatform(Platform):
    name = "GENESYS"
    inference_strategy = "PLP"
    evolution_strategy = "PLP + GLP"
    platform_desc = "GENESYS"

    def __init__(
        self,
        num_eve_pes: int = 256,
        adam_rows: int = 32,
        adam_cols: int = 32,
        frequency_hz: float = FREQUENCY_HZ,
    ) -> None:
        self.num_eve_pes = num_eve_pes
        self.adam_rows = adam_rows
        self.adam_cols = adam_cols
        self.frequency_hz = frequency_hz

    # -- inference ------------------------------------------------------

    def inference_cost(self, workload: GenerationWorkload) -> PhaseCost:
        depth = max(1.0, workload.mean_network_depth)
        mean_steps = workload.env_steps / max(1, workload.population)
        num_macs = self.adam_rows * self.adam_cols
        fill_drain = self.adam_rows + self.adam_cols
        # Population-batched waves: each episode step fires `depth` packed
        # matrix-vector products covering all genomes' ready vertices.
        array_cycles = (
            workload.inference_macs / num_macs + mean_steps * depth * fill_drain
        )
        vectorize_cycles = mean_steps * depth * self.adam_cols  # CPU packing
        cycles = array_cycles + vectorize_cycles
        compute = cycles / self.frequency_hz
        # staging is the Fig. 10(c) share of *total* runtime
        transfer = compute * ONCHIP_TRANSFER_FRACTION / (1 - ONCHIP_TRANSFER_FRACTION)
        runtime = compute + transfer
        energy = (
            workload.inference_macs * ADAM_MAC_ENERGY_PJ * 1e-12
            + runtime * _ACTIVE_POWER_W
        )
        return PhaseCost(runtime_s=runtime, energy_j=energy, transfer_s=transfer)

    def inference_cost_from_envelope(self, envelope, passes) -> PhaseCost:
        """Inference cost from a stacked ADAM envelope, exactly.

        :meth:`inference_cost` approximates the array time from workload
        aggregates (mean depth x mean steps); this variant consumes a
        :class:`repro.hw.adam.StackedAdamEnvelope` — per-genome integer
        per-pass cycle costs — plus per-genome forward-pass counts, so
        the cycle count is the cycle-level simulator's, not an estimate.
        Build the envelope with this platform's ADAM shape
        (``ADAMConfig(rows=adam_rows, cols=adam_cols)``) for the costs to
        correspond.
        """
        import numpy as np

        p = np.asarray(passes, dtype=np.int64)
        array_cycles = int((envelope.array_cycles_per_pass * p).sum())
        vectorize_cycles = int((envelope.vectorize_cycles_per_pass * p).sum())
        macs = int((envelope.macs_per_pass * p).sum())
        compute = (array_cycles + vectorize_cycles) / self.frequency_hz
        transfer = compute * ONCHIP_TRANSFER_FRACTION / (1 - ONCHIP_TRANSFER_FRACTION)
        runtime = compute + transfer
        energy = macs * ADAM_MAC_ENERGY_PJ * 1e-12 + runtime * _ACTIVE_POWER_W
        return PhaseCost(runtime_s=runtime, energy_j=energy, transfer_s=transfer)

    # -- evolution --------------------------------------------------------

    def evolution_cost(self, workload: GenerationWorkload) -> PhaseCost:
        mean_genes = workload.mean_genome_genes
        children = max(1, workload.population)
        waves = -(-children // self.num_eve_pes)  # ceil
        # One gene pair per cycle per PE, 2-cycle config + 4-stage drain.
        cycles = waves * (mean_genes + 6)
        compute = cycles / self.frequency_hz
        transfer = compute * ONCHIP_TRANSFER_FRACTION / (1 - ONCHIP_TRANSFER_FRACTION)
        runtime = compute + transfer

        genes_streamed = workload.total_genes  # every child's stream
        # Multicast reuse: concurrent children sharing the fit parents are
        # served by single reads; the sharing factor saturates at the PE
        # count or the observed parent reuse, whichever is smaller.
        sharing = max(1, min(self.num_eve_pes, workload.fittest_parent_reuse or 1))
        sram_reads = 2 * genes_streamed / sharing
        sram_writes = genes_streamed
        energy = (
            genes_streamed * EVE_OP_ENERGY_PJ * 1e-12
            + (sram_reads + sram_writes) * SRAM_ACCESS_ENERGY_PJ * 1e-12
            + runtime * _ACTIVE_POWER_W
        )
        return PhaseCost(runtime_s=runtime, energy_j=energy, transfer_s=transfer)

    def memory_footprint_bytes(self, workload: GenerationWorkload) -> int:
        """The whole generation's genomes, 64 bits per gene (Fig. 10d)."""
        return workload.total_genes * GENE_BYTES


def genesys() -> GenesysPlatform:
    return GenesysPlatform()
