"""The declarative platform specification: one record per substrate.

A :class:`PlatformSpec` describes a platform the way
:class:`repro.api.ExperimentSpec` describes an experiment: a frozen,
JSON-round-trippable record — a ``kind`` (which cost/simulation model
family builds it) plus a typed parameter block.  Four kinds ship,
spanning both modelling fidelities of the paper:

``cpu`` / ``gpu`` / ``genesys``
    The analytical Table III models (Fig. 9/10): parameters are the
    published calibration constants, so a new CPU or GPU variant is pure
    data — no subclassing.
``soc``
    The cycle-level EvE/ADAM GeneSys SoC (Section IV): parameters are
    the hardware design point the DSE sweeps (``eve_pes``, ``noc``,
    ``scheduler``, ``adam_shape``), resolvable into a
    :class:`repro.core.GeneSysConfig`.

Specs canonicalise exactly like experiment specs (``to_dict`` →
``json.dumps(sort_keys=True)``), so :meth:`PlatformSpec.content_key` is
stable across processes and machines and safe to embed in the
:mod:`repro.dse` cache keys.  Validation is shared with the rest of the
stack: NoC spellings go through :func:`repro.hw.noc.canonical_noc_kind`,
schedulers through :data:`repro.hw.allocator.SCHEDULERS`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Type, Union

from ..hw.allocator import SCHEDULERS
from ..hw.energy import FREQUENCY_HZ
from ..hw.noc import NOC_KINDS, canonical_noc_kind


class PlatformSpecError(ValueError):
    """Raised for invalid or inconsistent platform specifications."""


class UnknownPlatformError(KeyError):
    """Raised when a platform name resolves to no registry entry."""


def parse_adam_shape(shape: Union[str, Tuple[int, int]]) -> Tuple[int, int]:
    """``"32x32"`` (or a 2-sequence) -> ``(rows, cols)``, validated."""
    if isinstance(shape, str):
        rows_text, sep, cols_text = shape.lower().partition("x")
        try:
            if not sep:
                raise ValueError
            rows, cols = int(rows_text), int(cols_text)
        except ValueError:
            raise PlatformSpecError(
                f"adam_shape must look like '32x32', got {shape!r}"
            ) from None
    else:
        try:
            rows, cols = (int(v) for v in shape)
        except (TypeError, ValueError):
            raise PlatformSpecError(
                f"adam_shape must be 'RxC' or a (rows, cols) pair, "
                f"got {shape!r}"
            ) from None
    if rows < 1 or cols < 1:
        raise PlatformSpecError(
            f"adam_shape dimensions must be >= 1, got {shape!r}"
        )
    return rows, cols


def _require_positive(name: str, value: Any, kind: type = float) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise PlatformSpecError(f"{name} must be a number, got {value!r}")
    if kind is int and not isinstance(value, int):
        raise PlatformSpecError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise PlatformSpecError(f"{name} must be > 0, got {value!r}")


# ---------------------------------------------------------------------------
# per-kind typed parameter blocks


@dataclass(frozen=True)
class CPUPlatformParams:
    """Calibration of one CPU row of Table III (see ``platforms/cpu.py``)."""

    evolution_op_time_s: float  # one interpreted crossover/mutation op
    mac_time_s: float           # one MAC inside a network eval
    step_overhead_s: float      # per env-step interpreter/dispatch cost
    power_w: float              # package power while busy
    parallel_inference: bool = False   # PLP multithreading (CPU_b/d)
    inference_speedup: float = 3.5     # the paper's 3.5x PLP gain
    desc: str = "CPU"

    def __post_init__(self) -> None:
        for name in ("evolution_op_time_s", "mac_time_s",
                     "step_overhead_s", "power_w", "inference_speedup"):
            _require_positive(name, getattr(self, name))
        if not isinstance(self.parallel_inference, bool):
            raise PlatformSpecError(
                f"parallel_inference must be a bool, "
                f"got {self.parallel_inference!r}"
            )


@dataclass(frozen=True)
class GPUPlatformParams:
    """Calibration of one GPU row of Table III (see ``platforms/gpu.py``)."""

    launch_overhead_s: float
    transfer_overhead_s: float
    bandwidth_bytes_per_s: float
    compact_mac_rate: float
    sparse_mac_rate: float
    evolution_op_time_s: float
    power_w: float
    batch_population: bool = False  # GPU_b/d: BSP + PLP batching
    desc: str = "GPU"

    def __post_init__(self) -> None:
        for name in ("launch_overhead_s", "transfer_overhead_s",
                     "bandwidth_bytes_per_s", "compact_mac_rate",
                     "sparse_mac_rate", "evolution_op_time_s", "power_w"):
            _require_positive(name, getattr(self, name))
        if not isinstance(self.batch_population, bool):
            raise PlatformSpecError(
                f"batch_population must be a bool, "
                f"got {self.batch_population!r}"
            )


@dataclass(frozen=True)
class GenesysPlatformParams:
    """Shape of the analytical GENESYS model (``platforms/genesys.py``)."""

    num_eve_pes: int = 256
    adam_rows: int = 32
    adam_cols: int = 32
    frequency_hz: float = FREQUENCY_HZ

    def __post_init__(self) -> None:
        for name in ("num_eve_pes", "adam_rows", "adam_cols"):
            _require_positive(name, getattr(self, name), kind=int)
        _require_positive("frequency_hz", self.frequency_hz)


@dataclass(frozen=True)
class SoCPlatformParams:
    """The cycle-level GeneSys design point (the knobs the DSE sweeps).

    Defaults are the paper's implemented 15 nm design point
    (:meth:`repro.core.GeneSysConfig.paper_design_point`): 256 EvE PEs,
    multicast NoC, greedy scheduler, 32x32 ADAM array.
    """

    eve_pes: int = 256
    noc: str = "multicast"
    scheduler: str = "greedy"
    adam_shape: str = "32x32"
    frequency_hz: float = FREQUENCY_HZ

    def __post_init__(self) -> None:
        _require_positive("eve_pes", self.eve_pes, kind=int)
        _require_positive("frequency_hz", self.frequency_hz)
        try:
            object.__setattr__(self, "noc", canonical_noc_kind(self.noc))
        except ValueError as exc:
            raise PlatformSpecError(str(exc)) from None
        if self.scheduler not in SCHEDULERS:
            raise PlatformSpecError(
                f"unknown scheduler {self.scheduler!r}; "
                f"use one of {sorted(SCHEDULERS)}"
            )
        rows, cols = parse_adam_shape(self.adam_shape)
        object.__setattr__(self, "adam_shape", f"{rows}x{cols}")

    @property
    def adam_rows(self) -> int:
        return parse_adam_shape(self.adam_shape)[0]

    @property
    def adam_cols(self) -> int:
        return parse_adam_shape(self.adam_shape)[1]


#: kind -> its typed parameter dataclass.
PLATFORM_KINDS: Dict[str, type] = {
    "cpu": CPUPlatformParams,
    "gpu": GPUPlatformParams,
    "genesys": GenesysPlatformParams,
    "soc": SoCPlatformParams,
}

ParamsType = Union[
    CPUPlatformParams, GPUPlatformParams, GenesysPlatformParams,
    SoCPlatformParams,
]


def _coerce_params(kind: str, params: Any) -> ParamsType:
    cls: Type = PLATFORM_KINDS[kind]
    if isinstance(params, cls):
        return params
    if params is None:
        params = {}
    if not isinstance(params, Mapping):
        raise PlatformSpecError(
            f"params for kind {kind!r} must be a mapping or "
            f"{cls.__name__}, got {params!r}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise PlatformSpecError(
            f"unknown {kind} platform params: {unknown}; "
            f"known: {sorted(known)}"
        )
    try:
        return cls(**dict(params))
    except TypeError as exc:
        raise PlatformSpecError(f"invalid {kind} platform params: {exc}") from exc


@dataclass(frozen=True)
class PlatformSpec:
    """One platform, declaratively: ``kind`` + typed params + legend name.

    ``name`` is the legend/registry identity (``CPU_a`` … ``GENESYS``,
    ``soc``, or any custom name); it defaults to the kind.  ``params``
    accepts either the kind's typed dataclass or a plain dict (the JSON
    form), which is validated and coerced on construction — so a spec
    that exists is a spec that is valid.
    """

    kind: str
    name: Optional[str] = None
    params: Any = None

    def __post_init__(self) -> None:
        if self.kind not in PLATFORM_KINDS:
            raise PlatformSpecError(
                f"unknown platform kind {self.kind!r}; "
                f"known kinds: {sorted(PLATFORM_KINDS)}"
            )
        object.__setattr__(self, "params", _coerce_params(self.kind, self.params))
        if self.name is None:
            object.__setattr__(self, "name", self.kind)
        elif not isinstance(self.name, str) or not self.name:
            raise PlatformSpecError(
                f"platform name must be a non-empty string, got {self.name!r}"
            )

    # -- derivation -------------------------------------------------------

    def replace(self, **changes: Any) -> "PlatformSpec":
        """A copy of this spec with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def replace_params(self, **changes: Any) -> "PlatformSpec":
        """A copy with the given *parameter* fields changed (validated)."""
        known = {f.name for f in dataclasses.fields(type(self.params))}
        unknown = sorted(set(changes) - known)
        if unknown:
            raise PlatformSpecError(
                f"unknown {self.kind} platform params: {unknown}; "
                f"known: {sorted(known)}"
            )
        return dataclasses.replace(
            self, params=dataclasses.replace(self.params, **changes)
        )

    # -- dict / JSON round-trip -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "params": dataclasses.asdict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        if not isinstance(data, Mapping):
            raise PlatformSpecError(
                f"a platform spec must be a mapping, got {data!r}"
            )
        known = {"kind", "name", "params"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise PlatformSpecError(f"unknown platform spec fields: {unknown}")
        if "kind" not in data:
            raise PlatformSpecError("a platform spec needs a 'kind'")
        return cls(**dict(data))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PlatformSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlatformSpecError(f"invalid platform spec JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise PlatformSpecError("platform spec JSON must be an object")
        return cls.from_dict(data)

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "PlatformSpec":
        return cls.from_json(Path(path).read_text())

    # -- identity ---------------------------------------------------------

    def canonical_json(self) -> str:
        """Deterministic JSON (sorted keys, fixed separators) — the same
        canonicalisation :mod:`repro.dse.cache` applies to experiment
        specs, so two specs with equal fields hash identically however
        they were constructed."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_key(self) -> str:
        """SHA-256 of the canonical JSON — stable across processes and
        machines, usable directly in DSE cache keys."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()


def as_platform_spec(
    value: Union["PlatformSpec", Mapping[str, Any]],
) -> PlatformSpec:
    """Coerce a spec-or-dict (the JSON form) into a :class:`PlatformSpec`."""
    if isinstance(value, PlatformSpec):
        return value
    if isinstance(value, Mapping):
        return PlatformSpec.from_dict(value)
    raise PlatformSpecError(
        f"expected a PlatformSpec or mapping, got {value!r}"
    )
