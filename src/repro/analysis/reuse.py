"""Genome-level reuse (GLR) analysis (Section III-D3, Fig. 4c).

"In every generation, the same fit parent is often used to generate
multiple children ... the fittest parent in every generation was reused
close to 20 times, and for some applications like Cartpole and Lunar
lander, this number increased up to 80."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..neat.reproduction import ReproductionPlan


@dataclass
class ReuseStats:
    """Parent-usage statistics for one generation's reproduction plan."""

    fittest_parent_reuse: int
    max_parent_reuse: int
    mean_parent_reuse: float
    distinct_parents: int
    children: int

    @property
    def read_savings_factor(self) -> float:
        """Upper bound on SRAM read reduction from caching hot parents:
        children per distinct parent stream (2 streams per child)."""
        if self.distinct_parents == 0:
            return 1.0
        return max(1.0, 2.0 * self.children / self.distinct_parents)


def reuse_stats(plan: ReproductionPlan, fitnesses: Dict[int, float]) -> ReuseStats:
    usage = plan.parent_usage()
    if not usage:
        return ReuseStats(0, 0, 0.0, 0, 0)
    return ReuseStats(
        fittest_parent_reuse=plan.fittest_parent_reuse(fitnesses),
        max_parent_reuse=max(usage.values()),
        mean_parent_reuse=sum(usage.values()) / len(usage),
        distinct_parents=len(usage),
        children=len(plan.events),
    )


def reuse_series(
    plans: Sequence[ReproductionPlan], fitness_history: Sequence[Dict[int, float]]
) -> List[ReuseStats]:
    return [reuse_stats(p, f) for p, f in zip(plans, fitness_history)]
