"""ASCII rendering shared by every benchmark harness.

The paper's figures are bar charts and line series; the benches print the
same rows/series as plain-text tables so the numbers can be compared
against the paper directly (and diffed between runs).
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

Number = Union[int, float]


def write_csv(
    path: Union[str, Path],
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Write one table to ``path`` as CSV (the machine twin of
    :func:`render_table`)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))


def write_json(path: Union[str, Path], payload: object) -> None:
    """Write a JSON-serialisable payload with stable key order."""
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def fmt_si(value: float, unit: str = "") -> str:
    """Engineering-notation formatting: 1.23e4 -> '12.3k'."""
    if value == 0:
        return f"0{unit}"
    magnitude = abs(value)
    for threshold, suffix in [
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
    ]:
        if magnitude >= threshold:
            return f"{value / threshold:.3g}{suffix}{unit}"
    if magnitude >= 1:
        return f"{value:.3g}{unit}"
    for threshold, suffix in [(1e-3, "m"), (1e-6, "u"), (1e-9, "n"), (1e-12, "p")]:
        if magnitude >= threshold:
            return f"{value / threshold:.3g}{suffix}{unit}"
    return f"{value:.3g}{unit}"


def fmt_bytes(value: float) -> str:
    for threshold, suffix in [(1 << 30, "GiB"), (1 << 20, "MiB"), (1 << 10, "KiB")]:
        if abs(value) >= threshold:
            return f"{value / threshold:.2f} {suffix}"
    return f"{value:.0f} B"


def fmt_seconds(value: float) -> str:
    return fmt_si(value, "s")


def fmt_joules(value: float) -> str:
    return fmt_si(value, "J")


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with column auto-widths."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    xs: Sequence[Number],
    series: Dict[str, Sequence[Number]],
    x_label: str = "x",
    max_points: int = 25,
) -> str:
    """Print aligned multi-series rows, downsampling long series."""
    n = len(xs)
    if n == 0:
        return f"{title}\n(empty series)"
    stride = max(1, math.ceil(n / max_points))
    idx = list(range(0, n, stride))
    if idx[-1] != n - 1:
        idx.append(n - 1)
    headers = [x_label, *series.keys()]
    rows = []
    for i in idx:
        row = [xs[i]]
        for values in series.values():
            row.append(fmt_si(values[i]) if i < len(values) else "")
        rows.append(row)
    return render_table(headers, rows, title=title)


def summarize_distribution(values: Sequence[Number]) -> Dict[str, float]:
    """min/p25/median/p75/max summary (the Fig. 5 violin equivalents)."""
    if not values:
        raise ValueError("empty distribution")
    ordered = sorted(float(v) for v in values)

    def pct(p: float) -> float:
        k = (len(ordered) - 1) * p
        lo, hi = math.floor(k), math.ceil(k)
        if lo == hi:
            return ordered[lo]
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (k - lo)

    return {
        "min": ordered[0],
        "p25": pct(0.25),
        "median": pct(0.5),
        "p75": pct(0.75),
        "max": ordered[-1],
        "mean": sum(ordered) / len(ordered),
    }


def render_distribution_table(
    title: str, distributions: Dict[str, Sequence[Number]], unit: str = ""
) -> str:
    headers = ["workload", "min", "p25", "median", "p75", "max", "mean"]
    rows = []
    for name, values in distributions.items():
        s = summarize_distribution(values)
        rows.append(
            [
                name,
                fmt_si(s["min"], unit),
                fmt_si(s["p25"], unit),
                fmt_si(s["median"], unit),
                fmt_si(s["p75"], unit),
                fmt_si(s["max"], unit),
                fmt_si(s["mean"], unit),
            ]
        )
    return render_table(headers, rows, title=title)


def log10_or_none(value: float) -> Optional[float]:
    return math.log10(value) if value > 0 else None


def orders_of_magnitude(a: float, b: float) -> float:
    """How many orders of magnitude larger a is than b."""
    if a <= 0 or b <= 0:
        raise ValueError("orders_of_magnitude needs positive values")
    return math.log10(a / b)
