"""Species dynamics tracking.

Speciation and fitness sharing are NEAT's innovation-protection machinery
(Section II-D).  This tracker records how the niche structure evolves —
species counts, sizes, births and extinctions — the classic NEAT
"speciation plot", useful for diagnosing premature convergence when
tuning the compatibility threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..neat.population import Population
from ..neat.species import SpeciesSet


@dataclass
class SpeciesSnapshot:
    generation: int
    sizes: Dict[int, int]
    best_fitness: Dict[int, Optional[float]]

    @property
    def num_species(self) -> int:
        return len(self.sizes)

    @property
    def largest(self) -> int:
        return max(self.sizes.values()) if self.sizes else 0

    @property
    def dominance(self) -> float:
        """Fraction of the population held by the largest species."""
        total = sum(self.sizes.values())
        return self.largest / total if total else 0.0


@dataclass
class SpeciesHistory:
    snapshots: List[SpeciesSnapshot] = field(default_factory=list)

    def record(self, species_set: SpeciesSet, generation: int) -> SpeciesSnapshot:
        snapshot = SpeciesSnapshot(
            generation=generation,
            sizes={key: len(s) for key, s in species_set.species.items()},
            best_fitness={
                key: s.fitness for key, s in species_set.species.items()
            },
        )
        self.snapshots.append(snapshot)
        return snapshot

    # -- series -----------------------------------------------------------

    def count_series(self) -> List[int]:
        return [s.num_species for s in self.snapshots]

    def dominance_series(self) -> List[float]:
        return [s.dominance for s in self.snapshots]

    def lifetimes(self) -> Dict[int, int]:
        """Generations each species key was observed alive."""
        seen: Dict[int, int] = {}
        for snapshot in self.snapshots:
            for key in snapshot.sizes:
                seen[key] = seen.get(key, 0) + 1
        return seen

    def births_and_extinctions(self) -> List[Dict[str, Set[int]]]:
        """Per-generation species births/extinctions (vs previous gen)."""
        events: List[Dict[str, Set[int]]] = []
        previous: Set[int] = set()
        for snapshot in self.snapshots:
            current = set(snapshot.sizes)
            events.append(
                {"born": current - previous, "extinct": previous - current}
            )
            previous = current
        return events


def track_run(
    population: Population,
    fitness_function,
    generations: int,
) -> SpeciesHistory:
    """Run ``generations`` NEAT generations while recording speciation."""
    history = SpeciesHistory()
    for _ in range(generations):
        history.record(population.species_set, population.generation)
        population.run_generation(fitness_function)
    return history
