"""ASCII visualisation of evolved network topologies.

Renders a genome as its levelised layer structure with per-node fan-in,
so evolved "irregular" topologies (the paper's Section III-C2 point) can
be inspected in a terminal.
"""

from __future__ import annotations

from typing import Dict, List

from ..neat.config import GenomeConfig
from ..neat.genome import Genome
from ..neat.network import feed_forward_layers, required_for_output


def describe_genome(genome: Genome, config: GenomeConfig) -> str:
    """Multi-line summary: size, layers, and per-layer node details."""
    enabled = [k for k, c in genome.connections.items() if c.enabled]
    num_enabled = len(enabled)
    num_disabled = len(genome.connections) - num_enabled
    lines = [
        f"Genome {genome.key}: {len(genome.nodes)} nodes, "
        f"{num_enabled} enabled + {num_disabled} disabled connections"
        + (f", fitness {genome.fitness:.3f}" if genome.fitness is not None else ""),
    ]
    try:
        layers = feed_forward_layers(config.input_keys, config.output_keys, enabled)
    except ValueError:
        lines.append("  (cyclic graph: cannot levelise)")
        return "\n".join(lines)

    required = required_for_output(config.input_keys, config.output_keys, enabled)
    pruned = [n for n in genome.nodes if n not in required]
    incoming: Dict[int, List[int]] = {}
    for src, dst in enabled:
        incoming.setdefault(dst, []).append(src)

    lines.append(f"  inputs: {config.input_keys}")
    for depth, layer in enumerate(layers):
        entries = []
        for node_id in layer:
            node = genome.nodes[node_id]
            fan_in = len(incoming.get(node_id, []))
            role = "out" if node_id in config.output_keys else "hid"
            entries.append(f"{role}{node_id}({node.activation},fan_in={fan_in})")
        lines.append(f"  layer {depth + 1}: " + "  ".join(entries))
    if pruned:
        lines.append(f"  pruned (no path to output): {sorted(pruned)}")
    return "\n".join(lines)


def connection_matrix(genome: Genome, config: GenomeConfig) -> str:
    """Dense adjacency rendering (rows = sources, cols = destinations).

    '#' enabled connection, 'o' disabled, '.' absent.  Useful for seeing
    the sparsity ADAM has to pack (Fig. 11a discussion).
    """
    sources = config.input_keys + sorted(genome.nodes)
    dests = sorted(genome.nodes)
    header = "        " + " ".join(f"{d:>4}" for d in dests)
    rows = [header]
    for src in sources:
        cells = []
        for dst in dests:
            conn = genome.connections.get((src, dst))
            if conn is None:
                cells.append("   .")
            elif conn.enabled:
                cells.append("   #")
            else:
                cells.append("   o")
        rows.append(f"{src:>7} " + " ".join(cells))
    return "\n".join(rows)


def sparsity(genome: Genome, config: GenomeConfig) -> float:
    """Fraction of the dense source x dest grid actually connected."""
    num_sources = len(config.input_keys) + len(genome.nodes)
    num_dests = len(genome.nodes)
    dense = num_sources * num_dests
    if dense == 0:
        return 0.0
    enabled = sum(1 for c in genome.connections.values() if c.enabled)
    return enabled / dense
