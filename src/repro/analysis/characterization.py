"""Workload characterisation harness (Section III, Figs. 4-5 and 11a).

Runs software NEAT over the environment suite — multiple seeds per
environment, as the paper's distributions are "across all generations till
convergence and 100 separate runs" — and extracts every series/distribution
the characterisation figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.trace import TraceRecorder, WorkloadTrace
from ..envs.registry import make
from ..neat.statistics import GENE_BYTES


@dataclass
class RunCharacterisation:
    """Per-generation series for one (env, seed) run."""

    env_id: str
    seed: int
    best_fitness: List[float] = field(default_factory=list)
    mean_fitness: List[float] = field(default_factory=list)
    num_genes: List[int] = field(default_factory=list)
    num_nodes: List[int] = field(default_factory=list)
    num_connections: List[int] = field(default_factory=list)
    ops: List[int] = field(default_factory=list)
    footprint_bytes: List[int] = field(default_factory=list)
    parent_reuse: List[int] = field(default_factory=list)
    converged_at: Optional[int] = None

    @property
    def generations(self) -> int:
        return len(self.best_fitness)


@dataclass
class EnvCharacterisation:
    """All runs of one environment."""

    env_id: str
    runs: List[RunCharacterisation] = field(default_factory=list)

    # -- Fig. 4(a): normalised fitness ------------------------------------

    def normalised_fitness_curves(self) -> List[List[float]]:
        """Each run's best fitness normalised to [0, 1] over its range.

        A flat run (already at its best from generation 0) normalises to
        all-ones rather than all-zeros.
        """
        curves = []
        for run in self.runs:
            lo = min(run.best_fitness)
            hi = max(run.best_fitness)
            if hi == lo:
                curves.append([1.0] * len(run.best_fitness))
                continue
            span = hi - lo
            curves.append([(f - lo) / span for f in run.best_fitness])
        return curves

    def mean_normalised_fitness(self) -> List[float]:
        curves = self.normalised_fitness_curves()
        length = max(len(c) for c in curves)
        out = []
        for i in range(length):
            vals = [c[i] if i < len(c) else c[-1] for c in curves]
            out.append(sum(vals) / len(vals))
        return out

    # -- Fig. 4(b)/(c), Fig. 5, Fig. 11(a) --------------------------------

    def gene_count_series(self) -> List[float]:
        length = max(r.generations for r in self.runs)
        out = []
        for i in range(length):
            vals = [
                r.num_genes[i] if i < len(r.num_genes) else r.num_genes[-1]
                for r in self.runs
            ]
            out.append(sum(vals) / len(vals))
        return out

    def ops_distribution(self) -> List[int]:
        """All per-generation op counts pooled across runs (Fig. 5a)."""
        return [op for run in self.runs for op in run.ops if op > 0]

    def footprint_distribution(self) -> List[int]:
        return [fp for run in self.runs for fp in run.footprint_bytes]

    def reuse_distribution(self) -> List[int]:
        return [r for run in self.runs for r in run.parent_reuse if r > 0]

    def reuse_series(self) -> List[float]:
        length = max(r.generations for r in self.runs)
        out = []
        for i in range(length):
            vals = [
                r.parent_reuse[i] if i < len(r.parent_reuse) else r.parent_reuse[-1]
                for r in self.runs
            ]
            out.append(sum(vals) / len(vals))
        return out

    def composition(self) -> Dict[str, float]:
        """Final node/connection split averaged over runs (Fig. 11a)."""
        nodes = [r.num_nodes[-1] for r in self.runs if r.num_nodes]
        conns = [r.num_connections[-1] for r in self.runs if r.num_connections]
        return {
            "nodes": sum(nodes) / len(nodes) if nodes else 0.0,
            "connections": sum(conns) / len(conns) if conns else 0.0,
        }

    def convergence_generations(self) -> List[Optional[int]]:
        return [r.converged_at for r in self.runs]


def characterise_env(
    env_id: str,
    runs: int = 3,
    generations: int = 20,
    pop_size: int = 50,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    base_seed: int = 0,
    stop_at_solve: bool = True,
) -> EnvCharacterisation:
    """Run NEAT ``runs`` times on ``env_id``, recording all Fig. 4/5 series.

    Scaled-down defaults (the paper uses pop 150 and 100 runs) keep the
    benches laptop-fast; the shapes are already stable at this scale.
    ``stop_at_solve=False`` always runs the full generation budget, which
    matters when ``max_steps`` caps make the solve threshold trivial.
    """
    from ..core.runner import config_for_env
    from ..envs.evaluate import FitnessEvaluator
    from ..neat.population import Population

    env = make(env_id)
    threshold = getattr(env, "solve_threshold", None)
    result = EnvCharacterisation(env_id=env_id)
    for run_index in range(runs):
        seed = base_seed + 1000 * run_index
        config = config_for_env(env_id, pop_size=pop_size)
        population = Population(config, seed=seed)
        evaluator = FitnessEvaluator(
            env_id, episodes=episodes, max_steps=max_steps, seed=seed
        )
        run = RunCharacterisation(env_id=env_id, seed=seed)
        for gen in range(generations):
            stats = population.run_generation(evaluator)
            run.best_fitness.append(stats.best_fitness)
            run.mean_fitness.append(stats.mean_fitness)
            run.num_genes.append(stats.num_genes)
            run.num_nodes.append(stats.num_nodes)
            run.num_connections.append(stats.num_connections)
            run.ops.append(stats.ops.total)
            run.footprint_bytes.append(stats.memory_footprint_bytes)
            run.parent_reuse.append(stats.fittest_parent_reuse)
            if (
                run.converged_at is None
                and threshold is not None
                and stats.best_fitness >= threshold
            ):
                run.converged_at = gen
                if stop_at_solve:
                    break
        result.runs.append(run)
    return result


def record_workload(
    env_id: str,
    generations: int = 5,
    pop_size: int = 50,
    episodes: int = 1,
    max_steps: Optional[int] = None,
    seed: int = 0,
) -> WorkloadTrace:
    """Convenience wrapper over :class:`TraceRecorder` (platform benches)."""
    recorder = TraceRecorder(
        env_id, pop_size=pop_size, episodes=episodes, max_steps=max_steps, seed=seed
    )
    return recorder.record(generations)
