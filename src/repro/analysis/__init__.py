"""Characterisation and reporting utilities (Figs. 4-5, 10-11)."""

from .characterization import (
    EnvCharacterisation,
    RunCharacterisation,
    characterise_env,
    record_workload,
)
from .footprint import FootprintReport, footprint_report, genes_to_bytes
from .netviz import connection_matrix, describe_genome, sparsity
from .reporting import (
    fmt_bytes,
    fmt_joules,
    fmt_seconds,
    fmt_si,
    orders_of_magnitude,
    render_distribution_table,
    render_series,
    render_table,
    summarize_distribution,
    write_csv,
    write_json,
)
from .reuse import ReuseStats, reuse_series, reuse_stats
from .species_tracker import SpeciesHistory, SpeciesSnapshot, track_run

__all__ = [
    "EnvCharacterisation",
    "FootprintReport",
    "ReuseStats",
    "RunCharacterisation",
    "characterise_env",
    "fmt_bytes",
    "fmt_joules",
    "fmt_seconds",
    "fmt_si",
    "connection_matrix",
    "describe_genome",
    "footprint_report",
    "genes_to_bytes",
    "orders_of_magnitude",
    "record_workload",
    "render_distribution_table",
    "render_series",
    "render_table",
    "reuse_series",
    "sparsity",
    "reuse_stats",
    "SpeciesHistory",
    "SpeciesSnapshot",
    "summarize_distribution",
    "track_run",
    "write_csv",
    "write_json",
]
