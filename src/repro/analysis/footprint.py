"""Memory footprint analysis (Section III-D1, Fig. 5b, Fig. 10d).

"the memory footprint for EAs at any time is simply the space required to
store all the genes of all genomes within a generation" — under 1 MB for
every workload the paper looked at, which is what lets the whole
generation live in the 1.5 MB on-chip genome buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.trace import GenerationWorkload
from ..hw.sram import SRAMConfig
from ..neat.statistics import GENE_BYTES


@dataclass
class FootprintReport:
    env_id: str
    max_bytes: int
    mean_bytes: float
    fits_on_chip: bool
    sram_capacity_bytes: int

    @property
    def occupancy(self) -> float:
        return self.max_bytes / self.sram_capacity_bytes


def footprint_report(
    env_id: str,
    workloads: Sequence[GenerationWorkload],
    sram: SRAMConfig = None,
) -> FootprintReport:
    sram = sram or SRAMConfig()
    footprints = [w.footprint_bytes for w in workloads]
    max_bytes = max(footprints) if footprints else 0
    mean_bytes = sum(footprints) / len(footprints) if footprints else 0.0
    return FootprintReport(
        env_id=env_id,
        max_bytes=max_bytes,
        mean_bytes=mean_bytes,
        fits_on_chip=max_bytes <= sram.capacity_bytes,
        sram_capacity_bytes=sram.capacity_bytes,
    )


def genes_to_bytes(num_genes: int) -> int:
    return num_genes * GENE_BYTES
