"""EvE Processing Element: the 4-stage reproduction pipeline (Fig. 7).

Each PE turns one aligned stream of parent gene pairs into one child gene
stream, applying — in pipeline order —

1. **Crossover engine**: per attribute, an 8-bit PRNG value is compared
   against a programmable bias to pick parent 1 or parent 2's copy.
2. **Perturbation engine**: per attribute, a perturbation probability
   gates adding a small PRNG-derived delta, then "Limit & Quantize" clamps
   back into the Q4.4 attribute range.
3. **Delete Gene engine**: node deletions are gated by probability *and*
   a previously-deleted-node-count threshold ("in order to keep the genome
   alive"); deleted node ids are stored in the Node ID regs and matched
   against later connection genes to prune danglers.
4. **Add Gene engine**: node addition splits the incoming connection
   (new node id = max seen + 1, two fresh connection genes, incoming
   dropped); connection addition uses the paper's two-cycle scheme —
   store the source of one connection, pair it with the destination of the
   next.

The PE is functional *and* cycle-accounted: it consumes one gene pair per
cycle after a 2-cycle configuration load (Section IV-C5), plus the
4-stage pipeline drain.

Fidelity note: this is the hardware semantics, not a bit-identical replay
of the software :meth:`Genome.mutate` — the PRNG, quantisation and
structural-mutation mechanics are the hardware's own, exactly as the
paper's EvE differs from neat-python.  Integration tests check the
invariants (validity, orderedness) and that closed-loop evolution through
the PE still learns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from .gene_encoding import (
    FIXED_MAX,
    FIXED_MIN,
    GENE_TYPE_CONNECTION,
    GENE_TYPE_NODE,
    NODE_TYPE_HIDDEN,
    PackedGene,
    pack_connection,
    pack_node,
    quantize,
)
from .prng import XorWow

PIPELINE_DEPTH = 4
CONFIG_LOAD_CYCLES = 2  # "it takes 2 cycles to load the parents' fitness
# values and other control information" (Section IV-C5)

#: Default attribute values for genes minted by the Add Gene engine.
DEFAULT_NODE_ACTIVATION = "tanh"
DEFAULT_NODE_AGGREGATION = "sum"
DEFAULT_CONN_WEIGHT = 1.0


@dataclass
class PEConfig:
    """The programmable probability registers of Fig. 7 (8-bit compares)."""

    crossover_bias: float = 0.5
    perturb_prob: float = 0.25
    node_delete_prob: float = 0.002
    conn_delete_prob: float = 0.004
    node_add_prob: float = 0.004
    conn_add_prob: float = 0.01
    max_node_deletions: int = 1
    #: perturbation step: raw Q4.4 delta = signed PRNG byte >> this shift
    perturb_shift: int = 3

    def threshold(self, probability: float) -> int:
        """Probability -> the 8-bit compare value the hardware uses."""
        return max(0, min(256, int(round(probability * 256))))


@dataclass
class PEStats:
    """Per-PE op counters (the hardware image of MutationCounts)."""

    genes_in: int = 0
    genes_out: int = 0
    crossovers: int = 0
    perturbations: int = 0
    node_deletions: int = 0
    conn_deletions: int = 0
    dangling_prunes: int = 0
    node_additions: int = 0
    conn_additions: int = 0
    busy_cycles: int = 0

    def merge(self, other: "PEStats") -> None:
        for attr in (
            "genes_in",
            "genes_out",
            "crossovers",
            "perturbations",
            "node_deletions",
            "conn_deletions",
            "dangling_prunes",
            "node_additions",
            "conn_additions",
            "busy_cycles",
        ):
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))


class ProcessingElement:
    """One EvE PE.  Reusable: ``begin_child`` resets per-child state."""

    def __init__(self, pe_index: int = 0, seed: int = 0) -> None:
        self.pe_index = pe_index
        self.prng = XorWow(seed=seed ^ (0xA5A5A5A5 + pe_index * 0x9E3779B9))
        self.config = PEConfig()
        self.stats = PEStats()
        self._reset_child_state()

    def _reset_child_state(self) -> None:
        # The "Node ID regs" of Fig. 7: deleted ids, intermediate state,
        # and the running max id.
        self._deleted_nodes: Set[int] = set()
        self._valid_nodes: Set[int] = set()
        self._max_node_id = -1
        self._nodes_deleted_count = 0
        self._pending_conn_source: Optional[int] = None
        self._fitness1 = 0.0
        self._fitness2 = 0.0
        self._cycles = 0

    # ------------------------------------------------------------------

    def begin_child(
        self, config: PEConfig, fitness1: float, fitness2: float
    ) -> None:
        """Configuration load: 2 cycles of control information."""
        self._reset_child_state()
        self.config = config
        self._fitness1 = fitness1
        self._fitness2 = fitness2
        self._cycles = CONFIG_LOAD_CYCLES

    def process_pair(
        self, gene1: Optional[PackedGene], gene2: Optional[PackedGene]
    ) -> List[PackedGene]:
        """Push one aligned parent gene pair through all four stages.

        ``gene2 is None`` for disjoint/excess genes inherited from the
        fitter parent.  Returns 0..3 child genes (deletion yields none;
        node addition yields a node plus two connections).
        """
        if gene1 is None:
            raise ValueError("gene1 must be present (fitter parent's stream)")
        self._cycles += 1
        self.stats.busy_cycles += 1
        self.stats.genes_in += 1 if gene2 is None else 2

        child = self._crossover_stage(gene1, gene2)
        child = self._perturbation_stage(child)
        kept = self._delete_stage(child)
        if kept is None:
            return []
        produced = self._add_stage(kept)
        self.stats.genes_out += len(produced)
        return produced

    def finish_child(self) -> int:
        """Pipeline drain; returns total cycles spent on this child."""
        self._cycles += PIPELINE_DEPTH
        return self._cycles

    @property
    def cycles(self) -> int:
        return self._cycles

    # -- stage 1: crossover ------------------------------------------------

    def _crossover_stage(
        self, gene1: PackedGene, gene2: Optional[PackedGene]
    ) -> PackedGene:
        if gene2 is None:
            return gene1
        if gene1.key != gene2.key:
            raise ValueError(
                f"gene split misalignment: {gene1.key} vs {gene2.key}"
            )
        self.stats.crossovers += 1
        bias = self.config.threshold(self.config.crossover_bias)

        def pick() -> bool:
            """True -> take parent 1's attribute."""
            return self.prng.next_byte() < bias

        if gene1.is_node:
            return pack_node(
                gene1.node_id,
                gene1.node_type,
                gene1.bias if pick() else gene2.bias,
                gene1.response if pick() else gene2.response,
                gene1.activation if pick() else gene2.activation,
                gene1.aggregation if pick() else gene2.aggregation,
            )
        return pack_connection(
            gene1.source,
            gene1.dest,
            gene1.weight if pick() else gene2.weight,
            gene1.enabled if pick() else gene2.enabled,
        )

    # -- stage 2: perturbation ------------------------------------------------

    def _perturb_value(self, value: float) -> Tuple[float, bool]:
        threshold = self.config.threshold(self.config.perturb_prob)
        if self.prng.next_byte() >= threshold:
            return value, False
        delta_raw = self.prng.next_signed_byte() >> self.config.perturb_shift
        raw = quantize(value) + delta_raw
        raw = max(FIXED_MIN, min(FIXED_MAX, raw))  # Limit & Quantize
        return raw / 16.0, True

    def _perturbation_stage(self, gene: PackedGene) -> PackedGene:
        if gene.is_node:
            bias, hit1 = self._perturb_value(gene.bias)
            response, hit2 = self._perturb_value(gene.response)
            self.stats.perturbations += int(hit1) + int(hit2)
            if not (hit1 or hit2):
                return gene
            return pack_node(
                gene.node_id, gene.node_type, bias, response,
                gene.activation, gene.aggregation,
            )
        weight, hit = self._perturb_value(gene.weight)
        if hit:
            self.stats.perturbations += 1
            return pack_connection(gene.source, gene.dest, weight, gene.enabled)
        return gene

    # -- stage 3: delete gene -----------------------------------------------------

    def _delete_stage(self, gene: PackedGene) -> Optional[PackedGene]:
        if gene.is_node:
            threshold = self.config.threshold(self.config.node_delete_prob)
            deletable = (
                gene.node_type == NODE_TYPE_HIDDEN
                and self._nodes_deleted_count < self.config.max_node_deletions
            )
            if deletable and self.prng.next_byte() < threshold:
                self._deleted_nodes.add(gene.node_id)
                self._nodes_deleted_count += 1
                self.stats.node_deletions += 1
                return None
            self._valid_nodes.add(gene.node_id)
            self._max_node_id = max(self._max_node_id, gene.node_id)
            return gene
        # Connection gene: dangling prune takes priority over random delete.
        if gene.source in self._deleted_nodes or gene.dest in self._deleted_nodes:
            self.stats.dangling_prunes += 1
            return None
        threshold = self.config.threshold(self.config.conn_delete_prob)
        if self.prng.next_byte() < threshold:
            self.stats.conn_deletions += 1
            return None
        return gene

    # -- stage 4: add gene ---------------------------------------------------------

    def _add_stage(self, gene: PackedGene) -> List[PackedGene]:
        if gene.is_node:
            return [gene]

        # Node addition: split the incoming connection.
        threshold = self.config.threshold(self.config.node_add_prob)
        if self.prng.next_byte() < threshold:
            new_id = self._max_node_id + 1
            self._max_node_id = new_id
            self._valid_nodes.add(new_id)
            self.stats.node_additions += 1
            node = pack_node(
                new_id,
                NODE_TYPE_HIDDEN,
                0.0,
                1.0,
                DEFAULT_NODE_ACTIVATION,
                DEFAULT_NODE_AGGREGATION,
            )
            upstream = pack_connection(gene.source, new_id, DEFAULT_CONN_WEIGHT, True)
            downstream = pack_connection(new_id, gene.dest, gene.weight, True)
            # The incoming connection gene is dropped (Section IV-C3).
            return [node, upstream, downstream]

        # Connection addition: the two-cycle store-source / pair-with-next-
        # destination mechanism.
        produced = [gene]
        threshold = self.config.threshold(self.config.conn_add_prob)
        if self._pending_conn_source is not None:
            source = self._pending_conn_source
            self._pending_conn_source = None
            # inputs (negative ids) are always valid sources; hidden/output
            # sources must not have been deleted upstream
            source_valid = source < 0 or source in self._valid_nodes
            if source != gene.dest and source_valid:
                new_conn = pack_connection(source, gene.dest, DEFAULT_CONN_WEIGHT, True)
                self.stats.conn_additions += 1
                produced.append(new_conn)
        elif self.prng.next_byte() < threshold:
            self._pending_conn_source = gene.source
        return produced
