"""PE allocation policy for EvE.

Section IV-C5: "The PE allocation is done with a greedy policy, such that
maximum number of children can be created from the parents currently in
the SRAM.  This is done to exploit the reuse opportunity provided by the
reproduction algorithm and minimize SRAM reads."  One PE produces one
child genome (the paper's implementation choice).

The scheduler partitions the generation's reproduction events into waves
of at most ``num_pes`` children.  The greedy policy packs children that
share parents into the *same* wave so the multicast NoC can serve them
with single reads; the round-robin baseline ignores sharing (the ablation
of Fig. 11b/c).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from ..neat.reproduction import ReproductionEvent

Wave = List[ReproductionEvent]


def greedy_reuse_schedule(
    events: Sequence[ReproductionEvent], num_pes: int
) -> List[Wave]:
    """Pack children sharing parents into the same wave (GLR-aware).

    Children are grouped by their parent pair, groups are ordered by size
    (largest first — the fittest parent's offspring dominate, Fig. 4c),
    and each wave is filled group-by-group so co-scheduled children
    overwhelmingly share parent streams.
    """
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    groups: Dict[tuple, List[ReproductionEvent]] = defaultdict(list)
    for event in events:
        pair = tuple(sorted((event.parent1_key, event.parent2_key)))
        groups[pair].append(event)
    ordered: List[ReproductionEvent] = []
    for pair in sorted(groups, key=lambda p: (-len(groups[p]), p)):
        ordered.extend(groups[pair])
    return [ordered[i : i + num_pes] for i in range(0, len(ordered), num_pes)]


def round_robin_schedule(
    events: Sequence[ReproductionEvent], num_pes: int
) -> List[Wave]:
    """Naive baseline: events in arrival order, no sharing awareness."""
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    events = list(events)
    return [events[i : i + num_pes] for i in range(0, len(events), num_pes)]


SCHEDULERS = {
    "greedy": greedy_reuse_schedule,
    "round-robin": round_robin_schedule,
}


def make_scheduler(name: str):
    key = name.lower().replace("_", "-")
    if key not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {name!r}; use {sorted(SCHEDULERS)}")
    return SCHEDULERS[key]
