"""Network-on-chip models for gene distribution and collection.

Section IV-C4: "Our base design is separate high-bandwidth buses, one for
the distribution and one for the collection.  However ... we also consider
a tree-based network with multicast support and evaluate the savings in
SRAM reads" (Fig. 11b).

Both models answer the same question for each distribution cycle: given
the set of (pe, parent_genome, word_index) demands in flight, how many
SRAM reads are issued?

* :class:`PointToPointNoC` — every consuming PE receives its own copy, so
  every demand is one read.
* :class:`MulticastTreeNoC` — PEs demanding the *same* genome word in the
  same cycle are served by a single read multicast down the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

#: One in-flight demand: (pe_index, genome_id, word_index)
Demand = Tuple[int, int, int]


@dataclass
class NoCStats:
    cycles: int = 0
    sram_reads: int = 0
    genes_delivered: int = 0
    multicast_hits: int = 0  # demands satisfied by sharing another PE's read

    @property
    def reads_per_cycle(self) -> float:
        return self.sram_reads / self.cycles if self.cycles else 0.0

    def merge(self, other: "NoCStats") -> None:
        self.cycles += other.cycles
        self.sram_reads += other.sram_reads
        self.genes_delivered += other.genes_delivered
        self.multicast_hits += other.multicast_hits


class BaseNoC:
    """Common interface: account one distribution cycle of demands."""

    name = "base"

    def __init__(self) -> None:
        self.stats = NoCStats()

    def distribute_cycle(self, demands: Sequence[Demand]) -> int:
        """Account one cycle; returns SRAM reads issued this cycle."""
        raise NotImplementedError

    def reset_stats(self) -> NoCStats:
        stats = self.stats
        self.stats = NoCStats()
        return stats


class PointToPointNoC(BaseNoC):
    """Dedicated bus per transfer: one SRAM read per consuming PE."""

    name = "point-to-point"

    def distribute_cycle(self, demands: Sequence[Demand]) -> int:
        reads = len(demands)
        self.stats.cycles += 1
        self.stats.sram_reads += reads
        self.stats.genes_delivered += len(demands)
        return reads


class MulticastTreeNoC(BaseNoC):
    """Tree with multicast: one read per *distinct* genome word per cycle.

    This is the genome-level-reuse (GLR) win: children sharing a parent
    receive the same gene stream from a single read (Section III-D3).
    """

    name = "multicast-tree"

    def distribute_cycle(self, demands: Sequence[Demand]) -> int:
        distinct = {(genome_id, word_index) for _pe, genome_id, word_index in demands}
        reads = len(distinct)
        self.stats.cycles += 1
        self.stats.sram_reads += reads
        self.stats.genes_delivered += len(demands)
        self.stats.multicast_hits += len(demands) - reads
        return reads


#: Canonical NoC kinds every layer agrees on — the SoC design point
#: (:class:`repro.hw.eve.EvEConfig`), the ``soc`` backend's options, the
#: DSE axes and :class:`repro.platforms.PlatformSpec` validation.
NOC_KINDS = ("p2p", "multicast")

#: Accepted spellings -> canonical kind.  The table is the single place
#: spellings are recognised; anything else is rejected with the full
#: list rather than fuzzily matched.
_NOC_SPELLINGS = {
    "p2p": "p2p",
    "pointtopoint": "p2p",
    "bus": "p2p",
    "multicast": "multicast",
    "multicasttree": "multicast",
    "tree": "multicast",
}


def canonical_noc_kind(kind: str) -> str:
    """Normalise a NoC-kind spelling to ``"p2p"`` or ``"multicast"``.

    Case, ``-``/``_``/space separators and the long-form names
    (``point-to-point``, ``multicast-tree``, ``bus``, ``tree``) are
    accepted; any other spelling raises :class:`ValueError` naming the
    canonical kinds.  Every layer that takes a NoC kind — ``make_noc``,
    the ``soc`` backend, sweep axes, platform specs — validates through
    this one function.
    """
    if not isinstance(kind, str):
        raise ValueError(
            f"NoC kind must be a string, got {kind!r}; "
            f"canonical kinds: {list(NOC_KINDS)}"
        )
    key = kind.lower().replace("-", "").replace("_", "").replace(" ", "")
    try:
        return _NOC_SPELLINGS[key]
    except KeyError:
        raise ValueError(
            f"unknown NoC kind {kind!r}; canonical kinds: {list(NOC_KINDS)} "
            f"(accepted spellings: {sorted(_NOC_SPELLINGS)})"
        ) from None


def make_noc(kind: str) -> BaseNoC:
    """Factory keyed by :func:`canonical_noc_kind` (``p2p``/``multicast``)."""
    canonical = canonical_noc_kind(kind)
    if canonical == "p2p":
        return PointToPointNoC()
    return MulticastTreeNoC()
