"""Alternative dataflow: spreading one genome across multiple PEs.

Footnote 2 of the paper: "It is possible to spread the genome across
multiple PEs as well but might lead to different genes of a genome
arriving out-of-order at the Gene Merge block complicating its
implementation."  The shipped design assigns one PE per child; this
module models the alternative analytically so the trade-off can be
quantified (an ablation the paper alludes to but does not plot).

Model: the child's aligned parent stream of ``L`` gene pairs is cut into
``k`` contiguous segments processed on ``k`` PEs concurrently.

* segment time: ``ceil(L / k)`` cycles (+ the same 2-cycle config and
  4-stage drain per PE),
* Gene Merge must re-establish global order across segments: a reorder
  buffer charges ``reorder_cost_per_gene`` extra cycles per gene for
  ``k > 1``,
* a generation fits ``num_pes // k`` children at a time, so waves grow
  as ``k`` grows — per-child *latency* falls, generation *throughput*
  can fall too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .pe import CONFIG_LOAD_CYCLES, PIPELINE_DEPTH

#: Extra merge cycles per gene once segments arrive out of order.
DEFAULT_REORDER_COST_PER_GENE = 0.25


@dataclass
class SplitDataflowEstimate:
    pes_per_child: int
    child_latency_cycles: int
    merge_overhead_cycles: int
    generation_cycles: int
    waves: int
    pe_slots_wasted: int

    @property
    def total_child_cycles(self) -> int:
        return self.child_latency_cycles + self.merge_overhead_cycles


def child_latency(
    stream_length: int,
    pes_per_child: int,
    reorder_cost_per_gene: float = DEFAULT_REORDER_COST_PER_GENE,
) -> SplitDataflowEstimate:
    """Latency of producing one child with ``pes_per_child`` PEs."""
    if pes_per_child < 1:
        raise ValueError("pes_per_child must be >= 1")
    segment = math.ceil(stream_length / pes_per_child)
    latency = CONFIG_LOAD_CYCLES + segment + PIPELINE_DEPTH
    merge = (
        math.ceil(stream_length * reorder_cost_per_gene)
        if pes_per_child > 1
        else 0
    )
    return SplitDataflowEstimate(
        pes_per_child=pes_per_child,
        child_latency_cycles=latency,
        merge_overhead_cycles=merge,
        generation_cycles=latency + merge,
        waves=1,
        pe_slots_wasted=0,
    )


def generation_estimate(
    stream_lengths: Sequence[int],
    num_pes: int,
    pes_per_child: int,
    reorder_cost_per_gene: float = DEFAULT_REORDER_COST_PER_GENE,
) -> SplitDataflowEstimate:
    """Makespan of a whole generation under the split dataflow.

    Children are packed ``num_pes // pes_per_child`` at a time (longest
    first); each wave's time is its slowest child's latency + merge.
    """
    if pes_per_child < 1 or num_pes < 1:
        raise ValueError("num_pes and pes_per_child must be >= 1")
    if pes_per_child > num_pes:
        raise ValueError("pes_per_child cannot exceed num_pes")
    slots = num_pes // pes_per_child
    ordered = sorted(stream_lengths, reverse=True)
    waves = [ordered[i : i + slots] for i in range(0, len(ordered), slots)]
    total = 0
    latency_max = 0
    merge_total = 0
    for wave in waves:
        worst = child_latency(wave[0], pes_per_child, reorder_cost_per_gene)
        total += worst.generation_cycles
        latency_max = max(latency_max, worst.child_latency_cycles)
        merge_total += worst.merge_overhead_cycles
    wasted = 0
    if waves:
        wasted = slots * len(waves) - len(ordered)
    return SplitDataflowEstimate(
        pes_per_child=pes_per_child,
        child_latency_cycles=latency_max,
        merge_overhead_cycles=merge_total,
        generation_cycles=total,
        waves=len(waves),
        pe_slots_wasted=wasted * pes_per_child,
    )


def sweep_pes_per_child(
    stream_lengths: Sequence[int],
    num_pes: int,
    k_values: Sequence[int] = (1, 2, 4, 8),
    reorder_cost_per_gene: float = DEFAULT_REORDER_COST_PER_GENE,
):
    """The footnote-2 trade-off sweep: one row per pes_per_child."""
    return [
        generation_estimate(stream_lengths, num_pes, k, reorder_cost_per_gene)
        for k in k_values
        if k <= num_pes
    ]
