"""Area, power and energy model of the GeneSys SoC (Section V, Fig. 8).

The paper implements GeneSys in Nangate 15 nm FreePDK and reports
post-synthesis numbers; those published points calibrate the analytical
model here:

* EvE PE:   59 um x 59 um  -> 0.003481 mm^2/PE; 256 PEs = 0.891 mm^2
  (paper: "EvE Area 0.89 mm^2")
* ADAM MAC: 15 um x 15 um  -> 0.000225 mm^2/MAC; 1024 MACs = 0.230 mm^2
  (paper: "ADAM Area 0.25 mm^2" including array control)
* Total SoC at the chosen design point: 2.45 mm^2, 947.5 mW roofline,
  200 MHz, 1.0 V, 1.5 MB SRAM in 48 banks.

Component power constants are back-derived so the roofline at 256 EvE PEs
reproduces the paper's 947.5 mW ("roofline because the numbers here are
calculated on the assumption that GENESYS is always computing").
Per-op energies follow from power / throughput at 200 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: The paper's implementation parameters (Fig. 8a table).
TECH_NODE_NM = 15
FREQUENCY_HZ = 200e6
VOLTAGE_V = 1.0
DEFAULT_NUM_EVE_PES = 256
DEFAULT_NUM_ADAM_MACS = 1024
DEFAULT_SRAM_BANKS = 48
DEFAULT_SRAM_DEPTH = 4096
PAPER_TOTAL_AREA_MM2 = 2.45
PAPER_TOTAL_POWER_MW = 947.5

# -- area constants (mm^2) ------------------------------------------------
EVE_PE_AREA_MM2 = 0.059 * 0.059          # 59 um x 59 um (Fig. 8a)
ADAM_MAC_AREA_MM2 = 0.015 * 0.015        # 15 um x 15 um (Fig. 8a)
ADAM_CONTROL_AREA_MM2 = 0.02             # array control/IO -> 0.25 mm^2 total
SRAM_AREA_MM2 = 1.26                     # 1.5 MB, 48 banks @ 15 nm
M0_AREA_MM2 = 0.01                       # ARM Cortex M0
NOC_AREA_MM2 = 0.049                     # distribution + collection buses
# check: 0.891 + 0.250 + 1.26 + 0.01 + 0.049 = 2.46 ~ paper's 2.45 mm^2

# -- power constants (mW, roofline @ 200 MHz) ------------------------------------
EVE_PE_POWER_MW = 2.197                  # => 256 PEs = 562.4 mW
ADAM_POWER_MW = 230.0                    # 1024 MACs + control
SRAM_POWER_MW = 150.0                    # 1.5 MB active banks
M0_POWER_MW = 5.0
# check: 562.4 + 230 + 150 + 5 = 947.4 mW ~ paper's 947.5 mW @ 256 PEs

# -- per-op energies (pJ), derived at 200 MHz ---------------------------------
EVE_OP_ENERGY_PJ = EVE_PE_POWER_MW / (FREQUENCY_HZ / 1e9)  # ~11 pJ / PE-cycle
ADAM_MAC_ENERGY_PJ = ADAM_POWER_MW / DEFAULT_NUM_ADAM_MACS / (FREQUENCY_HZ / 1e9)
SRAM_ACCESS_ENERGY_PJ = 25.0             # one 64-bit word read/write
DRAM_ACCESS_ENERGY_PJ = 2560.0           # ~100x SRAM, per 64-bit word
NOC_HOP_ENERGY_PJ = 1.5                  # per gene word per link traversal
M0_CYCLE_ENERGY_PJ = M0_POWER_MW / (FREQUENCY_HZ / 1e9)


@dataclass
class AreaBreakdown:
    eve_mm2: float
    adam_mm2: float
    sram_mm2: float
    m0_mm2: float
    noc_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.eve_mm2 + self.adam_mm2 + self.sram_mm2 + self.m0_mm2 + self.noc_mm2

    def as_dict(self) -> Dict[str, float]:
        return {
            "EvE": self.eve_mm2,
            "ADAM": self.adam_mm2,
            "SRAM": self.sram_mm2,
            "M0": self.m0_mm2,
            "NoC": self.noc_mm2,
            "total": self.total_mm2,
        }


@dataclass
class PowerBreakdown:
    eve_mw: float
    adam_mw: float
    sram_mw: float
    m0_mw: float

    @property
    def total_mw(self) -> float:
        return self.eve_mw + self.adam_mw + self.sram_mw + self.m0_mw

    def as_dict(self) -> Dict[str, float]:
        return {
            "EvE": self.eve_mw,
            "ADAM": self.adam_mw,
            "SRAM": self.sram_mw,
            "M0": self.m0_mw,
            "total": self.total_mw,
        }


def area_breakdown(
    num_eve_pes: int = DEFAULT_NUM_EVE_PES,
    num_adam_macs: int = DEFAULT_NUM_ADAM_MACS,
) -> AreaBreakdown:
    """Fig. 8(c): SoC area as a function of EvE PE count."""
    return AreaBreakdown(
        eve_mm2=num_eve_pes * EVE_PE_AREA_MM2,
        adam_mm2=num_adam_macs * ADAM_MAC_AREA_MM2 + ADAM_CONTROL_AREA_MM2,
        sram_mm2=SRAM_AREA_MM2,
        m0_mm2=M0_AREA_MM2,
        noc_mm2=NOC_AREA_MM2,
    )


def roofline_power(
    num_eve_pes: int = DEFAULT_NUM_EVE_PES,
    num_adam_macs: int = DEFAULT_NUM_ADAM_MACS,
) -> PowerBreakdown:
    """Fig. 8(b): always-computing power as a function of EvE PE count."""
    return PowerBreakdown(
        eve_mw=num_eve_pes * EVE_PE_POWER_MW,
        adam_mw=ADAM_POWER_MW * num_adam_macs / DEFAULT_NUM_ADAM_MACS,
        sram_mw=SRAM_POWER_MW,
        m0_mw=M0_POWER_MW,
    )


def pe_sweep(pe_counts: List[int] = None) -> List[Dict[str, float]]:
    """The Fig. 8(b)/(c) sweep rows: 2..512 EvE PEs."""
    pe_counts = pe_counts or [2, 4, 8, 16, 32, 64, 128, 256, 512]
    rows = []
    for n in pe_counts:
        power = roofline_power(n)
        area = area_breakdown(n)
        rows.append(
            {
                "num_eve_pe": n,
                "power_mw": power.total_mw,
                "eve_power_mw": power.eve_mw,
                "area_mm2": area.total_mm2,
                "eve_area_mm2": area.eve_mm2,
            }
        )
    return rows


@dataclass
class EnergyLedger:
    """Accumulates op counts and converts them to energy (Joules)."""

    eve_pe_cycles: int = 0
    adam_macs: int = 0
    sram_reads: int = 0
    sram_writes: int = 0
    dram_accesses: int = 0
    noc_gene_hops: int = 0
    m0_cycles: int = 0

    def merge(self, other: "EnergyLedger") -> None:
        self.eve_pe_cycles += other.eve_pe_cycles
        self.adam_macs += other.adam_macs
        self.sram_reads += other.sram_reads
        self.sram_writes += other.sram_writes
        self.dram_accesses += other.dram_accesses
        self.noc_gene_hops += other.noc_gene_hops
        self.m0_cycles += other.m0_cycles

    @property
    def eve_energy_j(self) -> float:
        return self.eve_pe_cycles * EVE_OP_ENERGY_PJ * 1e-12

    @property
    def adam_energy_j(self) -> float:
        return self.adam_macs * ADAM_MAC_ENERGY_PJ * 1e-12

    @property
    def sram_energy_j(self) -> float:
        return (self.sram_reads + self.sram_writes) * SRAM_ACCESS_ENERGY_PJ * 1e-12

    @property
    def dram_energy_j(self) -> float:
        return self.dram_accesses * DRAM_ACCESS_ENERGY_PJ * 1e-12

    @property
    def noc_energy_j(self) -> float:
        return self.noc_gene_hops * NOC_HOP_ENERGY_PJ * 1e-12

    @property
    def m0_energy_j(self) -> float:
        return self.m0_cycles * M0_CYCLE_ENERGY_PJ * 1e-12

    @property
    def total_energy_j(self) -> float:
        return (
            self.eve_energy_j
            + self.adam_energy_j
            + self.sram_energy_j
            + self.dram_energy_j
            + self.noc_energy_j
            + self.m0_energy_j
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "EvE": self.eve_energy_j,
            "ADAM": self.adam_energy_j,
            "SRAM": self.sram_energy_j,
            "DRAM": self.dram_energy_j,
            "NoC": self.noc_energy_j,
            "M0": self.m0_energy_j,
            "total": self.total_energy_j,
        }


def cycles_to_seconds(cycles: int, frequency_hz: float = FREQUENCY_HZ) -> float:
    return cycles / frequency_hz


# ---------------------------------------------------------------------------
# Clock / power gating (Section VI-D)
# ---------------------------------------------------------------------------

#: Fraction of a clock-gated component's active power still burned while
#: gated (clock tree off, state retained).  Power gating drops further to
#: the leakage floor.
CLOCK_GATED_POWER_FRACTION = 0.30
POWER_GATED_POWER_FRACTION = 0.05


@dataclass
class GatedPowerEstimate:
    """Average power once environment interaction gates the compute.

    "For real life workloads, the interactions will be much slower.  This
    enables us to use circuit level techniques like clock and power gating
    to save even more power.  The lower the compute window for GENESYS the
    more time is used to interact with the environment thus saving more
    energy" (Section VI-D).
    """

    compute_seconds: float
    interaction_seconds: float
    roofline_mw: float
    gated_fraction: float

    @property
    def duty_cycle(self) -> float:
        total = self.compute_seconds + self.interaction_seconds
        return self.compute_seconds / total if total > 0 else 1.0

    @property
    def average_power_mw(self) -> float:
        idle = self.roofline_mw * self.gated_fraction
        return self.duty_cycle * self.roofline_mw + (1 - self.duty_cycle) * idle

    @property
    def energy_per_generation_j(self) -> float:
        total = self.compute_seconds + self.interaction_seconds
        return self.average_power_mw * 1e-3 * total


def gated_power(
    compute_seconds: float,
    interaction_seconds: float,
    num_eve_pes: int = DEFAULT_NUM_EVE_PES,
    mode: str = "clock",
) -> GatedPowerEstimate:
    """Average SoC power with clock ("clock") or power ("power") gating."""
    fractions = {
        "clock": CLOCK_GATED_POWER_FRACTION,
        "power": POWER_GATED_POWER_FRACTION,
        "none": 1.0,
    }
    if mode not in fractions:
        raise ValueError(f"unknown gating mode {mode!r}; use {sorted(fractions)}")
    return GatedPowerEstimate(
        compute_seconds=compute_seconds,
        interaction_seconds=interaction_seconds,
        roofline_mw=roofline_power(num_eve_pes).total_mw,
        gated_fraction=fractions[mode],
    )
