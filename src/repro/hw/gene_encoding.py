"""64-bit hardware gene encoding (Fig. 6).

"We use 64 bits to capture both types of genes."  Node genes carry the
four attributes {Bias, Response, Activation, Aggregation}; connection
genes carry source/destination node ids, weight and enable.

Concrete bit layout chosen for this reproduction (LSB first):

====================  =============================  ==========================
field                 node gene                      connection gene
====================  =============================  ==========================
bits 0-1              gene type = 0b00               gene type = 0b01
bits 2-17             node id (offset-32768)         source id (offset-32768)
bits 18-33            node type (2b) in 18-19        destination id (offset-32768)
bits 34-41            bias (Q4.4 two's complement)   weight (Q4.4 two's complement)
bits 42-49            response (Q4.4)                bit 42: enabled
bits 50-53            activation code                reserved
bits 54-57            aggregation code               reserved
bits 58-63            reserved                       reserved
====================  =============================  ==========================

Node types follow Fig. 6: ``00`` hidden, ``01`` input, ``10`` output.
Scalar attributes are quantised to signed Q4.4 fixed point (range
[-8, +7.9375], step 1/16) — this is the "Limit & Quantize" block of the
perturbation engine (Fig. 7).  Node ids are stored offset by 32768 so the
negative input-node ids of the software representation round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..neat.activations import ACTIVATION_CODES, ACTIVATION_NAMES
from ..neat.aggregations import AGGREGATION_CODES, AGGREGATION_NAMES
from ..neat.config import GenomeConfig
from ..neat.genes import ConnectionGene, NodeGene
from ..neat.genome import Genome

GENE_WORD_BITS = 64
GENE_WORD_BYTES = 8

GENE_TYPE_NODE = 0b00
GENE_TYPE_CONNECTION = 0b01

NODE_TYPE_HIDDEN = 0b00
NODE_TYPE_INPUT = 0b01
NODE_TYPE_OUTPUT = 0b10

_ID_OFFSET = 1 << 15  # node ids stored as value + 32768 in a 16-bit field
_ID_MASK = 0xFFFF

# Q4.4 fixed point: 1 sign + 3 integer + 4 fraction bits.
FIXED_POINT_SCALE = 16
FIXED_MIN = -128  # raw
FIXED_MAX = 127  # raw
FIXED_MIN_VALUE = FIXED_MIN / FIXED_POINT_SCALE  # -8.0
FIXED_MAX_VALUE = FIXED_MAX / FIXED_POINT_SCALE  # +7.9375


class GeneEncodingError(ValueError):
    """Raised when a gene cannot be represented in the 64-bit word."""


def quantize(value: float) -> int:
    """Limit & Quantize: clamp to Q4.4 range, round to the nearest step."""
    raw = int(round(value * FIXED_POINT_SCALE))
    return max(FIXED_MIN, min(FIXED_MAX, raw))


def dequantize(raw: int) -> float:
    return raw / FIXED_POINT_SCALE


def _encode_fixed(value: float) -> int:
    return quantize(value) & 0xFF


def _decode_fixed(bits: int) -> float:
    raw = bits & 0xFF
    if raw >= 128:
        raw -= 256
    return dequantize(raw)


def _encode_id(node_id: int) -> int:
    shifted = node_id + _ID_OFFSET
    if not 0 <= shifted <= _ID_MASK:
        raise GeneEncodingError(f"node id {node_id} outside the 16-bit field")
    return shifted


def _decode_id(bits: int) -> int:
    return (bits & _ID_MASK) - _ID_OFFSET


@dataclass(frozen=True)
class PackedGene:
    """A 64-bit gene word plus convenience accessors."""

    word: int

    def __post_init__(self) -> None:
        if not 0 <= self.word < (1 << GENE_WORD_BITS):
            raise GeneEncodingError("gene word outside 64 bits")

    @property
    def gene_type(self) -> int:
        return self.word & 0b11

    @property
    def is_node(self) -> bool:
        return self.gene_type == GENE_TYPE_NODE

    @property
    def is_connection(self) -> bool:
        return self.gene_type == GENE_TYPE_CONNECTION

    # -- node fields --------------------------------------------------------

    @property
    def node_id(self) -> int:
        return _decode_id(self.word >> 2)

    @property
    def node_type(self) -> int:
        return (self.word >> 18) & 0b11

    @property
    def bias(self) -> float:
        return _decode_fixed(self.word >> 34)

    @property
    def response(self) -> float:
        return _decode_fixed(self.word >> 42)

    @property
    def activation(self) -> str:
        return ACTIVATION_NAMES[(self.word >> 50) & 0xF]

    @property
    def aggregation(self) -> str:
        return AGGREGATION_NAMES[(self.word >> 54) & 0xF]

    # -- connection fields ----------------------------------------------------

    @property
    def source(self) -> int:
        return _decode_id(self.word >> 2)

    @property
    def dest(self) -> int:
        return _decode_id(self.word >> 18)

    @property
    def weight(self) -> float:
        return _decode_fixed(self.word >> 34)

    @property
    def enabled(self) -> bool:
        return bool((self.word >> 42) & 0b1)

    @property
    def key(self):
        """Gene alignment key used by the Gene Split block."""
        if self.is_node:
            return ("node", self.node_id)
        return ("conn", self.source, self.dest)

    def __repr__(self) -> str:
        if self.is_node:
            return (
                f"PackedGene(node id={self.node_id} type={self.node_type} "
                f"bias={self.bias:+.4f} response={self.response:+.4f})"
            )
        return (
            f"PackedGene(conn {self.source}->{self.dest} "
            f"weight={self.weight:+.4f} enabled={self.enabled})"
        )


def pack_node(
    node_id: int,
    node_type: int,
    bias: float,
    response: float,
    activation: str,
    aggregation: str,
) -> PackedGene:
    if activation not in ACTIVATION_CODES:
        raise GeneEncodingError(f"activation {activation!r} has no hardware code")
    if aggregation not in AGGREGATION_CODES:
        raise GeneEncodingError(f"aggregation {aggregation!r} has no hardware code")
    if node_type not in (NODE_TYPE_HIDDEN, NODE_TYPE_INPUT, NODE_TYPE_OUTPUT):
        raise GeneEncodingError(f"invalid node type {node_type}")
    word = GENE_TYPE_NODE
    word |= _encode_id(node_id) << 2
    word |= node_type << 18
    word |= _encode_fixed(bias) << 34
    word |= _encode_fixed(response) << 42
    word |= ACTIVATION_CODES[activation] << 50
    word |= AGGREGATION_CODES[aggregation] << 54
    return PackedGene(word)


def pack_connection(source: int, dest: int, weight: float, enabled: bool) -> PackedGene:
    word = GENE_TYPE_CONNECTION
    word |= _encode_id(source) << 2
    word |= _encode_id(dest) << 18
    word |= _encode_fixed(weight) << 34
    word |= (1 if enabled else 0) << 42
    return PackedGene(word)


def pack_node_gene(gene: NodeGene, config: GenomeConfig) -> PackedGene:
    node_type = NODE_TYPE_OUTPUT if gene.key in config.output_keys else NODE_TYPE_HIDDEN
    return pack_node(
        gene.key, node_type, gene.bias, gene.response, gene.activation, gene.aggregation
    )


def pack_connection_gene(gene: ConnectionGene) -> PackedGene:
    return pack_connection(gene.source, gene.dest, gene.weight, gene.enabled)


def encode_genome(genome: Genome, config: GenomeConfig) -> List[PackedGene]:
    """Genome -> hardware gene stream (Section IV-C5 genome organisation).

    Two logical clusters — node genes then connection genes — each sorted
    ascending by id, exactly the order the Gene Split block streams.
    """
    stream: List[PackedGene] = []
    for key in sorted(genome.nodes):
        stream.append(pack_node_gene(genome.nodes[key], config))
    for key in sorted(genome.connections):
        stream.append(pack_connection_gene(genome.connections[key]))
    return stream


def decode_genome(
    stream: Iterable[PackedGene], key: int, config: GenomeConfig
) -> Genome:
    """Hardware gene stream -> software genome (inverse of encode_genome)."""
    genome = Genome(key)
    for gene in stream:
        if gene.is_node:
            genome.nodes[gene.node_id] = NodeGene(
                gene.node_id,
                bias=gene.bias,
                response=gene.response,
                activation=gene.activation,
                aggregation=gene.aggregation,
            )
        elif gene.is_connection:
            conn_key = (gene.source, gene.dest)
            genome.connections[conn_key] = ConnectionGene(
                conn_key, weight=gene.weight, enabled=gene.enabled
            )
        else:
            raise GeneEncodingError(f"unknown gene type {gene.gene_type}")
    return genome


def quantize_genome(genome: Genome, config: GenomeConfig) -> Genome:
    """Round-trip a genome through the 64-bit encoding (Q4.4 attributes).

    Useful for testing how much the hardware quantisation perturbs the
    phenotype relative to the float software genome.
    """
    return decode_genome(encode_genome(genome, config), genome.key, config)


def genome_stream_bytes(genome: Genome) -> int:
    """On-chip bytes for one genome (the Fig. 5(b) footprint unit)."""
    return genome.num_genes * GENE_WORD_BYTES
