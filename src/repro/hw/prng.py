"""XOR-WOW pseudo-random number generator.

"The PRNG feeds a 8-bit random numbers every cycle to all the PEs ... We
use the XOR-WOW algorithm, also used within NVIDIA GPUs" (Section IV-C4).

This is Marsaglia's xorwow (Journal of Statistical Software 2003), the
exact generator cuRAND's ``XORWOW`` implements: a 5-word xorshift core
with a Weyl-sequence counter added on output.  The hardware delivers one
8-bit value per cycle; :meth:`next_byte` models that port, and the other
helpers derive the comparison/perturbation values the PE stages consume.
"""

from __future__ import annotations

from typing import Iterator, List

_MASK32 = 0xFFFFFFFF


class XorWow:
    """32-bit xorwow; deterministic for a given 5-word seed state."""

    def __init__(self, seed: int = 0xDEADBEEF) -> None:
        self.seed(seed)

    def seed(self, seed: int) -> None:
        """Initialise the 5-word state via a splitmix-style expansion."""
        state: List[int] = []
        z = seed & 0xFFFFFFFFFFFFFFFF
        for _ in range(5):
            z = (z + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
            mixed = z
            mixed = ((mixed ^ (mixed >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
            mixed = ((mixed ^ (mixed >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
            word = (mixed ^ (mixed >> 31)) & _MASK32
            state.append(word if word else 1)  # avoid an all-zero xorshift state
        self._x, self._y, self._z, self._w, self._v = state
        self._d = 362437  # Weyl counter increment start (Marsaglia's choice)

    def next_u32(self) -> int:
        """One xorwow step: period 2^192 - 2^32."""
        t = self._x ^ ((self._x >> 2) & _MASK32)
        self._x, self._y, self._z, self._w = self._y, self._z, self._w, self._v
        v = self._v
        v = (v ^ ((v << 4) & _MASK32)) ^ (t ^ ((t << 1) & _MASK32))
        self._v = v & _MASK32
        self._d = (self._d + 362437) & _MASK32
        return (self._v + self._d) & _MASK32

    def next_byte(self) -> int:
        """The 8-bit per-cycle output port feeding the PEs."""
        return self.next_u32() & 0xFF

    def next_unit(self) -> float:
        """Uniform in [0, 1) from the 8-bit port (probability compares)."""
        return self.next_byte() / 256.0

    def next_signed_byte(self) -> int:
        """Two's-complement interpretation of the 8-bit port, [-128, 127]."""
        byte = self.next_byte()
        return byte - 256 if byte >= 128 else byte

    def bytes(self, count: int) -> List[int]:
        return [self.next_byte() for _ in range(count)]

    def stream(self) -> Iterator[int]:
        while True:
            yield self.next_byte()

    @property
    def state(self) -> tuple:
        return (self._x, self._y, self._z, self._w, self._v, self._d)
