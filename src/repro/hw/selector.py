"""Gene Selector: the software selection thread (Section IV-C4).

"The selection logic in our design works in three steps.  First, the
fitness values of the individuals in the present generation are read and
adjusted to implement fitness sharing.  Next, the threshold is calculated
using the adjusted fitness values.  Finally the parents for the next
generation are chosen and the list of parents for the children is
forwarded to the gene splitting logic.  This is handled by a software
thread on the CPU."

The selector reuses the NEAT speciation/stagnation/selection machinery so
hardware and software runs select identically; what differs downstream is
*who executes* the reproduction ops (EvE PEs vs Python genome methods).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..neat.config import NEATConfig
from ..neat.genome import Genome
from ..neat.innovation import InnovationTracker
from ..neat.reproduction import Reproduction, ReproductionPlan
from ..neat.species import SpeciesSet
from .sram import GenomeBuffer


@dataclass
class SelectionOutcome:
    plan: Optional[ReproductionPlan]
    num_species: int
    cpu_cycles: int


class GeneSelector:
    """CPU-side selection: fitness sharing -> threshold -> parent list."""

    #: modelled M0 cycles per fitness-sharing adjustment / comparison
    CYCLES_PER_GENOME = 40

    def __init__(self, config: NEATConfig, seed: int = 0) -> None:
        self.config = config
        self.rng = random.Random(seed)
        self.innovations = InnovationTracker(next_node_id=config.genome.num_outputs)
        self.reproduction = Reproduction(config, self.innovations)
        self.species_set = SpeciesSet(config)

    def select(
        self,
        population: Dict[int, Genome],
        buffer: GenomeBuffer,
        generation: int,
    ) -> SelectionOutcome:
        """Step 7 of the walkthrough, producing the parent/child list.

        ``population`` is the decoded view of the genomes resident in the
        buffer (the CPU keeps this bookkeeping); fitness values are read
        from the buffer where step 6 augmented them.
        """
        for key, genome in population.items():
            genome.fitness = buffer.get_fitness(key)
        self.species_set.speciate(population, generation)
        self.species_set.adjust_fitnesses(generation)
        self.innovations.new_generation()
        plan = self.reproduction.plan_generation(
            self.species_set, generation, self.rng
        )
        cpu_cycles = len(population) * self.CYCLES_PER_GENOME
        return SelectionOutcome(
            plan=plan, num_species=len(self.species_set), cpu_cycles=cpu_cycles
        )
