"""EvE — the Evolution Engine (Section IV-C).

Ties together the building blocks around the PE array:

* **Gene Split** aligns the two parent gene streams key-by-key ("the keys
  (i.e., node id) for both the parent genes need to be the same ... the
  gene split block therefore sits between the PEs and the Genome Buffer to
  ensure that the alignment is maintained and proper gene pairs are sent
  to the PEs every cycle").
* **PE array** executes crossover + mutations (one PE per child genome).
* **Gene Merge** re-orders child genes into the canonical two-cluster
  sorted layout, validates structure (dangling/cyclic additions from the
  speculative Add Gene engine are dropped), and writes the child genome
  back to the Genome Buffer.
* **NoC** (point-to-point or multicast tree) accounts the SRAM reads of
  gene distribution — the Fig. 11(b) ablation.

Cycle accounting: children are scheduled onto PEs in waves (see
:mod:`.allocator`); a wave's makespan is the slowest PE's
config-load + stream + drain time, and generation evolution time is the
sum of wave makespans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..neat.reproduction import ReproductionEvent
from .allocator import make_scheduler
from .gene_encoding import PackedGene
from .noc import BaseNoC, NoCStats, make_noc
from .pe import CONFIG_LOAD_CYCLES, PIPELINE_DEPTH, PEConfig, PEStats, ProcessingElement
from .sram import GenomeBuffer

AlignedPair = Tuple[PackedGene, Optional[PackedGene]]


@dataclass
class EvEConfig:
    num_pes: int = 256
    noc: str = "multicast"
    scheduler: str = "greedy"
    pe: PEConfig = field(default_factory=PEConfig)
    seed: int = 0


@dataclass
class EvolutionResult:
    """Per-generation accounting of one EvE reproduction pass."""

    children: Dict[int, List[PackedGene]] = field(default_factory=dict)
    cycles: int = 0
    elite_copy_cycles: int = 0
    waves: int = 0
    sram_reads: int = 0
    sram_writes: int = 0
    noc_stats: NoCStats = field(default_factory=NoCStats)
    pe_stats: PEStats = field(default_factory=PEStats)
    dropped_invalid_additions: int = 0

    @property
    def total_ops(self) -> int:
        s = self.pe_stats
        return (
            s.crossovers
            + s.perturbations
            + s.node_additions
            + s.node_deletions
            + s.conn_additions
            + s.conn_deletions
        )


def align_parent_streams(
    stream1: Sequence[PackedGene], stream2: Sequence[PackedGene]
) -> List[AlignedPair]:
    """Gene Split alignment: merge-join the two sorted parent streams.

    Homologous genes pair up; disjoint/excess genes of the *fitter* parent
    (stream1) pass through alone; the less-fit parent's disjoint genes are
    skipped, which is both the NEAT inheritance rule and what lets one PE
    emit a child no longer than its fitter parent's stream.
    """
    index2: Dict[tuple, PackedGene] = {g.key: g for g in stream2}
    return [(gene, index2.get(gene.key)) for gene in stream1]


class GeneMerge:
    """Orders, validates and writes back child gene streams (step 10)."""

    def __init__(self) -> None:
        self.dropped_invalid = 0

    def merge(
        self,
        produced: Sequence[PackedGene],
        parent_conn_keys: set,
    ) -> List[PackedGene]:
        """Canonicalise one child's produced genes.

        * dedup by key (first occurrence wins),
        * drop connections whose endpoints are not in the genome
          (a dangler can slip through when the Add Gene engine pairs a
          stored source with a destination whose node a later stage
          deletes),
        * drop *newly added* connections that would create a cycle
          (the two-cycle add mechanism guarantees valid endpoints but not
          acyclicity; validation happens here at merge),
        * emit nodes sorted by id, then connections sorted by key.
        """
        nodes: Dict[int, PackedGene] = {}
        conns: Dict[Tuple[int, int], PackedGene] = {}
        order: List[Tuple[int, int]] = []
        for gene in produced:
            if gene.is_node:
                nodes.setdefault(gene.node_id, gene)
            else:
                key = (gene.source, gene.dest)
                if key not in conns:
                    conns[key] = gene
                    order.append(key)
                else:
                    self.dropped_invalid += 1

        node_ids = set(nodes)
        valid_conns: Dict[Tuple[int, int], PackedGene] = {}
        inherited: List[Tuple[int, int]] = []
        added: List[Tuple[int, int]] = []
        for key in order:
            src, dst = key
            if dst not in node_ids or (src >= 0 and src not in node_ids):
                self.dropped_invalid += 1
                continue
            (inherited if key in parent_conn_keys else added).append(key)

        for key in inherited:
            valid_conns[key] = conns[key]
        # Newly added connections are admitted one by one, rejecting any
        # that would close a cycle over the connections kept so far.
        for key in added:
            if _creates_cycle(valid_conns.keys(), key):
                self.dropped_invalid += 1
                continue
            valid_conns[key] = conns[key]

        stream = [nodes[i] for i in sorted(nodes)]
        stream.extend(valid_conns[k] for k in sorted(valid_conns))
        return stream


def _creates_cycle(existing_keys, candidate: Tuple[int, int]) -> bool:
    a, b = candidate
    if a == b:
        return True
    adjacency: Dict[int, List[int]] = {}
    for src, dst in existing_keys:
        adjacency.setdefault(src, []).append(dst)
    frontier = [b]
    seen = {b}
    while frontier:
        node = frontier.pop()
        if node == a:
            return True
        for nxt in adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


class EvolutionEngine:
    """The EvE accelerator: a PE array fed by Gene Split over a NoC."""

    def __init__(self, config: Optional[EvEConfig] = None) -> None:
        self.config = config or EvEConfig()
        self.pes = [
            ProcessingElement(pe_index=i, seed=self.config.seed)
            for i in range(self.config.num_pes)
        ]
        self.noc: BaseNoC = make_noc(self.config.noc)
        self._schedule = make_scheduler(self.config.scheduler)

    def reproduce_generation(
        self,
        buffer: GenomeBuffer,
        events: Sequence[ReproductionEvent],
        elite_pairs: Sequence[Tuple[int, int]] = (),
    ) -> EvolutionResult:
        """Steps 8-10: stream parents through PEs, merge children back.

        ``events`` carry (child, parent1, parent2) keys; parent genomes and
        fitnesses must be resident in ``buffer``.  Elite pairs (old, new)
        are DMA copies that bypass the PEs.
        """
        result = EvolutionResult()
        merge = GeneMerge()
        reads_before = buffer.stats.reads
        writes_before = buffer.stats.writes

        waves = self._schedule(events, self.config.num_pes)
        result.waves = len(waves)
        for wave in waves:
            result.cycles += self._run_wave(wave, buffer, merge, result)

        # Elite genomes are copied unchanged (no PE involvement): a DMA
        # read+write per gene word on the collection bus, overlapped with
        # the PE waves — only the excess beyond the wave time adds latency.
        for old_key, new_key in elite_pairs:
            stream = buffer.read_genome(old_key)
            buffer.write_genome(new_key, stream)
            result.children[new_key] = stream
            result.elite_copy_cycles += len(stream)
        result.cycles = max(result.cycles, result.elite_copy_cycles)

        result.sram_reads = buffer.stats.reads - reads_before
        result.sram_writes = buffer.stats.writes - writes_before
        result.noc_stats = self.noc.reset_stats()
        result.dropped_invalid_additions = merge.dropped_invalid
        return result

    # ------------------------------------------------------------------

    def _run_wave(
        self,
        wave: Sequence[ReproductionEvent],
        buffer: GenomeBuffer,
        merge: GeneMerge,
        result: EvolutionResult,
    ) -> int:
        """Execute one wave of up to num_pes children; returns makespan."""
        aligned_streams: List[List[AlignedPair]] = []
        parent_conn_keys: List[set] = []
        active: List[Tuple[ProcessingElement, ReproductionEvent]] = []
        for pe, event in zip(self.pes, wave):
            fitness1 = buffer.get_fitness(event.parent1_key)
            fitness2 = buffer.get_fitness(event.parent2_key)
            stream1 = buffer.peek_genome(event.parent1_key)
            stream2 = buffer.peek_genome(event.parent2_key)
            # The fitter parent drives the alignment (disjoint inheritance).
            if fitness2 > fitness1:
                stream1, stream2 = stream2, stream1
                event = ReproductionEvent(
                    child_key=event.child_key,
                    parent1_key=event.parent2_key,
                    parent2_key=event.parent1_key,
                    species_key=event.species_key,
                )
                fitness1, fitness2 = fitness2, fitness1
            aligned_streams.append(align_parent_streams(stream1, stream2))
            parent_conn_keys.append(
                {
                    (g.source, g.dest)
                    for g in stream1 + stream2
                    if g.is_connection
                }
            )
            pe.begin_child(self.config.pe, fitness1, fitness2)
            active.append((pe, event))

        # Cycle-by-cycle distribution: at cycle i every still-active PE
        # demands word i of each parent stream; the NoC turns demands into
        # SRAM reads (deduplicated when multicasting).
        max_len = max((len(s) for s in aligned_streams), default=0)
        produced: List[List[PackedGene]] = [[] for _ in active]
        for i in range(max_len):
            demands = []
            for slot, ((pe, event), stream) in enumerate(zip(active, aligned_streams)):
                if i >= len(stream):
                    continue
                gene1, gene2 = stream[i]
                demands.append((pe.pe_index, event.parent1_key, i))
                if gene2 is not None:
                    demands.append((pe.pe_index, event.parent2_key, i))
                produced[slot].extend(pe.process_pair(gene1, gene2))
            reads = self.noc.distribute_cycle(demands)
            buffer.stats.reads += reads

        makespan = 0
        for slot, (pe, event) in enumerate(active):
            child_cycles = pe.finish_child()
            makespan = max(makespan, child_cycles)
            stream = merge.merge(produced[slot], parent_conn_keys[slot])
            buffer.write_genome(event.child_key, stream)
            result.children[event.child_key] = stream
            result.pe_stats.merge(pe.stats)
            pe.stats = PEStats()
        if not active:
            return 0
        return makespan
