"""ADAM — Accelerator for Dense Addition & Multiplication (Section IV-D).

ADAM evaluates the irregular NNs evolved by EvE "by posing the individual
vector-vector multiplications into a packed matrix-vector multiplication
problem" on a systolic array of MAC units (32x32 in the paper's
implementation).  The serial task of "picking the ready node values to
create input vectors" — the *vectorize* routine — runs on the System CPU.

The model here is functional plus cycle-accounted:

* :func:`build_inference_plan` levelises the genome graph into waves of
  concurrently-updatable vertices and builds each wave's packed weight
  matrix (rows = vertices updated, columns = distinct source nodes).
* :class:`ADAM.run` executes the plan as NumPy matrix-vector products —
  functionally equivalent to :class:`repro.neat.FeedForwardNetwork` (an
  equivalence the test suite checks) — while charging systolic cycles,
  CPU vectorize cycles, MAC counts and array utilisation.

Weight matrices are built once per genome per generation and reused for
every environment step ("the weight matrices do not change within a given
generation, and are reused for multiple inferences, while every new vertex
evaluation requires a new input vector").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..neat.activations import ActivationFunctionSet
from ..neat.config import GenomeConfig
from ..neat.genome import Genome
from ..neat.network import feed_forward_layers

_ACTIVATIONS = ActivationFunctionSet()


class UnsupportedGenomeError(ValueError):
    """Raised for genomes ADAM cannot pack (non-sum aggregation)."""


@dataclass
class ADAMConfig:
    rows: int = 32
    cols: int = 32

    @property
    def num_macs(self) -> int:
        return self.rows * self.cols


@dataclass
class WavePlan:
    """One packed matrix-vector wave: update ``node_ids`` from ``source_ids``."""

    node_ids: List[int]
    source_ids: List[int]
    weights: np.ndarray  # (len(node_ids), len(source_ids))
    biases: np.ndarray
    responses: np.ndarray
    activations: List[str]

    @property
    def macs(self) -> int:
        return int(np.count_nonzero(self.weights))

    @property
    def dense_macs(self) -> int:
        return self.weights.size


@dataclass
class InferencePlan:
    """Per-genome execution plan (built once per generation)."""

    genome_key: int
    input_keys: List[int]
    output_keys: List[int]
    waves: List[WavePlan]

    @property
    def macs_per_pass(self) -> int:
        return sum(w.macs for w in self.waves)

    @property
    def weight_words(self) -> int:
        """64-bit words of packed weights resident for this plan."""
        return sum(w.dense_macs for w in self.waves)


@dataclass
class InferenceStats:
    """Cycle/op accounting accumulated across forward passes."""

    passes: int = 0
    macs: int = 0
    dense_macs: int = 0
    array_cycles: int = 0
    vectorize_cycles: int = 0
    waves: int = 0

    @property
    def total_cycles(self) -> int:
        """Array + CPU vectorize serial time (they alternate per wave)."""
        return self.array_cycles + self.vectorize_cycles

    @property
    def utilization(self) -> float:
        """Fraction of MAC-slots doing useful (nonzero) work."""
        if self.dense_macs == 0:
            return 0.0
        return self.macs / self.dense_macs

    def merge(self, other: "InferenceStats") -> None:
        self.passes += other.passes
        self.macs += other.macs
        self.dense_macs += other.dense_macs
        self.array_cycles += other.array_cycles
        self.vectorize_cycles += other.vectorize_cycles
        self.waves += other.waves


def build_inference_plan(genome: Genome, config: GenomeConfig) -> InferencePlan:
    """Levelise the genome and pack each level's vertex updates.

    Mirrors the vectorize routine: every wave's rows are the vertices
    whose inputs are all ready; columns are the distinct upstream sources
    actually used, so the matrices are compact (the GPU_a strategy the
    paper describes, done per wave).
    """
    enabled = [key for key, conn in genome.connections.items() if conn.enabled]
    layers = feed_forward_layers(config.input_keys, config.output_keys, enabled)
    incoming: Dict[int, List[Tuple[int, float]]] = {}
    for (src, dst), conn in genome.connections.items():
        if conn.enabled:
            incoming.setdefault(dst, []).append((src, conn.weight))

    waves: List[WavePlan] = []
    for layer in layers:
        node_ids = list(layer)
        sources = sorted({src for node in node_ids for src, _ in incoming.get(node, [])})
        source_index = {src: i for i, src in enumerate(sources)}
        weights = np.zeros((len(node_ids), max(1, len(sources))), dtype=np.float64)
        biases = np.zeros(len(node_ids), dtype=np.float64)
        responses = np.ones(len(node_ids), dtype=np.float64)
        activations: List[str] = []
        for row, node_id in enumerate(node_ids):
            node = genome.nodes[node_id]
            if node.aggregation != "sum":
                raise UnsupportedGenomeError(
                    f"node {node_id} uses aggregation {node.aggregation!r}; "
                    "ADAM packs sum-aggregation genomes only"
                )
            biases[row] = node.bias
            responses[row] = node.response
            activations.append(node.activation)
            for src, weight in incoming.get(node_id, []):
                weights[row, source_index[src]] = weight
        waves.append(
            WavePlan(
                node_ids=node_ids,
                source_ids=sources,
                weights=weights,
                biases=biases,
                responses=responses,
                activations=activations,
            )
        )
    return InferencePlan(
        genome_key=genome.key,
        input_keys=list(config.input_keys),
        output_keys=list(config.output_keys),
        waves=waves,
    )


class StackedAdamEnvelope:
    """A population's inference plans stacked into one cost envelope.

    The serial :meth:`ADAM.run` charges cycles wave by wave, once per
    forward pass per genome — a Python loop over every (genome, step,
    wave) triple.  Because the plans do not change within a generation,
    every per-pass cost is static: this envelope stacks the population's
    wave shapes into ``(genomes, depth)`` integer arrays and evaluates
    the same systolic-tiling formula with numpy array ops, so a whole
    generation is costed in a handful of vectorised expressions.

    The arithmetic is integer end to end, therefore *exactly* equal to
    the serial accounting: ``charge(stats, passes)`` merges the same
    totals :meth:`ADAM.run` would have accumulated had it executed
    ``passes[g]`` forward passes of genome ``g``.
    """

    def __init__(
        self, plans: Sequence[InferencePlan], config: Optional[ADAMConfig] = None
    ) -> None:
        self.config = config or ADAMConfig()
        self.plans = list(plans)
        num = len(self.plans)
        depth = max((len(p.waves) for p in self.plans), default=0)
        shape = (num, max(1, depth))
        m = np.zeros(shape, dtype=np.int64)  # vertices updated per wave
        k = np.zeros(shape, dtype=np.int64)  # distinct sources per wave
        macs = np.zeros(shape, dtype=np.int64)
        dense = np.zeros(shape, dtype=np.int64)
        for g, plan in enumerate(self.plans):
            for l, wave in enumerate(plan.waves):
                m[g, l] = len(wave.node_ids)
                k[g, l] = len(wave.source_ids)
                macs[g, l] = wave.macs
                dense[g, l] = wave.dense_macs
        rows, cols = self.config.rows, self.config.cols
        # Output-stationary tiling, identical to ADAM.systolic_cycles;
        # padded slots have m == k == 0 and so tile to zero cycles.
        row_tiles = -(-m // rows)
        col_tiles = -(-k // cols)
        wave_cycles = row_tiles * col_tiles * (np.minimum(cols, k) + rows)
        #: Per genome: systolic array cycles for one forward pass.
        self.array_cycles_per_pass = wave_cycles.sum(axis=1)
        #: Per genome: CPU vectorize cycles (one per packed element).
        self.vectorize_cycles_per_pass = k.sum(axis=1)
        self.macs_per_pass = macs.sum(axis=1)
        self.dense_macs_per_pass = dense.sum(axis=1)
        self.waves_per_pass = np.array(
            [len(p.waves) for p in self.plans], dtype=np.int64
        )

    def __len__(self) -> int:
        return len(self.plans)

    def charge(self, stats: InferenceStats, passes: Sequence[int]) -> None:
        """Merge the cost of ``passes[g]`` forward passes per genome.

        Bit-identical to running :meth:`ADAM.run` that many times per
        plan: every counter is a per-pass integer scaled by an integer
        pass count.
        """
        p = np.asarray(passes, dtype=np.int64)
        if p.shape != (len(self.plans),):
            raise ValueError(
                f"expected {len(self.plans)} pass counts, got shape {p.shape}"
            )
        stats.passes += int(p.sum())
        stats.macs += int((self.macs_per_pass * p).sum())
        stats.dense_macs += int((self.dense_macs_per_pass * p).sum())
        stats.array_cycles += int((self.array_cycles_per_pass * p).sum())
        stats.vectorize_cycles += int((self.vectorize_cycles_per_pass * p).sum())
        stats.waves += int((self.waves_per_pass * p).sum())


class ADAM:
    """The systolic inference engine."""

    def __init__(self, config: Optional[ADAMConfig] = None) -> None:
        self.config = config or ADAMConfig()
        self.stats = InferenceStats()

    def systolic_cycles(self, m: int, k: int) -> int:
        """Cycles for an (m x k) @ (k,) product on the rows x cols array.

        Output-stationary tiling: each (rows x cols) tile streams its k-
        slice and drains; fill/drain overhead is rows + cols per tile.
        """
        rows, cols = self.config.rows, self.config.cols
        row_tiles = (m + rows - 1) // rows
        col_tiles = (k + cols - 1) // cols
        return row_tiles * col_tiles * (min(cols, k) + rows)

    def run(self, plan: InferencePlan, inputs: Sequence[float]) -> List[float]:
        """One forward pass (walkthrough step 3).

        Vertex values live in a scratch dict (the genome-buffer image of
        node state); each wave packs its input vector (CPU vectorize, one
        cycle per element — "a task with heavy serialization"), fires the
        systolic array, and applies activations.
        """
        if len(inputs) != len(plan.input_keys):
            raise ValueError(
                f"expected {len(plan.input_keys)} inputs, got {len(inputs)}"
            )
        values: Dict[int, float] = {
            key: float(v) for key, v in zip(plan.input_keys, inputs)
        }
        for key in plan.output_keys:
            values.setdefault(key, 0.0)

        for wave in plan.waves:
            vector = np.array(
                [values.get(src, 0.0) for src in wave.source_ids], dtype=np.float64
            )
            if vector.size == 0:
                pre = wave.biases.copy()
            else:
                pre = wave.biases + wave.responses * (
                    wave.weights[:, : vector.size] @ vector
                )
            for row, node_id in enumerate(wave.node_ids):
                act = _ACTIVATIONS.get(wave.activations[row])
                values[node_id] = act(float(pre[row]))

            self.stats.array_cycles += self.systolic_cycles(
                len(wave.node_ids), len(wave.source_ids)
            )
            self.stats.vectorize_cycles += len(wave.source_ids)
            self.stats.macs += wave.macs
            self.stats.dense_macs += wave.dense_macs
            self.stats.waves += 1

        self.stats.passes += 1
        return [values.get(key, 0.0) for key in plan.output_keys]

    def reset_stats(self) -> InferenceStats:
        stats = self.stats
        self.stats = InferenceStats()
        return stats
