"""Genome Buffer: the shared multi-banked on-chip SRAM.

"We use a shared multi-banked SRAM that harbors all the genomes for a
given generation and is accessed by both ADAM and EvE" (Section IV-A).
The implemented configuration matches Fig. 8(a): 48 banks x 4096 words of
64 bits = 1.5 MB, backed by DRAM when a generation spills.

The model is functional-plus-counting: it stores genome gene streams at
bank-interleaved addresses and counts per-bank reads/writes, bank
conflicts, and DRAM spill traffic — the quantities behind Fig. 11(b)/(c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .gene_encoding import GENE_WORD_BYTES, PackedGene


@dataclass
class SRAMConfig:
    num_banks: int = 48
    bank_depth: int = 4096  # 64-bit words per bank
    word_bytes: int = GENE_WORD_BYTES

    @property
    def capacity_bytes(self) -> int:
        return self.num_banks * self.bank_depth * self.word_bytes

    @property
    def capacity_words(self) -> int:
        return self.num_banks * self.bank_depth


@dataclass
class SRAMStats:
    reads: int = 0
    writes: int = 0
    bank_conflicts: int = 0
    dram_reads: int = 0
    dram_writes: int = 0
    reads_per_bank: Dict[int, int] = field(default_factory=dict)
    writes_per_bank: Dict[int, int] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes

    def merge(self, other: "SRAMStats") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.bank_conflicts += other.bank_conflicts
        self.dram_reads += other.dram_reads
        self.dram_writes += other.dram_writes
        for bank, count in other.reads_per_bank.items():
            self.reads_per_bank[bank] = self.reads_per_bank.get(bank, 0) + count
        for bank, count in other.writes_per_bank.items():
            self.writes_per_bank[bank] = self.writes_per_bank.get(bank, 0) + count


class GenomeBuffer:
    """Stores packed genomes of the current generation, counting accesses.

    Genomes are laid out word-interleaved across banks (word *i* of a
    genome lives in bank ``(base + i) % num_banks``) so streaming a genome
    touches all banks round-robin — the layout that lets the 48 banks feed
    parallel consumers without hot-spotting.
    """

    def __init__(self, config: Optional[SRAMConfig] = None) -> None:
        self.config = config or SRAMConfig()
        self.stats = SRAMStats()
        self._genomes: Dict[int, List[PackedGene]] = {}
        self._fitness: Dict[int, float] = {}
        self._base_bank: Dict[int, int] = {}
        self._next_base = 0
        self._words_used = 0

    # -- capacity ------------------------------------------------------------

    @property
    def words_used(self) -> int:
        return self._words_used

    @property
    def bytes_used(self) -> int:
        return self._words_used * self.config.word_bytes

    @property
    def overflowing(self) -> bool:
        """True when the generation spills to DRAM (Section IV-A)."""
        return self._words_used > self.config.capacity_words

    # -- genome operations -----------------------------------------------------

    def write_genome(self, genome_id: int, stream: List[PackedGene]) -> None:
        """Write a full genome stream (Gene Merge writeback, step 10)."""
        previous = self._genomes.get(genome_id)
        if previous is not None:
            self._words_used -= len(previous)
        self._genomes[genome_id] = list(stream)
        self._base_bank[genome_id] = self._next_base
        self._next_base = (self._next_base + 1) % self.config.num_banks
        self._words_used += len(stream)
        spill = max(0, self._words_used - self.config.capacity_words)
        for i in range(len(stream)):
            if self._words_used - len(stream) + i >= self.config.capacity_words:
                self.stats.dram_writes += 1
                continue
            bank = self._bank_of(genome_id, i)
            self.stats.writes += 1
            self.stats.writes_per_bank[bank] = (
                self.stats.writes_per_bank.get(bank, 0) + 1
            )

    def write_gene(self, genome_id: int, index: int, gene: PackedGene) -> None:
        """Single-word write (incremental Gene Merge)."""
        stream = self._genomes.setdefault(genome_id, [])
        if genome_id not in self._base_bank:
            self._base_bank[genome_id] = self._next_base
            self._next_base = (self._next_base + 1) % self.config.num_banks
        if index == len(stream):
            stream.append(gene)
            self._words_used += 1
        elif index < len(stream):
            stream[index] = gene
        else:
            raise IndexError(f"non-contiguous gene write at index {index}")
        bank = self._bank_of(genome_id, index)
        self.stats.writes += 1
        self.stats.writes_per_bank[bank] = self.stats.writes_per_bank.get(bank, 0) + 1

    def read_genome(self, genome_id: int, count_each_word: bool = True) -> List[PackedGene]:
        """Read a full genome stream, counting one read per 64-bit word."""
        if genome_id not in self._genomes:
            raise KeyError(f"genome {genome_id} not resident in the genome buffer")
        stream = self._genomes[genome_id]
        if count_each_word:
            for i in range(len(stream)):
                bank = self._bank_of(genome_id, i)
                self.stats.reads += 1
                self.stats.reads_per_bank[bank] = (
                    self.stats.reads_per_bank.get(bank, 0) + 1
                )
        return list(stream)

    def peek_genome(self, genome_id: int) -> List[PackedGene]:
        """Read without counting (testing / CPU bookkeeping)."""
        return list(self._genomes[genome_id])

    def genome_length(self, genome_id: int) -> int:
        return len(self._genomes[genome_id])

    def delete_genome(self, genome_id: int) -> None:
        stream = self._genomes.pop(genome_id, None)
        if stream is not None:
            self._words_used -= len(stream)
        self._fitness.pop(genome_id, None)
        self._base_bank.pop(genome_id, None)

    def resident_genomes(self) -> List[int]:
        return sorted(self._genomes)

    def clear(self) -> None:
        self._genomes.clear()
        self._fitness.clear()
        self._base_bank.clear()
        self._words_used = 0
        self._next_base = 0

    # -- fitness annotations (step 6: "The fitness value is augmented to
    # the genome that was just run in SRAM") ------------------------------

    def set_fitness(self, genome_id: int, fitness: float) -> None:
        if genome_id not in self._genomes:
            raise KeyError(f"genome {genome_id} not resident")
        self._fitness[genome_id] = fitness
        self.stats.writes += 1

    def get_fitness(self, genome_id: int) -> float:
        return self._fitness[genome_id]

    def fitnesses(self) -> Dict[int, float]:
        return dict(self._fitness)

    # -- internals --------------------------------------------------------------

    def _bank_of(self, genome_id: int, word_index: int) -> int:
        base = self._base_bank.get(genome_id, 0)
        return (base + word_index) % self.config.num_banks

    def reset_stats(self) -> SRAMStats:
        """Return current stats and start a fresh counting window."""
        stats = self.stats
        self.stats = SRAMStats()
        return stats
