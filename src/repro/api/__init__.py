"""Unified experiment API: one spec, pluggable backends, parallel evaluation.

The paper's central claim is that *the same* evolutionary loop runs across
many substrates — a software CPU baseline, the EvE/ADAM SoC, the Table III
platform models — and many workloads, with only the fitness function
changing (Section III-B).  This package is that claim as an API:

* :class:`ExperimentSpec` — a frozen, JSON-round-trippable description of
  one experiment (workload + algorithm + backend + evaluation settings).
* :class:`Experiment` — resolves a spec against a registered
  :class:`Backend` and runs the closed loop.
* :class:`Backend` — the substrate protocol.  Three implementations ship:
  ``software`` (pure-software NEAT), ``soc`` (the EvE/ADAM hardware-in-
  the-loop models) and ``analytical:<platform>`` (software evolution
  costed through a Table III platform model).
* :class:`RunResult` / :class:`GenerationMetrics` — the unified result
  every backend returns, with optional hardware reports and energy/cycle
  totals.
* ``workers=N`` on the spec switches fitness evaluation to a
  ``multiprocessing`` pool whose per-genome derived seeds make results
  bit-identical to the serial path.
* ``vectorizer="numpy"`` compiles the population into stacked dense
  inference plans (:mod:`repro.neat.compiled`) and steps every in-flight
  episode per numpy call — composable with ``workers`` (each worker
  batches its shard) and reproducing the scalar fitness trajectories.
* ``run_dir=...`` on :func:`run_experiment` records the run durably and
  makes it resumable (:mod:`repro.runs`): per-generation metrics,
  periodic full-state checkpoints, champion — with resumed runs
  bit-identical to uninterrupted ones.

Quickstart::

    from repro.api import Experiment, ExperimentSpec

    spec = ExperimentSpec("CartPole-v0", backend="soc", max_generations=20)
    result = Experiment(spec).run()
    print(result.best_fitness, result.total_energy_j)
"""

from .backends import (
    AnalyticalBackend,
    Backend,
    EvaluationObserver,
    GenerationObserver,
    ResumeUnsupportedError,
    ShouldStop,
    SoCBackend,
    SoftwareBackend,
    StateObserver,
    UnknownBackendError,
    available_backends,
    make_backend,
    register_backend,
)
from .experiment import Experiment, run_experiment
from .parallel import ParallelFitnessEvaluator, build_evaluator
from .result import GenerationMetrics, RunResult
from .spec import ExperimentSpec, SpecError

__all__ = [
    "AnalyticalBackend",
    "Backend",
    "EvaluationObserver",
    "Experiment",
    "ExperimentSpec",
    "GenerationMetrics",
    "GenerationObserver",
    "ParallelFitnessEvaluator",
    "ResumeUnsupportedError",
    "RunResult",
    "ShouldStop",
    "SoCBackend",
    "SoftwareBackend",
    "SpecError",
    "StateObserver",
    "UnknownBackendError",
    "available_backends",
    "build_evaluator",
    "make_backend",
    "register_backend",
    "run_experiment",
]
