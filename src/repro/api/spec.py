"""The experiment specification: one frozen record describes a whole run.

An :class:`ExperimentSpec` composes the workload (environment id), the
algorithm settings (generations, population, episodes), the substrate
(backend name) and the evaluation settings (workers, seed, threshold).
It round-trips through plain dicts and JSON so specs can live in files,
be passed over the CLI (``--spec FILE``), be sharded across machines
without any pickling — and anchor durable run directories
(:mod:`repro.runs` stores the producing spec as ``spec.json`` and a
resume re-derives the whole experiment from it).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from ..platforms.spec import (
    PlatformSpec,
    PlatformSpecError,
    as_platform_spec,
)


class SpecError(ValueError):
    """Raised for invalid or inconsistent experiment specifications."""


#: The inference strategies the software evolution loop understands —
#: the single source of truth for spec validation and evaluator
#: construction (:func:`repro.api.build_evaluator`).
VECTORIZERS = ("scalar", "numpy")


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to reproduce one experiment, JSON-serialisable.

    ``backend`` is a registry key (``software``, ``soc``,
    ``analytical:<platform>``); ``backend_options`` carries backend-
    specific settings that must survive the JSON round-trip (anything
    richer — e.g. a :class:`repro.core.GeneSysConfig` — is passed to
    :class:`repro.api.Experiment` directly).
    """

    env_id: str
    backend: str = "software"
    max_generations: int = 50
    pop_size: int = 150
    episodes: int = 1
    max_steps: Optional[int] = None
    seed: int = 0
    fitness_threshold: Optional[float] = None
    workers: int = 1
    #: Inference strategy for the software evolution loop: ``scalar``
    #: walks each genome's graph node by node (the bit-compatible
    #: reference), ``numpy`` compiles the population into stacked dense
    #: plans and steps whole generations per numpy call
    #: (:mod:`repro.neat.compiled`).
    vectorizer: str = "scalar"
    backend_options: Dict[str, Any] = field(default_factory=dict)
    #: Optional embedded :class:`repro.platforms.PlatformSpec` (or its
    #: dict/JSON form) naming the substrate's hardware design point.
    #: With ``backend="analytical"`` it selects the cost model; with
    #: ``backend="soc"`` (a ``soc``-kind spec) it selects the
    #: cycle-level design point.  Omitted from ``to_dict`` when unset,
    #: so pre-platform specs and their DSE cache keys are unchanged.
    platform: Optional[PlatformSpec] = None
    #: Optional embedded :class:`repro.scenarios.ScenarioSpec` (or its
    #: dict form) describing the environment variant: tunable parameter
    #: overrides, adversarial perturbation wrappers, an optional
    #: curriculum.  Must name the same environment as ``env_id``.
    #: Omitted from ``to_dict`` when unset, so pre-scenario specs and
    #: their DSE cache keys are unchanged.
    scenario: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.env_id or not isinstance(self.env_id, str):
            raise SpecError("env_id must be a non-empty string")
        if not self.backend or not isinstance(self.backend, str):
            raise SpecError("backend must be a non-empty string")
        if self.max_generations < 1:
            raise SpecError("max_generations must be >= 1")
        if self.pop_size < 2:
            raise SpecError("pop_size must be >= 2")
        if self.episodes < 1:
            raise SpecError("episodes must be >= 1")
        if self.max_steps is not None and self.max_steps < 1:
            raise SpecError("max_steps must be >= 1 when set")
        if self.workers < 1:
            raise SpecError("workers must be >= 1")
        if self.vectorizer not in VECTORIZERS:
            raise SpecError(
                f"vectorizer must be 'scalar' or 'numpy', got {self.vectorizer!r}"
            )
        if self.platform is not None:
            try:
                platform = as_platform_spec(self.platform)
            except PlatformSpecError as exc:
                raise SpecError(f"invalid platform spec: {exc}") from exc
            object.__setattr__(self, "platform", platform)
            base, _, arg = self.backend.partition(":")
            if base == "software":
                raise SpecError(
                    "the software backend takes no platform; use "
                    "backend='analytical' or 'soc' with an embedded "
                    "platform spec"
                )
            if base == "analytical" and arg:
                raise SpecError(
                    f"backend {self.backend!r} already names a platform; "
                    "use backend='analytical' with the embedded platform "
                    "spec, or drop the embedded spec"
                )
            if base == "soc" and platform.kind != "soc":
                raise SpecError(
                    f"the soc backend needs a 'soc'-kind platform spec, "
                    f"got kind {platform.kind!r}"
                )
        if self.scenario is not None:
            from ..scenarios import ScenarioSpec, ScenarioSpecError

            scenario = self.scenario
            try:
                if isinstance(scenario, dict):
                    scenario = ScenarioSpec.from_dict(scenario)
                if not isinstance(scenario, ScenarioSpec):
                    raise ScenarioSpecError(
                        f"scenario must be a ScenarioSpec or mapping, "
                        f"got {scenario!r}"
                    )
            except ScenarioSpecError as exc:
                raise SpecError(f"invalid scenario spec: {exc}") from exc
            object.__setattr__(self, "scenario", scenario)

            def _normalise(env_id: str) -> str:
                return "".join(ch for ch in env_id.lower() if ch.isalnum())

            if _normalise(scenario.env_id) != _normalise(self.env_id):
                raise SpecError(
                    f"scenario env {scenario.env_id!r} does not match "
                    f"spec env {self.env_id!r}"
                )
            if self.backend.partition(":")[0] == "soc":
                raise SpecError(
                    "the soc backend does not support scenarios yet; "
                    "use the software or analytical backends"
                )

    # -- derivation -------------------------------------------------------

    def replace(self, **changes: Any) -> "ExperimentSpec":
        """A copy of this spec with the given fields changed."""
        return dataclasses.replace(self, **changes)

    # -- dict / JSON round-trip -------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["backend_options"] = dict(self.backend_options)
        # Omitted (not null) when unset: pre-platform spec dicts — and
        # therefore their DSE cache keys — are byte-identical.
        if self.platform is None:
            del data["platform"]
        else:
            data["platform"] = self.platform.to_dict()
        # Same omitted-when-unset contract for the scenario block.
        if self.scenario is None:
            del data["scenario"]
        else:
            data["scenario"] = self.scenario.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown spec fields: {unknown}")
        return cls(**dict(data))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid spec JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError("spec JSON must be an object")
        return cls.from_dict(data)

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "ExperimentSpec":
        return cls.from_json(Path(path).read_text())
