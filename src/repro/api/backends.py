"""Pluggable experiment backends and their string-keyed registry.

A :class:`Backend` is a substrate that can run the paper's evolutionary
loop for an :class:`repro.api.ExperimentSpec`.  Three ship here,
mirroring the paper's three evaluation substrates:

``software``
    Pure-software NEAT — the CPU baseline path (Section III).
``soc``
    The EvE/ADAM hardware-in-the-loop SoC models (Section IV): selection
    on the System CPU, reproduction on the EvE PEs, inference on ADAM.
``analytical:<platform>``
    Software evolution costed through a platform model resolved from
    the open :mod:`repro.platforms` registry (the Table III legend
    names ``CPU_a`` … ``GPU_d``, ``GENESYS``, the ``soc`` design
    point's analytical projection, and any custom registration); adds
    modelled per-generation runtime and energy to the metrics.

Both hardware-substrate backends resolve their platform through the
registry: ``analytical:<name>`` looks the name up, and an
:class:`ExperimentSpec` with an embedded ``platform`` block hands the
spec straight to the backend (``analytical`` cost models and the
``soc`` cycle-level design point alike), so registering a platform is
all it takes to run experiments on it.

The registry is string-keyed like :mod:`repro.envs.registry`; the part
after a ``:`` parameterises the backend (the platform legend name).
All backends return one unified :class:`repro.api.RunResult` and accept
``on_generation`` / ``on_evaluation`` observer callbacks so analysis code
never reaches into :class:`repro.neat.Population` internals.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple, Union

from .. import obs
from ..core.config import GeneSysConfig
from ..core.runner import config_for_env
from ..core.soc import GenerationReport, GeneSysSoC
from ..core.trace import GenerationWorkload, _mean_depth
from ..hw.allocator import SCHEDULERS
from ..hw.energy import cycles_to_seconds
from ..hw.noc import NOC_KINDS, canonical_noc_kind
from ..neat.genome import Genome
from ..neat.population import Population
from ..platforms import (
    Platform,
    PlatformSpec,
    PlatformSpecError,
    SoCPlatform,
    UnknownPlatformError,
    make_platform,
    parse_adam_shape,
    platform_names,
)
from .parallel import build_evaluator
from .result import GenerationMetrics, RunResult
from .spec import ExperimentSpec, SpecError

#: Observer fired after each generation with its metrics.
GenerationObserver = Callable[[GenerationMetrics], None]
#: Observer fired once per generation, after fitness assignment, with the
#: evaluated genomes (fitnesses set).
EvaluationObserver = Callable[[int, List[Genome]], None]
#: Observer fired after each generation with the live population at its
#: new generation boundary — the hook :mod:`repro.runs` checkpoints
#: through (``population.to_state()`` is resumable from exactly here).
StateObserver = Callable[[Population], None]
#: Cooperative-stop predicate, polled after each generation with the
#: number of completed generations.  Returning ``True`` ends the run at
#: that boundary — the hook the :mod:`repro.serve` scheduler preempts
#: through (yield at a checkpoint boundary, resume later, bit-identical).
ShouldStop = Callable[[int], bool]


class UnknownBackendError(KeyError):
    pass


class ResumeUnsupportedError(SpecError):
    """Raised when a backend is handed a resume state it cannot honour."""


class Backend(Protocol):
    """The substrate protocol: resolve a spec into a unified result.

    ``on_state``, ``resume_state`` and ``should_stop`` are optional
    capabilities: the software-loop backends (``software``,
    ``analytical:*``) implement all three; the ``soc`` backend ignores
    ``on_state`` (its population lives inside the chip model), rejects
    ``resume_state`` and honours ``should_stop`` (a stopped chip run
    simply ends early).
    """

    name: str

    def run(
        self,
        spec: ExperimentSpec,
        on_generation: Optional[GenerationObserver] = None,
        on_evaluation: Optional[EvaluationObserver] = None,
        on_state: Optional[StateObserver] = None,
        resume_state: Optional[Dict] = None,
        should_stop: Optional[ShouldStop] = None,
        resume_metrics: Optional[Sequence[Dict]] = None,
    ) -> RunResult:
        ...  # pragma: no cover - protocol


# ---------------------------------------------------------------------------
# registry


_REGISTRY: Dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register a backend factory under a base name.

    The factory is called as ``factory(arg=<suffix or None>, **options)``
    where ``<suffix>`` is the part after ``:`` in the requested name.
    """
    _REGISTRY[name] = factory


def make_backend(name: str, **options) -> Backend:
    """Instantiate a backend by registry key, e.g. ``analytical:GENESYS``."""
    base, _, arg = name.partition(":")
    if base not in _REGISTRY:
        raise UnknownBackendError(
            f"unknown backend {name!r}; known: {available_backends()}"
        )
    return _REGISTRY[base](arg=arg or None, **options)


def available_backends() -> List[str]:
    """Every resolvable backend key, with analytical platforms expanded."""
    names: List[str] = []
    for base in sorted(_REGISTRY):
        if base == "analytical":
            names.extend(f"analytical:{p}" for p in platform_names())
        else:
            names.append(base)
    return names


# ---------------------------------------------------------------------------
# the shared software loop


@dataclass
class _SoftwareLoopResult:
    population: Population
    metrics: List[GenerationMetrics] = field(default_factory=list)
    workloads: List[GenerationWorkload] = field(default_factory=list)
    stopped: bool = False


def _run_software_loop(
    spec: ExperimentSpec,
    fitness_transform: Optional[Callable[[float], float]],
    on_generation: Optional[GenerationObserver],
    on_evaluation: Optional[EvaluationObserver],
    decorate_metrics: Optional[
        Callable[[GenerationMetrics, GenerationWorkload], None]
    ] = None,
    collect_workloads: bool = False,
    on_state: Optional[StateObserver] = None,
    resume_state: Optional[Dict] = None,
    should_stop: Optional[ShouldStop] = None,
    resume_metrics: Optional[Sequence[Dict]] = None,
) -> _SoftwareLoopResult:
    """Run software NEAT for a spec, emitting metrics per generation.

    This is :meth:`repro.neat.Population.run` with observability: the
    loop, the stop criterion and the evaluator seeding are identical, so
    a fixed seed reproduces the legacy ``evolve_software`` path exactly.
    ``decorate_metrics`` lets the analytical backend attach modelled
    costs before the ``on_generation`` observer fires.

    ``resume_state`` (a :func:`repro.neat.serialize.population_to_state`
    payload) restores the population at its checkpointed generation
    boundary and continues from there; combined with the evaluator's
    ``start_generation`` seed-stream offset, the continued run is
    bit-identical to one that was never interrupted.  ``on_state`` fires
    after every generation with the live population so callers (the
    :mod:`repro.runs` artifact writer) can checkpoint it.

    ``should_stop`` is polled after each generation (after ``on_state``,
    so the boundary is already checkpointable) with the completed
    generation count; returning ``True`` ends the loop cooperatively —
    the preemption mechanism of the :mod:`repro.serve` scheduler.

    On a scenario run, ``resume_metrics`` (the metrics rows already on
    disk, in generation order) replays the curriculum fold so the
    resumed run holds exactly the stage/streak/forgetting state the
    uninterrupted run would — the curriculum half of the byte-identity
    guarantee.
    """
    config = config_for_env(spec.env_id, spec.pop_size, spec.fitness_threshold)
    if resume_state is not None:
        population = Population.from_state(resume_state, config)
        start_generation = population.generation
    else:
        population = Population(config, seed=spec.seed)
        start_generation = 0
    controller = None
    if spec.scenario is not None:
        from ..scenarios import CurriculumController

        controller = CurriculumController(spec.scenario)
        if resume_metrics:
            controller.restore(resume_metrics)

    def make_evaluator(generation: int):
        return build_evaluator(
            spec.env_id,
            episodes=spec.episodes,
            max_steps=spec.max_steps,
            seed=spec.seed,
            fitness_transform=fitness_transform,
            workers=spec.workers,
            vectorizer=spec.vectorizer,
            start_generation=generation,
            scenario=(
                controller.active_scenario() if controller is not None else None
            ),
        )

    evaluator = make_evaluator(start_generation)
    collect = collect_workloads or decorate_metrics is not None
    threshold = config.fitness_threshold
    out = _SoftwareLoopResult(population=population)
    # A resumed run that had already met the stop criterion must not
    # evolve further — the uninterrupted run would have stopped there.
    already_converged = (
        resume_state is not None
        and threshold is not None
        and population.fitness_summary() >= threshold
    )
    generation_range = (
        range(0) if already_converged
        else range(start_generation, spec.max_generations)
    )
    try:
        for gen_index in generation_range:
            snapshot = dict(population.population) if collect else None

            def fitness_function(genomes, cfg, _gen=gen_index):
                evaluator(genomes, cfg)
                if on_evaluation is not None:
                    on_evaluation(_gen, genomes)

            prev_steps = evaluator.totals.steps
            prev_macs = evaluator.totals.macs
            stats = population.run_generation(fitness_function)
            env_steps = evaluator.totals.steps - prev_steps
            macs = evaluator.totals.macs - prev_macs
            metrics = GenerationMetrics(
                generation=stats.generation,
                best_fitness=stats.best_fitness,
                mean_fitness=stats.mean_fitness,
                num_species=stats.num_species,
                num_genes=stats.num_genes,
                footprint_bytes=stats.memory_footprint_bytes,
                env_steps=env_steps,
                inference_macs=macs,
            )
            switched_stage = None
            if controller is not None:
                # Annotates the row with the stage it was evaluated under
                # (plus forgetting/recovery) and folds the advancement
                # rule; an advance only affects the *next* generation.
                switched_stage = controller.step(
                    metrics.generation, metrics.best_fitness, metrics
                )
            if collect:
                # The batched evaluator levelises every genome anyway, so
                # reuse its depths (exactly the feed_forward_layers counts
                # _mean_depth would re-derive) when they are available.
                depth = getattr(evaluator, "last_mean_depth", None)
                if depth is None:
                    depth = _mean_depth(snapshot, config.genome)
                workload = GenerationWorkload(
                    generation=stats.generation,
                    population=stats.population_size,
                    total_nodes=stats.num_nodes,
                    total_connections=stats.num_connections,
                    ops=stats.ops,
                    env_steps=env_steps,
                    inference_macs=macs,
                    mean_network_depth=depth,
                    fittest_parent_reuse=stats.fittest_parent_reuse,
                )
                out.workloads.append(workload)
                if decorate_metrics is not None:
                    decorate_metrics(metrics, workload)
            out.metrics.append(metrics)
            if on_generation is not None:
                on_generation(metrics)
            if on_state is not None:
                on_state(population)
            if threshold is not None and population.fitness_summary() >= threshold:
                break
            if should_stop is not None and should_stop(population.generation):
                out.stopped = True
                break
            if switched_stage is not None:
                # Rebuild the evaluator on the new stage's environment.
                # The seed stream is a pure function of (seed, generation,
                # genome, episode), so restarting at the current boundary
                # keeps serial/pooled/vectorized bit-identity intact.
                with obs.span(
                    "scenario.switch",
                    stage=switched_stage,
                    generation=population.generation,
                ):
                    obs.incr("scenario.stage_advance")
                    close = getattr(evaluator, "close", None)
                    if close is not None:
                        close()
                    evaluator = make_evaluator(population.generation)
    finally:
        close = getattr(evaluator, "close", None)
        if close is not None:
            close()
    if population.best_genome is None:
        raise RuntimeError("no generations were evaluated")
    return out


# ---------------------------------------------------------------------------
# backends


class SoftwareBackend:
    """Pure-software NEAT: the paper's CPU/GPU baseline algorithm."""

    name = "software"

    def __init__(self, arg: Optional[str] = None,
                 fitness_transform: Optional[Callable[[float], float]] = None) -> None:
        if arg:
            raise UnknownBackendError(
                f"the software backend takes no ':{arg}' parameter"
            )
        self.fitness_transform = fitness_transform

    def run(
        self,
        spec: ExperimentSpec,
        on_generation: Optional[GenerationObserver] = None,
        on_evaluation: Optional[EvaluationObserver] = None,
        on_state: Optional[StateObserver] = None,
        resume_state: Optional[Dict] = None,
        should_stop: Optional[ShouldStop] = None,
        resume_metrics: Optional[Sequence[Dict]] = None,
    ) -> RunResult:
        loop = _run_software_loop(
            spec, self.fitness_transform, on_generation, on_evaluation,
            on_state=on_state, resume_state=resume_state,
            should_stop=should_stop, resume_metrics=resume_metrics,
        )
        population = loop.population
        return RunResult(
            spec=spec,
            backend=self.name,
            champion=population.best_genome,
            generations=population.generation,
            converged=population.converged,
            stopped_early=loop.stopped,
            metrics=loop.metrics,
            neat_config=population.config,
            population=population,
        )


class AnalyticalBackend:
    """Software evolution costed through a registered platform model.

    The loop (and therefore the champion) is identical to the software
    backend; each generation's workload aggregates are fed to the chosen
    platform's inference/evolution cost models, so the run carries the
    modelled runtime and energy a real deployment on that platform would
    exhibit (the per-generation bars of Fig. 9).

    The platform resolves through the open registry
    (:mod:`repro.platforms`): ``platform`` may be a registered name
    (what ``'analytical:<name>'`` passes via ``arg``), a
    :class:`repro.platforms.PlatformSpec`, its dict form, or an
    already-built :class:`repro.platforms.Platform` — the path an
    :class:`ExperimentSpec` with an embedded ``platform`` block takes.
    """

    name = "analytical"

    def __init__(self, arg: Optional[str] = None,
                 platform: Optional[Union[str, Dict, PlatformSpec, Platform]] = None,
                 fitness_transform: Optional[Callable[[float], float]] = None) -> None:
        if arg and platform is not None:
            raise UnknownBackendError(
                f"the analytical backend got both ':{arg}' and an "
                "explicit platform; pass one"
            )
        platform = arg or platform
        if platform is None:
            raise UnknownBackendError(
                "the analytical backend needs a platform — use "
                "'analytical:<platform>' (or embed a platform spec) "
                f"with one of: {platform_names()}"
            )
        if isinstance(platform, Platform):
            self.platform = platform
        else:
            try:
                self.platform = make_platform(platform)
            except UnknownPlatformError as exc:
                raise UnknownBackendError(
                    f"unknown analytical platform {platform!r}; "
                    f"known: {platform_names()}"
                ) from exc
            except PlatformSpecError as exc:
                raise SpecError(f"invalid platform spec: {exc}") from exc
        self.platform_name = self.platform.name
        self.fitness_transform = fitness_transform
        self.name = f"analytical:{self.platform_name}"

    def run(
        self,
        spec: ExperimentSpec,
        on_generation: Optional[GenerationObserver] = None,
        on_evaluation: Optional[EvaluationObserver] = None,
        on_state: Optional[StateObserver] = None,
        resume_state: Optional[Dict] = None,
        should_stop: Optional[ShouldStop] = None,
        resume_metrics: Optional[Sequence[Dict]] = None,
    ) -> RunResult:
        def decorate(metrics: GenerationMetrics, workload: GenerationWorkload) -> None:
            inference = self.platform.inference_cost(workload)
            evolution = self.platform.evolution_cost(workload)
            metrics.energy_j = inference.energy_j + evolution.energy_j
            metrics.runtime_s = inference.runtime_s + evolution.runtime_s

        loop = _run_software_loop(
            spec, self.fitness_transform, on_generation, on_evaluation,
            decorate_metrics=decorate,
            on_state=on_state, resume_state=resume_state,
            should_stop=should_stop, resume_metrics=resume_metrics,
        )
        population = loop.population
        return RunResult(
            spec=spec,
            backend=self.name,
            champion=population.best_genome,
            generations=population.generation,
            converged=population.converged,
            stopped_early=loop.stopped,
            metrics=loop.metrics,
            neat_config=population.config,
            total_energy_j=sum(m.energy_j for m in loop.metrics),
            total_runtime_s=sum(m.runtime_s for m in loop.metrics),
            population=population,
        )


def _parse_adam_shape(shape: Union[str, Sequence[int]]) -> Tuple[int, int]:
    """``"32x32"`` (or a 2-sequence) -> ``(rows, cols)``.

    Thin wrapper over the shared :func:`repro.platforms.parse_adam_shape`
    canonicaliser, re-raising as :class:`SpecError` for backend callers.
    """
    try:
        return parse_adam_shape(shape)
    except PlatformSpecError as exc:
        raise SpecError(str(exc)) from None


def _resolve_soc_platform(
    platform: Optional[Union[str, Dict, PlatformSpec, SoCPlatform]],
) -> Optional[SoCPlatform]:
    """Coerce a platform option into a :class:`SoCPlatform` (or None)."""
    if platform is None or isinstance(platform, SoCPlatform):
        return platform
    try:
        if isinstance(platform, str):
            resolved = make_platform(platform)
            if not isinstance(resolved, SoCPlatform):
                raise SpecError(
                    f"the soc backend needs a 'soc'-kind platform, but "
                    f"{platform!r} is {type(resolved).__name__}"
                )
            return resolved
        spec = platform if isinstance(platform, PlatformSpec) else (
            PlatformSpec.from_dict(platform)
        )
        if spec.kind != "soc":
            raise SpecError(
                f"the soc backend needs a 'soc'-kind platform spec, "
                f"got kind {spec.kind!r}"
            )
        return SoCPlatform(spec)
    except UnknownPlatformError as exc:
        raise UnknownBackendError(
            f"unknown platform {platform!r}; known: {platform_names()}"
        ) from exc
    except PlatformSpecError as exc:
        raise SpecError(f"invalid platform spec: {exc}") from exc


class SoCBackend:
    """Hardware-in-the-loop evolution on the EvE/ADAM SoC models.

    The SoC model is a serial chip simulation, so ``spec.workers`` does
    not apply here.  A caller-provided :class:`GeneSysConfig` is never
    mutated: the spec's NEAT sizing and seed are applied to a copy
    (``dataclasses.replace``), including the nested EvE block whose PE
    registers the SoC reprograms.

    The hardware design point resolves through the platform registry: a
    ``soc``-kind :class:`repro.platforms.PlatformSpec` — embedded on the
    experiment spec (``spec.platform``), passed as the ``platform``
    option (spec, dict, registered name or
    :class:`repro.platforms.SoCPlatform`) — selects ``eve_pes``/``noc``/
    ``scheduler``/``adam_shape``/``frequency_hz`` declaratively.  The
    legacy JSON-friendly ``backend_options`` knobs (``eve_pes``, ``noc``,
    ``scheduler``, ``adam_shape`` — the ``hw.*`` DSE axes) still apply
    and override whatever the platform spec or a caller-provided
    ``soc_config`` resolved.
    """

    name = "soc"

    def __init__(self, arg: Optional[str] = None,
                 soc_config: Optional[GeneSysConfig] = None,
                 platform: Optional[Union[str, Dict, PlatformSpec, SoCPlatform]] = None,
                 eve_pes: Optional[int] = None,
                 noc: Optional[str] = None,
                 scheduler: Optional[str] = None,
                 adam_shape: Optional[str] = None,
                 vectorize: Optional[bool] = None) -> None:
        if arg:
            raise UnknownBackendError(
                f"the soc backend takes no ':{arg}' parameter"
            )
        self.soc_config = soc_config
        self.platform = _resolve_soc_platform(platform)
        if eve_pes is not None and (not isinstance(eve_pes, int) or eve_pes < 1):
            raise SpecError(f"eve_pes must be a positive int, got {eve_pes!r}")
        if noc is not None:
            try:
                noc = canonical_noc_kind(noc)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
        if scheduler is not None and scheduler not in SCHEDULERS:
            raise SpecError(
                f"unknown scheduler {scheduler!r}; use one of "
                f"{sorted(SCHEDULERS)}"
            )
        self.eve_pes = eve_pes
        self.noc = noc
        self.scheduler = scheduler
        self.adam_shape = (
            _parse_adam_shape(adam_shape) if adam_shape is not None else None
        )
        # Population-batched evaluation is the default; the flag is an
        # escape hatch (and the bench's serial baseline).  Both paths are
        # bit-identical, so the choice never shows up in spec/cache keys.
        self.vectorize = True if vectorize is None else bool(vectorize)

    def _resolve_config(self, spec: ExperimentSpec) -> GeneSysConfig:
        neat_config = config_for_env(
            spec.env_id, spec.pop_size, spec.fitness_threshold
        )
        platform = self.platform
        if platform is None and spec.platform is not None:
            # spec validation guarantees a soc-kind platform here
            platform = SoCPlatform(spec.platform)
        if self.soc_config is None:
            if platform is not None:
                config = platform.genesys_config(
                    neat=neat_config, seed=spec.seed
                )
            else:
                config = GeneSysConfig.paper_design_point(neat=neat_config)
                config.seed = spec.seed
        else:
            config = dataclasses.replace(
                self.soc_config,
                neat=neat_config,
                seed=spec.seed,
                eve=dataclasses.replace(self.soc_config.eve),
            )
            if platform is not None:
                # the declarative design point wins for the blocks it
                # parameterises; soc_config still supplies the rest
                # (SRAM geometry, PE registers).
                config = platform.genesys_config(
                    neat=neat_config, seed=spec.seed, base=config
                )
        eve_changes = {
            key: value
            for key, value in (
                ("num_pes", self.eve_pes),
                ("noc", self.noc),
                ("scheduler", self.scheduler),
            )
            if value is not None
        }
        if eve_changes:
            config.eve = dataclasses.replace(config.eve, **eve_changes)
        if self.adam_shape is not None:
            rows, cols = self.adam_shape
            config.adam = dataclasses.replace(
                config.adam, rows=rows, cols=cols
            )
        return config

    def run(
        self,
        spec: ExperimentSpec,
        on_generation: Optional[GenerationObserver] = None,
        on_evaluation: Optional[EvaluationObserver] = None,
        on_state: Optional[StateObserver] = None,
        resume_state: Optional[Dict] = None,
        should_stop: Optional[ShouldStop] = None,
        resume_metrics: Optional[Sequence[Dict]] = None,
    ) -> RunResult:
        if resume_state is not None:
            raise ResumeUnsupportedError(
                "the soc backend does not support checkpoint/resume: its "
                "population lives inside the serial chip simulation "
                "(use the software or analytical backends for resumable "
                "runs)"
            )
        # on_state is a software-loop capability; the SoC model exposes
        # no Population object to snapshot, so the observer never fires.
        config = self._resolve_config(spec)
        soc = GeneSysSoC(
            config, spec.env_id, episodes=spec.episodes,
            max_steps=spec.max_steps, vectorize=self.vectorize,
        )
        threshold = config.neat.fitness_threshold
        metrics: List[GenerationMetrics] = []
        stopped = False
        for _ in range(spec.max_generations):
            if not soc.population:
                soc.initialise_population()
            evaluated = list(soc.population.values())
            report = soc.run_generation()
            if on_evaluation is not None:
                on_evaluation(report.generation, evaluated)
            entry = self._metrics_from_report(report, config.frequency_hz)
            metrics.append(entry)
            if on_generation is not None:
                on_generation(entry)
            if threshold is not None and report.best_fitness >= threshold:
                break
            if should_stop is not None and should_stop(soc.generation):
                # The chip model cannot resume, so stopping here just
                # ends the run early (the caller decides what that means).
                stopped = True
                break
        if soc.best_genome is None:
            raise RuntimeError("no generations were evaluated")
        champion = soc.best_genome
        converged = (
            threshold is not None
            and champion.fitness is not None
            and champion.fitness >= threshold
        )
        total_cycles = sum(
            r.inference_cycles + r.evolution_cycles for r in soc.reports
        )
        return RunResult(
            spec=spec,
            backend=self.name,
            champion=champion,
            generations=soc.generation,
            converged=converged,
            stopped_early=stopped,
            metrics=metrics,
            neat_config=config.neat,
            total_energy_j=sum(r.energy.total_energy_j for r in soc.reports),
            total_cycles=total_cycles,
            total_runtime_s=cycles_to_seconds(total_cycles, config.frequency_hz),
            reports=soc.reports,
            soc=soc,
        )

    @staticmethod
    def _metrics_from_report(
        report: GenerationReport, frequency_hz: float
    ) -> GenerationMetrics:
        cycles = report.inference_cycles + report.evolution_cycles
        return GenerationMetrics(
            generation=report.generation,
            best_fitness=report.best_fitness,
            mean_fitness=report.mean_fitness,
            num_species=report.num_species,
            num_genes=report.num_genes,
            footprint_bytes=report.footprint_bytes,
            env_steps=report.env_steps,
            inference_macs=report.inference.macs,
            energy_j=report.energy.total_energy_j,
            cycles=cycles,
            runtime_s=cycles_to_seconds(cycles, frequency_hz),
        )


register_backend("software", SoftwareBackend)
register_backend("soc", SoCBackend)
register_backend("analytical", AnalyticalBackend)
