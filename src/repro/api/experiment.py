"""The experiment runner: resolve a spec against a backend and go.

:class:`Experiment` is the single entry point the CLI, the examples, the
benchmarks and the legacy runner shims all share.  Rich, non-JSON
arguments (a custom :class:`repro.core.GeneSysConfig`, a fitness
transform callable) are passed to the constructor; everything
serialisable lives on the spec.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from .backends import (
    Backend,
    EvaluationObserver,
    GenerationObserver,
    make_backend,
)
from .result import RunResult
from .spec import ExperimentSpec


class Experiment:
    """One experiment: a spec plus the backend that will run it."""

    def __init__(
        self,
        spec: ExperimentSpec,
        soc_config=None,
        fitness_transform: Optional[Callable[[float], float]] = None,
    ) -> None:
        self.spec = spec
        options: Dict[str, Any] = dict(spec.backend_options)
        if soc_config is not None:
            options["soc_config"] = soc_config
        if fitness_transform is not None:
            options["fitness_transform"] = fitness_transform
        self.backend: Backend = make_backend(spec.backend, **options)

    def run(
        self,
        on_generation: Optional[GenerationObserver] = None,
        on_evaluation: Optional[EvaluationObserver] = None,
    ) -> RunResult:
        """Run the closed loop to threshold or generation budget."""
        return self.backend.run(
            self.spec, on_generation=on_generation, on_evaluation=on_evaluation
        )


def run_experiment(
    spec: Union[ExperimentSpec, str, Path],
    on_generation: Optional[GenerationObserver] = None,
    on_evaluation: Optional[EvaluationObserver] = None,
    **experiment_kwargs,
) -> RunResult:
    """Convenience: run a spec object or a spec JSON file in one call."""
    if not isinstance(spec, ExperimentSpec):
        spec = ExperimentSpec.load(spec)
    return Experiment(spec, **experiment_kwargs).run(
        on_generation=on_generation, on_evaluation=on_evaluation
    )
