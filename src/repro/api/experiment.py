"""The experiment runner: resolve a spec against a backend and go.

:class:`Experiment` is the single entry point the CLI, the examples, the
benchmarks and the legacy runner shims all share.  Rich, non-JSON
arguments (a custom :class:`repro.core.GeneSysConfig`, a fitness
transform callable) are passed to the constructor; everything
serialisable lives on the spec.

Durable, resumable runs layer on top of this module: pass ``run_dir``
to :func:`run_experiment` (or use :func:`repro.runs.run_in_dir`
directly) and the run persists ``spec.json``, per-generation
``metrics.jsonl``, periodic full-state checkpoints and the champion —
see :mod:`repro.runs`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from .backends import (
    Backend,
    EvaluationObserver,
    GenerationObserver,
    ShouldStop,
    StateObserver,
    make_backend,
)
from .result import RunResult
from .spec import ExperimentSpec


class Experiment:
    """One experiment: a spec plus the backend that will run it.

    Parameters
    ----------
    spec:
        The :class:`ExperimentSpec` to run.
    soc_config:
        Optional :class:`repro.core.GeneSysConfig` for the ``soc``
        backend (never mutated; the spec's sizing is applied to a copy).
    fitness_transform:
        Optional callable applied to each genome's mean episode reward
        before it becomes fitness (the paper's "only the fitness
        function changes between workloads").
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        soc_config=None,
        fitness_transform: Optional[Callable[[float], float]] = None,
    ) -> None:
        self.spec = spec
        options: Dict[str, Any] = dict(spec.backend_options)
        if soc_config is not None:
            options["soc_config"] = soc_config
        if fitness_transform is not None:
            options["fitness_transform"] = fitness_transform
        # An embedded platform spec reaches the built-in substrate
        # factories as their 'platform' option; custom backends read
        # spec.platform themselves in run().
        base = spec.backend.partition(":")[0]
        if (
            spec.platform is not None
            and base in ("analytical", "soc")
            and "platform" not in options
        ):
            options["platform"] = spec.platform
        self.backend: Backend = make_backend(spec.backend, **options)

    def run(
        self,
        on_generation: Optional[GenerationObserver] = None,
        on_evaluation: Optional[EvaluationObserver] = None,
        on_state: Optional[StateObserver] = None,
        resume_state: Optional[Dict] = None,
        should_stop: Optional[ShouldStop] = None,
        resume_metrics: Optional[List[Dict]] = None,
    ) -> RunResult:
        """Run the closed loop to threshold or generation budget.

        ``on_state`` fires after each generation with the live
        :class:`repro.neat.Population` (software-loop backends only),
        ``resume_state`` continues a run from a
        :meth:`repro.neat.Population.to_state` checkpoint payload, and
        ``should_stop`` is polled after each generation to end the run
        cooperatively at that boundary (``result.stopped_early`` marks
        such runs).  ``resume_metrics`` (the already-recorded metrics
        rows, generation order) lets a scenario run replay its
        curriculum fold on resume.  All are forwarded only when set, so
        backends registered before these capabilities existed keep
        working unchanged.
        """
        extra: Dict[str, Any] = {}
        if on_state is not None:
            extra["on_state"] = on_state
        if resume_state is not None:
            extra["resume_state"] = resume_state
        if should_stop is not None:
            extra["should_stop"] = should_stop
        if resume_metrics is not None:
            extra["resume_metrics"] = resume_metrics
        return self.backend.run(
            self.spec,
            on_generation=on_generation,
            on_evaluation=on_evaluation,
            **extra,
        )


def run_experiment(
    spec: Union[ExperimentSpec, str, Path],
    on_generation: Optional[GenerationObserver] = None,
    on_evaluation: Optional[EvaluationObserver] = None,
    run_dir: Optional[Union[str, Path]] = None,
    resume: Union[bool, str] = False,
    checkpoint_every: Optional[int] = None,
    **experiment_kwargs,
) -> RunResult:
    """Convenience: run a spec object or a spec JSON file in one call.

    With ``run_dir`` the run persists its artifacts (spec, per-generation
    metrics, periodic full-state checkpoints, champion) into that
    directory and becomes resumable: ``resume=True`` continues it from
    the last checkpoint, ``resume="auto"`` resumes when artifacts exist
    and starts fresh otherwise.  See :mod:`repro.runs` for the layout
    and the bit-identity guarantee.
    """
    if not isinstance(spec, ExperimentSpec):
        spec = ExperimentSpec.load(spec)
    if run_dir is not None:
        from ..runs import run_in_dir

        runs_kwargs: Dict[str, Any] = {}
        if checkpoint_every is not None:
            runs_kwargs["checkpoint_every"] = checkpoint_every
        return run_in_dir(
            spec,
            run_dir,
            resume=resume,
            on_generation=on_generation,
            on_evaluation=on_evaluation,
            **runs_kwargs,
            **experiment_kwargs,
        )
    if resume:
        raise ValueError("resume requires run_dir (a directory to resume from)")
    return Experiment(spec, **experiment_kwargs).run(
        on_generation=on_generation, on_evaluation=on_evaluation
    )
