"""The unified result record every backend returns.

Backends differ in what they can measure — the software path counts env
steps and MACs, the SoC model adds cycles and joules, the analytical
platform models add modelled runtime/energy — but they all report through
the same :class:`RunResult` so analysis code never needs to know which
substrate produced a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..neat.genome import Genome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.soc import GenerationReport, GeneSysSoC
    from ..neat.config import NEATConfig
    from ..neat.population import Population
    from .spec import ExperimentSpec


@dataclass
class GenerationMetrics:
    """One generation as every backend reports it.

    ``energy_j``/``cycles``/``runtime_s`` stay ``None`` on backends that
    cannot measure them (the software path has no energy model).
    """

    generation: int
    best_fitness: float
    mean_fitness: float
    num_species: int
    num_genes: int
    footprint_bytes: int
    env_steps: int = 0
    inference_macs: int = 0
    energy_j: Optional[float] = None
    cycles: Optional[int] = None
    runtime_s: Optional[float] = None
    #: Curriculum/scenario columns, set only on scenario runs: the stage
    #: this generation was evaluated under, how far the champion sits
    #: below its pre-switch best, and (once, on the generation it first
    #: happens) how many generations recovery took.
    scenario_stage: Optional[int] = None
    scenario_forgetting: Optional[float] = None
    scenario_recovery: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "generation": self.generation,
            "best_fitness": self.best_fitness,
            "mean_fitness": self.mean_fitness,
            "num_species": self.num_species,
            "num_genes": self.num_genes,
            "footprint_bytes": self.footprint_bytes,
            "env_steps": self.env_steps,
            "inference_macs": self.inference_macs,
            "energy_j": self.energy_j,
            "cycles": self.cycles,
            "runtime_s": self.runtime_s,
        }
        # Emitted only on scenario runs, so non-scenario metrics.jsonl
        # rows stay byte-identical to every earlier release.
        if self.scenario_stage is not None:
            data["scenario_stage"] = self.scenario_stage
            if self.scenario_forgetting is not None:
                data["scenario_forgetting"] = self.scenario_forgetting
            if self.scenario_recovery is not None:
                data["scenario_recovery"] = self.scenario_recovery
        return data


@dataclass
class RunResult:
    """What :meth:`repro.api.Experiment.run` returns, for every backend.

    ``population``/``soc``/``reports`` expose the substrate objects for
    callers that need them (the deprecation shims, hardware analyses);
    they are not part of the serialisable summary.
    """

    spec: "ExperimentSpec"
    backend: str
    champion: Genome
    generations: int
    converged: bool
    metrics: List[GenerationMetrics] = field(default_factory=list)
    #: The run ended at a ``should_stop`` boundary before its budget or
    #: threshold — a cooperative preemption, not a completed run.
    stopped_early: bool = False
    neat_config: Optional["NEATConfig"] = None
    total_energy_j: Optional[float] = None
    total_cycles: Optional[int] = None
    total_runtime_s: Optional[float] = None
    reports: Optional[List["GenerationReport"]] = None
    population: Optional["Population"] = None
    soc: Optional["GeneSysSoC"] = None

    @property
    def best_fitness(self) -> float:
        return self.champion.fitness if self.champion.fitness is not None else float("-inf")

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly run summary (spec + outcomes + per-gen metrics)."""
        return {
            "spec": self.spec.to_dict(),
            "backend": self.backend,
            "generations": self.generations,
            "converged": self.converged,
            "best_fitness": self.best_fitness,
            "total_energy_j": self.total_energy_j,
            "total_cycles": self.total_cycles,
            "total_runtime_s": self.total_runtime_s,
            "metrics": [m.to_dict() for m in self.metrics],
        }
